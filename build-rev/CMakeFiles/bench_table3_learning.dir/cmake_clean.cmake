file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_learning.dir/bench/table3_learning.cpp.o"
  "CMakeFiles/bench_table3_learning.dir/bench/table3_learning.cpp.o.d"
  "bench_table3_learning"
  "bench_table3_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
