file(REMOVE_RECURSE
  "CMakeFiles/modes_test.dir/tests/modes_test.cpp.o"
  "CMakeFiles/modes_test.dir/tests/modes_test.cpp.o.d"
  "modes_test"
  "modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
