# Empty compiler generated dependencies file for modes_test.
# This may be replaced when dependencies are built.
