file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_atpg.dir/bench/table5_atpg.cpp.o"
  "CMakeFiles/bench_table5_atpg.dir/bench/table5_atpg.cpp.o.d"
  "bench_table5_atpg"
  "bench_table5_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
