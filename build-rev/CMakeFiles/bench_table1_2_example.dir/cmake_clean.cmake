file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_2_example.dir/bench/table1_2_example.cpp.o"
  "CMakeFiles/bench_table1_2_example.dir/bench/table1_2_example.cpp.o.d"
  "bench_table1_2_example"
  "bench_table1_2_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
