file(REMOVE_RECURSE
  "CMakeFiles/db_io_test.dir/tests/db_io_test.cpp.o"
  "CMakeFiles/db_io_test.dir/tests/db_io_test.cpp.o.d"
  "db_io_test"
  "db_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
