file(REMOVE_RECURSE
  "CMakeFiles/example_atpg_flow.dir/examples/atpg_flow.cpp.o"
  "CMakeFiles/example_atpg_flow.dir/examples/atpg_flow.cpp.o.d"
  "example_atpg_flow"
  "example_atpg_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_atpg_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
