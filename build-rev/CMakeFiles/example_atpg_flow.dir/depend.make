# Empty dependencies file for example_atpg_flow.
# This may be replaced when dependencies are built.
