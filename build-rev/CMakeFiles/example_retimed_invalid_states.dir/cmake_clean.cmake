file(REMOVE_RECURSE
  "CMakeFiles/example_retimed_invalid_states.dir/examples/retimed_invalid_states.cpp.o"
  "CMakeFiles/example_retimed_invalid_states.dir/examples/retimed_invalid_states.cpp.o.d"
  "example_retimed_invalid_states"
  "example_retimed_invalid_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retimed_invalid_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
