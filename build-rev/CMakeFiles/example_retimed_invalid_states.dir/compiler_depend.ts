# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_retimed_invalid_states.
