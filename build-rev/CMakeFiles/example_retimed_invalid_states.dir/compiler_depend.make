# Empty compiler generated dependencies file for example_retimed_invalid_states.
# This may be replaced when dependencies are built.
