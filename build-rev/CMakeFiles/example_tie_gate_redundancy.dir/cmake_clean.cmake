file(REMOVE_RECURSE
  "CMakeFiles/example_tie_gate_redundancy.dir/examples/tie_gate_redundancy.cpp.o"
  "CMakeFiles/example_tie_gate_redundancy.dir/examples/tie_gate_redundancy.cpp.o.d"
  "example_tie_gate_redundancy"
  "example_tie_gate_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tie_gate_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
