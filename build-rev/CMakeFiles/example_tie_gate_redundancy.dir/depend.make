# Empty dependencies file for example_tie_gate_redundancy.
# This may be replaced when dependencies are built.
