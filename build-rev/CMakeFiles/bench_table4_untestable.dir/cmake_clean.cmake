file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_untestable.dir/bench/table4_untestable.cpp.o"
  "CMakeFiles/bench_table4_untestable.dir/bench/table4_untestable.cpp.o.d"
  "bench_table4_untestable"
  "bench_table4_untestable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_untestable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
