# Empty dependencies file for seqlearn.
# This may be replaced when dependencies are built.
