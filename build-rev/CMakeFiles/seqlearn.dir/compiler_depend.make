# Empty compiler generated dependencies file for seqlearn.
# This may be replaced when dependencies are built.
