file(REMOVE_RECURSE
  "libseqlearn.a"
)
