
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/design.cpp" "CMakeFiles/seqlearn.dir/src/api/design.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/api/design.cpp.o.d"
  "/root/repo/src/api/session.cpp" "CMakeFiles/seqlearn.dir/src/api/session.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/api/session.cpp.o.d"
  "/root/repo/src/atpg/atpg_loop.cpp" "CMakeFiles/seqlearn.dir/src/atpg/atpg_loop.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/atpg/atpg_loop.cpp.o.d"
  "/root/repo/src/atpg/engine.cpp" "CMakeFiles/seqlearn.dir/src/atpg/engine.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/atpg/engine.cpp.o.d"
  "/root/repo/src/atpg/ila.cpp" "CMakeFiles/seqlearn.dir/src/atpg/ila.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/atpg/ila.cpp.o.d"
  "/root/repo/src/atpg/redundancy.cpp" "CMakeFiles/seqlearn.dir/src/atpg/redundancy.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/atpg/redundancy.cpp.o.d"
  "/root/repo/src/core/db_io.cpp" "CMakeFiles/seqlearn.dir/src/core/db_io.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/db_io.cpp.o.d"
  "/root/repo/src/core/equivalence.cpp" "CMakeFiles/seqlearn.dir/src/core/equivalence.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/equivalence.cpp.o.d"
  "/root/repo/src/core/impl_db.cpp" "CMakeFiles/seqlearn.dir/src/core/impl_db.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/impl_db.cpp.o.d"
  "/root/repo/src/core/implication.cpp" "CMakeFiles/seqlearn.dir/src/core/implication.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/implication.cpp.o.d"
  "/root/repo/src/core/invalid_state.cpp" "CMakeFiles/seqlearn.dir/src/core/invalid_state.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/invalid_state.cpp.o.d"
  "/root/repo/src/core/multiple_node.cpp" "CMakeFiles/seqlearn.dir/src/core/multiple_node.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/multiple_node.cpp.o.d"
  "/root/repo/src/core/seq_learn.cpp" "CMakeFiles/seqlearn.dir/src/core/seq_learn.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/seq_learn.cpp.o.d"
  "/root/repo/src/core/single_node.cpp" "CMakeFiles/seqlearn.dir/src/core/single_node.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/single_node.cpp.o.d"
  "/root/repo/src/core/stem_records.cpp" "CMakeFiles/seqlearn.dir/src/core/stem_records.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/stem_records.cpp.o.d"
  "/root/repo/src/core/tie.cpp" "CMakeFiles/seqlearn.dir/src/core/tie.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/core/tie.cpp.o.d"
  "/root/repo/src/exec/pool.cpp" "CMakeFiles/seqlearn.dir/src/exec/pool.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/exec/pool.cpp.o.d"
  "/root/repo/src/fault/collapse.cpp" "CMakeFiles/seqlearn.dir/src/fault/collapse.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/fault/collapse.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "CMakeFiles/seqlearn.dir/src/fault/fault.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/fault/fault.cpp.o.d"
  "/root/repo/src/fault/fault_list.cpp" "CMakeFiles/seqlearn.dir/src/fault/fault_list.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/fault/fault_list.cpp.o.d"
  "/root/repo/src/fault/fault_sim.cpp" "CMakeFiles/seqlearn.dir/src/fault/fault_sim.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/fault/fault_sim.cpp.o.d"
  "/root/repo/src/logic/pattern.cpp" "CMakeFiles/seqlearn.dir/src/logic/pattern.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/logic/pattern.cpp.o.d"
  "/root/repo/src/logic/val3.cpp" "CMakeFiles/seqlearn.dir/src/logic/val3.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/logic/val3.cpp.o.d"
  "/root/repo/src/logic/val5.cpp" "CMakeFiles/seqlearn.dir/src/logic/val5.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/logic/val5.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "CMakeFiles/seqlearn.dir/src/netlist/bench_io.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "CMakeFiles/seqlearn.dir/src/netlist/builder.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/clock_class.cpp" "CMakeFiles/seqlearn.dir/src/netlist/clock_class.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/clock_class.cpp.o.d"
  "/root/repo/src/netlist/diagnostics.cpp" "CMakeFiles/seqlearn.dir/src/netlist/diagnostics.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/diagnostics.cpp.o.d"
  "/root/repo/src/netlist/gate_type.cpp" "CMakeFiles/seqlearn.dir/src/netlist/gate_type.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/gate_type.cpp.o.d"
  "/root/repo/src/netlist/levelize.cpp" "CMakeFiles/seqlearn.dir/src/netlist/levelize.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/levelize.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "CMakeFiles/seqlearn.dir/src/netlist/netlist.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/structure.cpp" "CMakeFiles/seqlearn.dir/src/netlist/structure.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/structure.cpp.o.d"
  "/root/repo/src/netlist/topology.cpp" "CMakeFiles/seqlearn.dir/src/netlist/topology.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/netlist/topology.cpp.o.d"
  "/root/repo/src/sim/batch_frame_sim.cpp" "CMakeFiles/seqlearn.dir/src/sim/batch_frame_sim.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/sim/batch_frame_sim.cpp.o.d"
  "/root/repo/src/sim/comb_engine.cpp" "CMakeFiles/seqlearn.dir/src/sim/comb_engine.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/sim/comb_engine.cpp.o.d"
  "/root/repo/src/sim/frame_sim.cpp" "CMakeFiles/seqlearn.dir/src/sim/frame_sim.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/sim/frame_sim.cpp.o.d"
  "/root/repo/src/sim/parallel_sim.cpp" "CMakeFiles/seqlearn.dir/src/sim/parallel_sim.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/sim/parallel_sim.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/seqlearn.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/seqlearn.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/workload/circuit_gen.cpp" "CMakeFiles/seqlearn.dir/src/workload/circuit_gen.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/circuit_gen.cpp.o.d"
  "/root/repo/src/workload/fires.cpp" "CMakeFiles/seqlearn.dir/src/workload/fires.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/fires.cpp.o.d"
  "/root/repo/src/workload/paper_circuits.cpp" "CMakeFiles/seqlearn.dir/src/workload/paper_circuits.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/paper_circuits.cpp.o.d"
  "/root/repo/src/workload/reachability.cpp" "CMakeFiles/seqlearn.dir/src/workload/reachability.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/reachability.cpp.o.d"
  "/root/repo/src/workload/retime.cpp" "CMakeFiles/seqlearn.dir/src/workload/retime.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/retime.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "CMakeFiles/seqlearn.dir/src/workload/suite.cpp.o" "gcc" "CMakeFiles/seqlearn.dir/src/workload/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
