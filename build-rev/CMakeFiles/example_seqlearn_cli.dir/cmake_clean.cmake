file(REMOVE_RECURSE
  "CMakeFiles/example_seqlearn_cli.dir/examples/seqlearn_cli.cpp.o"
  "CMakeFiles/example_seqlearn_cli.dir/examples/seqlearn_cli.cpp.o.d"
  "example_seqlearn_cli"
  "example_seqlearn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seqlearn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
