# Empty dependencies file for example_seqlearn_cli.
# This may be replaced when dependencies are built.
