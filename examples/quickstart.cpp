// Quickstart: parse a circuit, run sequential learning, inspect the results.
//
//   $ ./quickstart [circuit.bench]
//
// Without an argument it uses the embedded Figure-2 analog from the paper.

#include "core/invalid_state.hpp"
#include "core/seq_learn.hpp"
#include "netlist/bench_io.hpp"
#include "workload/paper_circuits.hpp"

#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
    using namespace seqlearn;

    // 1. Load a circuit: from a .bench file, or the embedded example.
    netlist::Netlist nl;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        nl = netlist::read_bench(in, argv[1]);
    } else {
        nl = workload::fig2_analog();
    }
    const auto counts = nl.counts();
    std::printf("circuit %s: %zu inputs, %zu outputs, %zu FFs, %zu gates\n",
                nl.name().c_str(), counts.inputs, counts.outputs,
                counts.flip_flops + counts.latches, counts.combinational);

    // 2. Run the sequential learner (paper defaults: 50 frames, multiple-
    //    node learning and gate-equivalence assists on).
    core::LearnConfig cfg;
    const core::LearnResult learned = core::learn(nl, cfg);
    std::printf("learned in %.3f s: %zu FF-FF relations, %zu Gate-FF relations, "
                "%zu tie gates (%zu combinational, %zu sequential)\n",
                learned.stats.cpu_seconds, learned.stats.ff_ff_relations,
                learned.stats.gate_ff_relations, learned.ties.count(),
                learned.stats.ties_combinational, learned.stats.ties_sequential);

    // 3. Inspect individual relations. FF-FF relations are invalid-state
    //    relations: each one rules out part of the state space.
    std::printf("\nsequentially learned relations (frame tag >= 1):\n");
    for (const core::Relation& rel : learned.db.relations()) {
        if (rel.frame < 1) continue;
        std::printf("  %-24s (holds from frame %u on)\n", to_string(nl, rel).c_str(),
                    rel.frame);
    }

    // 4. Compile the FF-FF subset into a fast partial-state checker (this is
    //    what the ATPG uses to prune invalid states).
    const core::InvalidStateChecker checker(nl, learned.db);
    std::printf("\ninvalid-state checker holds %zu relations over %zu FFs\n",
                checker.size(), checker.num_ffs());
    if (checker.num_ffs() <= 20 && checker.num_ffs() > 0) {
        std::printf("states ruled invalid by the relations: %llu of %llu\n",
                    static_cast<unsigned long long>(checker.count_invalid_states()),
                    1ULL << checker.num_ffs());
    }
    return 0;
}
