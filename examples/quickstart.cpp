// Quickstart: parse a circuit into a Session, run the paper flow, inspect.
//
//   $ ./quickstart [circuit.bench]
//
// Without an argument it uses the embedded Figure-2 analog from the paper.

#include "api/session.hpp"
#include "core/invalid_state.hpp"
#include "netlist/bench_io.hpp"
#include "workload/paper_circuits.hpp"

#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
    using namespace seqlearn;

    // 1. Load a circuit: from a .bench file, or the embedded example.
    netlist::Netlist nl;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        nl = netlist::read_bench(in, argv[1]);
    } else {
        nl = workload::fig2_analog();
    }

    // 2. A Session owns the netlist and the one shared CSR topology every
    //    stage engine reads; the whole flow hangs off its methods.
    api::Session session(std::move(nl));
    const auto counts = session.netlist().counts();
    std::printf("circuit %s: %zu inputs, %zu outputs, %zu FFs, %zu gates\n",
                session.netlist().name().c_str(), counts.inputs, counts.outputs,
                counts.flip_flops + counts.latches, counts.combinational);

    // 3. Run the sequential learner (paper defaults: 50 frames, multiple-
    //    node learning and gate-equivalence assists on).
    const core::LearnResult& learned = session.learn();
    std::printf("learned in %.3f s: %zu FF-FF relations, %zu Gate-FF relations, "
                "%zu tie gates (%zu combinational, %zu sequential)\n",
                learned.stats.cpu_seconds, learned.stats.ff_ff_relations,
                learned.stats.gate_ff_relations, learned.ties.count(),
                learned.stats.ties_combinational, learned.stats.ties_sequential);

    // 4. Inspect individual relations. FF-FF relations are invalid-state
    //    relations: each one rules out part of the state space.
    std::printf("\nsequentially learned relations (frame tag >= 1):\n");
    for (const core::Relation& rel : learned.db.relations()) {
        if (rel.frame < 1) continue;
        std::printf("  %-24s (holds from frame %u on)\n",
                    to_string(session.netlist(), rel).c_str(), rel.frame);
    }

    // 5. Compile the FF-FF subset into a fast partial-state checker (this is
    //    what the ATPG uses to prune invalid states).
    const core::InvalidStateChecker checker(session.netlist(), learned.db);
    std::printf("\ninvalid-state checker holds %zu relations over %zu FFs\n",
                checker.size(), checker.num_ffs());
    if (checker.num_ffs() <= 20 && checker.num_ffs() > 0) {
        std::printf("states ruled invalid by the relations: %llu of %llu\n",
                    static_cast<unsigned long long>(checker.count_invalid_states()),
                    1ULL << checker.num_ffs());
    }

    // 6. Generate tests with the learned data and validate them with the
    //    independent fault simulator — the rest of the paper flow.
    atpg::AtpgConfig acfg;
    acfg.mode = atpg::LearnMode::ForbiddenValue;
    acfg.backtrack_limit = 100;
    const api::AtpgReport& report = session.atpg(acfg);
    const api::FaultSimReport check = session.fault_sim();
    std::printf("\nATPG: %zu/%zu faults detected (%zu untestable) with %zu sequences; "
                "fault-sim revalidation detects %zu\n",
                report.list.counts().detected, report.list.counts().total,
                report.list.counts().untestable, report.outcome.tests.size(),
                check.detected);
    return 0;
}
