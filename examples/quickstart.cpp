// Quickstart: load a circuit into a shared Design, run the paper flow
// through a Session, inspect.
//
//   $ ./quickstart [circuit.bench]
//
// Without an argument it uses the embedded Figure-2 analog from the paper.

#include "api/session.hpp"
#include "core/invalid_state.hpp"
#include "workload/paper_circuits.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace seqlearn;

    // 1. Load a circuit into an immutable Design: from a .bench file via
    //    the streaming reader (which reports line-numbered diagnostics
    //    instead of dying on the first problem), or the embedded example.
    api::DesignPtr design;
    if (argc > 1) {
        const api::DesignLoad load = api::load_design(argv[1]);
        if (!load.diagnostics.empty())
            std::fputs(load.diagnostics.to_string(argv[1]).c_str(), stderr);
        if (!load.ok()) return 1;
        design = load.design;
    } else {
        design = api::DesignBuilder(workload::fig2_analog()).build();
    }

    // 2. The Design owns the netlist and the one shared CSR topology every
    //    stage engine reads; a Session adds the mutable per-run state and
    //    the whole flow hangs off its methods. (Any number of Sessions
    //    could share `design` concurrently.)
    api::Session session(design);
    const auto counts = session.netlist().counts();
    std::printf("circuit %s: %zu inputs, %zu outputs, %zu FFs, %zu gates\n",
                session.netlist().name().c_str(), counts.inputs, counts.outputs,
                counts.flip_flops + counts.latches, counts.combinational);

    // 3. Run the sequential learner (paper defaults: 50 frames, multiple-
    //    node learning and gate-equivalence assists on).
    const core::LearnResult& learned = session.learn();
    std::printf("learned in %.3f s: %zu FF-FF relations, %zu Gate-FF relations, "
                "%zu tie gates (%zu combinational, %zu sequential)\n",
                learned.stats.cpu_seconds, learned.stats.ff_ff_relations,
                learned.stats.gate_ff_relations, learned.ties.count(),
                learned.stats.ties_combinational, learned.stats.ties_sequential);

    // 4. Inspect individual relations. FF-FF relations are invalid-state
    //    relations: each one rules out part of the state space.
    std::printf("\nsequentially learned relations (frame tag >= 1):\n");
    for (const core::Relation& rel : learned.db.relations()) {
        if (rel.frame < 1) continue;
        std::printf("  %-24s (holds from frame %u on)\n",
                    to_string(session.netlist(), rel).c_str(), rel.frame);
    }

    // 5. Compile the FF-FF subset into a fast partial-state checker (this is
    //    what the ATPG uses to prune invalid states).
    const core::InvalidStateChecker checker(session.netlist(), learned.db);
    std::printf("\ninvalid-state checker holds %zu relations over %zu FFs\n",
                checker.size(), checker.num_ffs());
    if (checker.num_ffs() <= 20 && checker.num_ffs() > 0) {
        std::printf("states ruled invalid by the relations: %llu of %llu\n",
                    static_cast<unsigned long long>(checker.count_invalid_states()),
                    1ULL << checker.num_ffs());
    }

    // 6. Generate tests with the learned data and validate them with the
    //    independent fault simulator — the rest of the paper flow.
    atpg::AtpgConfig acfg;
    acfg.mode = atpg::LearnMode::ForbiddenValue;
    acfg.backtrack_limit = 100;
    const api::AtpgReport& report = session.atpg(acfg);
    const api::FaultSimReport check = session.fault_sim();
    std::printf("\nATPG: %zu/%zu faults detected (%zu untestable) with %zu sequences; "
                "fault-sim revalidation detects %zu\n",
                report.list.counts().detected, report.list.counts().total,
                report.list.counts().untestable, report.outcome.tests.size(),
                check.detected);
    return 0;
}
