// seqlearn_cli — drive the library from the command line on .bench files.
//
//   seqlearn_cli stats  <circuit.bench | suite:NAME>
//   seqlearn_cli learn  <circuit.bench | suite:NAME> [--frames N] [--threads N]
//                       [--batch-lanes N] [--save-db FILE] [--out FILE]
//   seqlearn_cli atpg   <circuit.bench | suite:NAME> [--mode none|forbidden|known]
//                       [--backtracks N] [--load-db FILE] [--save-db FILE]
//                       [--random N] [--progress] [--threads N]
//
// "suite:NAME" loads one of the built-in experiment circuits (e.g.
// suite:rt510a); anything else is parsed as an ISCAS-89 .bench file. All
// commands run through an api::Session, so the circuit is levelized once
// and learned data moves through Session::save_db / load_db. (--out and
// --learned are deprecated aliases of --save-db and --load-db.)
//
// --threads N runs every stage on N workers (default: one per hardware
// thread; results are bit-identical at any thread count). --threads 1
// forces the serial paths. --batch-lanes N sets the 64-lane bit-parallel
// stem batching of the learning pass (default 64; 0 forces the scalar
// one-run-per-injection path; results are bit-identical at any setting).

#include "api/session.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/structure.hpp"
#include "workload/suite.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

namespace {

using namespace seqlearn;

netlist::Netlist load_circuit(const std::string& spec) {
    if (spec.rfind("suite:", 0) == 0) return workload::suite_circuit(spec.substr(6));
    std::ifstream in(spec);
    if (!in) throw std::runtime_error("cannot open " + spec);
    return netlist::read_bench(in, spec);
}

const char* flag_value(int argc, char** argv, const char* name) {
    for (int i = 0; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    }
    return nullptr;
}

bool flag_present(int argc, char** argv, const char* name) {
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return true;
    }
    return false;
}

int cmd_stats(api::Session& session) {
    const api::SessionStats s = session.stats();
    std::printf("circuit:      %s\n", session.netlist().name().c_str());
    std::printf("inputs:       %zu\n", s.circuit.inputs);
    std::printf("outputs:      %zu\n", s.circuit.outputs);
    std::printf("flip-flops:   %zu\n", s.circuit.flip_flops);
    std::printf("latches:      %zu\n", s.circuit.latches);
    std::printf("gates:        %zu\n", s.circuit.combinational);
    std::printf("fanout stems: %zu\n", s.stems);
    std::printf("levels:       %zu\n", s.levels);
    std::printf("clock classes:%zu\n", s.clock_classes);
    std::printf("seq depth:    %zu (capped at 16)\n",
                netlist::sequential_depth(session.topology(), 16));
    std::printf("faults:       %zu collapsed / %zu total\n", s.collapsed_faults,
                session.collapsed_faults().universe_size());
    return 0;
}

int cmd_learn(api::Session& session, int argc, char** argv) {
    core::LearnConfig cfg;
    if (const char* f = flag_value(argc, argv, "--frames"))
        cfg.max_frames = static_cast<std::uint32_t>(std::atoi(f));
    if (const char* b = flag_value(argc, argv, "--batch-lanes"))
        cfg.batch_lanes = static_cast<std::size_t>(std::atoi(b));
    const core::LearnResult& r = session.learn(cfg);
    std::printf("learned in %.3f s over %zu stems:\n", r.stats.cpu_seconds,
                r.stats.stems_processed);
    std::printf("  FF-FF relations:   %zu\n", r.stats.ff_ff_relations);
    std::printf("  Gate-FF relations: %zu\n", r.stats.gate_ff_relations);
    std::printf("  combinational:     %zu\n", r.stats.comb_relations);
    std::printf("  tie gates:         %zu (%zu comb, %zu seq)\n", r.ties.count(),
                r.stats.ties_combinational, r.stats.ties_sequential);
    std::printf("  equivalence classes: %zu\n", r.stats.equiv_classes);
    const char* path = flag_value(argc, argv, "--save-db");
    if (path == nullptr) path = flag_value(argc, argv, "--out");
    if (path != nullptr) {
        session.save_db(path);
        std::printf("saved learned data to %s\n", path);
    }
    return 0;
}

int cmd_atpg(api::Session& session, int argc, char** argv) {
    atpg::AtpgConfig cfg;
    cfg.backtrack_limit = 30;
    if (const char* bt = flag_value(argc, argv, "--backtracks"))
        cfg.backtrack_limit = static_cast<std::uint32_t>(std::atoi(bt));
    if (const char* r = flag_value(argc, argv, "--random"))
        cfg.random_sequences = static_cast<std::size_t>(std::atoi(r));

    const char* mode = flag_value(argc, argv, "--mode");
    const std::string mode_s = mode ? mode : "forbidden";
    if (mode_s != "none") {
        cfg.mode = mode_s == "known" ? atpg::LearnMode::KnownValue
                                     : atpg::LearnMode::ForbiddenValue;
        const char* db_path = flag_value(argc, argv, "--load-db");
        if (db_path == nullptr) db_path = flag_value(argc, argv, "--learned");
        if (const char* path = db_path) {
            const std::size_t skipped = session.load_db(path);
            std::printf("loaded learned data (%zu relations, %zu ties, %zu skipped)\n",
                        session.learn().db.size(), session.learn().ties.count(), skipped);
        } else {
            const core::LearnResult& learned = session.learn();
            std::printf("learned on the fly: %zu relations, %zu ties\n",
                        learned.db.size(), learned.ties.count());
        }
        cfg.count_c_cycle_redundant = true;
    }

    const api::AtpgReport& report = session.atpg(cfg);
    const auto c = report.list.counts();
    std::printf("mode=%s backtracks=%u\n", mode_s.c_str(), cfg.backtrack_limit);
    std::printf("  detected:   %zu (of %zu)\n", c.detected, c.total);
    std::printf("  untestable: %zu\n", c.untestable);
    std::printf("  aborted:    %zu\n", c.aborted);
    std::printf("  coverage:   %.2f%% fault, %.2f%% test\n",
                100.0 * report.list.fault_coverage(),
                100.0 * report.list.test_coverage());
    std::printf("  sequences:  %zu (bootstrap detected %zu)\n",
                report.outcome.tests.size(), report.outcome.detected_by_bootstrap);
    std::printf("  cpu:        %.2f s\n", report.outcome.cpu_seconds);
    if (const char* path = flag_value(argc, argv, "--save-db")) {
        session.save_db(path);
        std::printf("saved learned data to %s\n", path);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s stats|learn|atpg <circuit.bench|suite:NAME> [options]\n",
                     argv[0]);
        return 2;
    }
    try {
        api::SessionConfig scfg;
        if (const char* t = flag_value(argc, argv, "--threads"))
            scfg.threads = static_cast<unsigned>(std::atoi(t));
        const bool progress = flag_present(argc, argv, "--progress");
        if (progress) {
            // One \r-rewritten line per stage; the line is terminated on a
            // stage change and once more when the command finishes (no
            // stage knows up front how many of its units will be skipped).
            scfg.progress = [last = std::optional<api::Stage>()](
                                const api::Progress& p) mutable {
                const char* stage = p.stage == api::Stage::Learn     ? "learn"
                                    : p.stage == api::Stage::Atpg    ? "atpg"
                                                                     : "fault-sim";
                if (last && *last != p.stage) std::fprintf(stderr, "\n");
                last = p.stage;
                std::fprintf(stderr, "\r%-9s %zu/%zu", stage, p.done, p.total);
                return true;  // observation only; never cancels
            };
        }
        api::Session session(load_circuit(argv[2]), std::move(scfg));
        const std::string cmd = argv[1];
        int rc = 2;
        if (cmd == "stats") rc = cmd_stats(session);
        else if (cmd == "learn") rc = cmd_learn(session, argc, argv);
        else if (cmd == "atpg") rc = cmd_atpg(session, argc, argv);
        else std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
        if (progress) std::fprintf(stderr, "\n");
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
