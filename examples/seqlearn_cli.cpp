// seqlearn_cli — drive the library from the command line on .bench files.
//
//   seqlearn_cli stats  <circuit.bench | suite:NAME> [--json]
//   seqlearn_cli learn  <circuit.bench | suite:NAME> [--frames N] [--threads N]
//                       [--batch-lanes N] [--limit-stems N] [--deadline-ms N]
//                       [--sat-frames K] [--checkpoint FILE] [--resume FILE]
//                       [--save-db FILE] [--db-format text|binary] [--out FILE]
//                       [--json]
//   seqlearn_cli atpg   <circuit.bench | suite:NAME> [--mode none|forbidden|known]
//                       [--backend framesim|sat|auto] [--sat-frames K]
//                       [--backtracks N] [--load-db FILE] [--save-db FILE]
//                       [--db-format text|binary] [--random N] [--deadline-ms N]
//                       [--order index|level|scoap_hard_first|random]
//                       [--order-seed N] [--guidance none|scoap]
//                       [--rand-warmup N] [--fill x|zero|one|random]
//                       [--progress] [--threads N] [--json]
//   seqlearn_cli gen    <out.bench | -> [--gates N] [--ffs N] [--inputs N]
//                       [--outputs N] [--seed N] [--name NAME]
//   seqlearn_cli serve  [--port N] [--max-sessions N] [--cache-mb N]
//                       [--threads N] [--drain-ms N] [--max-frame-mb N]
//
// serve runs the ATPG-as-a-service daemon: newline-framed JSON requests
// (load / learn / atpg / fault_sim / stats / cancel / shutdown) over a
// loopback TCP socket, fronting a content-addressed Design cache with
// attached learned snapshots — see README "Serving". It prints one JSON
// line {"serving": {"port": N}} on stdout once listening (scripts wait on
// it), then serves until SIGINT/SIGTERM or a protocol shutdown request;
// either way it drains in-flight requests under --drain-ms (they complete
// with Cancelled outcomes, not dropped connections) and exits 0.
//
// "suite:NAME" loads one of the built-in experiment circuits (e.g.
// suite:rt510a); anything else is parsed as an ISCAS-89 .bench file through
// the streaming reader. Parse warnings (duplicate definitions, pragmas for
// unknown elements, ...) are reported on stderr instead of being silently
// dropped. All commands run through an api::Session over an api::Design, so
// the circuit is levelized once and learned data moves through
// Session::save_db / load_db. (--out and --learned are deprecated aliases
// of --save-db and --load-db.) --db-format picks the --save-db encoding:
// "text" (default) is the archival name-keyed format, "binary" the
// fast-loading id-keyed one, digest-bound to this exact netlist; --load-db
// accepts either, sniffed by magic.
//
// Exit codes, one per failure class (scripts branch on them):
//   0  success (stage ran to completion)
//   2  usage error (bad command line)
//   3  input parse errors (all reported, line-numbered, before exiting)
//   4  budget exhausted (deadline / item limit / memory cap; partial
//      results were produced and saved where requested)
//   5  stage cancelled
//   6  internal failure (captured exception; state was not corrupted)
//
// --json emits one machine-readable JSON object on stdout — Session::stats()
// plus the parse diagnostics and per-stage "outcome" objects — and silences
// the human-readable report; failures emit an "error" object. --limit-stems
// N budgets the learning pass to its first N work items (deterministic
// LimitReached outcome), which is how the CI large-circuit smoke keeps a
// 100k-gate learn bounded; --deadline-ms N puts a wall-clock budget on each
// stage. --checkpoint FILE saves a budget-stopped learn for a later
// --resume FILE, which continues it to the same final result an unbudgeted
// run produces. --threads N runs every stage on N workers (default: one per
// hardware thread; results are bit-identical at any thread count).
// --batch-lanes N sets the 64-lane bit-parallel stem batching of the
// learning pass (default 64; 0 forces the scalar path; results are
// bit-identical at any setting). gen writes a synthetic ISCAS-like circuit
// via workload::circuit_gen for scaling experiments.
//
// --backend picks the ATPG engine per README "Backends": framesim (default,
// the paper's flow), sat (every fault through the CNF timeframe-expansion
// backend) or auto (deterministic per-fault routing; frame-sim aborts are
// re-dispatched to SAT). --sat-frames K bounds the CNF unrolling (0 = the
// deepest frame window); on learn it enables SAT learn mode, mining
// implications at frame K-1 with failed-literal probes. With --json, a
// SAT-enabled atpg run adds an "untestable" section listing every proved
// fault with its proof kind and the frame bound used.
//
// Guidance knobs (README "Guidance & scenarios"): --order permutes the
// deterministic target schedule (index = historical order, level = shallow
// lines first, scoap_hard_first = descending SCOAP hardness, random =
// shuffle from --order-seed); --guidance scoap turns on SCOAP-guided
// backtrace + D-frontier selection (none is bit-identical to the goldens);
// --rand-warmup N fault-simulates N config-seeded random sequences before
// deterministic ATPG; --fill enables static compaction of the generated
// patterns (merges re-verified by fault simulation) and fills leftover don't
// cares with x, zero, one or random. Every combination stays bit-identical
// across --threads settings. With --json the atpg section gains a
// "patterns" object (count, total frames, compaction ratio) plus the
// order/guidance/warmup/fill provenance.

#include "api/session.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/structure.hpp"
#include "server/server.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/suite.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

namespace {

using namespace seqlearn;

const char* flag_value(int argc, char** argv, const char* name) {
    for (int i = 0; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    }
    return nullptr;
}

bool flag_present(int argc, char** argv, const char* name) {
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return true;
    }
    return false;
}

// One exit code per failure class (see the header comment).
int exit_code_for(const exec::RunOutcome& o) {
    switch (o.status) {
        case exec::RunStatus::Completed: return 0;
        case exec::RunStatus::DeadlineExceeded:
        case exec::RunStatus::LimitReached: return 4;
        case exec::RunStatus::Cancelled: return 5;
        case exec::RunStatus::Failed: return 6;
    }
    return 6;
}

// --- JSON helpers (small and dependency-free, like the bench emitter) ----

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string outcome_json(const exec::RunOutcome& o) {
    std::string out = "{\"status\": \"";
    out += o.name();
    out += "\"";
    if (!o.diagnostic.empty())
        out += ", \"diagnostic\": \"" + json_escape(o.diagnostic) + "\"";
    out += "}";
    return out;
}

std::string diagnostics_json(const netlist::Diagnostics& diags) {
    std::string out = "[";
    bool first = true;
    for (const netlist::Diagnostic& d : diags.records()) {
        if (!first) out += ", ";
        first = false;
        out += "{\"severity\": \"";
        out += d.severity == netlist::Severity::Error ? "error" : "warning";
        out += "\", \"line\": " + std::to_string(d.line);
        out += ", \"message\": \"" + json_escape(d.message) + "\"}";
    }
    out += "]";
    return out;
}

const char* proof_name(fault::UntestableProof p) {
    switch (p) {
        case fault::UntestableProof::None: return "none";
        case fault::UntestableProof::TieGate: return "tie";
        case fault::UntestableProof::Combinational: return "combinational";
        case fault::UntestableProof::Structural: return "structural";
        case fault::UntestableProof::BoundedCnf: return "bounded_cnf";
    }
    return "?";
}

/// Per-run strategy provenance for the atpg JSON section: which ordering /
/// guidance / warmup / fill configuration produced the patterns, plus the
/// warmup counters from the outcome.
struct AtpgProvenance {
    const atpg::AtpgConfig* cfg = nullptr;
    const atpg::AtpgOutcome* outcome = nullptr;
};

/// One JSON document: stats() for everything computed so far plus the parse
/// diagnostics — the machine-readable twin of the human reports below.
/// `report` (when non-null and the campaign used the CNF backend) feeds the
/// "untestable" provenance section: one entry per proved fault. `prov`
/// (when non-null) adds the strategy provenance and warmup counters.
void print_json(api::Session& session, const netlist::Diagnostics& diags,
                const api::AtpgReport* report = nullptr,
                const AtpgProvenance* prov = nullptr) {
    const api::SessionStats s = session.stats();
    std::string out = "{\n";
    out += "  \"circuit\": \"" + json_escape(session.netlist().name()) + "\",\n";
    out += "  \"diagnostics\": " + diagnostics_json(diags) + ",\n";
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  \"inputs\": %zu, \"outputs\": %zu, \"flip_flops\": %zu, "
                  "\"latches\": %zu, \"gates\": %zu,\n"
                  "  \"stems\": %zu, \"levels\": %zu, \"clock_classes\": %zu, "
                  "\"collapsed_faults\": %zu,\n",
                  s.circuit.inputs, s.circuit.outputs, s.circuit.flip_flops,
                  s.circuit.latches, s.circuit.combinational, s.stems, s.levels,
                  s.clock_classes, s.collapsed_faults);
    out += buf;
    out += std::string("  \"learned\": ") + (s.learned ? "true" : "false");
    if (s.learned) {
        std::snprintf(buf, sizeof buf,
                      ",\n  \"learn\": {\"relations\": %zu, \"ties\": %zu, "
                      "\"ff_ff_relations\": %zu, \"gate_ff_relations\": %zu, "
                      "\"comb_relations\": %zu, \"equiv_classes\": %zu, "
                      "\"multi_relations\": %zu, \"stems_processed\": %zu, "
                      "\"sat_probes\": %zu, \"sat_ties\": %zu, \"sat_relations\": %zu, "
                      "\"cancelled\": %s, \"cpu_seconds\": %.3f}",
                      s.relations, s.ties, s.learn.ff_ff_relations,
                      s.learn.gate_ff_relations, s.learn.comb_relations,
                      s.learn.equiv_classes, s.learn.multi_relations,
                      s.learn.stems_processed, s.learn.sat_probes, s.learn.sat_ties,
                      s.learn.sat_relations, s.learn.cancelled ? "true" : "false",
                      s.learn.cpu_seconds);
        out += buf;
        // Trim the closing brace and append the structured outcome.
        out.pop_back();
        out += ", \"outcome\": " + outcome_json(s.learn_outcome) + "}";
    }
    if (s.atpg_run) {
        std::snprintf(buf, sizeof buf,
                      ",\n  \"atpg\": {\"total\": %zu, \"detected\": %zu, "
                      "\"untestable\": %zu, \"aborted\": %zu, \"undetected\": %zu, "
                      "\"test_coverage\": %.4f, \"tests\": %zu}",
                      s.faults.total, s.faults.detected, s.faults.untestable,
                      s.faults.aborted, s.faults.undetected, s.test_coverage, s.tests);
        out += buf;
        out.pop_back();
        {
            // Pattern shape: count mirrors "tests"; compaction_ratio is
            // patterns-out / patterns-in (1.0 when compaction never ran).
            const double ratio =
                s.compaction_before > 0 ? static_cast<double>(s.compaction_after) /
                                              static_cast<double>(s.compaction_before)
                                        : 1.0;
            std::snprintf(buf, sizeof buf,
                          ", \"patterns\": {\"count\": %zu, \"total_frames\": %zu, "
                          "\"compaction_before\": %zu, \"compaction_after\": %zu, "
                          "\"compaction_ratio\": %.4f}",
                          s.tests, s.pattern_frames, s.compaction_before,
                          s.compaction_after, ratio);
            out += buf;
        }
        if (prov != nullptr && prov->cfg != nullptr) {
            std::snprintf(buf, sizeof buf,
                          ", \"order\": \"%s\", \"guidance\": \"%s\", \"fill\": \"%s\", "
                          "\"compact\": %s, \"rand_warmup\": %zu",
                          std::string(guide::order_name(prov->cfg->order)).c_str(),
                          std::string(guide::guidance_name(prov->cfg->guidance)).c_str(),
                          std::string(guide::fill_name(prov->cfg->fill)).c_str(),
                          prov->cfg->compact ? "true" : "false", prov->cfg->rand_warmup);
            out += buf;
        }
        if (prov != nullptr && prov->outcome != nullptr) {
            std::snprintf(buf, sizeof buf,
                          ", \"warmup_detected\": %zu, \"warmup_sequences\": %zu",
                          prov->outcome->detected_by_warmup,
                          prov->outcome->warmup_sequences);
            out += buf;
        }
        if (report != nullptr) {
            const atpg::AtpgOutcome& o = report->outcome;
            std::snprintf(buf, sizeof buf,
                          ", \"sat_targeted\": %zu, \"sat_witnesses\": %zu, "
                          "\"untestable_by_cnf\": %zu",
                          o.sat_targeted, o.sat_witnesses, o.untestable_by_cnf);
            out += buf;
            out += ", \"untestable\": [";
            bool first = true;
            for (const atpg::AtpgOutcome::UntestableRecord& rec : o.untestable_records) {
                if (!first) out += ", ";
                first = false;
                out += "{\"fault\": \"" +
                       json_escape(fault::to_string(session.netlist(),
                                                    report->list.fault(rec.fault_index))) +
                       "\", \"proof\": \"";
                out += proof_name(rec.proof);
                out += "\", \"frames\": " + std::to_string(rec.frames) + "}";
            }
            out += "]";
        }
        out += ", \"outcome\": " + outcome_json(s.atpg_outcome) + "}";
    }
    std::snprintf(buf, sizeof buf,
                  ",\n  \"memory\": {\"netlist_bytes\": %zu, \"topology_bytes\": %zu, "
                  "\"faults_bytes\": %zu, \"design_learned_bytes\": %zu, "
                  "\"learned_bytes\": %zu, \"scratch_bytes\": %zu, \"total_bytes\": %zu}",
                  s.memory.design.netlist_bytes, s.memory.design.topology_bytes,
                  s.memory.design.faults_bytes, s.memory.design.learned_bytes,
                  s.memory.learned_bytes, s.memory.scratch_bytes, s.memory.total());
    out += buf;
    out += "\n}\n";
    std::fputs(out.c_str(), stdout);
}

// --- circuit loading ------------------------------------------------------

struct LoadedCircuit {
    api::DesignPtr design;  ///< null when parsing failed
    netlist::Diagnostics diagnostics;
    std::string source;  ///< what to prefix diagnostics with
};

LoadedCircuit load_circuit(const std::string& spec) {
    LoadedCircuit out;
    out.source = spec;
    if (spec.rfind("suite:", 0) == 0) {
        out.design = api::DesignBuilder(workload::suite_circuit(spec.substr(6))).build();
        return out;
    }
    api::DesignLoad load = api::load_design(spec);
    out.diagnostics = std::move(load.diagnostics);
    out.design = std::move(load.design);
    return out;
}

// --- commands -------------------------------------------------------------

int cmd_stats(api::Session& session, const netlist::Diagnostics& diags, bool json) {
    if (json) {
        print_json(session, diags);
        return 0;
    }
    const api::SessionStats s = session.stats();
    std::printf("circuit:      %s\n", session.netlist().name().c_str());
    std::printf("inputs:       %zu\n", s.circuit.inputs);
    std::printf("outputs:      %zu\n", s.circuit.outputs);
    std::printf("flip-flops:   %zu\n", s.circuit.flip_flops);
    std::printf("latches:      %zu\n", s.circuit.latches);
    std::printf("gates:        %zu\n", s.circuit.combinational);
    std::printf("fanout stems: %zu\n", s.stems);
    std::printf("levels:       %zu\n", s.levels);
    std::printf("clock classes:%zu\n", s.clock_classes);
    std::printf("seq depth:    %zu (capped at 16)\n",
                netlist::sequential_depth(session.topology(), 16));
    std::printf("faults:       %zu collapsed / %zu total\n", s.collapsed_faults,
                session.collapsed_faults().universe_size());
    return 0;
}

// --save-db honours --db-format {text|binary}: text (default) is the
// archival name-keyed format, binary the fast-loading id-keyed one (bound to
// this exact netlist by digest). Loading sniffs the format automatically.
int save_db_flagged(api::Session& session, const char* path, int argc, char** argv,
                    bool json) {
    const char* fmt = flag_value(argc, argv, "--db-format");
    const std::string fmt_s = fmt ? fmt : "text";
    if (fmt_s == "binary") {
        session.save_db_binary(path);
    } else if (fmt_s == "text") {
        session.save_db(path);
    } else {
        std::fprintf(stderr, "unknown --db-format '%s' (want text or binary)\n",
                     fmt_s.c_str());
        return 2;
    }
    if (!json) std::printf("saved learned data to %s (%s)\n", path, fmt_s.c_str());
    return 0;
}

int cmd_learn(api::Session& session, const netlist::Diagnostics& diags, int argc,
              char** argv, bool json) {
    core::LearnConfig cfg;
    if (const char* f = flag_value(argc, argv, "--frames"))
        cfg.max_frames = static_cast<std::uint32_t>(std::atoi(f));
    if (const char* b = flag_value(argc, argv, "--batch-lanes"))
        cfg.batch_lanes = static_cast<std::size_t>(std::atoi(b));
    if (const char* l = flag_value(argc, argv, "--limit-stems")) {
        // Budgeted pass: stop deterministically after N work items
        // (LimitReached; partial results are kept and stats.cancelled is
        // set) — bounds learn time on huge circuits without a special-cased
        // fast path.
        cfg.budget.max_items = static_cast<std::size_t>(std::atoll(l));
    }
    if (const char* d = flag_value(argc, argv, "--deadline-ms"))
        cfg.budget.deadline = std::chrono::milliseconds(std::atoll(d));
    if (const char* k = flag_value(argc, argv, "--sat-frames"))
        cfg.sat_frames = static_cast<std::uint32_t>(std::atoi(k));

    const core::LearnResult& r = [&]() -> const core::LearnResult& {
        if (const char* resume = flag_value(argc, argv, "--resume"))
            return session.resume_learn(std::string(resume));
        return session.learn(cfg);
    }();
    if (json) {
        print_json(session, diags);
    } else {
        std::printf("learned in %.3f s over %zu stems%s:\n", r.stats.cpu_seconds,
                    r.stats.stems_processed,
                    r.outcome.ok() ? ""
                                   : (" (stopped: " + std::string(r.outcome.name()) +
                                      (r.outcome.diagnostic.empty()
                                           ? ""
                                           : ", " + r.outcome.diagnostic) +
                                      ")")
                                         .c_str());
        std::printf("  FF-FF relations:   %zu\n", r.stats.ff_ff_relations);
        std::printf("  Gate-FF relations: %zu\n", r.stats.gate_ff_relations);
        std::printf("  combinational:     %zu\n", r.stats.comb_relations);
        std::printf("  tie gates:         %zu (%zu comb, %zu seq)\n", r.ties.count(),
                    r.stats.ties_combinational, r.stats.ties_sequential);
        std::printf("  equivalence classes: %zu\n", r.stats.equiv_classes);
        if (r.stats.sat_probes > 0)
            std::printf("  SAT learn:         %zu probes, %zu ties, %zu relations\n",
                        r.stats.sat_probes, r.stats.sat_ties, r.stats.sat_relations);
    }
    if (const char* ckpt = flag_value(argc, argv, "--checkpoint")) {
        if (r.cursor.valid) {
            session.save_checkpoint(std::string(ckpt));
            if (!json) std::printf("saved resume checkpoint to %s\n", ckpt);
        } else if (!r.outcome.ok() && !json) {
            std::printf("no checkpoint saved: stop point not resumable (%s)\n",
                        r.outcome.name());
        }
    }
    const char* path = flag_value(argc, argv, "--save-db");
    if (path == nullptr) path = flag_value(argc, argv, "--out");
    if (path != nullptr) {
        const int rc = save_db_flagged(session, path, argc, argv, json);
        if (rc != 0) return rc;
    }
    return exit_code_for(r.outcome);
}

int cmd_atpg(api::Session& session, const netlist::Diagnostics& diags, int argc,
             char** argv, bool json) {
    atpg::AtpgConfig cfg;
    cfg.backtrack_limit = 30;
    if (const char* bt = flag_value(argc, argv, "--backtracks"))
        cfg.backtrack_limit = static_cast<std::uint32_t>(std::atoi(bt));
    if (const char* r = flag_value(argc, argv, "--random"))
        cfg.random_sequences = static_cast<std::size_t>(std::atoi(r));
    if (const char* d = flag_value(argc, argv, "--deadline-ms"))
        cfg.budget.deadline = std::chrono::milliseconds(std::atoll(d));
    if (const char* b = flag_value(argc, argv, "--backend")) {
        if (!cnf::parse_backend(b, cfg.backend)) {
            std::fprintf(stderr, "unknown --backend '%s' (want framesim, sat or auto)\n",
                         b);
            return 2;
        }
    }
    if (const char* k = flag_value(argc, argv, "--sat-frames"))
        cfg.sat_frames = static_cast<std::uint32_t>(std::atoi(k));
    if (const char* o = flag_value(argc, argv, "--order")) {
        const auto parsed = guide::parse_order(o);
        if (!parsed) {
            std::fprintf(stderr,
                         "unknown --order '%s' (want index, level, scoap_hard_first or "
                         "random)\n",
                         o);
            return 2;
        }
        cfg.order = *parsed;
    }
    if (const char* s = flag_value(argc, argv, "--order-seed"))
        cfg.order_seed = static_cast<std::uint64_t>(std::atoll(s));
    if (const char* g = flag_value(argc, argv, "--guidance")) {
        const auto parsed = guide::parse_guidance(g);
        if (!parsed) {
            std::fprintf(stderr, "unknown --guidance '%s' (want none or scoap)\n", g);
            return 2;
        }
        cfg.guidance = *parsed;
    }
    if (const char* w = flag_value(argc, argv, "--rand-warmup"))
        cfg.rand_warmup = static_cast<std::size_t>(std::atoll(w));
    if (const char* f = flag_value(argc, argv, "--fill")) {
        // --fill turns on the static-compaction pass; the mode says how the
        // surviving don't-care positions are filled afterwards.
        const auto parsed = guide::parse_fill(f);
        if (!parsed) {
            std::fprintf(stderr, "unknown --fill '%s' (want x, zero, one or random)\n", f);
            return 2;
        }
        cfg.compact = true;
        cfg.fill = *parsed;
    }

    const char* mode = flag_value(argc, argv, "--mode");
    const std::string mode_s = mode ? mode : "forbidden";
    if (mode_s != "none") {
        cfg.mode = mode_s == "known" ? atpg::LearnMode::KnownValue
                                     : atpg::LearnMode::ForbiddenValue;
        const char* db_path = flag_value(argc, argv, "--load-db");
        if (db_path == nullptr) db_path = flag_value(argc, argv, "--learned");
        if (const char* path = db_path) {
            const std::size_t skipped = session.load_db(path);
            if (!json)
                std::printf("loaded learned data (%zu relations, %zu ties, %zu skipped)\n",
                            session.learn().db.size(), session.learn().ties.count(),
                            skipped);
        } else if (!json) {
            const core::LearnResult& learned = session.learn();
            std::printf("learned on the fly: %zu relations, %zu ties\n",
                        learned.db.size(), learned.ties.count());
        }
        cfg.count_c_cycle_redundant = true;
    }

    const api::AtpgReport& report = session.atpg(cfg);
    if (const char* path = flag_value(argc, argv, "--save-db")) {
        const int rc = save_db_flagged(session, path, argc, argv, json);
        if (rc != 0) return rc;
    }
    if (json) {
        const AtpgProvenance prov{&cfg, &report.outcome};
        print_json(session, diags,
                   cfg.backend != cnf::Backend::FrameSim ? &report : nullptr, &prov);
        return exit_code_for(report.outcome.run);
    }
    const auto c = report.list.counts();
    std::printf("mode=%s backend=%s backtracks=%u\n", mode_s.c_str(),
                cnf::backend_name(cfg.backend), cfg.backtrack_limit);
    std::printf("  detected:   %zu (of %zu)\n", c.detected, c.total);
    std::printf("  untestable: %zu\n", c.untestable);
    std::printf("  aborted:    %zu\n", c.aborted);
    std::printf("  coverage:   %.2f%% fault, %.2f%% test\n",
                100.0 * report.list.fault_coverage(),
                100.0 * report.list.test_coverage());
    std::printf("  sequences:  %zu (bootstrap detected %zu)\n",
                report.outcome.tests.size(), report.outcome.detected_by_bootstrap);
    std::printf("  patterns:   %zu (%zu frames)\n", report.outcome.tests.size(),
                report.outcome.pattern_frames);
    if (cfg.rand_warmup > 0)
        std::printf("  warmup:     %zu sequences kept, %zu faults dropped\n",
                    report.outcome.warmup_sequences, report.outcome.detected_by_warmup);
    if (report.outcome.compaction_before > 0)
        std::printf("  compaction: %zu -> %zu patterns (fill=%.*s)\n",
                    report.outcome.compaction_before, report.outcome.compaction_after,
                    static_cast<int>(guide::fill_name(cfg.fill).size()),
                    guide::fill_name(cfg.fill).data());
    if (cfg.order != guide::OrderStrategy::Index ||
        cfg.guidance != guide::Guidance::None)
        std::printf("  strategy:   order=%.*s guidance=%.*s\n",
                    static_cast<int>(guide::order_name(cfg.order).size()),
                    guide::order_name(cfg.order).data(),
                    static_cast<int>(guide::guidance_name(cfg.guidance).size()),
                    guide::guidance_name(cfg.guidance).data());
    if (report.outcome.sat_targeted > 0)
        std::printf("  sat:        %zu targeted, %zu witnesses, %zu untestable\n",
                    report.outcome.sat_targeted, report.outcome.sat_witnesses,
                    report.outcome.untestable_by_cnf);
    std::printf("  cpu:        %.2f s\n", report.outcome.cpu_seconds);
    if (!report.outcome.run.ok())
        std::printf("  stopped:    %s%s%s\n", report.outcome.run.name(),
                    report.outcome.run.diagnostic.empty() ? "" : " — ",
                    report.outcome.run.diagnostic.c_str());
    return exit_code_for(report.outcome.run);
}

int cmd_gen(int argc, char** argv) {
    const std::string out_path = argv[2];
    workload::GenParams p;
    p.name = "gen";
    if (const char* v = flag_value(argc, argv, "--name")) p.name = v;
    if (const char* v = flag_value(argc, argv, "--gates"))
        p.n_gates = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--ffs"))
        p.n_ffs = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--inputs"))
        p.n_inputs = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--outputs"))
        p.n_outputs = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--seed"))
        p.seed = static_cast<std::uint64_t>(std::atoll(v));
    const netlist::Netlist nl = workload::generate(p);
    if (out_path == "-") {
        netlist::write_bench(std::cout, nl);
    } else {
        std::ofstream out(out_path);
        if (!out) throw std::runtime_error("cannot write " + out_path);
        netlist::write_bench(out, nl);
    }
    std::fprintf(stderr, "generated %s: %zu gates (%zu comb, %zu FFs, %zu inputs)\n",
                 nl.name().c_str(), nl.size(), nl.counts().combinational,
                 nl.counts().flip_flops, nl.counts().inputs);
    return 0;
}

// --- serve ----------------------------------------------------------------

// Signal flag for graceful shutdown; sig_atomic_t is the only type a
// handler may touch portably.
volatile std::sig_atomic_t g_stop_signal = 0;

extern "C" void handle_stop_signal(int) { g_stop_signal = 1; }

int cmd_serve(int argc, char** argv) {
    server::ServerConfig cfg;
    if (const char* v = flag_value(argc, argv, "--port"))
        cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    if (const char* v = flag_value(argc, argv, "--max-sessions"))
        cfg.service.max_sessions = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--cache-mb"))
        cfg.service.cache.max_bytes = static_cast<std::size_t>(std::atoll(v)) << 20;
    if (const char* v = flag_value(argc, argv, "--threads"))
        cfg.service.threads = static_cast<unsigned>(std::atoi(v));
    if (const char* v = flag_value(argc, argv, "--drain-ms"))
        cfg.drain_deadline = std::chrono::milliseconds(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--max-frame-mb"))
        cfg.max_frame_bytes = static_cast<std::size_t>(std::atoll(v)) << 20;
    if (const char* v = flag_value(argc, argv, "--max-conns"))
        cfg.max_conns = static_cast<std::size_t>(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--idle-timeout-ms"))
        cfg.idle_timeout = std::chrono::milliseconds(std::atoll(v));
    if (const char* v = flag_value(argc, argv, "--write-timeout-ms"))
        cfg.write_timeout = std::chrono::milliseconds(std::atoll(v));

    // Deterministic chaos: arm one failure site for the whole process
    // (CI's crash-recovery smoke runs `--chaos fs_rename:1` and kills the
    // daemon mid-save).
    exec::FailurePoint chaos;
    if (const char* v = flag_value(argc, argv, "--chaos")) {
        if (!exec::arm_from_spec(chaos, v)) {
            std::fprintf(stderr, "error: bad --chaos spec \"%s\" (want site:nth, "
                                 "e.g. fs_rename:1)\n", v);
            return 2;
        }
        cfg.failpoint = &chaos;
    }

    // Durable snapshot store: open (recovery scan + quarantine) before the
    // listener, so a request arriving first thing sees the warm index.
    if (const char* v = flag_value(argc, argv, "--store")) {
        server::SnapshotStoreConfig store_cfg;
        store_cfg.dir = v;
        if (const char* mb = flag_value(argc, argv, "--store-mb"))
            store_cfg.max_bytes = static_cast<std::size_t>(std::atoll(mb)) << 20;
        store_cfg.failpoint = cfg.failpoint;
        std::string store_error;
        cfg.service.store =
            server::SnapshotStore::open(std::move(store_cfg), &store_error);
        if (!cfg.service.store) {
            std::fprintf(stderr, "error: %s\n", store_error.c_str());
            return 6;
        }
        const server::SnapshotStoreStats ss = cfg.service.store->stats();
        std::fprintf(stderr,
                     "snapshot store %s: %zu entries (%zu bytes), %zu quarantined\n",
                     v, ss.entries, ss.bytes, ss.quarantined);
    }

    server::Server srv(cfg);
    std::string error;
    if (!srv.start(&error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 6;
    }
    // Machine-readable startup line on stdout (scripts poll for it to learn
    // the ephemeral port); human log on stderr.
    std::printf("{\"serving\": {\"port\": %u, \"max_sessions\": %zu, "
                "\"cache_max_bytes\": %zu}}\n",
                static_cast<unsigned>(srv.port()), cfg.service.max_sessions,
                cfg.service.cache.max_bytes);
    std::fflush(stdout);
    std::fprintf(stderr, "seqlearn serving on 127.0.0.1:%u (SIGINT/SIGTERM to stop)\n",
                 static_cast<unsigned>(srv.port()));

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    while (g_stop_signal == 0 && !srv.service().shutdown_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "seqlearn server draining (%s)\n",
                 g_stop_signal != 0 ? "signal" : "shutdown request");
    srv.stop();  // drain under the deadline; in-flight requests get
                 // Cancelled outcomes and their responses are written
    std::fprintf(stderr, "seqlearn server stopped\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
        try {
            return cmd_serve(argc, argv);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 6;
        }
    }
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s stats|learn|atpg|gen <circuit.bench|suite:NAME|out.bench>"
                     " [options]\n       %s serve [--port N] [options]\n",
                     argv[0], argv[0]);
        return 2;
    }
    try {
        const std::string cmd = argv[1];
        if (cmd == "gen") return cmd_gen(argc, argv);

        const bool json = flag_present(argc, argv, "--json");
        LoadedCircuit loaded = load_circuit(argv[2]);
        // Report every parse diagnostic on stderr (warnings included — they
        // used to be dropped); --json carries them in the output object too.
        if (!loaded.diagnostics.empty())
            std::fputs(loaded.diagnostics.to_string(loaded.source).c_str(), stderr);
        if (!loaded.design) {
            std::fprintf(stderr, "error: %s failed to parse (%zu errors)\n",
                         loaded.source.c_str(), loaded.diagnostics.error_count());
            if (json)
                std::printf("{\"error\": {\"class\": \"parse\", \"errors\": %zu}}\n",
                            loaded.diagnostics.error_count());
            return 3;
        }

        api::SessionConfig scfg;
        if (const char* t = flag_value(argc, argv, "--threads"))
            scfg.threads = static_cast<unsigned>(std::atoi(t));
        const bool progress = flag_present(argc, argv, "--progress");
        if (progress) {
            // One \r-rewritten line per stage; the line is terminated on a
            // stage change and once more when the command finishes (no
            // stage knows up front how many of its units will be skipped).
            scfg.progress = [last = std::optional<api::Stage>()](
                                const api::Progress& p) mutable {
                const char* stage = p.stage == api::Stage::Learn     ? "learn"
                                    : p.stage == api::Stage::Atpg    ? "atpg"
                                                                     : "fault-sim";
                if (last && *last != p.stage) std::fprintf(stderr, "\n");
                last = p.stage;
                std::fprintf(stderr, "\r%-9s %zu/%zu", stage, p.done, p.total);
                return true;  // observation only; never cancels
            };
        }
        api::Session session(loaded.design, std::move(scfg));
        int rc = 2;
        if (cmd == "stats") rc = cmd_stats(session, loaded.diagnostics, json);
        else if (cmd == "learn")
            rc = cmd_learn(session, loaded.diagnostics, argc, argv, json);
        else if (cmd == "atpg")
            rc = cmd_atpg(session, loaded.diagnostics, argc, argv, json);
        else std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
        if (progress) std::fprintf(stderr, "\n");
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        if (flag_present(argc, argv, "--json"))
            std::printf("{\"error\": {\"class\": \"internal\", \"message\": \"%s\"}}\n",
                        json_escape(e.what()).c_str());
        return 6;
    }
}
