// seqlearn_cli — drive the library from the command line on .bench files.
//
//   seqlearn_cli stats  <circuit.bench | suite:NAME>
//   seqlearn_cli learn  <circuit.bench | suite:NAME> [--frames N] [--out FILE]
//   seqlearn_cli atpg   <circuit.bench | suite:NAME> [--mode none|forbidden|known]
//                       [--backtracks N] [--learned FILE] [--random N]
//
// "suite:NAME" loads one of the built-in experiment circuits (e.g.
// suite:rt510a); anything else is parsed as an ISCAS-89 .bench file.

#include "atpg/atpg_loop.hpp"
#include "core/db_io.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/structure.hpp"
#include "workload/suite.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

namespace {

using namespace seqlearn;

netlist::Netlist load_circuit(const std::string& spec) {
    if (spec.rfind("suite:", 0) == 0) return workload::suite_circuit(spec.substr(6));
    std::ifstream in(spec);
    if (!in) throw std::runtime_error("cannot open " + spec);
    return netlist::read_bench(in, spec);
}

const char* flag_value(int argc, char** argv, const char* name) {
    for (int i = 0; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    }
    return nullptr;
}

int cmd_stats(const netlist::Netlist& nl) {
    const auto c = nl.counts();
    std::printf("circuit:      %s\n", nl.name().c_str());
    std::printf("inputs:       %zu\n", c.inputs);
    std::printf("outputs:      %zu\n", c.outputs);
    std::printf("flip-flops:   %zu\n", c.flip_flops);
    std::printf("latches:      %zu\n", c.latches);
    std::printf("gates:        %zu\n", c.combinational);
    std::printf("fanout stems: %zu\n", nl.stems().size());
    std::printf("seq depth:    %zu (capped at 16)\n", netlist::sequential_depth(nl, 16));
    const auto collapsed = fault::collapse(nl);
    std::printf("faults:       %zu collapsed / %zu total\n", collapsed.size(),
                collapsed.universe_size());
    return 0;
}

int cmd_learn(const netlist::Netlist& nl, int argc, char** argv) {
    core::LearnConfig cfg;
    if (const char* f = flag_value(argc, argv, "--frames"))
        cfg.max_frames = static_cast<std::uint32_t>(std::atoi(f));
    const core::LearnResult r = core::learn(nl, cfg);
    std::printf("learned in %.3f s over %zu stems:\n", r.stats.cpu_seconds,
                r.stats.stems_processed);
    std::printf("  FF-FF relations:   %zu\n", r.stats.ff_ff_relations);
    std::printf("  Gate-FF relations: %zu\n", r.stats.gate_ff_relations);
    std::printf("  combinational:     %zu\n", r.stats.comb_relations);
    std::printf("  tie gates:         %zu (%zu comb, %zu seq)\n", r.ties.count(),
                r.stats.ties_combinational, r.stats.ties_sequential);
    std::printf("  equivalence classes: %zu\n", r.stats.equiv_classes);
    if (const char* path = flag_value(argc, argv, "--out")) {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path);
            return 1;
        }
        core::save_learned(out, nl, r.db, r.ties);
        std::printf("saved learned data to %s\n", path);
    }
    return 0;
}

int cmd_atpg(const netlist::Netlist& nl, int argc, char** argv) {
    atpg::AtpgConfig cfg;
    cfg.backtrack_limit = 30;
    if (const char* bt = flag_value(argc, argv, "--backtracks"))
        cfg.backtrack_limit = static_cast<std::uint32_t>(std::atoi(bt));
    if (const char* r = flag_value(argc, argv, "--random"))
        cfg.random_sequences = static_cast<std::size_t>(std::atoi(r));

    std::optional<core::LearnResult> learned;
    const char* mode = flag_value(argc, argv, "--mode");
    const std::string mode_s = mode ? mode : "forbidden";
    if (mode_s != "none") {
        cfg.mode = mode_s == "known" ? atpg::LearnMode::KnownValue
                                     : atpg::LearnMode::ForbiddenValue;
        if (const char* path = flag_value(argc, argv, "--learned")) {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", path);
                return 1;
            }
            const core::LoadedLearned loaded = core::load_learned(in, nl);
            std::printf("loaded learned data (%zu relations, %zu ties, %zu skipped)\n",
                        loaded.db.size(), loaded.ties.count(), loaded.skipped_lines);
            learned.emplace(nl.size());
            // Rebuild a LearnResult around the loaded data.
            learned->db = loaded.db;
            learned->ties = loaded.ties;
        } else {
            learned.emplace(core::learn(nl));
            std::printf("learned on the fly: %zu relations, %zu ties\n",
                        learned->db.size(), learned->ties.count());
        }
        cfg.learned = &*learned;
        cfg.count_c_cycle_redundant = true;
    }

    fault::FaultList list(fault::collapse(nl).representatives());
    const atpg::AtpgOutcome out = run_atpg(nl, list, cfg);
    const auto c = list.counts();
    std::printf("mode=%s backtracks=%u\n", mode_s.c_str(), cfg.backtrack_limit);
    std::printf("  detected:   %zu (of %zu)\n", c.detected, c.total);
    std::printf("  untestable: %zu\n", c.untestable);
    std::printf("  aborted:    %zu\n", c.aborted);
    std::printf("  coverage:   %.2f%% fault, %.2f%% test\n", 100.0 * list.fault_coverage(),
                100.0 * list.test_coverage());
    std::printf("  sequences:  %zu (bootstrap detected %zu)\n", out.tests.size(),
                out.detected_by_bootstrap);
    std::printf("  cpu:        %.2f s\n", out.cpu_seconds);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s stats|learn|atpg <circuit.bench|suite:NAME> [options]\n",
                     argv[0]);
        return 2;
    }
    try {
        const netlist::Netlist nl = load_circuit(argv[2]);
        const std::string cmd = argv[1];
        if (cmd == "stats") return cmd_stats(nl);
        if (cmd == "learn") return cmd_learn(nl, argc, argv);
        if (cmd == "atpg") return cmd_atpg(nl, argc, argv);
        std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
