// The retiming study (paper Section 5, references [9] and [16]): forward
// retiming replicates registers, the density of encoding drops, invalid
// states appear, and sequential learning recovers them as FF-FF relations —
// which is exactly what rescues ATPG on this circuit class.
//
//   $ ./retimed_invalid_states

#include "api/session.hpp"
#include "core/invalid_state.hpp"
#include "workload/circuit_gen.hpp"
#include "workload/reachability.hpp"
#include "workload/retime.hpp"

#include <cstdio>

int main() {
    using namespace seqlearn;

    // A small FSM-style base so the state space stays exhaustively countable.
    workload::GenParams p;
    p.name = "demo_fsm";
    p.seed = 2026;
    p.n_inputs = 3;
    p.n_ffs = 5;
    p.n_gates = 28;
    p.shadow_ff_fraction = 0.0;
    const netlist::Netlist base = workload::generate(p);

    workload::RetimeStats st;
    const netlist::Netlist rt = workload::forward_retime(base, 4, 7, &st);
    std::printf("forward retiming: %zu moves, registers %zu -> %zu\n", st.moves_applied,
                st.registers_before, st.registers_after);

    for (const netlist::Netlist* nl : {&base, &rt}) {
        std::printf("\n--- %s: %zu FFs, %zu gates ---\n", nl->name().c_str(),
                    nl->seq_elements().size(), nl->counts().combinational);
        if (nl->seq_elements().size() <= 16) {
            const double density = core::density_of_encoding(*nl, 16);
            std::printf("density of encoding: %.4f (valid states / total states)\n",
                        density);
        }
        // One Session per circuit (over a private Design compiled from a
        // copy): learning and both campaigns below share its topology and
        // engines.
        api::Session session{netlist::Netlist(*nl)};
        const core::LearnResult& learned = session.learn();
        const core::InvalidStateChecker chk(*nl, learned.db);
        std::printf("learned: %zu FF-FF relations (invalid-state relations), "
                    "%zu Gate-FF, %zu ties, %.3f s\n",
                    learned.stats.ff_ff_relations, learned.stats.gate_ff_relations,
                    learned.ties.count(), learned.stats.cpu_seconds);
        if (chk.num_ffs() <= 20) {
            std::printf("states excluded by learned relations: %llu / %llu\n",
                        static_cast<unsigned long long>(chk.count_invalid_states()),
                        1ULL << chk.num_ffs());
        }

        // ATPG with and without the learned data, tight backtrack budget.
        for (const bool use_learning : {false, true}) {
            atpg::AtpgConfig cfg;
            cfg.backtrack_limit = 30;
            cfg.mode = use_learning ? atpg::LearnMode::ForbiddenValue
                                    : atpg::LearnMode::None;
            cfg.count_c_cycle_redundant = use_learning;
            const api::AtpgReport& report = session.atpg(cfg);
            const auto c = report.list.counts();
            std::printf("  ATPG %-12s: det %zu, untestable %zu, aborted %zu, %.2f s\n",
                        use_learning ? "with learning" : "no learning", c.detected,
                        c.untestable, c.aborted, report.outcome.cpu_seconds);
        }
    }
    return 0;
}
