// Redundancy identification from tie gates (paper Sections 3.2 and 5.1):
// learn ties, derive the untestable stuck-at faults they imply, and compare
// with the FIRE-style fault-independent baseline — a per-circuit slice of
// Table 4 with the individual faults spelled out.
//
//   $ ./tie_gate_redundancy [suite-circuit-name]      (default: fig1x)

#include "api/session.hpp"
#include "fault/fault.hpp"
#include "workload/fires.hpp"
#include "workload/suite.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    using namespace seqlearn;
    const std::string name = argc > 1 ? argv[1] : "fig1x";
    api::Session session(workload::suite_circuit(name));
    const netlist::Netlist& nl = session.netlist();
    const auto universe = fault::fault_universe(nl);
    std::printf("%s: %zu faults in the uncollapsed universe\n", name.c_str(),
                universe.size());

    // Tie gates fall out of sequential learning as a by-product.
    const core::LearnResult& learned = session.learn();
    std::printf("\ntie gates (%zu combinational, %zu sequential):\n",
                learned.stats.ties_combinational, learned.stats.ties_sequential);
    for (const netlist::GateId g : learned.ties.tied_gates()) {
        std::printf("  %s stuck at %c from cycle %u on\n", nl.name_of(g).c_str(),
                    logic::to_char(learned.ties.value(g)), learned.ties.cycle(g));
    }

    const auto tie_faults = learned.ties.untestable_faults(nl, universe);
    std::printf("\nuntestable faults from tie gates (%zu):\n", tie_faults.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(tie_faults.size(), 20); ++i) {
        std::printf("  %s\n", to_string(nl, tie_faults[i]).c_str());
    }
    if (tie_faults.size() > 20) std::printf("  ... and %zu more\n", tie_faults.size() - 20);

    const workload::FiresResult fires = workload::fires_untestable(nl, universe);
    std::printf("\nFIRE baseline (excitation half): %zu untestable faults over %zu stems\n",
                fires.untestable.size(), fires.stems_analyzed);

    // Which faults does each method find exclusively?
    auto only_in = [](const std::vector<fault::Fault>& a,
                      const std::vector<fault::Fault>& b) {
        std::size_t n = 0;
        for (const auto& f : a) {
            if (std::find(b.begin(), b.end(), f) == b.end()) ++n;
        }
        return n;
    };
    std::printf("exclusive finds: tie-only %zu, FIRE-only %zu\n",
                only_in(tie_faults, fires.untestable), only_in(fires.untestable, tie_faults));
    return 0;
}
