// Full test-generation flow: learn, then run the sequential ATPG in each of
// the three learning modes (none / forbidden-value / known-value) and
// compare coverage and cost — a miniature of the paper's Table 5.
//
//   $ ./atpg_flow [suite-circuit-name] [backtrack-limit]
//
// Defaults: rt510a (a retimed, low-density-of-encoding circuit) at limit 30.

#include "atpg/atpg_loop.hpp"
#include "core/seq_learn.hpp"
#include "fault/collapse.hpp"
#include "workload/suite.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv) {
    using namespace seqlearn;
    const std::string name = argc > 1 ? argv[1] : "rt510a";
    const auto backtrack_limit =
        static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 30);

    const netlist::Netlist nl = workload::suite_circuit(name);
    const fault::CollapsedFaults collapsed = fault::collapse(nl);
    std::printf("%s: %zu gates, %zu FFs, %zu collapsed faults (%zu uncollapsed)\n",
                name.c_str(), nl.counts().combinational,
                nl.seq_elements().size(), collapsed.size(), collapsed.universe_size());

    core::LearnConfig lcfg;
    const core::LearnResult learned = core::learn(nl, lcfg);
    std::printf("learning: %zu FF-FF + %zu Gate-FF relations, %zu ties, %.3f s\n\n",
                learned.stats.ff_ff_relations, learned.stats.gate_ff_relations,
                learned.ties.count(), learned.stats.cpu_seconds);

    std::printf("%-18s | %8s %8s %8s %8s | %9s %10s\n", "mode", "detected", "untest",
                "aborted", "undet", "coverage", "CPU (s)");
    struct ModeRow {
        const char* label;
        atpg::LearnMode mode;
    };
    for (const ModeRow m : {ModeRow{"no learning", atpg::LearnMode::None},
                            ModeRow{"forbidden values", atpg::LearnMode::ForbiddenValue},
                            ModeRow{"known values", atpg::LearnMode::KnownValue}}) {
        fault::FaultList list(collapsed.representatives());
        atpg::AtpgConfig cfg;
        cfg.mode = m.mode;
        cfg.learned = m.mode == atpg::LearnMode::None ? nullptr : &learned;
        cfg.backtrack_limit = backtrack_limit;
        cfg.count_c_cycle_redundant = cfg.learned != nullptr;
        const atpg::AtpgOutcome out = run_atpg(nl, list, cfg);
        const auto c = list.counts();
        std::printf("%-18s | %8zu %8zu %8zu %8zu | %8.2f%% %10.2f\n", m.label, c.detected,
                    c.untestable, c.aborted, c.undetected, 100.0 * list.test_coverage(),
                    out.cpu_seconds);
    }
    std::printf("\n(test coverage = detected / (total - untestable), as in the paper)\n");
    return 0;
}
