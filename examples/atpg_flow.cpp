// Full test-generation flow through the Session facade: learn once, then
// run the sequential ATPG in each of the three learning modes (none /
// forbidden-value / known-value) and compare coverage and cost — a
// miniature of the paper's Table 5.
//
//   $ ./atpg_flow [suite-circuit-name] [backtrack-limit]
//
// Defaults: rt510a (a retimed, low-density-of-encoding circuit) at limit 30.

#include "api/session.hpp"
#include "workload/suite.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv) {
    using namespace seqlearn;
    const std::string name = argc > 1 ? argv[1] : "rt510a";
    const auto backtrack_limit =
        static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 30);

    // The paper flow is one-producer/many-consumers: learn once, then let
    // every campaign consume the frozen result. Compile the circuit into an
    // immutable Design, learn in a throwaway Session, and freeze the result
    // into a second Design that all the mode campaigns below share — each
    // campaign gets its own cheap Session (they could run on N threads).
    api::Session learner(workload::suite_circuit(name));
    std::printf("%s: %zu gates, %zu FFs, %zu collapsed faults (%zu uncollapsed)\n",
                name.c_str(), learner.netlist().counts().combinational,
                learner.netlist().seq_elements().size(), learner.collapsed_faults().size(),
                learner.collapsed_faults().universe_size());

    const core::LearnResult& learned = learner.learn();
    std::printf("learning: %zu FF-FF + %zu Gate-FF relations, %zu ties, %.3f s\n\n",
                learned.stats.ff_ff_relations, learned.stats.gate_ff_relations,
                learned.ties.count(), learned.stats.cpu_seconds);

    const api::DesignPtr design = api::DesignBuilder(workload::suite_circuit(name))
                                      .learned(learner.freeze_learned())
                                      .build();

    std::printf("%-18s | %8s %8s %8s %8s | %9s %10s\n", "mode", "detected", "untest",
                "aborted", "undet", "coverage", "CPU (s)");
    struct ModeRow {
        const char* label;
        atpg::LearnMode mode;
    };
    for (const ModeRow m : {ModeRow{"no learning", atpg::LearnMode::None},
                            ModeRow{"forbidden values", atpg::LearnMode::ForbiddenValue},
                            ModeRow{"known values", atpg::LearnMode::KnownValue}}) {
        // A fresh Session per campaign: construction is O(1) against the
        // shared Design (no re-levelization), and LearnMode::None stays a
        // true no-learning baseline — the snapshot is only wired into modes
        // that ask for learned data.
        api::Session session(design);
        atpg::AtpgConfig cfg;
        cfg.mode = m.mode;
        cfg.backtrack_limit = backtrack_limit;
        cfg.count_c_cycle_redundant = m.mode != atpg::LearnMode::None;
        const api::AtpgReport& report = session.atpg(cfg);
        const auto c = report.list.counts();
        std::printf("%-18s | %8zu %8zu %8zu %8zu | %8.2f%% %10.2f\n", m.label, c.detected,
                    c.untestable, c.aborted, c.undetected,
                    100.0 * report.list.test_coverage(), report.outcome.cpu_seconds);
    }
    std::printf("\n(test coverage = detected / (total - untestable), as in the paper)\n");
    return 0;
}
