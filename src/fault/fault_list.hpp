#pragma once
// Fault bookkeeping for ATPG campaigns.

#include "fault/fault.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::fault {

enum class FaultStatus : std::uint8_t {
    Undetected,  ///< not yet detected nor proven untestable
    Detected,    ///< a test sequence detects it
    Untestable,  ///< proven untestable for every sequence length
    Aborted,     ///< ATPG gave up (backtrack limit)
    /// Proven untestable within a bounded frame window (K-frame CNF
    /// unsatisfiability). Counted as untestable by coverage metrics; the
    /// frame bound travels in AtpgOutcome's untestable records.
    UntestableBounded,
};

/// How a fault was proven untestable — the one taxonomy every prover
/// (tie-gate marking, the combinational redundancy prover, the CNF
/// timeframe-expansion backend) reports into.
enum class UntestableProof : std::uint8_t {
    None,           ///< no proof; the fault may be testable
    TieGate,        ///< stuck at the tied value of its own line
    Combinational,  ///< exhausted single-frame free-state search
    Structural,     ///< fanout cone reaches no primary output
    BoundedCnf,     ///< K-frame CNF unsatisfiable (untestable within K)
};

/// Status-tracked list of (usually collapsed) faults.
class FaultList {
public:
    explicit FaultList(std::vector<Fault> faults)
        : faults_(std::move(faults)), status_(faults_.size(), FaultStatus::Undetected) {}

    std::size_t size() const noexcept { return faults_.size(); }
    const Fault& fault(std::size_t i) const noexcept { return faults_[i]; }
    std::span<const Fault> faults() const noexcept { return faults_; }
    FaultStatus status(std::size_t i) const noexcept { return status_[i]; }
    void set_status(std::size_t i, FaultStatus s) noexcept { status_[i] = s; }

    /// Indices still Undetected (the ATPG work queue), in index order.
    std::vector<std::size_t> undetected() const;

    /// Indices with status Aborted (retry queue for a second pass).
    std::vector<std::size_t> aborted() const;

    struct Counts {
        std::size_t total = 0;
        std::size_t detected = 0;
        std::size_t untestable = 0;
        std::size_t aborted = 0;
        std::size_t undetected = 0;
    };
    Counts counts() const;

    /// Fault coverage: detected / total.
    double fault_coverage() const;
    /// Test coverage: detected / (total - untestable), the paper's metric.
    double test_coverage() const;

private:
    std::vector<Fault> faults_;
    std::vector<FaultStatus> status_;
};

}  // namespace seqlearn::fault
