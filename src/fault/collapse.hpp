#pragma once
// Structural fault-equivalence collapsing.
//
// Classic rules: a controlling-value fault on a gate input is equivalent to
// the corresponding output fault (AND: in s-a-0 == out s-a-0; NAND: in s-a-0
// == out s-a-1; OR: in s-a-1 == out s-a-1; NOR: in s-a-1 == out s-a-0), and
// NOT/BUF input faults are equivalent to the matching output faults. Pins on
// fanout-free connections are the same line as their driver's stem. Only
// equivalence (not dominance) collapsing is performed, so every class member
// is detected by exactly the tests that detect its representative.

#include "fault/fault.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace seqlearn::fault {

struct FaultHash {
    std::size_t operator()(const Fault& f) const noexcept {
        std::uint64_t k = (static_cast<std::uint64_t>(f.gate) << 24) ^
                          (static_cast<std::uint64_t>(f.pin + 2) << 2) ^
                          static_cast<std::uint64_t>(f.stuck);
        k *= 0x9e3779b97f4a7c15ULL;
        return static_cast<std::size_t>(k ^ (k >> 32));
    }
};

/// Result of collapsing a netlist's fault universe.
class CollapsedFaults {
public:
    /// One representative per equivalence class, in deterministic order.
    const std::vector<Fault>& representatives() const noexcept { return reps_; }

    /// Representative of the class containing `f`.
    /// Precondition: `f` belongs to the universe the collapse was built from.
    const Fault& rep_of(const Fault& f) const;

    /// Number of classes (== representatives().size()).
    std::size_t size() const noexcept { return reps_.size(); }

    /// Total faults in the uncollapsed universe.
    std::size_t universe_size() const noexcept { return universe_size_; }

    /// Approximate heap bytes (representatives plus the class index).
    std::size_t memory_bytes() const noexcept {
        return reps_.capacity() * sizeof(Fault) +
               class_of_.bucket_count() * sizeof(void*) +
               class_of_.size() * (sizeof(Fault) + sizeof(std::size_t) + 2 * sizeof(void*));
    }

private:
    friend CollapsedFaults collapse(const Netlist& nl);
    std::vector<Fault> reps_;
    std::unordered_map<Fault, std::size_t, FaultHash> class_of_;
    std::size_t universe_size_ = 0;
};

/// Collapse the full fault universe of `nl`.
CollapsedFaults collapse(const Netlist& nl);

}  // namespace seqlearn::fault
