#include "fault/fault_list.hpp"

namespace seqlearn::fault {

std::vector<std::size_t> FaultList::undetected() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        if (status_[i] == FaultStatus::Undetected) out.push_back(i);
    }
    return out;
}

std::vector<std::size_t> FaultList::aborted() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < faults_.size(); ++i) {
        if (status_[i] == FaultStatus::Aborted) out.push_back(i);
    }
    return out;
}

FaultList::Counts FaultList::counts() const {
    Counts c;
    c.total = faults_.size();
    for (const FaultStatus s : status_) {
        switch (s) {
            case FaultStatus::Undetected: ++c.undetected; break;
            case FaultStatus::Detected: ++c.detected; break;
            case FaultStatus::Untestable: ++c.untestable; break;
            case FaultStatus::UntestableBounded: ++c.untestable; break;
            case FaultStatus::Aborted: ++c.aborted; break;
        }
    }
    return c;
}

double FaultList::fault_coverage() const {
    const Counts c = counts();
    return c.total == 0 ? 0.0 : static_cast<double>(c.detected) / static_cast<double>(c.total);
}

double FaultList::test_coverage() const {
    const Counts c = counts();
    const std::size_t testable = c.total - c.untestable;
    return testable == 0 ? 0.0
                         : static_cast<double>(c.detected) / static_cast<double>(testable);
}

}  // namespace seqlearn::fault
