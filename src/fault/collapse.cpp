#include "fault/collapse.hpp"

#include "netlist/gate_type.hpp"

#include <numeric>
#include <stdexcept>

namespace seqlearn::fault {

namespace {

using logic::GateOp;
using netlist::GateType;

// Union-find over fault indices.
class Dsu {
public:
    explicit Dsu(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

}  // namespace

const Fault& CollapsedFaults::rep_of(const Fault& f) const {
    const auto it = class_of_.find(f);
    if (it == class_of_.end()) throw std::invalid_argument("rep_of: fault not in universe");
    return reps_[it->second];
}

CollapsedFaults collapse(const Netlist& nl) {
    const std::vector<Fault> universe = fault_universe(nl);
    std::unordered_map<Fault, std::size_t, FaultHash> index;
    index.reserve(universe.size() * 2);
    for (std::size_t i = 0; i < universe.size(); ++i) index.emplace(universe[i], i);

    // A pin on a fanout-free connection is the same line as its driver's
    // stem; such pins carry no universe fault of their own.
    auto line_fault = [&](netlist::GateId gate, std::size_t pin, Val3 v) -> std::size_t {
        const netlist::GateId driver = nl.fanins(gate)[pin];
        const Fault as_pin{gate, static_cast<std::int32_t>(pin), v};
        const auto it = index.find(as_pin);
        if (it != index.end()) return it->second;
        return index.at(Fault{driver, kOutputPin, v});
    };

    Dsu dsu(universe.size());
    for (netlist::GateId id = 0; id < nl.size(); ++id) {
        const GateType t = nl.type(id);
        if (!netlist::is_combinational(t) || t == GateType::Const0 || t == GateType::Const1)
            continue;
        const GateOp op = netlist::to_op(t);
        const Val3 ctrl = logic::controlling_value(op);
        const bool inv = logic::output_inverted(op);
        const std::size_t n_pins = nl.fanins(id).size();
        if (op == GateOp::Buf || op == GateOp::Not) {
            for (const Val3 v : {Val3::Zero, Val3::One}) {
                const Val3 out_v = inv ? logic::v3_not(v) : v;
                dsu.unite(line_fault(id, 0, v), index.at(Fault{id, kOutputPin, out_v}));
            }
            continue;
        }
        if (ctrl == Val3::X) continue;  // XOR/XNOR: no structural equivalences
        const Val3 out_v = inv ? logic::v3_not(ctrl) : ctrl;
        const std::size_t out_idx = index.at(Fault{id, kOutputPin, out_v});
        for (std::size_t pin = 0; pin < n_pins; ++pin) {
            dsu.unite(line_fault(id, pin, ctrl), out_idx);
        }
    }

    CollapsedFaults out;
    out.universe_size_ = universe.size();
    std::unordered_map<std::size_t, std::size_t> root_to_class;
    for (std::size_t i = 0; i < universe.size(); ++i) {
        const std::size_t root = dsu.find(i);
        auto [it, inserted] = root_to_class.emplace(root, out.reps_.size());
        if (inserted) out.reps_.push_back(universe[root]);
        out.class_of_.emplace(universe[i], it->second);
    }
    return out;
}

}  // namespace seqlearn::fault
