#include "fault/fault_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqlearn::fault {

using logic::Pattern;
using logic::pat_get;
using netlist::GateId;
using netlist::Topology;

FaultSimulator::FaultSimulator(const Topology& topo)
    : topo_(&topo),
      force_flags_(topo.size(), 0),
      out_force1_(topo.size(), 0),
      out_force0_(topo.size(), 0),
      pin_force1_(topo.num_fanin_edges(), 0),
      pin_force0_(topo.num_fanin_edges(), 0),
      pats_(topo.size(), logic::kPatAllX),
      outside_cone_(topo.size(), ~0ULL) {}

void FaultSimulator::set_good_ties(const std::vector<Val3>* values,
                                   const std::vector<std::uint32_t>* cycles) noexcept {
    tie_values_ = values;
    tie_cycles_ = cycles;
    if (values != nullptr && tie_index_.size() != topo_->size())
        tie_index_.assign(topo_->size(), -1);
    // Worker clones must simulate the same good machine.
    for (const std::unique_ptr<FaultSimulator>& w : workers_) {
        w->set_good_ties(values, cycles);
    }
}

void FaultSimulator::set_executor(exec::Pool* pool, unsigned max_workers) {
    executor_ = pool;
    executor_max_workers_ = max_workers;
    if (pool == nullptr) workers_.clear();
}

void FaultSimulator::clear_forces() {
    for (const GateId g : forced_gates_) {
        force_flags_[g] = 0;
        out_force1_[g] = 0;
        out_force0_[g] = 0;
    }
    forced_gates_.clear();
    for (const std::uint32_t e : forced_edges_) {
        pin_force1_[e] = 0;
        pin_force0_[e] = 0;
    }
    forced_edges_.clear();
}

void FaultSimulator::mark_cone(GateId root, std::uint64_t lane_bit) {
    // Forward reachability through both combinational and sequential sinks
    // (a latched fault effect persists across frames). The lane bit doubles
    // as the visited marker, so reconvergent regions are expanded once.
    auto clear_bit = [&](GateId g) -> bool {
        std::uint64_t& m = outside_cone_[g];
        if ((m & lane_bit) == 0) return false;
        if (m == ~0ULL) cone_touched_.push_back(g);
        m &= ~lane_bit;
        return true;
    };
    clear_bit(root);
    cone_stack_.clear();
    cone_stack_.push_back(root);
    while (!cone_stack_.empty()) {
        const GateId g = cone_stack_.back();
        cone_stack_.pop_back();
        for (const GateId h : topo_->fanouts(g)) {
            if (clear_bit(h)) cone_stack_.push_back(h);
        }
    }
}

std::vector<bool> FaultSimulator::run(const sim::InputSequence& seq,
                                      std::span<const Fault> faults) {
    if (faults.size() > kFaultsPerPass)
        throw std::invalid_argument("FaultSimulator::run: too many faults for one pass");
    const Topology& topo = *topo_;
    const auto inputs = topo.inputs();
    const auto seq_elems = topo.seq_elements();

    clear_forces();
    for (std::size_t j = 0; j < faults.size(); ++j) {
        const Fault& f = faults[j];
        const std::uint64_t bit = 1ULL << (j + 1);
        if (force_flags_[f.gate] == 0) forced_gates_.push_back(f.gate);
        if (f.pin == kOutputPin) {
            force_flags_[f.gate] |= kOutForced;
            (f.stuck == Val3::One ? out_force1_ : out_force0_)[f.gate] |= bit;
        } else {
            force_flags_[f.gate] |= kPinForced;
            const std::uint32_t edge =
                topo.fanin_offset(f.gate) + static_cast<std::uint32_t>(f.pin);
            if (pin_force1_[edge] == 0 && pin_force0_[edge] == 0)
                forced_edges_.push_back(edge);
            (f.stuck == Val3::One ? pin_force1_ : pin_force0_)[edge] |= bit;
        }
    }

    // Tie lanes: lane 0 always; faulty lanes only where the tied gate is
    // outside that fault's cone (there the machines agree line-for-line).
    for (const TieLanes& t : tie_lanes_) tie_index_[t.gate] = -1;
    tie_lanes_.clear();
    if (tie_values_ != nullptr) {
        for (const GateId g : cone_touched_) outside_cone_[g] = ~0ULL;
        cone_touched_.clear();
        for (std::size_t j = 0; j < faults.size(); ++j) {
            mark_cone(faults[j].gate, 1ULL << (j + 1));
        }
        const std::uint64_t used_lanes = faults.size() == 63
                                             ? ~0ULL
                                             : ((1ULL << (faults.size() + 1)) - 1);
        for (GateId g = 0; g < topo.size(); ++g) {
            const Val3 v = (*tie_values_)[g];
            if (v == Val3::X) continue;
            const std::uint64_t lanes = (outside_cone_[g] | 1ULL) & used_lanes;
            tie_index_[g] = static_cast<std::int32_t>(tie_lanes_.size());
            tie_lanes_.push_back({g, v == Val3::One ? lanes : 0, v == Val3::Zero ? lanes : 0,
                                  tie_cycles_ ? (*tie_cycles_)[g] : 0});
        }
    }
    std::size_t frame_index = 0;
    auto apply_tie = [&](GateId g, Pattern& p) {
        if (tie_lanes_.empty() || tie_index_[g] < 0) return;
        const TieLanes& t = tie_lanes_[static_cast<std::size_t>(tie_index_[g])];
        if (frame_index < t.cycle) return;
        p.ones |= t.ones;
        p.zeros |= t.zeros;
    };

    auto force_output = [&](GateId g, Pattern& p) {
        const std::uint64_t f1 = out_force1_[g], f0 = out_force0_[g];
        const std::uint64_t both = f1 | f0;
        p.ones = (p.ones & ~both) | f1;
        p.zeros = (p.zeros & ~both) | f0;
    };
    // The data value gate `g` sees on flat fanin edge `edge`, with per-lane
    // pin faults applied.
    auto forced_pin_value = [&](GateId driver, std::uint32_t edge) {
        Pattern p = pats_[driver];
        const std::uint64_t f1 = pin_force1_[edge], f0 = pin_force0_[edge];
        const std::uint64_t both = f1 | f0;
        p.ones = (p.ones & ~both) | f1;
        p.zeros = (p.zeros & ~both) | f0;
        return p;
    };

    state_.assign(seq_elems.size(), logic::kPatAllX);
    std::vector<bool> detected(faults.size(), false);

    for (const sim::InputFrame& frame : seq) {
        if (frame.size() != inputs.size())
            throw std::invalid_argument("FaultSimulator::run: bad input frame size");
        // Seed sources.
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            Pattern p = logic::pat_broadcast(frame[i]);
            if (force_flags_[inputs[i]] & kOutForced) force_output(inputs[i], p);
            pats_[inputs[i]] = p;
        }
        for (std::size_t i = 0; i < seq_elems.size(); ++i) {
            Pattern p = state_[i];
            apply_tie(seq_elems[i], p);
            if (force_flags_[seq_elems[i]] & kOutForced) force_output(seq_elems[i], p);
            pats_[seq_elems[i]] = p;
        }
        // Levelized evaluation over the CSR schedule with fault forcing.
        for (const GateId g : topo.schedule()) {
            if (topo.is_input(g) || topo.is_seq(g)) continue;
            const auto fi = topo.fanins(g);
            Pattern p;
            if (force_flags_[g] & kPinForced) {
                const std::uint32_t base = topo.fanin_offset(g);
                p = logic::eval_op_indirect(topo.op(g), fi.size(), [&](std::size_t i) {
                    return forced_pin_value(fi[i], base + static_cast<std::uint32_t>(i));
                });
            } else {
                p = logic::eval_op_indirect(topo.op(g), fi.size(),
                                            [&](std::size_t i) { return pats_[fi[i]]; });
            }
            apply_tie(g, p);
            if (force_flags_[g] & kOutForced) force_output(g, p);
            pats_[g] = p;
        }
        // Detection: a faulty lane differs from the good lane at a PO while
        // both are binary.
        for (const GateId o : topo.outputs()) {
            const Pattern p = pats_[o];
            const Val3 good = pat_get(p, 0);
            if (good == Val3::X) continue;
            const std::uint64_t diff = good == Val3::One ? p.zeros : p.ones;
            if (diff == 0) continue;
            for (std::size_t j = 0; j < faults.size(); ++j) {
                if (diff & (1ULL << (j + 1))) detected[j] = true;
            }
        }
        // Capture next state (pin faults on sequential data pins included).
        for (std::size_t i = 0; i < seq_elems.size(); ++i) {
            const GateId ff = seq_elems[i];
            const GateId d = topo.fanins(ff)[0];
            state_[i] = force_flags_[ff] & kPinForced
                            ? forced_pin_value(d, topo.fanin_offset(ff))
                            : pats_[d];
        }
        ++frame_index;
    }
    return detected;
}

bool FaultSimulator::detects(const sim::InputSequence& seq, const Fault& f) {
    return run(seq, {&f, 1})[0];
}

std::size_t FaultSimulator::drop_detected(const sim::InputSequence& seq, FaultList& list) {
    std::size_t dropped = 0;
    const std::vector<std::size_t> todo = list.undetected();
    const std::size_t passes = (todo.size() + kFaultsPerPass - 1) / kFaultsPerPass;
    if (executor_ != nullptr && passes > 1) {
        unsigned workers = executor_->size();
        if (executor_max_workers_ != 0) workers = std::min(workers, executor_max_workers_);
        if (workers > 1) return drop_detected_parallel(seq, list, todo, passes, workers);
    }
    for (std::size_t pos = 0; pos < todo.size(); pos += kFaultsPerPass) {
        // Pass-boundary governance: stopping between passes keeps the union
        // of already-dropped faults valid (remaining ones just stay
        // undetected, which is sound).
        if ((cancel_ != nullptr && cancel_->requested()) ||
            (budget_ != nullptr && budget_->check() != exec::RunStatus::Completed))
            break;
        if (failpoint_ != nullptr) failpoint_->poll(exec::FailSite::WorkItem);
        chunk_indices_.clear();
        chunk_.clear();
        for (std::size_t k = pos; k < std::min(pos + kFaultsPerPass, todo.size()); ++k) {
            chunk_indices_.push_back(todo[k]);
            chunk_.push_back(list.fault(todo[k]));
        }
        const std::vector<bool> det = run(seq, chunk_);
        for (std::size_t k = 0; k < chunk_.size(); ++k) {
            if (det[k]) {
                list.set_status(chunk_indices_[k], FaultStatus::Detected);
                ++dropped;
            }
        }
    }
    return dropped;
}

std::size_t FaultSimulator::drop_detected_parallel(const sim::InputSequence& seq,
                                                   FaultList& list,
                                                   std::span<const std::size_t> todo,
                                                   std::size_t passes, unsigned workers) {
    if ((cancel_ != nullptr && cancel_->requested()) ||
        (budget_ != nullptr && budget_->check() != exec::RunStatus::Completed))
        return 0;
    // Per-worker clones over the shared snapshot (worker 0 is this
    // simulator); built once and reused across calls.
    while (workers_.size() + 1 < workers) {
        auto clone = std::make_unique<FaultSimulator>(*topo_);
        clone->set_good_ties(tie_values_, tie_cycles_);
        workers_.push_back(std::move(clone));
    }

    const std::size_t words = (todo.size() + 63) / 64;
    if (detected_words_ < words) {
        detected_bits_ = std::make_unique<std::atomic<std::uint64_t>[]>(words);
        detected_words_ = words;
    }
    for (std::size_t w = 0; w < words; ++w)
        detected_bits_[w].store(0, std::memory_order_relaxed);

    auto task = [&](unsigned worker, std::size_t pass) {
        // Governance lives on the primary simulator; workers read its sticky
        // flags only (no clock) and skip their pass once a stop is pending.
        if ((cancel_ != nullptr && cancel_->requested()) ||
            (budget_ != nullptr && budget_->deadline_exceeded()))
            return;
        if (failpoint_ != nullptr) failpoint_->poll(exec::FailSite::WorkItem);
        FaultSimulator& fs = worker == 0 ? *this : *workers_[worker - 1];
        const std::size_t begin = pass * kFaultsPerPass;
        const std::size_t end = std::min(begin + kFaultsPerPass, todo.size());
        fs.chunk_.clear();
        for (std::size_t k = begin; k < end; ++k) fs.chunk_.push_back(list.fault(todo[k]));
        const std::vector<bool> det = fs.run(seq, fs.chunk_);
        for (std::size_t k = begin; k < end; ++k) {
            if (det[k - begin]) {
                detected_bits_[k / 64].fetch_or(1ULL << (k % 64),
                                                std::memory_order_relaxed);
            }
        }
    };
    executor_->run(passes, exec::TaskView(task), workers);

    // Merge in fault-index order (todo is index-ordered): identical statuses
    // to the serial pass — detection is a union, credit order is canonical.
    std::size_t dropped = 0;
    for (std::size_t k = 0; k < todo.size(); ++k) {
        if (detected_bits_[k / 64].load(std::memory_order_relaxed) & (1ULL << (k % 64))) {
            list.set_status(todo[k], FaultStatus::Detected);
            ++dropped;
        }
    }
    return dropped;
}

std::size_t FaultSimulator::memory_bytes() const noexcept {
    const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    std::size_t bytes = vec(force_flags_) + vec(out_force1_) + vec(out_force0_) +
                        vec(pin_force1_) + vec(pin_force0_) + vec(forced_gates_) +
                        vec(forced_edges_) + vec(tie_lanes_) + vec(tie_index_) +
                        vec(pats_) + vec(state_) + vec(outside_cone_) + vec(cone_touched_) +
                        vec(cone_stack_) + vec(chunk_indices_) + vec(chunk_) +
                        detected_words_ * sizeof(std::uint64_t);
    for (const auto& w : workers_) {
        if (w) bytes += sizeof(FaultSimulator) + w->memory_bytes();
    }
    return bytes;
}

}  // namespace seqlearn::fault
