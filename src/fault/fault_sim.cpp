#include "fault/fault_sim.hpp"

#include "netlist/structure.hpp"

#include <stdexcept>

namespace seqlearn::fault {

using logic::Pattern;
using logic::pat_get;
using logic::pat_set;
using netlist::GateId;
using netlist::GateType;
using netlist::is_sequential;

FaultSimulator::FaultSimulator(const Netlist& nl)
    : nl_(&nl), lv_(netlist::levelize(nl)), out_forces_(nl.size()), pin_forces_(nl.size()) {}

std::vector<bool> FaultSimulator::run(const sim::InputSequence& seq,
                                      std::span<const Fault> faults) {
    if (faults.size() > kFaultsPerPass)
        throw std::invalid_argument("FaultSimulator::run: too many faults for one pass");
    const auto inputs = nl_->inputs();
    const auto seq_elems = nl_->seq_elements();

    for (const GateId g : forced_gates_) {
        out_forces_[g].clear();
        pin_forces_[g].clear();
    }
    forced_gates_.clear();
    for (std::size_t j = 0; j < faults.size(); ++j) {
        const Fault& f = faults[j];
        const int lane = static_cast<int>(j) + 1;
        if (f.pin == kOutputPin) {
            if (out_forces_[f.gate].empty() && pin_forces_[f.gate].empty())
                forced_gates_.push_back(f.gate);
            out_forces_[f.gate].push_back({lane, f.stuck});
        } else {
            if (out_forces_[f.gate].empty() && pin_forces_[f.gate].empty())
                forced_gates_.push_back(f.gate);
            pin_forces_[f.gate].push_back({static_cast<std::size_t>(f.pin), lane, f.stuck});
        }
    }

    // Tie lanes: lane 0 always; faulty lanes only where the tied gate is
    // outside that fault's cone (there the machines agree line-for-line).
    tie_lanes_.clear();
    if (tie_values_ != nullptr) {
        std::vector<std::uint64_t> outside_cone(nl_->size(), ~0ULL);
        for (std::size_t j = 0; j < faults.size(); ++j) {
            const std::uint64_t lane_bit = 1ULL << (j + 1);
            const GateId root = faults[j].gate;
            outside_cone[root] &= ~lane_bit;
            for (const GateId g : netlist::fanout_cone(*nl_, root, /*through_seq=*/true)) {
                outside_cone[g] &= ~lane_bit;
            }
        }
        const std::uint64_t used_lanes = faults.size() == 63
                                             ? ~0ULL
                                             : ((1ULL << (faults.size() + 1)) - 1);
        for (GateId g = 0; g < nl_->size(); ++g) {
            const Val3 v = (*tie_values_)[g];
            if (v == Val3::X) continue;
            const std::uint64_t lanes = (outside_cone[g] | 1ULL) & used_lanes;
            tie_lanes_.push_back({g, v == Val3::One ? lanes : 0, v == Val3::Zero ? lanes : 0,
                                  tie_cycles_ ? (*tie_cycles_)[g] : 0});
        }
    }
    std::vector<std::int32_t> tie_index(tie_lanes_.empty() ? 0 : nl_->size(), -1);
    for (std::size_t i = 0; i < tie_lanes_.size(); ++i)
        tie_index[tie_lanes_[i].gate] = static_cast<std::int32_t>(i);
    std::size_t frame_index = 0;
    auto apply_tie = [&](GateId g, Pattern& p) {
        if (tie_lanes_.empty() || tie_index[g] < 0) return;
        const TieLanes& t = tie_lanes_[static_cast<std::size_t>(tie_index[g])];
        if (frame_index < t.cycle) return;
        p.ones |= t.ones;
        p.zeros |= t.zeros;
    };

    auto force_output = [&](GateId g, Pattern& p) {
        for (const OutputForce& of : out_forces_[g]) pat_set(p, of.lane, of.stuck);
    };
    // The data value gate `g` sees on `pin`, with per-lane pin faults applied.
    auto pin_value = [&](GateId g, std::size_t pin, const std::vector<Pattern>& pats) {
        Pattern p = pats[nl_->fanins(g)[pin]];
        for (const PinForce& pf : pin_forces_[g]) {
            if (pf.pin == pin) pat_set(p, pf.lane, pf.stuck);
        }
        return p;
    };

    std::vector<Pattern> pats(nl_->size(), logic::kPatAllX);
    std::vector<Pattern> state(seq_elems.size(), logic::kPatAllX);
    std::vector<bool> detected(faults.size(), false);
    std::vector<Pattern> ins;

    for (const sim::InputFrame& frame : seq) {
        if (frame.size() != inputs.size())
            throw std::invalid_argument("FaultSimulator::run: bad input frame size");
        // Seed sources.
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            Pattern p = logic::pat_broadcast(frame[i]);
            force_output(inputs[i], p);
            pats[inputs[i]] = p;
        }
        for (std::size_t i = 0; i < seq_elems.size(); ++i) {
            Pattern p = state[i];
            apply_tie(seq_elems[i], p);
            force_output(seq_elems[i], p);
            pats[seq_elems[i]] = p;
        }
        // Levelized evaluation with fault forcing.
        for (const GateId g : lv_.topo_order) {
            const GateType t = nl_->type(g);
            if (t == GateType::Input || is_sequential(t)) continue;
            ins.clear();
            for (std::size_t pin = 0; pin < nl_->fanins(g).size(); ++pin)
                ins.push_back(pin_value(g, pin, pats));
            Pattern p = logic::eval_op(netlist::to_op(t), ins.data(), static_cast<int>(ins.size()));
            apply_tie(g, p);
            force_output(g, p);
            pats[g] = p;
        }
        // Detection: a faulty lane differs from the good lane at a PO while
        // both are binary.
        for (const GateId o : nl_->outputs()) {
            const Pattern p = pats[o];
            const Val3 good = pat_get(p, 0);
            if (good == Val3::X) continue;
            const std::uint64_t diff = good == Val3::One ? p.zeros : p.ones;
            if (diff == 0) continue;
            for (std::size_t j = 0; j < faults.size(); ++j) {
                if (diff & (1ULL << (j + 1))) detected[j] = true;
            }
        }
        // Capture next state (pin faults on sequential data pins included).
        for (std::size_t i = 0; i < seq_elems.size(); ++i) {
            state[i] = pin_value(seq_elems[i], 0, pats);
        }
        ++frame_index;
    }
    return detected;
}

bool FaultSimulator::detects(const sim::InputSequence& seq, const Fault& f) {
    const std::vector<Fault> one{f};
    return run(seq, one)[0];
}

std::size_t FaultSimulator::drop_detected(const sim::InputSequence& seq, FaultList& list) {
    std::size_t dropped = 0;
    std::vector<std::size_t> chunk_indices;
    std::vector<Fault> chunk;
    const std::vector<std::size_t> todo = list.undetected();
    for (std::size_t pos = 0; pos < todo.size(); pos += kFaultsPerPass) {
        chunk_indices.clear();
        chunk.clear();
        for (std::size_t k = pos; k < std::min(pos + kFaultsPerPass, todo.size()); ++k) {
            chunk_indices.push_back(todo[k]);
            chunk.push_back(list.fault(todo[k]));
        }
        const std::vector<bool> det = run(seq, chunk);
        for (std::size_t k = 0; k < chunk.size(); ++k) {
            if (det[k]) {
                list.set_status(chunk_indices[k], FaultStatus::Detected);
                ++dropped;
            }
        }
    }
    return dropped;
}

}  // namespace seqlearn::fault
