#pragma once
// Single stuck-at fault model over gate-level netlists.
//
// Faults live on lines: every gate output (the stem) carries two faults, and
// every fanout branch (an input pin whose driver has more than one fanout)
// carries two more. Pins whose driver is fanout-free are electrically the
// same line as the driver's output, so they carry no separate faults.

#include "logic/val3.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace seqlearn::fault {

using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

/// Marker for an output (stem) fault in Fault::pin.
inline constexpr std::int32_t kOutputPin = -1;

/// One stuck-at fault.
struct Fault {
    /// Gate whose output (pin == kOutputPin) or input pin carries the fault.
    GateId gate = netlist::kNoGate;
    /// kOutputPin for the stem, otherwise the input-pin index on `gate`.
    std::int32_t pin = kOutputPin;
    /// The stuck value (Zero or One).
    Val3 stuck = Val3::Zero;

    friend bool operator==(const Fault&, const Fault&) = default;
    friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// "G14 s-a-1" or "G9.in2 s-a-0".
std::string to_string(const Netlist& nl, const Fault& f);

/// The uncollapsed fault universe of `nl`: stem faults on every gate
/// (including inputs and sequential elements) plus branch faults on every
/// pin whose driver fans out to more than one place.
std::vector<Fault> fault_universe(const Netlist& nl);

/// Build a copy of `nl` with `f` permanently inserted, for reference
/// simulation: an output fault rewires every consumer of the line to a
/// constant; a pin fault rewires only that pin. The faulty gate's logic
/// stays in place (it simply drives nothing / the other pins).
Netlist apply_fault_copy(const Netlist& nl, const Fault& f);

}  // namespace seqlearn::fault
