#pragma once
// Sequential stuck-at fault simulation, 63 faults per pass.
//
// Lane 0 of every 64-lane pattern carries the fault-free circuit; lanes
// 1..63 carry faulty circuits (one permanent fault each). All machines run
// from the all-X state under 3-valued semantics. A fault is detected when a
// primary output is binary in both the good and the faulty lane and the two
// values differ (the conservative definition a tester can rely on).

#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "logic/pattern.hpp"
#include "netlist/levelize.hpp"
#include "sim/comb_engine.hpp"

#include <span>
#include <vector>

namespace seqlearn::fault {

/// Maximum faults per simulation pass (lanes 1..63).
inline constexpr std::size_t kFaultsPerPass = 63;

class FaultSimulator {
public:
    explicit FaultSimulator(const Netlist& nl);

    /// Augment simulation with learned tie facts: gate -> tied value (X =
    /// untied) with per-gate proof cycles (frames before the cycle are not
    /// seeded; null = all combinational). Ties always apply to the good
    /// machine (lane 0); a faulty lane receives a tie only when the tied
    /// gate lies outside that fault's cone, where the faulty machine
    /// behaves identically. This closes the pessimism gap between the
    /// learning-aware ATPG and plain 3-valued validation (the paper's
    /// "pitfalls of necessary assignments" discussion). Vectors must
    /// outlive the simulator.
    void set_good_ties(const std::vector<Val3>* values,
                       const std::vector<std::uint32_t>* cycles) noexcept {
        tie_values_ = values;
        tie_cycles_ = cycles;
    }

    /// Simulate `seq` with up to kFaultsPerPass `faults` injected in
    /// parallel; returns one flag per fault (true = detected).
    std::vector<bool> run(const sim::InputSequence& seq, std::span<const Fault> faults);

    /// True when `seq` detects the single fault `f`.
    bool detects(const sim::InputSequence& seq, const Fault& f);

    /// Fault-simulate `seq` against every Undetected fault of `list`,
    /// marking newly detected ones Detected. Returns how many were dropped.
    std::size_t drop_detected(const sim::InputSequence& seq, FaultList& list);

    const Netlist& netlist() const noexcept { return *nl_; }

private:
    const Netlist* nl_;
    netlist::Levelization lv_;

    struct OutputForce {
        int lane;
        Val3 stuck;
    };
    struct PinForce {
        std::size_t pin;
        int lane;
        Val3 stuck;
    };
    // Rebuilt per run(): per-gate forcing lists.
    std::vector<std::vector<OutputForce>> out_forces_;
    std::vector<std::vector<PinForce>> pin_forces_;
    std::vector<netlist::GateId> forced_gates_;

    const std::vector<Val3>* tie_values_ = nullptr;
    const std::vector<std::uint32_t>* tie_cycles_ = nullptr;
    // Per tied gate: the lanes its tie may be asserted in (rebuilt per run).
    struct TieLanes {
        netlist::GateId gate;
        std::uint64_t ones;
        std::uint64_t zeros;
        std::uint32_t cycle;
    };
    std::vector<TieLanes> tie_lanes_;
};

}  // namespace seqlearn::fault
