#pragma once
// Sequential stuck-at fault simulation, 63 faults per pass.
//
// Lane 0 of every 64-lane pattern carries the fault-free circuit; lanes
// 1..63 carry faulty circuits (one permanent fault each). All machines run
// from the all-X state under 3-valued semantics. A fault is detected when a
// primary output is binary in both the good and the faulty lane and the two
// values differ (the conservative definition a tester can rely on).
//
// Hot-path design: all structural access goes through the flat CSR
// netlist::Topology (contiguous fanin spans in the 64-lane evaluation loop,
// fanout spans for fault-cone marking). Fault forcing lives in flat per-gate
// and per-fanin-edge mask arrays that persist on the simulator and are
// cleared entry-by-entry between passes, so a run() in steady state performs
// no per-pass heap allocation.

#include "exec/budget.hpp"
#include "exec/cancel.hpp"
#include "exec/failpoint.hpp"
#include "exec/pool.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "logic/pattern.hpp"
#include "netlist/topology.hpp"
#include "sim/comb_engine.hpp"

#include <atomic>
#include <memory>
#include <span>
#include <vector>

namespace seqlearn::fault {

/// Maximum faults per simulation pass (lanes 1..63).
inline constexpr std::size_t kFaultsPerPass = 63;

class FaultSimulator {
public:
    /// Share an existing CSR snapshot (must outlive the simulator) — a
    /// Session hands every engine the same Topology so the circuit is
    /// levelized exactly once. To simulate straight from a Netlist, build a
    /// Topology first (or go through api::Session).
    explicit FaultSimulator(const netlist::Topology& topo);

    /// Fan drop_detected() passes out over `pool` (must outlive the
    /// simulator; null reverts to serial), using at most `max_workers` slots
    /// (0 = all). Worker clones over the shared Topology are built lazily;
    /// run() and detects() always execute on the calling thread.
    void set_executor(exec::Pool* pool, unsigned max_workers = 0);

    /// Attach run-governance hooks for the current stage (all may be null;
    /// the owner clears them when its run ends). drop_detected() polls
    /// cancel/budget at 63-fault pass boundaries and stops early — sound,
    /// since skipping passes only leaves detectable faults undropped — and
    /// polls `failpoint` (FailSite::WorkItem) before each pass.
    void set_governance(const exec::CancelFlag* cancel, exec::Budget* budget,
                        exec::FailurePoint* failpoint) noexcept {
        cancel_ = cancel;
        budget_ = budget;
        failpoint_ = failpoint;
    }

    /// Augment simulation with learned tie facts: gate -> tied value (X =
    /// untied) with per-gate proof cycles (frames before the cycle are not
    /// seeded; null = all combinational). Ties always apply to the good
    /// machine (lane 0); a faulty lane receives a tie only when the tied
    /// gate lies outside that fault's cone, where the faulty machine
    /// behaves identically. This closes the pessimism gap between the
    /// learning-aware ATPG and plain 3-valued validation (the paper's
    /// "pitfalls of necessary assignments" discussion). Vectors must
    /// outlive the simulator.
    void set_good_ties(const std::vector<Val3>* values,
                       const std::vector<std::uint32_t>* cycles) noexcept;

    /// Simulate `seq` with up to kFaultsPerPass `faults` injected in
    /// parallel; returns one flag per fault (true = detected).
    std::vector<bool> run(const sim::InputSequence& seq, std::span<const Fault> faults);

    /// True when `seq` detects the single fault `f`.
    bool detects(const sim::InputSequence& seq, const Fault& f);

    /// Fault-simulate `seq` against every Undetected fault of `list`,
    /// marking newly detected ones Detected. Returns how many were dropped.
    /// With an executor attached, the 63-fault passes run in parallel on
    /// per-worker clones into a shared atomic detected-bitmap, merged into
    /// `list` in fault-index order — statuses are bit-identical to the
    /// serial pass at any thread count (detection is a pure union).
    std::size_t drop_detected(const sim::InputSequence& seq, FaultList& list);

    const netlist::Topology& topology() const noexcept { return *topo_; }

    /// Approximate heap bytes of reusable scratch (force masks, tie lanes,
    /// pattern/state vectors, chunk buffers, the detected bitmap), including
    /// lazily built worker clones. Excludes the shared Topology.
    std::size_t memory_bytes() const noexcept;

private:
    void clear_forces();
    void mark_cone(netlist::GateId root, std::uint64_t lane_bit);
    std::size_t drop_detected_parallel(const sim::InputSequence& seq, FaultList& list,
                                       std::span<const std::size_t> todo,
                                       std::size_t passes, unsigned workers);

    const netlist::Topology* topo_;

    // Per-gate force flags (bits below); flat force masks per gate (output
    // forces) and per fanin edge (pin forces, indexed topo fanin_offset + pin).
    // Only entries named in forced_gates_ / forced_edges_ are ever nonzero.
    static constexpr std::uint8_t kOutForced = 1;
    static constexpr std::uint8_t kPinForced = 2;
    std::vector<std::uint8_t> force_flags_;
    std::vector<std::uint64_t> out_force1_, out_force0_;
    std::vector<std::uint64_t> pin_force1_, pin_force0_;
    std::vector<netlist::GateId> forced_gates_;
    std::vector<std::uint32_t> forced_edges_;

    const std::vector<Val3>* tie_values_ = nullptr;
    const std::vector<std::uint32_t>* tie_cycles_ = nullptr;
    // Per tied gate: the lanes its tie may be asserted in (rebuilt per run).
    struct TieLanes {
        netlist::GateId gate;
        std::uint64_t ones;
        std::uint64_t zeros;
        std::uint32_t cycle;
    };
    std::vector<TieLanes> tie_lanes_;
    // gate -> index into tie_lanes_ (or -1); fixed once ties are set.
    std::vector<std::int32_t> tie_index_;

    // Reused run() scratch: per-gate patterns, sequential state, fault-cone
    // lane masks (entries reset through cone_touched_), and the BFS stack.
    std::vector<logic::Pattern> pats_;
    std::vector<logic::Pattern> state_;
    std::vector<std::uint64_t> outside_cone_;
    std::vector<netlist::GateId> cone_touched_;
    std::vector<netlist::GateId> cone_stack_;
    // Reused drop_detected() chunk buffers.
    std::vector<std::size_t> chunk_indices_;
    std::vector<Fault> chunk_;

    // Parallel drop_detected: the pool, per-worker clones (lazily built,
    // sharing *topo_), and the atomic detected-bitmap the passes merge into
    // (1 bit per todo position; grown on demand, reused across calls).
    exec::Pool* executor_ = nullptr;
    unsigned executor_max_workers_ = 0;
    const exec::CancelFlag* cancel_ = nullptr;
    exec::Budget* budget_ = nullptr;
    exec::FailurePoint* failpoint_ = nullptr;
    std::vector<std::unique_ptr<FaultSimulator>> workers_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> detected_bits_;
    std::size_t detected_words_ = 0;
};

}  // namespace seqlearn::fault
