#include "fault/fault.hpp"

#include "util/strings.hpp"

#include <stdexcept>

namespace seqlearn::fault {

std::string to_string(const Netlist& nl, const Fault& f) {
    const char* sv = f.stuck == Val3::One ? "1" : "0";
    if (f.pin == kOutputPin) return util::format("%s s-a-%s", nl.name_of(f.gate).c_str(), sv);
    return util::format("%s.in%d s-a-%s", nl.name_of(f.gate).c_str(), f.pin, sv);
}

std::vector<Fault> fault_universe(const Netlist& nl) {
    std::vector<Fault> out;
    for (GateId id = 0; id < nl.size(); ++id) {
        out.push_back({id, kOutputPin, Val3::Zero});
        out.push_back({id, kOutputPin, Val3::One});
        const auto fanins = nl.fanins(id);
        for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
            if (nl.fanouts(fanins[pin]).size() > 1) {
                out.push_back({id, static_cast<std::int32_t>(pin), Val3::Zero});
                out.push_back({id, static_cast<std::int32_t>(pin), Val3::One});
            }
        }
    }
    return out;
}

Netlist apply_fault_copy(const Netlist& nl, const Fault& f) {
    if (f.stuck == Val3::X) throw std::invalid_argument("apply_fault_copy: X stuck value");
    // Rebuild the netlist gate by gate (ids are preserved because gates are
    // re-added in id order), appending one constant source for the fault.
    Netlist out;
    out.set_name(nl.name() + "__faulty");
    for (GateId id = 0; id < nl.size(); ++id) {
        const netlist::GateType t = nl.type(id);
        if (netlist::is_sequential(t)) {
            out.add_sequential_deferred(t, nl.name_of(id));
        } else {
            std::vector<GateId> fanins(nl.fanins(id).begin(), nl.fanins(id).end());
            out.add_gate(t, nl.name_of(id), fanins);
        }
    }
    for (const GateId id : nl.seq_elements()) {
        std::vector<GateId> fanins(nl.fanins(id).begin(), nl.fanins(id).end());
        out.attach_seq_fanins(id, fanins);
        out.seq_attrs(id) = nl.seq_attrs(id);
    }
    const GateId konst = out.add_gate(
        f.stuck == Val3::One ? netlist::GateType::Const1 : netlist::GateType::Const0,
        "__fault_const", {});

    if (f.pin == kOutputPin) {
        // Rewire every consumer pin fed by f.gate to the constant.
        for (GateId id = 0; id < nl.size(); ++id) {
            const auto fanins = nl.fanins(id);
            for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
                if (fanins[pin] == f.gate) out.replace_fanin(id, pin, konst);
            }
        }
        // If the faulty line is a primary output, observe the constant.
        for (const GateId o : nl.outputs()) out.mark_output(o == f.gate ? konst : o);
    } else {
        out.replace_fanin(f.gate, static_cast<std::size_t>(f.pin), konst);
        for (const GateId o : nl.outputs()) out.mark_output(o);
    }
    out.validate();
    return out;
}

}  // namespace seqlearn::fault
