#include "cnf/sat_learn.hpp"

#include "netlist/clock_class.hpp"

#include <stdexcept>

namespace seqlearn::cnf {

using logic::Val3;

CaptureModel capture_model_for(const netlist::Netlist& nl) {
    const auto seq = nl.seq_elements();
    const std::vector<netlist::ClockClass> classes = netlist::clock_classes(nl);
    if (classes.size() <= 1 && (classes.empty() || !classes.front().is_latch))
        return CaptureModel::exact(seq.size());

    // Multi-domain (or latch-bearing): one free enable group per class.
    std::vector<std::uint32_t> seq_index(nl.size(), 0);
    for (std::size_t i = 0; i < seq.size(); ++i)
        seq_index[seq[i]] = static_cast<std::uint32_t>(i);
    CaptureModel m;
    m.group_of.assign(seq.size(), CaptureModel::kExactCapture);
    m.num_groups = static_cast<std::uint32_t>(classes.size());
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
        for (const GateId g : classes[ci].members)
            m.group_of[seq_index[g]] = static_cast<std::uint32_t>(ci);
    }
    return m;
}

SatLearnResult sat_learn(const netlist::Topology& topo, std::uint32_t frames,
                         std::span<const GateId> stems, const Seeds& seeds,
                         const CaptureModel& capture, const exec::CancelFlag* cancel,
                         exec::Budget* budget) {
    if (frames == 0) throw std::invalid_argument("sat_learn: frames must be >= 1");
    SatLearnResult out;
    Solver solver;
    solver.set_governance(cancel, budget);
    BinaryUnroller unroller(topo, solver);
    unroller.encode(frames, seeds, capture);
    const std::uint32_t last = frames - 1;

    // Reverse map: positive-literal key at the last frame -> gates carrying
    // it (aliasing means one variable can stand for a buffer/FF chain).
    // Buckets are built in ascending gate order, which keeps the mined
    // relation stream deterministic.
    std::vector<std::vector<GateId>> gates_of(2 * solver.num_vars());
    for (GateId g = 0; g < topo.size(); ++g)
        gates_of[unroller.lit(g, last).x].push_back(g);

    auto already_tied = [&](GateId g) {
        return seeds.ties != nullptr && seeds.ties->value(g) != Val3::X;
    };

    std::vector<Lit> assumption(1);
    std::vector<Lit> implied;
    std::vector<std::uint8_t> tied_now(topo.size(), 0);
    for (const GateId g : stems) {
        const exec::RunStatus st = exec::poll_point(cancel, budget);
        if (st != exec::RunStatus::Completed) {
            out.run.status = st;
            if (budget != nullptr && budget->detail() != nullptr &&
                st != exec::RunStatus::Cancelled) {
                out.run.diagnostic = budget->detail();
            }
            return out;
        }
        if (already_tied(g) || tied_now[g] != 0) continue;
        bool conflicted[2] = {false, false};
        for (const bool v : {false, true}) {
            assumption[0] = unroller.lit(g, last, v);
            ++out.stats.probes;
            if (!solver.probe(assumption, implied)) {
                conflicted[v ? 1 : 0] = true;
                continue;
            }
            const core::Literal lhs{g, v ? Val3::One : Val3::Zero};
            for (const Lit l : implied) {
                for (int s = 0; s < 2; ++s) {
                    const std::uint32_t key = s == 0 ? l.x : (l.x ^ 1u);
                    if (key >= gates_of.size()) continue;
                    for (const GateId h : gates_of[key]) {
                        if (h == g || already_tied(h)) continue;
                        const core::Literal rhs{h, s == 0 ? Val3::One : Val3::Zero};
                        out.relations.push_back({lhs, rhs, last});
                        ++out.stats.relations;
                    }
                }
            }
        }
        if (conflicted[0] && conflicted[1]) {
            // Both values impossible means the clause set itself went
            // unsatisfiable — cannot happen for a free-state encoding of a
            // consistent circuit, so treat it as a solver fault and stop
            // mining rather than emit bogus ties.
            out.run = exec::RunOutcome::failed("sat_learn: inconsistent encoding");
            return out;
        }
        if (conflicted[0] || conflicted[1]) {
            // g = v is impossible from frame `last` on: tie to !v.
            out.ties.push_back({g, conflicted[1] ? Val3::Zero : Val3::One, last});
            tied_now[g] = 1;
            ++out.stats.ties;
        }
        if (budget != nullptr) budget->note_item();
    }
    out.run = exec::RunOutcome::completed();
    return out;
}

}  // namespace seqlearn::cnf
