#pragma once
// SAT learn mode: mine implications and ties beyond the frame-simulation
// window with failed-literal probes over a BinaryUnroller encoding.
//
// The unrolling has a free initial state, so its last frame (K-1) stands
// for "any frame with at least K-1 frames of history" — the exact meaning
// of an ImplicationDB frame tag. For every candidate stem g and value v the
// probe asserts g=v at the last frame and runs unit propagation:
//
//   - propagation conflicts  =>  g can never be v from frame K-1 on: a tie
//     (g, !v, cycle K-1) — possibly deeper than frame simulation can see;
//   - otherwise every implied same-frame literal h=w is a sound consequence
//     (unit propagation is sound): the relation (g=v) => (h=w) at frame
//     tag K-1.
//
// Everything mined is a logical consequence of the gate equations plus the
// already-proven seeds, so merged facts can never contradict frame-sim
// learning — the overlap agrees by construction (cnf_test cross-checks
// this). Execution is serial and clock-free: identical results at every
// thread count.

#include "cnf/encoder.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::cnf {

struct SatLearnStats {
    std::size_t probes = 0;
    std::size_t ties = 0;       ///< new ties found (not already in seeds)
    std::size_t relations = 0;  ///< implied same-frame relations mined
};

struct SatTie {
    GateId gate = netlist::kNoGate;
    logic::Val3 value = logic::Val3::X;
    std::uint32_t cycle = 0;
};

struct SatLearnResult {
    std::vector<SatTie> ties;
    std::vector<core::Relation> relations;
    SatLearnStats stats;
    /// Completed, or the governance stop that ended the pass early. A
    /// non-ok pass still carries every fact mined before the stop.
    exec::RunOutcome run;
};

/// Mine ties and implications at frame bound `frames` (>= 1) over the
/// candidate `stems` (visited in the given order — pass a deterministic
/// list). `seeds` should carry the frame-sim learned data so probes start
/// from the strongest sound base; facts already present there are not
/// re-reported. `capture` must be sound for the circuit's clocking (use
/// capture_model_for()).
SatLearnResult sat_learn(const netlist::Topology& topo, std::uint32_t frames,
                         std::span<const GateId> stems, const Seeds& seeds,
                         const CaptureModel& capture, const exec::CancelFlag* cancel,
                         exec::Budget* budget);

/// Sound capture model for `nl`: exact capture for single-domain pure-DFF
/// circuits, one free enable group per clock class otherwise (a foreign
/// domain may or may not tick between two frames of this one; latches are
/// always transparent-capable, so they get a free enable too).
CaptureModel capture_model_for(const netlist::Netlist& nl);

}  // namespace seqlearn::cnf
