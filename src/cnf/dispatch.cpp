#include "cnf/dispatch.hpp"

#include "cnf/encoder.hpp"

namespace seqlearn::cnf {

bool parse_backend(std::string_view name, Backend& out) {
    if (name == "framesim") {
        out = Backend::FrameSim;
    } else if (name == "sat") {
        out = Backend::Sat;
    } else if (name == "auto") {
        out = Backend::Auto;
    } else {
        return false;
    }
    return true;
}

const char* backend_name(Backend b) noexcept {
    switch (b) {
        case Backend::FrameSim: return "framesim";
        case Backend::Sat: return "sat";
        case Backend::Auto: return "auto";
    }
    return "?";
}

CnfVerdict prove_fault(const netlist::Topology& topo, const fault::Fault& f,
                       std::uint32_t frames, const core::TieSet* ties,
                       const exec::CancelFlag* cancel, exec::Budget* budget) {
    CnfVerdict v;
    v.frames = frames;
    Solver solver;
    solver.set_governance(cancel, budget);
    FaultMiter miter(topo, solver);
    if (!miter.encode(f, frames, ties)) {
        // The fault's cone reaches no primary output: untestable for every
        // sequence length, no solve needed.
        v.kind = CnfVerdict::Kind::Untestable;
        v.proof = fault::UntestableProof::Structural;
        return v;
    }
    const SolveResult r = solver.solve();
    v.conflicts = solver.conflicts();
    v.run = r.run;
    switch (r.status) {
        case SolveStatus::Unsat:
            v.kind = CnfVerdict::Kind::Untestable;
            v.proof = fault::UntestableProof::BoundedCnf;
            break;
        case SolveStatus::Sat:
            v.kind = CnfVerdict::Kind::Test;
            v.test = miter.witness(solver);
            break;
        case SolveStatus::Stopped:
            v.kind = CnfVerdict::Kind::Unknown;
            break;
    }
    return v;
}

bool route_to_sat(const netlist::Topology& topo, const fault::Fault& f,
                  std::uint32_t frames, const core::TieSet* ties,
                  const guide::Testability* tst) {
    // Fault cone (forward reachability through comb and seq sinks) — the
    // same closure the miter encodes, so its size bounds the CNF size.
    std::vector<std::uint8_t> in_cone(topo.size(), 0);
    std::vector<netlist::GateId> stack{f.gate};
    in_cone[f.gate] = 1;
    std::size_t cone = 0;
    std::size_t tied_in_cone = 0;
    std::uint32_t min_level = topo.level(f.gate);
    std::uint32_t max_level = min_level;
    while (!stack.empty()) {
        const netlist::GateId g = stack.back();
        stack.pop_back();
        ++cone;
        min_level = std::min(min_level, topo.level(g));
        max_level = std::max(max_level, topo.level(g));
        if (ties != nullptr && ties->value(g) != logic::Val3::X) ++tied_in_cone;
        for (const netlist::GateId h : topo.fanouts(g)) {
            if (in_cone[h] == 0) {
                in_cone[h] = 1;
                stack.push_back(h);
            }
        }
    }
    // Estimated CNF load: clauses scale with cone x frames. Tie-dense cones
    // prune the SAT search (units everywhere) and are exactly where the
    // structural engine burns its backtrack budget, so they buy a larger
    // cap. Deep level spans favor the frame-sim engine's guided search.
    const std::uint64_t load = static_cast<std::uint64_t>(cone) * frames;
    const double tie_density =
        cone == 0 ? 0.0 : static_cast<double>(tied_in_cone) / static_cast<double>(cone);
    const std::uint32_t depth_span = max_level - min_level;
    std::uint64_t cap = 40000;
    if (tie_density >= 0.10) cap *= 4;
    if (depth_span > 64) cap /= 2;
    if (tst != nullptr) {
        // SCOAP features (guided campaigns only). Hardness saturated at
        // kInf marks an untestable-looking fault: the bounded-UNSAT proof
        // is the cheapest way to resolve it, so double the cap. Merely
        // hard-but-finite faults (deep in the cost tail) are where the
        // guided engine spends its backtrack budget — give them half a
        // notch more CNF headroom instead of none.
        const std::uint32_t h = tst->hardness(f);
        if (h >= guide::Testability::kInf) cap *= 2;
        else if (h >= 4 * guide::Testability::kSeqStep) cap += cap / 2;
    }
    return load <= cap;
}

}  // namespace seqlearn::cnf
