#pragma once
// Timeframe-expansion CNF encoders over the shared netlist::Topology.
//
// Two encodings, two consumers:
//
// BinaryUnroller — a 2-valued K-frame unrolling with a *free* initial state
// (frame-0 sequential outputs are unconstrained variables, primary inputs
// are free every frame). Because the free state covers arbitrary prior
// history, anything proved at unrolled frame t holds at every frame of
// every execution with >= t frames of history — exactly the frame-tag
// semantics ImplicationDB relations carry. The SAT learn mode probes this
// encoding. Learned facts are seeded on top of the gate definitions: tie
// units at frames >= their proof cycle, equivalence links at every frame,
// implication clauses at frames >= their tag — all sound, since each fact
// is proven for the real machine. Multi-domain circuits get a free capture
// enable per clock class per frame boundary (a foreign domain may or may
// not tick — the SeqGating analogue); latches always capture under a free
// enable. Single-domain flip-flop circuits capture exactly.
//
// FaultMiter — a dual-rail 3-valued good/faulty product machine for one
// stuck-at fault. Each (signal, frame) carries two monotone rails (is-one /
// is-zero; neither = X), encoding Kleene semantics bit-exactly w.r.t.
// fault::FaultSimulator: all-X initial state, binary primary inputs (an X
// input never helps under monotone 3-valued logic), good-machine ties as
// constants at frames >= their cycle, faulty copies only inside the fault's
// fanout cone, detection = some primary output binary in both machines with
// differing values. Consequences: every Sat model decodes to a witness
// sequence FaultSimulator::detects confirms, and Unsat over K frames is a
// sound proof that no K-frame test exists under the tester model
// ("untestable within K").

#include "cnf/solver.hpp"
#include "core/equivalence.hpp"
#include "core/impl_db.hpp"
#include "core/tie.hpp"
#include "fault/fault.hpp"
#include "netlist/topology.hpp"
#include "sim/comb_engine.hpp"

#include <cstdint>
#include <vector>

namespace seqlearn::cnf {

using netlist::GateId;

/// Learned facts seeded into a BinaryUnroller encoding (all optional).
struct Seeds {
    const core::TieSet* ties = nullptr;
    const core::ImplicationDB* db = nullptr;
    const core::EquivResult* equivalences = nullptr;
};

/// How sequential elements capture across the unrolled frame boundaries.
struct CaptureModel {
    /// Per seq-element index (like Topology::seq_elements()): the enable
    /// group the element ticks with, or kExactCapture for elements that
    /// capture at every boundary.
    std::vector<std::uint32_t> group_of;
    std::uint32_t num_groups = 0;

    static constexpr std::uint32_t kExactCapture = 0xFFFFFFFFu;

    /// Every element captures every boundary (single-domain DFF circuits;
    /// also the fault-simulator model).
    static CaptureModel exact(std::size_t num_seq) {
        CaptureModel m;
        m.group_of.assign(num_seq, kExactCapture);
        return m;
    }
};

class BinaryUnroller {
public:
    /// Both referents must outlive the unroller; the solver must be fresh
    /// (the unroller owns its variable numbering).
    BinaryUnroller(const netlist::Topology& topo, Solver& solver);

    /// Encode frames [0, frames). `capture` may be empty (= exact capture).
    void encode(std::uint32_t frames, const Seeds& seeds = {},
                const CaptureModel& capture = {});

    std::uint32_t frames() const noexcept { return frames_; }

    /// Literal asserting gate `g` == `value` at unrolled frame `t`.
    Lit lit(GateId g, std::uint32_t t, bool value = true) const noexcept {
        const Lit l = lits_[static_cast<std::size_t>(t) * topo_->size() + g];
        return value ? l : ~l;
    }

private:
    void encode_gate(GateId g, std::uint32_t t);

    const netlist::Topology* topo_;
    Solver* solver_;
    std::vector<Lit> lits_;  // frame-major: t * size + g
    std::uint32_t frames_ = 0;
    Lit true_lit_;
};

class FaultMiter {
public:
    FaultMiter(const netlist::Topology& topo, Solver& solver);

    /// Encode the K-frame detection miter for `f`, seeding good-machine
    /// ties from `ties` (null = none; pass the same ties the validating
    /// FaultSimulator uses). Returns false when the fault's cone reaches no
    /// primary output within the window — structurally undetectable, no
    /// solve needed.
    bool encode(const fault::Fault& f, std::uint32_t frames, const core::TieSet* ties);

    /// Decode a Sat model into the (all-binary) witness input sequence.
    sim::InputSequence witness(const Solver& solver) const;

    // Effective good-machine rails (ties applied) — for the parity tests.
    Lit good_one(GateId g, std::uint32_t t) const noexcept {
        return good_one_[static_cast<std::size_t>(t) * topo_->size() + g];
    }
    Lit good_zero(GateId g, std::uint32_t t) const noexcept {
        return good_zero_[static_cast<std::size_t>(t) * topo_->size() + g];
    }
    /// The binary input variable of primary input index `i` at frame `t`.
    Lit input_lit(std::size_t i, std::uint32_t t) const noexcept {
        return input_lits_[static_cast<std::size_t>(t) * topo_->inputs().size() + i];
    }

private:
    struct Rails {
        Lit one, zero;
    };
    Rails good_rails(GateId g, std::uint32_t t) const noexcept {
        const std::size_t k = static_cast<std::size_t>(t) * topo_->size() + g;
        return {good_one_[k], good_zero_[k]};
    }
    Rails comb_rails(logic::GateOp op, const std::vector<Rails>& ins);
    Rails fresh_rails();

    const netlist::Topology* topo_;
    Solver* solver_;
    std::vector<Lit> good_one_, good_zero_;    // frame-major good rails
    std::vector<Lit> faulty_one_, faulty_zero_;  // frame-major; == good outside cone
    std::vector<Lit> input_lits_;              // frame-major by input index
    std::vector<std::uint8_t> in_cone_;
    std::uint32_t frames_ = 0;
    Lit true_lit_;
};

}  // namespace seqlearn::cnf
