#include "cnf/encoder.hpp"

#include <stdexcept>

namespace seqlearn::cnf {

using logic::GateOp;
using logic::Val3;

namespace {

// out <-> AND(ins). With constant or duplicate literals the solver's
// top-level simplification cleans the clauses up.
void emit_and(Solver& s, Lit out, std::span<const Lit> ins) {
    std::vector<Lit> big;
    big.reserve(ins.size() + 1);
    big.push_back(out);
    for (const Lit in : ins) {
        s.add_clause({~out, in});
        big.push_back(~in);
    }
    s.add_clause(big);
}

// out <-> OR(ins).
void emit_or(Solver& s, Lit out, std::span<const Lit> ins) {
    std::vector<Lit> big;
    big.reserve(ins.size() + 1);
    big.push_back(~out);
    for (const Lit in : ins) {
        s.add_clause({out, ~in});
        big.push_back(in);
    }
    s.add_clause(big);
}

// a <-> b.
void emit_equal(Solver& s, Lit a, Lit b) {
    s.add_clause({~a, b});
    s.add_clause({a, ~b});
}

// out <-> a XOR b.
void emit_xor2(Solver& s, Lit out, Lit a, Lit b) {
    s.add_clause({~out, a, b});
    s.add_clause({~out, ~a, ~b});
    s.add_clause({out, ~a, b});
    s.add_clause({out, a, ~b});
}

}  // namespace

// ---------------------------------------------------------------------------
// BinaryUnroller

BinaryUnroller::BinaryUnroller(const netlist::Topology& topo, Solver& solver)
    : topo_(&topo), solver_(&solver) {}

void BinaryUnroller::encode(std::uint32_t frames, const Seeds& seeds,
                            const CaptureModel& capture) {
    if (frames == 0) throw std::invalid_argument("BinaryUnroller: frames must be >= 1");
    const netlist::Topology& topo = *topo_;
    Solver& s = *solver_;
    frames_ = frames;
    lits_.assign(static_cast<std::size_t>(frames) * topo.size(), Lit{});
    true_lit_ = pos(s.new_var());
    s.add_clause({true_lit_});

    // Per-seq-element index (into seq_elements()) for capture-group lookup.
    std::vector<std::uint32_t> seq_index(topo.size(), 0);
    const auto seq_elems = topo.seq_elements();
    for (std::size_t i = 0; i < seq_elems.size(); ++i)
        seq_index[seq_elems[i]] = static_cast<std::uint32_t>(i);

    // One free capture-enable per (group, frame boundary into frame t >= 1).
    std::vector<Lit> enables(static_cast<std::size_t>(frames) * capture.num_groups);
    for (std::uint32_t t = 1; t < frames; ++t) {
        for (std::uint32_t gi = 0; gi < capture.num_groups; ++gi)
            enables[static_cast<std::size_t>(t) * capture.num_groups + gi] =
                pos(s.new_var());
    }

    std::vector<Lit> ins;
    for (std::uint32_t t = 0; t < frames; ++t) {
        for (const GateId g : topo.schedule()) {
            const std::size_t idx = static_cast<std::size_t>(t) * topo.size() + g;
            if (topo.is_input(g)) {
                lits_[idx] = pos(s.new_var());
                continue;
            }
            if (topo.is_const(g)) {
                lits_[idx] = topo.op(g) == GateOp::Const1 ? true_lit_ : ~true_lit_;
                continue;
            }
            if (topo.is_seq(g)) {
                if (t == 0) {
                    lits_[idx] = pos(s.new_var());  // free initial state
                    continue;
                }
                const Lit d = lit(topo.fanins(g)[0], t - 1);
                const std::uint32_t group = capture.group_of.empty()
                                                ? CaptureModel::kExactCapture
                                                : capture.group_of[seq_index[g]];
                if (group == CaptureModel::kExactCapture) {
                    lits_[idx] = d;
                } else {
                    // May or may not tick this boundary: v = e ? d : prev.
                    const Lit v = pos(s.new_var());
                    const Lit e =
                        enables[static_cast<std::size_t>(t) * capture.num_groups + group];
                    const Lit prev = lit(g, t - 1);
                    s.add_clause({~e, ~d, v});
                    s.add_clause({~e, d, ~v});
                    s.add_clause({e, ~prev, v});
                    s.add_clause({e, prev, ~v});
                    lits_[idx] = v;
                }
                continue;
            }
            // Combinational operator.
            const auto fanins = topo.fanins(g);
            ins.clear();
            for (const GateId fi : fanins) ins.push_back(lit(fi, t));
            switch (topo.op(g)) {
                case GateOp::Buf: lits_[idx] = ins[0]; break;
                case GateOp::Not: lits_[idx] = ~ins[0]; break;
                case GateOp::And:
                case GateOp::Nand: {
                    const Lit v = pos(s.new_var());
                    emit_and(s, topo.op(g) == GateOp::And ? v : ~v, ins);
                    lits_[idx] = v;
                    break;
                }
                case GateOp::Or:
                case GateOp::Nor: {
                    const Lit v = pos(s.new_var());
                    emit_or(s, topo.op(g) == GateOp::Or ? v : ~v, ins);
                    lits_[idx] = v;
                    break;
                }
                case GateOp::Xor:
                case GateOp::Xnor: {
                    Lit acc = ins[0];
                    for (std::size_t k = 1; k < ins.size(); ++k) {
                        const Lit step = pos(s.new_var());
                        emit_xor2(s, step, acc, ins[k]);
                        acc = step;
                    }
                    lits_[idx] = topo.op(g) == GateOp::Xor ? acc : ~acc;
                    break;
                }
                case GateOp::Const0: lits_[idx] = ~true_lit_; break;
                case GateOp::Const1: lits_[idx] = true_lit_; break;
            }
        }

        // Seed learned facts for this frame (each proven for the real
        // machine, so asserting it only removes impossible executions).
        if (seeds.ties != nullptr) {
            for (GateId g = 0; g < topo.size(); ++g) {
                const Val3 v = seeds.ties->value(g);
                if (v == Val3::X || t < seeds.ties->cycle(g)) continue;
                s.add_clause({lit(g, t, v == Val3::One)});
            }
        }
        if (seeds.equivalences != nullptr && !seeds.equivalences->rep.empty()) {
            for (GateId g = 0; g < topo.size(); ++g) {
                const GateId rep = seeds.equivalences->rep[g];
                if (rep == netlist::kNoGate || rep == g) continue;
                emit_equal(s, lit(g, t),
                           lit(rep, t, !seeds.equivalences->inverted[g]));
            }
        }
    }
    if (seeds.db != nullptr) {
        for (const core::Relation& r : seeds.db->relations()) {
            for (std::uint32_t t = r.frame; t < frames; ++t) {
                s.add_clause({~lit(r.lhs.gate, t, r.lhs.value == Val3::One),
                              lit(r.rhs.gate, t, r.rhs.value == Val3::One)});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FaultMiter

FaultMiter::FaultMiter(const netlist::Topology& topo, Solver& solver)
    : topo_(&topo), solver_(&solver) {}

FaultMiter::Rails FaultMiter::fresh_rails() {
    return {pos(solver_->new_var()), pos(solver_->new_var())};
}

// Dual-rail Kleene encoding of one combinational operator: monotone clauses
// on the is-one / is-zero rails, exactly logic::eval_op_indirect's algebra.
FaultMiter::Rails FaultMiter::comb_rails(GateOp op, const std::vector<Rails>& ins) {
    Solver& s = *solver_;
    std::vector<Lit> ones, zeros;
    ones.reserve(ins.size());
    zeros.reserve(ins.size());
    for (const Rails& r : ins) {
        ones.push_back(r.one);
        zeros.push_back(r.zero);
    }
    auto and_of = [&](std::span<const Lit> lits) {
        if (lits.size() == 1) return lits[0];
        const Lit v = pos(s.new_var());
        emit_and(s, v, lits);
        return v;
    };
    auto or_of = [&](std::span<const Lit> lits) {
        if (lits.size() == 1) return lits[0];
        const Lit v = pos(s.new_var());
        emit_or(s, v, lits);
        return v;
    };
    switch (op) {
        case GateOp::Buf: return ins[0];
        case GateOp::Not: return {ins[0].zero, ins[0].one};
        case GateOp::And: return {and_of(ones), or_of(zeros)};
        case GateOp::Nand: return {or_of(zeros), and_of(ones)};
        case GateOp::Or: return {or_of(ones), and_of(zeros)};
        case GateOp::Nor: return {and_of(zeros), or_of(ones)};
        case GateOp::Xor:
        case GateOp::Xnor: {
            Rails acc = ins[0];
            for (std::size_t k = 1; k < ins.size(); ++k) {
                const Rails b = ins[k];
                const Lit p_and_n = and_of(std::initializer_list<Lit>{acc.one, b.zero});
                const Lit n_and_p = and_of(std::initializer_list<Lit>{acc.zero, b.one});
                const Lit p_and_p = and_of(std::initializer_list<Lit>{acc.one, b.one});
                const Lit n_and_n = and_of(std::initializer_list<Lit>{acc.zero, b.zero});
                const Lit one = pos(s.new_var());
                const Lit zero = pos(s.new_var());
                emit_or(s, one, std::initializer_list<Lit>{p_and_n, n_and_p});
                emit_or(s, zero, std::initializer_list<Lit>{p_and_p, n_and_n});
                acc = {one, zero};
            }
            if (op == GateOp::Xnor) return {acc.zero, acc.one};
            return acc;
        }
        case GateOp::Const0: return {~true_lit_, true_lit_};
        case GateOp::Const1: return {true_lit_, ~true_lit_};
    }
    return {~true_lit_, ~true_lit_};
}

bool FaultMiter::encode(const fault::Fault& f, std::uint32_t frames,
                        const core::TieSet* ties) {
    if (frames == 0) throw std::invalid_argument("FaultMiter: frames must be >= 1");
    const netlist::Topology& topo = *topo_;
    Solver& s = *solver_;
    frames_ = frames;

    // Fault cone: forward reachability from the fault site through both
    // combinational and sequential sinks (same closure FaultSimulator marks).
    in_cone_.assign(topo.size(), 0);
    std::vector<GateId> stack{f.gate};
    in_cone_[f.gate] = 1;
    while (!stack.empty()) {
        const GateId g = stack.back();
        stack.pop_back();
        for (const GateId h : topo.fanouts(g)) {
            if (in_cone_[h] == 0) {
                in_cone_[h] = 1;
                stack.push_back(h);
            }
        }
    }
    bool observable = false;
    for (const GateId o : topo.outputs()) observable |= in_cone_[o] != 0;
    if (!observable) return false;

    true_lit_ = pos(s.new_var());
    s.add_clause({true_lit_});
    const Lit false_lit = ~true_lit_;
    const Rails x_rails{false_lit, false_lit};
    const Rails stuck_rails = f.stuck == Val3::One ? Rails{true_lit_, false_lit}
                                                  : Rails{false_lit, true_lit_};

    const std::size_t n = topo.size();
    good_one_.assign(static_cast<std::size_t>(frames) * n, false_lit);
    good_zero_.assign(static_cast<std::size_t>(frames) * n, false_lit);
    faulty_one_.assign(static_cast<std::size_t>(frames) * n, false_lit);
    faulty_zero_.assign(static_cast<std::size_t>(frames) * n, false_lit);
    input_lits_.assign(static_cast<std::size_t>(frames) * topo.inputs().size(), Lit{});

    std::vector<std::uint32_t> input_index(n, 0);
    const auto inputs = topo.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
        input_index[inputs[i]] = static_cast<std::uint32_t>(i);

    std::vector<Lit> detect_terms;
    std::vector<Rails> ins;

    auto set_good = [&](GateId g, std::uint32_t t, Rails r) {
        const std::size_t k = static_cast<std::size_t>(t) * n + g;
        good_one_[k] = r.one;
        good_zero_[k] = r.zero;
    };
    auto set_faulty = [&](GateId g, std::uint32_t t, Rails r) {
        const std::size_t k = static_cast<std::size_t>(t) * n + g;
        faulty_one_[k] = r.one;
        faulty_zero_[k] = r.zero;
    };
    auto faulty_rails = [&](GateId g, std::uint32_t t) -> Rails {
        const std::size_t k = static_cast<std::size_t>(t) * n + g;
        return {faulty_one_[k], faulty_zero_[k]};
    };
    auto tied_const = [&](GateId g, std::uint32_t t) -> const Rails* {
        static Rails one_rails, zero_rails;
        if (ties == nullptr) return nullptr;
        const Val3 v = ties->value(g);
        if (v == Val3::X || t < ties->cycle(g)) return nullptr;
        one_rails = {true_lit_, false_lit};
        zero_rails = {false_lit, true_lit_};
        return v == Val3::One ? &one_rails : &zero_rails;
    };
    const bool out_fault = f.pin == fault::kOutputPin;

    for (std::uint32_t t = 0; t < frames; ++t) {
        for (const GateId g : topo.schedule()) {
            // Good machine (never forced; ties applied like FaultSimulator's
            // lane 0: the tied value wins at frames >= its proof cycle).
            Rails good;
            if (topo.is_input(g)) {
                const Lit b = pos(s.new_var());
                input_lits_[static_cast<std::size_t>(t) * inputs.size() +
                            input_index[g]] = b;
                good = {b, ~b};
            } else if (const Rails* tc = tied_const(g, t); tc != nullptr &&
                                                           !topo.is_input(g)) {
                good = *tc;
            } else if (topo.is_const(g)) {
                good = topo.op(g) == GateOp::Const1 ? Rails{true_lit_, false_lit}
                                                    : Rails{false_lit, true_lit_};
            } else if (topo.is_seq(g)) {
                good = t == 0 ? x_rails : good_rails(topo.fanins(g)[0], t - 1);
            } else {
                ins.clear();
                for (const GateId fi : topo.fanins(g)) ins.push_back(good_rails(fi, t));
                good = comb_rails(topo.op(g), ins);
            }
            set_good(g, t, good);

            // Faulty machine: copies only inside the cone; outside, the two
            // machines agree line for line.
            if (in_cone_[g] == 0) {
                set_faulty(g, t, good);
                continue;
            }
            if (g == f.gate && out_fault) {
                set_faulty(g, t, stuck_rails);
                continue;
            }
            if (topo.is_input(g) || topo.is_const(g)) {
                set_faulty(g, t, good);
                continue;
            }
            if (topo.is_seq(g)) {
                if (t == 0) {
                    set_faulty(g, t, x_rails);
                } else if (g == f.gate) {  // pin fault on the data input
                    set_faulty(g, t, stuck_rails);
                } else {
                    set_faulty(g, t, faulty_rails(topo.fanins(g)[0], t - 1));
                }
                continue;
            }
            ins.clear();
            const auto fanins = topo.fanins(g);
            for (std::size_t k = 0; k < fanins.size(); ++k) {
                if (g == f.gate && static_cast<std::int32_t>(k) == f.pin)
                    ins.push_back(stuck_rails);
                else
                    ins.push_back(faulty_rails(fanins[k], t));
            }
            set_faulty(g, t, comb_rails(topo.op(g), ins));
        }

        // Detection terms: a cone PO binary in both machines with differing
        // values in some frame.
        for (const GateId o : topo.outputs()) {
            if (in_cone_[o] == 0) continue;
            const Rails g_r = good_rails(o, t);
            const Rails f_r = faulty_rails(o, t);
            const Lit d10 = pos(s.new_var());  // good 1, faulty 0
            s.add_clause({~d10, g_r.one});
            s.add_clause({~d10, f_r.zero});
            detect_terms.push_back(d10);
            const Lit d01 = pos(s.new_var());  // good 0, faulty 1
            s.add_clause({~d01, g_r.zero});
            s.add_clause({~d01, f_r.one});
            detect_terms.push_back(d01);
        }
    }
    s.add_clause(detect_terms);
    return true;
}

sim::InputSequence FaultMiter::witness(const Solver& solver) const {
    const std::size_t num_inputs = topo_->inputs().size();
    sim::InputSequence seq(frames_, sim::InputFrame(num_inputs, Val3::X));
    for (std::uint32_t t = 0; t < frames_; ++t) {
        for (std::size_t i = 0; i < num_inputs; ++i) {
            const Lit b = input_lits_[static_cast<std::size_t>(t) * num_inputs + i];
            const bool v = solver.model_value(b.var()) != b.neg();
            seq[t][i] = v ? Val3::One : Val3::Zero;
        }
    }
    return seq;
}

}  // namespace seqlearn::cnf
