#pragma once
// Embedded CDCL SAT solver — the engine under the timeframe-expansion
// backend. No external dependency: a compact conflict-driven solver with
// two-watched-literal propagation, VSIDS decision ordering, first-UIP
// clause learning, phase saving, Luby restarts, and incremental
// solve-under-assumptions.
//
// Determinism contract: a given clause set + assumption list solves
// identically on every run and every machine. All tie-breaking is by
// variable index (the VSIDS heap comparator is (activity, then lower index
// wins)), clause storage is insertion-ordered, and nothing reads a clock
// except the governance poll.
//
// Governance: the solver polls `exec::poll_point(cancel, budget)` every
// kGovernancePollInterval propagations. A tripped budget (or cancel)
// surfaces as SolveStatus::Stopped with the matching exec::RunStatus —
// never a hang, never a throw — and the solver state stays intact: learned
// clauses are kept and a later solve() picks up where the search left off.

#include "exec/budget.hpp"
#include "exec/cancel.hpp"
#include "exec/outcome.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::cnf {

/// Variable index, 0-based. Create with Solver::new_var().
using Var = std::uint32_t;

/// Literal: variable + sign packed as (var << 1) | negated.
struct Lit {
    std::uint32_t x = 0xFFFFFFFFu;

    constexpr Lit() = default;
    constexpr Lit(Var v, bool negated) : x((v << 1) | (negated ? 1u : 0u)) {}

    constexpr Var var() const noexcept { return x >> 1; }
    constexpr bool neg() const noexcept { return (x & 1u) != 0; }
    constexpr Lit operator~() const noexcept {
        Lit l;
        l.x = x ^ 1u;
        return l;
    }
    constexpr bool operator==(const Lit& o) const noexcept { return x == o.x; }
    constexpr bool operator!=(const Lit& o) const noexcept { return x != o.x; }
};

/// Positive / negative literal helpers.
constexpr Lit pos(Var v) noexcept { return Lit(v, false); }
constexpr Lit neg(Var v) noexcept { return Lit(v, true); }

enum class SolveStatus : std::uint8_t {
    Sat,      ///< satisfying model found (read via model_value)
    Unsat,    ///< unsatisfiable under the given assumptions
    Stopped,  ///< governance stop (see SolveResult::run)
};

struct SolveResult {
    SolveStatus status = SolveStatus::Stopped;
    /// Completed for Sat/Unsat; DeadlineExceeded / Cancelled / LimitReached
    /// for Stopped — the same taxonomy every governed stage reports.
    exec::RunOutcome run;
};

class Solver {
public:
    Solver() = default;

    /// Attach governance hooks polled at propagation-count boundaries (both
    /// may be null; the owner clears them when its run ends).
    void set_governance(const exec::CancelFlag* cancel, exec::Budget* budget) noexcept {
        cancel_ = cancel;
        budget_ = budget;
    }

    /// Allocate a fresh variable and return its index.
    Var new_var();
    std::size_t num_vars() const noexcept { return assign_.size(); }

    /// Add a clause (top-level). Returns false when the clause makes the
    /// formula trivially unsatisfiable (empty after simplification); the
    /// solver is then permanently Unsat.
    bool add_clause(std::span<const Lit> lits);
    bool add_clause(std::initializer_list<Lit> lits) {
        return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
    }

    /// Solve under `assumptions` (may be empty). Incremental: learned
    /// clauses persist across calls, assumptions do not.
    SolveResult solve(std::span<const Lit> assumptions = {});

    /// Model access after SolveStatus::Sat. Every variable is assigned.
    bool model_value(Var v) const noexcept { return model_[v] == 0; }

    /// Failed-literal probe: assert `assumptions`, run unit propagation
    /// only. Returns false when propagation derives a conflict (the
    /// assumption set is inconsistent with the clause database); otherwise
    /// fills `implied` with every literal forced beyond the assumptions
    /// themselves (in trail order — deterministic) and returns true. Either
    /// way the solver is restored to the root level. Sound: every implied
    /// literal is a logical consequence of clauses + assumptions.
    bool probe(std::span<const Lit> assumptions, std::vector<Lit>& implied);

    // Search statistics (cumulative across solve() calls).
    std::uint64_t conflicts() const noexcept { return conflicts_; }
    std::uint64_t propagations() const noexcept { return propagations_; }
    std::uint64_t decisions() const noexcept { return decisions_; }
    std::size_t num_clauses() const noexcept { return num_clauses_; }

private:
    static constexpr std::uint32_t kRefUndef = 0xFFFFFFFFu;
    static constexpr std::uint64_t kGovernancePollInterval = 4096;

    // lbool encoding: 0 = true, 1 = false, 2 = unassigned.
    static constexpr std::uint8_t kTrue = 0, kFalse = 1, kUndef = 2;

    struct Watch {
        std::uint32_t cref;
        Lit blocker;
    };

    std::uint8_t value(Lit l) const noexcept {
        const std::uint8_t a = assign_[l.var()];
        return a == kUndef ? kUndef : static_cast<std::uint8_t>(a ^ (l.neg() ? 1u : 0u));
    }

    std::uint32_t alloc_clause(std::span<const Lit> lits);
    std::span<Lit> clause(std::uint32_t cref) noexcept;
    std::span<const Lit> clause(std::uint32_t cref) const noexcept;

    void enqueue(Lit l, std::uint32_t reason);
    std::uint32_t propagate();
    void analyze(std::uint32_t confl, std::vector<Lit>& learnt, std::uint32_t& bt_level);
    void cancel_until(std::uint32_t level);
    void new_decision_level() { trail_lim_.push_back(trail_.size()); }
    std::uint32_t decision_level() const noexcept {
        return static_cast<std::uint32_t>(trail_lim_.size());
    }
    Lit pick_branch();
    void bump_var(Var v);
    void decay_activities() { var_inc_ /= 0.95; }
    void heap_insert(Var v);
    Var heap_pop();
    void heap_sift_up(std::size_t i);
    bool heap_less(Var a, Var b) const noexcept {
        return activity_[a] > activity_[b] || (activity_[a] == activity_[b] && a < b);
    }
    exec::RunStatus poll_governance();

    // Clause arena: [size][lit...]; cref = offset of the size word.
    std::vector<std::uint32_t> arena_;
    std::size_t num_clauses_ = 0;
    std::vector<std::vector<Watch>> watches_;  // indexed by Lit.x

    std::vector<std::uint8_t> assign_;   // per var: kTrue/kFalse/kUndef
    std::vector<std::uint8_t> model_;    // last Sat model, per var
    std::vector<std::uint8_t> phase_;    // saved phase, per var
    std::vector<std::uint32_t> level_;   // per var
    std::vector<std::uint32_t> reason_;  // per var, cref or kRefUndef
    std::vector<Lit> trail_;
    std::vector<std::size_t> trail_lim_;
    std::size_t qhead_ = 0;

    // VSIDS: binary max-heap over (activity, index) with position map.
    std::vector<double> activity_;
    std::vector<Var> heap_;
    std::vector<std::uint32_t> heap_pos_;  // per var, index in heap_ or ~0
    double var_inc_ = 1.0;

    std::vector<std::uint8_t> seen_;  // analyze scratch
    std::vector<Lit> learnt_scratch_;

    bool ok_ = true;  // false after a top-level conflict: permanently Unsat
    std::uint64_t conflicts_ = 0;
    std::uint64_t propagations_ = 0;
    std::uint64_t decisions_ = 0;
    std::uint64_t poll_at_ = kGovernancePollInterval;

    const exec::CancelFlag* cancel_ = nullptr;
    exec::Budget* budget_ = nullptr;
};

}  // namespace seqlearn::cnf
