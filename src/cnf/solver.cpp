#include "cnf/solver.hpp"

#include <algorithm>

namespace seqlearn::cnf {

namespace {

// Luby restart sequence (1,1,2,1,1,2,4,...) scaled by the base interval.
std::uint64_t luby(std::uint64_t i) {
    std::uint64_t k = 1;
    while ((1ULL << k) - 1 < i + 1) ++k;
    while ((1ULL << k) - 1 != i + 1) {
        --k;
        i -= (1ULL << k) - 1;
    }
    return 1ULL << (k - 1);
}

constexpr std::uint64_t kRestartBase = 100;
constexpr double kActivityRescale = 1e100;

}  // namespace

Var Solver::new_var() {
    const Var v = static_cast<Var>(assign_.size());
    assign_.push_back(kUndef);
    model_.push_back(kFalse);
    phase_.push_back(kFalse);
    level_.push_back(0);
    reason_.push_back(kRefUndef);
    activity_.push_back(0.0);
    heap_pos_.push_back(0xFFFFFFFFu);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

std::uint32_t Solver::alloc_clause(std::span<const Lit> lits) {
    const std::uint32_t cref = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(static_cast<std::uint32_t>(lits.size()));
    for (const Lit l : lits) arena_.push_back(l.x);
    ++num_clauses_;
    return cref;
}

std::span<Lit> Solver::clause(std::uint32_t cref) noexcept {
    return {reinterpret_cast<Lit*>(arena_.data() + cref + 1), arena_[cref]};
}

std::span<const Lit> Solver::clause(std::uint32_t cref) const noexcept {
    return {reinterpret_cast<const Lit*>(arena_.data() + cref + 1), arena_[cref]};
}

bool Solver::add_clause(std::span<const Lit> lits) {
    if (!ok_) return false;
    // Top-level simplification: sort by literal key, drop duplicates and
    // literals false at the root, skip tautologies and clauses already true.
    learnt_scratch_.assign(lits.begin(), lits.end());
    std::sort(learnt_scratch_.begin(), learnt_scratch_.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::size_t out = 0;
    Lit prev;
    for (const Lit l : learnt_scratch_) {
        if (l == prev && out > 0) continue;
        if (out > 0 && l == ~prev) return true;  // tautology
        const std::uint8_t v = value(l);
        if (v == kTrue && level_[l.var()] == 0) return true;   // already satisfied
        if (v == kFalse && level_[l.var()] == 0) continue;     // dead literal
        learnt_scratch_[out++] = l;
        prev = l;
    }
    learnt_scratch_.resize(out);
    if (out == 0) {
        ok_ = false;
        return false;
    }
    if (out == 1) {
        if (value(learnt_scratch_[0]) == kUndef) enqueue(learnt_scratch_[0], kRefUndef);
        if (propagate() != kRefUndef) {
            ok_ = false;
            return false;
        }
        return true;
    }
    const std::uint32_t cref = alloc_clause(learnt_scratch_);
    const auto c = clause(cref);
    watches_[(~c[0]).x].push_back({cref, c[1]});
    watches_[(~c[1]).x].push_back({cref, c[0]});
    return true;
}

void Solver::enqueue(Lit l, std::uint32_t reason) {
    const Var v = l.var();
    assign_[v] = l.neg() ? kFalse : kTrue;
    phase_[v] = assign_[v];
    level_[v] = decision_level();
    reason_[v] = reason;
    trail_.push_back(l);
}

exec::RunStatus Solver::poll_governance() {
    poll_at_ = propagations_ + kGovernancePollInterval;
    return exec::poll_point(cancel_, budget_);
}

std::uint32_t Solver::propagate() {
    std::uint32_t confl = kRefUndef;
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++propagations_;
        auto& ws = watches_[p.x];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watch w = ws[i];
            if (value(w.blocker) == kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            const auto c = clause(w.cref);
            const Lit false_lit = ~p;
            if (c[0] == false_lit) std::swap(c[0], c[1]);
            ++i;
            if (value(c[0]) == kTrue) {
                ws[j++] = {w.cref, c[0]};
                continue;
            }
            bool moved = false;
            for (std::size_t k = 2; k < c.size(); ++k) {
                if (value(c[k]) != kFalse) {
                    std::swap(c[1], c[k]);
                    watches_[(~c[1]).x].push_back({w.cref, c[0]});
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            ws[j++] = {w.cref, c[0]};
            if (value(c[0]) == kFalse) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size()) ws[j++] = ws[i++];
            } else {
                enqueue(c[0], w.cref);
            }
        }
        ws.resize(j);
    }
    return confl;
}

void Solver::bump_var(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > kActivityRescale) {
        for (double& a : activity_) a *= 1.0 / kActivityRescale;
        var_inc_ *= 1.0 / kActivityRescale;
    }
    if (heap_pos_[v] != 0xFFFFFFFFu) heap_sift_up(heap_pos_[v]);
}

void Solver::heap_insert(Var v) {
    if (heap_pos_[v] != 0xFFFFFFFFu) return;
    heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heap_less(v, heap_[parent])) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<std::uint32_t>(i);
}

Var Solver::heap_pop() {
    const Var top = heap_[0];
    heap_pos_[top] = 0xFFFFFFFFu;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[last] = 0;
        std::size_t i = 0;
        for (;;) {
            const std::size_t l = 2 * i + 1, r = 2 * i + 2;
            std::size_t best = i;
            if (l < heap_.size() && heap_less(heap_[l], heap_[best])) best = l;
            if (r < heap_.size() && heap_less(heap_[r], heap_[best])) best = r;
            if (best == i) break;
            std::swap(heap_[i], heap_[best]);
            heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
            heap_pos_[heap_[best]] = static_cast<std::uint32_t>(best);
            i = best;
        }
    }
    return top;
}

Lit Solver::pick_branch() {
    while (!heap_.empty()) {
        const Var v = heap_pop();
        if (assign_[v] == kUndef) {
            ++decisions_;
            return Lit(v, phase_[v] == kFalse);
        }
    }
    Lit undef;
    return undef;
}

void Solver::cancel_until(std::uint32_t level) {
    if (decision_level() <= level) return;
    const std::size_t lim = trail_lim_[level];
    for (std::size_t k = trail_.size(); k > lim; --k) {
        const Var v = trail_[k - 1].var();
        assign_[v] = kUndef;
        reason_[v] = kRefUndef;
        heap_insert(v);
    }
    trail_.resize(lim);
    trail_lim_.resize(level);
    qhead_ = lim;
}

void Solver::analyze(std::uint32_t confl, std::vector<Lit>& learnt,
                     std::uint32_t& bt_level) {
    learnt.clear();
    learnt.push_back(Lit{});  // slot for the asserting (first-UIP) literal
    seen_.resize(assign_.size(), 0);
    std::size_t path = 0;
    Lit p;
    std::size_t index = trail_.size();
    bool first = true;
    do {
        const auto c = clause(confl);
        for (std::size_t k = first ? 0 : 1; k < c.size(); ++k) {
            const Lit q = c[k];
            if (seen_[q.var()] == 0 && level_[q.var()] > 0) {
                bump_var(q.var());
                seen_[q.var()] = 1;
                if (level_[q.var()] >= decision_level()) ++path;
                else learnt.push_back(q);
            }
        }
        first = false;
        while (seen_[trail_[index - 1].var()] == 0) --index;
        p = trail_[index - 1];
        --index;
        confl = reason_[p.var()];
        seen_[p.var()] = 0;
        --path;
    } while (path > 0);
    learnt[0] = ~p;
    // Current-level marks were cleared as the trail walk consumed them; the
    // lower-level literals that entered the clause still carry theirs.
    for (std::size_t k = 1; k < learnt.size(); ++k) seen_[learnt[k].var()] = 0;

    if (learnt.size() == 1) {
        bt_level = 0;
    } else {
        // Second-highest decision level among the clause becomes the
        // backtrack level; its literal moves to the watch position.
        std::size_t max_i = 1;
        for (std::size_t k = 2; k < learnt.size(); ++k) {
            if (level_[learnt[k].var()] > level_[learnt[max_i].var()]) max_i = k;
        }
        std::swap(learnt[1], learnt[max_i]);
        bt_level = level_[learnt[1].var()];
    }
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
    SolveResult res;
    res.run = exec::RunOutcome::completed();
    if (!ok_) {
        res.status = SolveStatus::Unsat;
        return res;
    }
    cancel_until(0);
    if (propagate() != kRefUndef) {
        ok_ = false;
        res.status = SolveStatus::Unsat;
        return res;
    }

    std::uint64_t restarts = 0;
    std::uint64_t conflict_limit = kRestartBase * luby(restarts);
    std::uint64_t conflicts_here = 0;

    for (;;) {
        const std::uint32_t confl = propagate();
        if (propagations_ >= poll_at_) {
            const exec::RunStatus st = poll_governance();
            if (st != exec::RunStatus::Completed) {
                cancel_until(0);
                res.status = SolveStatus::Stopped;
                res.run.status = st;
                if (budget_ != nullptr && budget_->detail() != nullptr &&
                    st != exec::RunStatus::Cancelled)
                    res.run.diagnostic = budget_->detail();
                return res;
            }
        }
        if (confl != kRefUndef) {
            ++conflicts_;
            ++conflicts_here;
            if (decision_level() == 0) {
                ok_ = false;
                res.status = SolveStatus::Unsat;
                return res;
            }
            std::uint32_t bt = 0;
            analyze(confl, learnt_scratch_, bt);
            // Never undo assumption levels a learned clause does not force:
            // backtracking below them is fine (the decide step re-asserts).
            cancel_until(bt);
            if (learnt_scratch_.size() == 1) {
                enqueue(learnt_scratch_[0], kRefUndef);
            } else {
                const std::uint32_t cref = alloc_clause(learnt_scratch_);
                const auto c = clause(cref);
                watches_[(~c[0]).x].push_back({cref, c[1]});
                watches_[(~c[1]).x].push_back({cref, c[0]});
                enqueue(c[0], cref);
            }
            decay_activities();
            continue;
        }
        if (conflicts_here >= conflict_limit) {
            ++restarts;
            conflict_limit = kRestartBase * luby(restarts);
            conflicts_here = 0;
            cancel_until(0);
            continue;
        }
        // Decide: assumptions first, then VSIDS.
        Lit next;
        bool have_next = false;
        while (decision_level() < assumptions.size()) {
            const Lit a = assumptions[decision_level()];
            if (value(a) == kTrue) {
                new_decision_level();  // dummy level keeps the index mapping
            } else if (value(a) == kFalse) {
                cancel_until(0);
                res.status = SolveStatus::Unsat;
                return res;
            } else {
                next = a;
                have_next = true;
                break;
            }
        }
        if (!have_next) {
            next = pick_branch();
            if (next.x == 0xFFFFFFFFu) {
                model_ = assign_;
                cancel_until(0);
                res.status = SolveStatus::Sat;
                return res;
            }
        }
        new_decision_level();
        enqueue(next, kRefUndef);
    }
}

bool Solver::probe(std::span<const Lit> assumptions, std::vector<Lit>& implied) {
    implied.clear();
    if (!ok_) return false;
    cancel_until(0);
    if (propagate() != kRefUndef) {
        ok_ = false;
        return false;
    }
    new_decision_level();
    for (const Lit a : assumptions) {
        if (value(a) == kFalse) {
            cancel_until(0);
            return false;
        }
        if (value(a) == kUndef) enqueue(a, kRefUndef);
    }
    const std::size_t base = trail_.size();
    const bool consistent = propagate() == kRefUndef;
    if (consistent) {
        implied.assign(trail_.begin() + static_cast<std::ptrdiff_t>(base), trail_.end());
    }
    cancel_until(0);
    return consistent;
}

}  // namespace seqlearn::cnf
