#pragma once
// Per-fault CNF proving and cost-based backend routing — the glue between
// the ATPG campaign and the timeframe-expansion backend.
//
// prove_fault builds a fresh FaultMiter + Solver for one fault and solves
// the K-frame detection problem. Sat decodes to a witness input sequence
// (the caller validates it through the independent FaultSimulator before
// taking credit); Unsat is a sound "untestable within K frames" proof under
// the tester model; a governance stop surfaces as Unknown with the matching
// RunOutcome.
//
// route_to_sat is the Backend::Auto policy: a deterministic, pure function
// of (topology, ties, fault) — no clocks, no randomness — so routing
// decisions are identical across runs and thread counts. Features: fault
// cone size (CNF size is linear in cone x frames), level depth span (deep
// cones favor the frame-sim engine's direct search), and learned-tie
// density inside the cone (tied cones make UNSAT proofs cheap, and
// tie-heavy cones are where frame-sim ATPG aborts most).

#include "cnf/solver.hpp"
#include "core/tie.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "guide/testability.hpp"
#include "netlist/topology.hpp"
#include "sim/comb_engine.hpp"

#include <cstdint>

namespace seqlearn::cnf {

/// Which engine targets a fault.
enum class Backend : std::uint8_t {
    FrameSim,  ///< the paper's frame-window structural engine only
    Sat,       ///< the CNF timeframe-expansion backend only
    Auto,      ///< route per fault; SAT also re-targets frame-sim aborts
};

/// Parse "framesim" / "sat" / "auto" (the CLI and server spelling).
/// Returns false on an unknown name, leaving `out` untouched.
bool parse_backend(std::string_view name, Backend& out);
const char* backend_name(Backend b) noexcept;

struct CnfVerdict {
    enum class Kind : std::uint8_t {
        Untestable,  ///< no detecting sequence of <= `frames` frames exists
        Test,        ///< `test` detects the fault (modulo fsim validation)
        Unknown,     ///< governance stop before a verdict (see `run`)
    };
    Kind kind = Kind::Unknown;
    /// Proof flavor when Untestable: Structural (cone reaches no output —
    /// valid for every K) or BoundedCnf (valid for this `frames` bound).
    fault::UntestableProof proof = fault::UntestableProof::None;
    sim::InputSequence test;
    std::uint32_t frames = 0;    ///< frame bound the verdict was proved at
    std::uint64_t conflicts = 0; ///< solver conflicts spent
    exec::RunOutcome run;        ///< Completed, or the governance stop
};

/// Solve the K-frame detection problem for `f` with a fresh solver. `ties`
/// must be the same tie set the validating FaultSimulator is configured
/// with (null = none). Deterministic; polls governance inside the solve.
CnfVerdict prove_fault(const netlist::Topology& topo, const fault::Fault& f,
                       std::uint32_t frames, const core::TieSet* ties,
                       const exec::CancelFlag* cancel, exec::Budget* budget);

/// Backend::Auto per-fault routing decision (see header comment). When a
/// Testability analysis is supplied (SCOAP-guided campaigns), its hardness
/// score joins the feature set: SCOAP-hard faults are where the guided
/// frame-sim engine aborts, so they buy a larger CNF cap, and kInf-hard
/// faults (untestable-looking) route to SAT whenever the bounded proof is
/// tractable. Null keeps the historical structural-features-only policy —
/// still a pure deterministic function either way.
bool route_to_sat(const netlist::Topology& topo, const fault::Fault& f,
                  std::uint32_t frames, const core::TieSet* ties,
                  const guide::Testability* tst = nullptr);

}  // namespace seqlearn::cnf
