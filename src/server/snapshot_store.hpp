#pragma once
// Durable, content-addressed store of learned-DB snapshots.
//
// The DesignCache makes the daemon fast across *requests*; this store makes
// it fast across *restarts*. Every first successful full learn writes one
// entry — the original .bench bytes plus the binary v2 learned blob — keyed
// by the FNV-1a digest of the bench bytes, to `<dir>/<16-hex-digest>.snap`.
// A restarted daemon scans the directory once, rebuilds its index, and a
// later request naming a stored design re-attaches the learned snapshot
// instead of re-learning: a warm restart costs one parse, not a learn run.
//
// Entry file layout (all integers little-endian):
//
//     offset  size  field
//          0     8  magic "SEQLSTR1"
//          8     4  version (1), u32
//         12     4  reserved (0)
//         16     8  design digest (content_digest of the bench bytes), u64
//         24     8  bench byte count B, u64
//         32     8  learned blob byte count L, u64
//         40     B  bench bytes, verbatim as first submitted
//        40+B    L  learned blob, db_io binary v2 (magic "SEQLNDB2")
//
// Durability: every entry is written through util::atomic_write_file (temp
// file in the store dir -> fsync -> rename -> directory fsync), so a crash
// at any instant leaves each entry path holding either nothing, the
// complete previous entry, or the complete new one — never a torn file.
//
// Recovery: open() scans the directory. Leftover temp files are deleted
// (an interrupted put; the entry path itself was never touched). Each
// *.snap file is structurally validated — magic, version, digest-vs-name
// agreement, digest recomputed over the stored bench bytes, section sizes
// tiling the file exactly, and core::probe_binary_db over the learned
// section. Anything that fails is renamed to *.quarantined (kept for
// post-mortems, invisible to the index) and counted. The expensive
// netlist-digest + contraposition-closure checks still run when a blob is
// actually attached (db_io load_learned_binary); a deep-validation failure
// there is reported back through quarantine(), so a corrupt entry is served
// at most zero times.
//
// Disk budget: entries are LRU-tracked (seeded from file mtime at scan
// time, bumped by fetch/put) and inserting past `max_bytes` unlinks
// least-recently-used entries first.
//
// Thread safety: all public methods lock one mutex; entry files are small
// relative to learn times, so holding it across file I/O is fine.

#include "exec/failpoint.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace seqlearn::server {

struct SnapshotStoreConfig {
    std::string dir;                   ///< store directory (created if absent)
    std::size_t max_bytes = 256u << 20;  ///< disk budget; 0 = unlimited
    /// Chaos hook (null in production): injects failures at the FsWrite /
    /// FsFsync / FsRename sites inside put()'s atomic_write_file.
    exec::FailurePoint* failpoint = nullptr;
};

struct SnapshotStoreStats {
    std::size_t entries = 0;
    std::size_t bytes = 0;        ///< on-disk bytes across live entries
    std::size_t max_bytes = 0;
    std::size_t quarantined = 0;  ///< corrupt entries set aside (scan + deep)
    std::size_t puts = 0;
    std::size_t put_failures = 0;
    std::size_t fetch_hits = 0;
    std::size_t fetch_misses = 0;
    std::size_t evictions = 0;
};

/// One stored entry, as fetched: the design's original bench bytes and the
/// binary v2 learned blob to validate against the compiled netlist.
struct StoredSnapshot {
    std::uint64_t digest = 0;
    std::string bench;
    std::string learned;
};

class SnapshotStore {
public:
    /// Open (creating the directory if needed) and run the recovery scan.
    /// Returns null with *error set when the directory cannot be created or
    /// read; individual corrupt entries never fail open() — they quarantine.
    static std::unique_ptr<SnapshotStore> open(SnapshotStoreConfig cfg,
                                               std::string* error);

    /// Write-through: persist (bench, learned blob) under `digest`,
    /// crash-safely, then evict LRU entries past the byte budget. Returns
    /// false with *error set on I/O failure (real or injected); the store
    /// and the entry path are left consistent either way.
    bool put(std::uint64_t digest, std::string_view bench, std::string_view learned,
             std::string* error);

    /// Read an entry back, bumping it to most-recently-used. nullopt when
    /// absent. A file that fails re-validation on read (changed underneath
    /// us) is quarantined and reported absent.
    std::optional<StoredSnapshot> fetch(std::uint64_t digest);

    bool contains(std::uint64_t digest) const;

    /// Deep-validation failure callback: the caller tried to attach a
    /// fetched blob and db_io rejected it (digest/closure mismatch). The
    /// entry file is renamed aside and dropped from the index, so the next
    /// request re-learns instead of re-tripping.
    void quarantine(std::uint64_t digest);

    SnapshotStoreStats stats() const;

    const std::string& dir() const { return cfg_.dir; }

private:
    explicit SnapshotStore(SnapshotStoreConfig cfg) : cfg_(std::move(cfg)) {}

    struct IndexEntry {
        std::uint64_t digest = 0;
        std::size_t file_bytes = 0;
    };
    using LruList = std::list<IndexEntry>;

    bool scan(std::string* error);
    std::string entry_path(std::uint64_t digest) const;
    void quarantine_file_locked(const std::string& path);
    void drop_locked(std::uint64_t digest);
    void evict_past_cap_locked();

    SnapshotStoreConfig cfg_;
    mutable std::mutex mu_;
    LruList lru_;  // front = most recent
    std::unordered_map<std::uint64_t, LruList::iterator> by_digest_;
    std::size_t bytes_ = 0;
    std::size_t quarantined_ = 0;
    std::size_t puts_ = 0;
    std::size_t put_failures_ = 0;
    std::size_t fetch_hits_ = 0;
    std::size_t fetch_misses_ = 0;
    std::size_t evictions_ = 0;
};

}  // namespace seqlearn::server
