#include "server/snapshot_store.hpp"

#include "core/db_io.hpp"
#include "server/design_cache.hpp"
#include "util/atomic_file.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace seqlearn::server {

namespace {

constexpr char kStoreMagic[8] = {'S', 'E', 'Q', 'L', 'S', 'T', 'R', '1'};
constexpr std::uint32_t kStoreVersion = 1;
constexpr std::size_t kStoreHeaderBytes = 40;
constexpr char kEntrySuffix[] = ".snap";
constexpr char kQuarantineSuffix[] = ".quarantined";

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

std::string digest_hex(std::uint64_t digest) {
    static const char* kHex = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
        digest >>= 4;
    }
    return s;
}

/// Parse a "<16 hex>.snap" file name back to its digest. nullopt for
/// anything else (temp files, quarantined entries, stray files).
std::optional<std::uint64_t> digest_from_name(std::string_view name) {
    const std::string_view suffix = kEntrySuffix;
    if (name.size() != 16 + suffix.size()) return std::nullopt;
    if (name.substr(16) != suffix) return std::nullopt;
    std::uint64_t v = 0;
    for (const char c : name.substr(0, 16)) {
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else return std::nullopt;
    }
    return v;
}

bool read_file(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = std::move(buf).str();
    return static_cast<bool>(in);
}

/// Structural + self-consistency validation of an entry file's bytes:
/// header intact, named digest matches both the header and a recomputation
/// over the stored bench bytes, sections tile the file exactly, and the
/// learned section parses as a binary v2 blob. Does NOT check the learned
/// blob against a netlist — that is attach-time work.
bool validate_entry(std::uint64_t expect_digest, const std::string& bytes,
                    StoredSnapshot* out) {
    if (bytes.size() < kStoreHeaderBytes) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    if (std::memcmp(p, kStoreMagic, sizeof kStoreMagic) != 0) return false;
    if (get_u32(p + 8) != kStoreVersion) return false;
    if (get_u32(p + 12) != 0) return false;
    const std::uint64_t digest = get_u64(p + 16);
    const std::uint64_t bench_bytes = get_u64(p + 24);
    const std::uint64_t learned_bytes = get_u64(p + 32);
    if (digest != expect_digest) return false;
    if (bench_bytes > bytes.size() || learned_bytes > bytes.size()) return false;
    if (kStoreHeaderBytes + bench_bytes + learned_bytes != bytes.size()) return false;
    const std::string_view bench(bytes.data() + kStoreHeaderBytes,
                                 static_cast<std::size_t>(bench_bytes));
    const std::string_view learned(
        bytes.data() + kStoreHeaderBytes + static_cast<std::size_t>(bench_bytes),
        static_cast<std::size_t>(learned_bytes));
    if (content_digest(bench) != digest) return false;
    if (!core::probe_binary_db(learned)) return false;
    if (out) {
        out->digest = digest;
        out->bench.assign(bench);
        out->learned.assign(learned);
    }
    return true;
}

}  // namespace

std::unique_ptr<SnapshotStore> SnapshotStore::open(SnapshotStoreConfig cfg,
                                                   std::string* error) {
    if (cfg.dir.empty()) {
        if (error) *error = "snapshot store: empty directory path";
        return nullptr;
    }
    if (::mkdir(cfg.dir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (error)
            *error = "snapshot store: cannot create " + cfg.dir + ": " +
                     std::strerror(errno);
        return nullptr;
    }
    std::unique_ptr<SnapshotStore> store(new SnapshotStore(std::move(cfg)));
    if (!store->scan(error)) return nullptr;
    return store;
}

bool SnapshotStore::scan(std::string* error) {
    DIR* dir = ::opendir(cfg_.dir.c_str());
    if (dir == nullptr) {
        if (error)
            *error = "snapshot store: cannot read " + cfg_.dir + ": " +
                     std::strerror(errno);
        return false;
    }
    struct Found {
        std::uint64_t digest;
        std::size_t bytes;
        std::int64_t mtime;
    };
    std::vector<Found> found;
    while (const dirent* ent = ::readdir(dir)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..") continue;
        const std::string path = cfg_.dir + "/" + name;
        // A leftover temp file is an interrupted put: the entry path was
        // never touched, so the temp is pure garbage — delete it.
        if (name.find(".tmp.") != std::string::npos) {
            ::unlink(path.c_str());
            continue;
        }
        if (name.size() > sizeof kQuarantineSuffix &&
            name.compare(name.size() - (sizeof kQuarantineSuffix - 1),
                         sizeof kQuarantineSuffix - 1, kQuarantineSuffix) == 0) {
            ++quarantined_;
            continue;
        }
        const std::optional<std::uint64_t> digest = digest_from_name(name);
        if (!digest) continue;  // not ours; leave foreign files alone
        struct stat st = {};
        if (::stat(path.c_str(), &st) != 0) continue;
        std::string bytes;
        if (!read_file(path, &bytes) || !validate_entry(*digest, bytes, nullptr)) {
            quarantine_file_locked(path);
            continue;
        }
        found.push_back({*digest, static_cast<std::size_t>(st.st_size),
                         static_cast<std::int64_t>(st.st_mtime)});
    }
    ::closedir(dir);
    // Seed recency from mtime: newest files were written last, so they
    // should be the last evicted.
    std::sort(found.begin(), found.end(),
              [](const Found& a, const Found& b) { return a.mtime > b.mtime; });
    for (const Found& f : found) {
        lru_.push_back({f.digest, f.bytes});
        by_digest_[f.digest] = std::prev(lru_.end());
        bytes_ += f.bytes;
    }
    evict_past_cap_locked();
    return true;
}

std::string SnapshotStore::entry_path(std::uint64_t digest) const {
    return cfg_.dir + "/" + digest_hex(digest) + kEntrySuffix;
}

void SnapshotStore::quarantine_file_locked(const std::string& path) {
    // Keep the bytes for post-mortems but make the name invisible to the
    // index. Rename failure (exotic: permissions changed underneath us)
    // degrades to unlink so a corrupt entry can never be re-read.
    const std::string aside = path + kQuarantineSuffix;
    if (::rename(path.c_str(), aside.c_str()) != 0) ::unlink(path.c_str());
    util::fsync_parent_dir(path);
    ++quarantined_;
}

void SnapshotStore::drop_locked(std::uint64_t digest) {
    const auto it = by_digest_.find(digest);
    if (it == by_digest_.end()) return;
    bytes_ -= it->second->file_bytes;
    lru_.erase(it->second);
    by_digest_.erase(it);
}

void SnapshotStore::evict_past_cap_locked() {
    if (cfg_.max_bytes == 0) return;
    while (bytes_ > cfg_.max_bytes && !lru_.empty()) {
        const IndexEntry victim = lru_.back();
        const std::string path = entry_path(victim.digest);
        ::unlink(path.c_str());
        util::fsync_parent_dir(path);
        drop_locked(victim.digest);
        ++evictions_;
    }
}

bool SnapshotStore::put(std::uint64_t digest, std::string_view bench,
                        std::string_view learned, std::string* error) {
    std::string bytes;
    bytes.reserve(kStoreHeaderBytes + bench.size() + learned.size());
    bytes.append(kStoreMagic, sizeof kStoreMagic);
    put_u32(bytes, kStoreVersion);
    put_u32(bytes, 0);
    put_u64(bytes, digest);
    put_u64(bytes, bench.size());
    put_u64(bytes, learned.size());
    bytes.append(bench);
    bytes.append(learned);

    std::lock_guard<std::mutex> lock(mu_);
    const std::string path = entry_path(digest);
    if (!util::atomic_write_file(path, bytes, error, cfg_.failpoint)) {
        ++put_failures_;
        return false;
    }
    drop_locked(digest);  // replacing an existing entry re-charges its bytes
    lru_.push_front({digest, bytes.size()});
    by_digest_[digest] = lru_.begin();
    bytes_ += bytes.size();
    ++puts_;
    evict_past_cap_locked();
    return true;
}

std::optional<StoredSnapshot> SnapshotStore::fetch(std::uint64_t digest) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_digest_.find(digest);
    if (it == by_digest_.end()) {
        ++fetch_misses_;
        return std::nullopt;
    }
    const std::string path = entry_path(digest);
    std::string bytes;
    StoredSnapshot out;
    if (!read_file(path, &bytes) || !validate_entry(digest, bytes, &out)) {
        // The file changed (or vanished) underneath the index — set it
        // aside and report a miss so the caller re-learns.
        quarantine_file_locked(path);
        drop_locked(digest);
        ++fetch_misses_;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
    ++fetch_hits_;
    return out;
}

bool SnapshotStore::contains(std::uint64_t digest) const {
    std::lock_guard<std::mutex> lock(mu_);
    return by_digest_.count(digest) != 0;
}

void SnapshotStore::quarantine(std::uint64_t digest) {
    std::lock_guard<std::mutex> lock(mu_);
    if (by_digest_.count(digest) == 0) return;
    quarantine_file_locked(entry_path(digest));
    drop_locked(digest);
}

SnapshotStoreStats SnapshotStore::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    SnapshotStoreStats s;
    s.entries = by_digest_.size();
    s.bytes = bytes_;
    s.max_bytes = cfg_.max_bytes;
    s.quarantined = quarantined_;
    s.puts = puts_;
    s.put_failures = put_failures_;
    s.fetch_hits = fetch_hits_;
    s.fetch_misses = fetch_misses_;
    s.evictions = evictions_;
    return s;
}

}  // namespace seqlearn::server
