#pragma once
// Minimal JSON for the serving protocol.
//
// The server speaks newline-framed JSON: one request object per line in,
// one response object per line out, the same schema the CLI's --json mode
// prints. Requests are small and flat (a command name, a design digest, a
// handful of numeric knobs, at most one large string — the .bench text), so
// a dependency-free recursive-descent parser is all that is needed; writing
// stays string-building with a shared escaper, exactly like the CLI.
//
// Numbers are stored as double. Every numeric field in the protocol (ports,
// budgets, counts, thread counts) fits a double exactly; 64-bit digests do
// NOT, which is why the protocol transports them as hex *strings*
// (see hex_u64 / parse_hex_u64).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace seqlearn::server {

/// A parsed JSON value. Objects keep their members in a sorted map — the
/// protocol never depends on member order.
class JsonValue {
public:
    enum class Type : std::uint8_t { Null, Bool, Number, String, Object, Array };

    JsonValue() = default;

    Type type() const noexcept { return type_; }
    bool is_object() const noexcept { return type_ == Type::Object; }
    bool is_string() const noexcept { return type_ == Type::String; }
    bool is_number() const noexcept { return type_ == Type::Number; }

    bool as_bool(bool fallback = false) const noexcept {
        return type_ == Type::Bool ? bool_ : fallback;
    }
    double as_number(double fallback = 0.0) const noexcept {
        return type_ == Type::Number ? num_ : fallback;
    }
    const std::string& as_string() const noexcept { return str_; }

    /// Object member lookup; null when absent or not an object.
    const JsonValue* get(std::string_view key) const;

    /// Typed member shorthands (fallback when absent or wrong-typed).
    std::string get_string(std::string_view key, std::string fallback = {}) const;
    double get_number(std::string_view key, double fallback = 0.0) const;
    bool get_bool(std::string_view key, bool fallback = false) const;

    const std::vector<JsonValue>& items() const noexcept { return arr_; }

    /// Parse one JSON document. On failure returns nullopt and, when
    /// `error` is non-null, stores a one-line reason. Trailing garbage
    /// after the document is an error (a frame is exactly one object).
    static std::optional<JsonValue> parse(std::string_view text, std::string* error);

private:
    friend class Parser;
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::map<std::string, JsonValue, std::less<>> obj_;
    std::vector<JsonValue> arr_;
};

/// Escape `s` for embedding in a JSON string literal (same rules as the
/// CLI's --json printer).
std::string json_escape(std::string_view s);

/// Lossless transport for 64-bit digests: fixed-width lowercase hex.
std::string hex_u64(std::uint64_t v);

/// Inverse of hex_u64 (leading "0x" optional). Returns nullopt on anything
/// that is not pure hex of at most 16 digits.
std::optional<std::uint64_t> parse_hex_u64(std::string_view s);

}  // namespace seqlearn::server
