#include "server/service.hpp"

#include "api/session.hpp"
#include "cnf/dispatch.hpp"
#include "core/db_io.hpp"
#include "core/impl_db.hpp"
#include "server/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace seqlearn::server {

namespace {

/// The CLI's exit_code_for, as protocol codes.
ProtoCode code_for(const exec::RunOutcome& o) {
    switch (o.status) {
        case exec::RunStatus::Completed: return ProtoCode::Ok;
        case exec::RunStatus::DeadlineExceeded:
        case exec::RunStatus::LimitReached: return ProtoCode::Budget;
        case exec::RunStatus::Cancelled: return ProtoCode::Cancelled;
        case exec::RunStatus::Failed: return ProtoCode::Internal;
    }
    return ProtoCode::Internal;
}

std::string outcome_json(const exec::RunOutcome& o) {
    std::string out = "{\"status\": \"";
    out += o.name();
    out += "\"";
    if (!o.diagnostic.empty())
        out += ", \"diagnostic\": \"" + json_escape(o.diagnostic) + "\"";
    out += "}";
    return out;
}

std::string diagnostics_json(const netlist::Diagnostics& diags) {
    std::string out = "[";
    bool first = true;
    for (const netlist::Diagnostic& d : diags.records()) {
        if (!first) out += ", ";
        first = false;
        out += "{\"severity\": \"";
        out += d.severity == netlist::Severity::Error ? "error" : "warning";
        out += "\", \"line\": " + std::to_string(d.line);
        out += ", \"message\": \"" + json_escape(d.message) + "\"}";
    }
    out += "]";
    return out;
}

/// Common response head: {"ok": ..., "cmd": ..., "id": ..., "code": N
std::string head(bool ok, std::string_view cmd, const std::string& id, ProtoCode code) {
    std::string out = ok ? "{\"ok\": true" : "{\"ok\": false";
    out += ", \"cmd\": \"";
    out += cmd;
    out += "\"";
    if (!id.empty()) out += ", \"id\": \"" + json_escape(id) + "\"";
    out += ", \"code\": " + std::to_string(static_cast<int>(code));
    return out;
}

std::string error_response(std::string_view cmd, const std::string& id, ProtoCode code,
                           const char* cls, const std::string& message,
                           const std::string& extra = {}) {
    std::string out = head(false, cmd, id, code);
    out += ", \"error\": {\"code\": " + std::to_string(static_cast<int>(code));
    out += ", \"class\": \"";
    out += cls;
    out += "\", \"message\": \"" + json_escape(message) + "\"";
    if (!extra.empty()) out += ", " + extra;
    out += "}}";
    return out;
}

std::string fmt_double(double v, const char* fmt = "%.4f") {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    return buf;
}

/// Parse the shared governance fields (deadline_ms / limit knobs) into a
/// BudgetSpec. Absent fields leave the spec unlimited.
exec::BudgetSpec budget_from(const JsonValue& req, const char* item_key) {
    exec::BudgetSpec spec;
    const double deadline = req.get_number("deadline_ms", 0.0);
    if (deadline > 0) spec.deadline = std::chrono::milliseconds(
        static_cast<long long>(deadline));
    const double items = req.get_number(item_key, 0.0);
    if (items > 0) spec.max_items = static_cast<std::size_t>(items);
    return spec;
}

}  // namespace

struct Service::Resolved {
    DesignCache::Entry entry;
    std::string error;  ///< response line; empty on success
};

// RAII over the bounded session pool.
class Service::SlotGuard {
public:
    SlotGuard(Service& svc, bool acquired) : svc_(svc), acquired_(acquired) {
        if (acquired_) svc_.active_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SlotGuard() {
        if (acquired_) {
            svc_.active_.fetch_sub(1, std::memory_order_acq_rel);
            svc_.release_slot();
        }
    }
    SlotGuard(const SlotGuard&) = delete;
    SlotGuard& operator=(const SlotGuard&) = delete;

private:
    Service& svc_;
    bool acquired_;
};

// RAII over the in-flight cancellation registry.
class Service::InflightGuard {
public:
    InflightGuard(Service& svc, const std::string& id)
        : svc_(svc), id_(id), flag_(svc.register_inflight(id)) {}
    ~InflightGuard() { svc_.unregister_inflight(id_); }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;

    const std::shared_ptr<std::atomic<bool>>& flag() const noexcept { return flag_; }

private:
    Service& svc_;
    std::string id_;
    std::shared_ptr<std::atomic<bool>> flag_;
};

Service::Service(ServiceConfig cfg) : cfg_(cfg), cache_(cfg.cache) {
    if (cfg_.max_sessions == 0) cfg_.max_sessions = 1;
}

bool Service::acquire_slot() {
    std::unique_lock<std::mutex> lock(slots_mu_);
    if (!slots_cv_.wait_for(lock, cfg_.queue_timeout, [&] {
            return slots_in_use_ < cfg_.max_sessions ||
                   draining_.load(std::memory_order_acquire);
        }))
        return false;
    if (draining_.load(std::memory_order_acquire)) return false;
    ++slots_in_use_;
    return true;
}

void Service::release_slot() {
    {
        std::lock_guard<std::mutex> lock(slots_mu_);
        --slots_in_use_;
    }
    slots_cv_.notify_one();
}

std::shared_ptr<std::atomic<bool>> Service::register_inflight(const std::string& id) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto& slot = inflight_[id];
    if (!slot) slot = std::make_shared<std::atomic<bool>>(false);
    return slot;
}

void Service::unregister_inflight(const std::string& id) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(id);
    // Requests sharing an id share one flag; the map entry holds one extra
    // reference, so use_count() == 2 means this was the last request under
    // the id.
    if (it != inflight_.end() && it->second.use_count() <= 2) inflight_.erase(it);
}

void Service::begin_drain() {
    draining_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        for (auto& [id, flag] : inflight_) flag->store(true, std::memory_order_release);
    }
    slots_cv_.notify_all();
}

std::string Service::handle(std::string_view frame) {
    served_.fetch_add(1, std::memory_order_relaxed);
    try {
        return dispatch(frame);
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response("", "", ProtoCode::Internal, "internal", e.what());
    } catch (...) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response("", "", ProtoCode::Internal, "internal",
                              "unknown exception");
    }
}

std::string Service::dispatch(std::string_view frame) {
    std::string parse_error;
    const std::optional<JsonValue> doc = JsonValue::parse(frame, &parse_error);
    if (!doc || !doc->is_object()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response("", "", ProtoCode::Parse, "frame",
                              doc ? "request frame is not a JSON object"
                                  : "malformed JSON frame: " + parse_error);
    }
    const std::string cmd = doc->get_string("cmd");
    std::string id = doc->get_string("id");

    // Control plane: never queued, never blocked by a full session pool.
    if (cmd == "stats") return cmd_stats(*doc, id);
    if (cmd == "cancel") return cmd_cancel(*doc, id);
    if (cmd == "shutdown") return cmd_shutdown(id);

    const bool heavy =
        cmd == "load" || cmd == "learn" || cmd == "atpg" || cmd == "fault_sim";
    if (!heavy) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(cmd, id, ProtoCode::Usage, "usage",
                              cmd.empty() ? "request has no \"cmd\" member"
                                          : "unknown command \"" + cmd + "\"");
    }
    if (draining_.load(std::memory_order_acquire)) {
        return error_response(cmd, id, ProtoCode::Cancelled, "shutting_down",
                              "server is draining; request rejected");
    }
    if (!acquire_slot()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(cmd, id, ProtoCode::Overloaded, "overloaded",
                              "no session slot available within the queue timeout");
    }
    SlotGuard slot(*this, true);
    // Anonymous requests still need a unique registry key so drain can
    // cancel them; clients that want cross-connection cancel send their own.
    if (id.empty())
        id = "r" + std::to_string(
                 next_request_seq_.fetch_add(1, std::memory_order_relaxed));
    if (cmd == "load") return cmd_load(*doc, id);
    if (cmd == "learn") return cmd_learn(*doc, id);
    if (cmd == "atpg") return cmd_atpg(*doc, id);
    return cmd_fault_sim(*doc, id);
}

std::string Service::cmd_load(const JsonValue& req, const std::string& id) {
    std::string bytes;
    std::string name = req.get_string("name", "circuit");
    if (const JsonValue* bench = req.get("bench"); bench && bench->is_string()) {
        bytes = bench->as_string();
    } else if (const JsonValue* path = req.get("path"); path && path->is_string()) {
        std::ifstream in(path->as_string(), std::ios::binary);
        if (!in)
            return error_response("load", id, ProtoCode::Usage, "io",
                                  "cannot read " + path->as_string());
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = std::move(buf).str();
        if (name == "circuit") name = path->as_string();
    } else {
        return error_response("load", id, ProtoCode::Usage, "usage",
                              "load needs a \"bench\" or \"path\" string member");
    }

    DesignCache::LoadResult loaded = cache_.load(bytes, std::move(name));
    if (!loaded.entry.design) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return error_response(
            "load", id, ProtoCode::Parse, "parse",
            "bench text failed to parse (" +
                std::to_string(loaded.diagnostics.error_count()) + " errors)",
            "\"diagnostics\": " + diagnostics_json(loaded.diagnostics));
    }
    const api::Design& d = *loaded.entry.design;
    std::string out = head(true, "load", id, ProtoCode::Ok);
    out += ", \"design\": \"" + hex_u64(loaded.entry.digest) + "\"";
    out += loaded.was_cached ? ", \"cached\": true" : ", \"cached\": false";
    out += ", \"circuit\": \"" + json_escape(d.name()) + "\"";
    out += ", \"gates\": " + std::to_string(d.netlist().size());
    out += ", \"stems\": " + std::to_string(d.stems().size());
    out += ", \"collapsed_faults\": " + std::to_string(d.collapsed_faults().size());
    out += ", \"memory_bytes\": " + std::to_string(loaded.entry.bytes);
    if (!loaded.diagnostics.empty())
        out += ", \"diagnostics\": " + diagnostics_json(loaded.diagnostics);
    out += "}";
    return out;
}

/// Resolve the request's "design" digest: in-memory cache first, then the
/// durable snapshot store. The store fallback is the warm-restart path — a
/// restarted daemon (or one whose cache evicted the entry) recompiles the
/// stored bench bytes and re-attaches the learned snapshot, so the client
/// never re-learns. A stored blob that fails the deep attach-time checks
/// (netlist digest / contraposition closure, db_io load_snapshot) is
/// quarantined and the design resolves cold instead — corrupt data is never
/// served. The error response for a digest known nowhere tells the client
/// to re-`load` — that is the eviction contract.
Service::Resolved Service::resolve(const JsonValue& req, std::string_view cmd,
                                   const std::string& id) {
    Resolved out;
    const std::string digest_s = req.get_string("design");
    if (digest_s.empty()) {
        out.error = error_response(cmd, id, ProtoCode::Usage, "usage",
                                   "missing \"design\" digest (from a load response)");
        return out;
    }
    const std::optional<std::uint64_t> digest = parse_hex_u64(digest_s);
    if (!digest) {
        out.error = error_response(cmd, id, ProtoCode::Usage, "usage",
                                   "\"design\" is not a hex digest: " + digest_s);
        return out;
    }
    out.entry = cache_.find(*digest);
    SnapshotStore* st = store();
    const bool try_store =
        st != nullptr && (!out.entry.design ||
                          (!out.entry.learned && st->contains(*digest)));
    if (try_store) {
        if (std::optional<StoredSnapshot> stored = st->fetch(*digest)) {
            if (!out.entry.design) {
                // content_digest(stored->bench) == *digest (validated by the
                // store), so this lands on exactly the requested entry.
                cache_.load(stored->bench, "restored-" + digest_s);
                out.entry = cache_.find(*digest);
            }
            if (out.entry.design && !out.entry.learned) {
                try {
                    std::istringstream in(stored->learned);
                    const core::LoadedSnapshot snap =
                        core::load_snapshot(in, out.entry.design->netlist());
                    cache_.attach_learned(*digest, snap.snapshot);
                    out.entry = cache_.find(*digest);
                } catch (const std::exception&) {
                    st->quarantine(*digest);  // deep validation failed
                }
            }
        }
    }
    if (!out.entry.design) {
        out.error = error_response(
            cmd, id, ProtoCode::Usage, "unknown_design",
            "design " + digest_s + " is not cached (never loaded, or evicted); "
            "re-send the load request");
    }
    return out;
}

void Service::store_write_through(const DesignCache::Entry& entry,
                                  const core::LearnedSnapshot& snap) {
    SnapshotStore* st = store();
    if (st == nullptr || entry.bench == nullptr || entry.design == nullptr) return;
    std::ostringstream buf;
    core::save_learned_binary(buf, entry.design->netlist(), snap.result().db,
                              snap.result().ties);
    std::string error;
    // Best effort: a failed put (disk full, injected fault) is counted in
    // the store stats; the in-memory snapshot still serves this process.
    st->put(entry.digest, *entry.bench, std::move(buf).str(), &error);
}

std::string Service::cmd_learn(const JsonValue& req, const std::string& id) {
    Resolved r = resolve(req, "learn", id);
    if (!r.error.empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return r.error;
    }
    const bool force = req.get_bool("force", false);
    const double frames = req.get_number("frames", 0.0);
    const double sat_frames = req.get_number("sat_frames", 0.0);

    // Warm path: a previous request's completed learn is attached to the
    // cache entry; with no result-affecting override, serve it directly —
    // no Session, no simulation, microseconds.
    if (!force && frames <= 0 && sat_frames <= 0 && r.entry.learned) {
        const core::LearnResult& res = r.entry.learned->result();
        std::string out = head(true, "learn", id, ProtoCode::Ok);
        out += ", \"design\": \"" + hex_u64(r.entry.digest) + "\"";
        out += ", \"warm\": true";
        out += ", \"relations\": " + std::to_string(res.db.size());
        out += ", \"ties\": " + std::to_string(res.ties.count());
        out += ", \"equiv_classes\": " + std::to_string(res.stats.equiv_classes);
        out += ", \"stems_processed\": " + std::to_string(res.stats.stems_processed);
        out += ", \"cpu_seconds\": " + fmt_double(res.stats.cpu_seconds, "%.3f");
        out += ", \"relation_hash\": \"" + hex_u64(core::relation_hash(res.db)) + "\"";
        out += ", \"outcome\": " + outcome_json(res.outcome);
        out += "}";
        return out;
    }

    InflightGuard inflight(*this, id);
    const std::shared_ptr<std::atomic<bool>> cancel = inflight.flag();
    api::SessionConfig scfg;
    scfg.threads = static_cast<unsigned>(req.get_number("threads", cfg_.threads));
    scfg.progress = [cancel, this](const api::Progress&) {
        return !cancel->load(std::memory_order_acquire) && !draining();
    };
    api::Session session(r.entry.design, std::move(scfg));

    core::LearnConfig lcfg;
    if (frames > 0) lcfg.max_frames = static_cast<std::uint32_t>(frames);
    if (sat_frames > 0) lcfg.sat_frames = static_cast<std::uint32_t>(sat_frames);
    lcfg.budget = budget_from(req, "limit_stems");
    const core::LearnResult& res = session.learn(lcfg);
    if (res.outcome.status == exec::RunStatus::Cancelled)
        cancelled_.fetch_add(1, std::memory_order_relaxed);

    // Promote a complete default-config result to the cache entry (every
    // later learn/atpg/stats on this circuit is served warm) and write it
    // through to the durable store (every later *process* too).
    if (res.outcome.ok() && frames <= 0 && sat_frames <= 0) {
        const std::shared_ptr<const core::LearnedSnapshot> snap =
            session.freeze_learned();
        cache_.attach_learned(r.entry.digest, snap);
        if (snap) store_write_through(r.entry, *snap);
    }

    std::string out = head(true, "learn", id, code_for(res.outcome));
    out += ", \"design\": \"" + hex_u64(r.entry.digest) + "\"";
    out += ", \"warm\": false";
    out += ", \"relations\": " + std::to_string(res.db.size());
    out += ", \"ties\": " + std::to_string(res.ties.count());
    out += ", \"equiv_classes\": " + std::to_string(res.stats.equiv_classes);
    out += ", \"stems_processed\": " + std::to_string(res.stats.stems_processed);
    if (res.stats.sat_probes > 0) {
        out += ", \"sat_probes\": " + std::to_string(res.stats.sat_probes);
        out += ", \"sat_ties\": " + std::to_string(res.stats.sat_ties);
        out += ", \"sat_relations\": " + std::to_string(res.stats.sat_relations);
    }
    out += ", \"cpu_seconds\": " + fmt_double(res.stats.cpu_seconds, "%.3f");
    out += ", \"relation_hash\": \"" + hex_u64(core::relation_hash(res.db)) + "\"";
    out += ", \"outcome\": " + outcome_json(res.outcome);
    out += "}";
    return out;
}

std::string Service::cmd_atpg(const JsonValue& req, const std::string& id) {
    Resolved r = resolve(req, "atpg", id);
    if (!r.error.empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return r.error;
    }
    const std::string mode_s = req.get_string("mode", "forbidden");
    atpg::AtpgConfig acfg;
    acfg.backtrack_limit =
        static_cast<std::uint32_t>(req.get_number("backtracks", 30.0));
    acfg.budget = budget_from(req, "limit_faults");
    if (mode_s == "none") {
        acfg.mode = atpg::LearnMode::None;
    } else if (mode_s == "forbidden" || mode_s == "known") {
        acfg.mode = mode_s == "known" ? atpg::LearnMode::KnownValue
                                      : atpg::LearnMode::ForbiddenValue;
        acfg.count_c_cycle_redundant = true;
    } else {
        return error_response("atpg", id, ProtoCode::Usage, "usage",
                              "unknown mode \"" + mode_s +
                                  "\" (want none, forbidden, or known)");
    }
    const std::string backend_s = req.get_string("backend", "framesim");
    if (!cnf::parse_backend(backend_s, acfg.backend)) {
        return error_response("atpg", id, ProtoCode::Usage, "usage",
                              "unknown backend \"" + backend_s +
                                  "\" (want framesim, sat, or auto)");
    }
    acfg.sat_frames = static_cast<std::uint32_t>(req.get_number("sat_frames", 0.0));
    const std::string order_s = req.get_string("order", "index");
    if (const auto parsed = guide::parse_order(order_s)) {
        acfg.order = *parsed;
    } else {
        return error_response("atpg", id, ProtoCode::Usage, "usage",
                              "unknown order \"" + order_s +
                                  "\" (want index, level, scoap_hard_first, or random)");
    }
    acfg.order_seed = static_cast<std::uint64_t>(req.get_number("order_seed", 1.0));
    const std::string guidance_s = req.get_string("guidance", "none");
    if (const auto parsed = guide::parse_guidance(guidance_s)) {
        acfg.guidance = *parsed;
    } else {
        return error_response("atpg", id, ProtoCode::Usage, "usage",
                              "unknown guidance \"" + guidance_s +
                                  "\" (want none or scoap)");
    }
    acfg.rand_warmup =
        static_cast<std::size_t>(req.get_number("rand_warmup", 0.0));
    const std::string fill_s = req.get_string("fill", "");
    if (!fill_s.empty()) {
        // A `fill` key turns on the static-compaction pass, like the CLI's
        // --fill flag.
        const auto parsed = guide::parse_fill(fill_s);
        if (!parsed) {
            return error_response("atpg", id, ProtoCode::Usage, "usage",
                                  "unknown fill \"" + fill_s +
                                      "\" (want x, zero, one, or random)");
        }
        acfg.compact = true;
        acfg.fill = *parsed;
    }
    // Result-affecting strategy keys bypass the warm snapshot path the same
    // way non-default `sat_frames`/`frames` do on learn: the request runs
    // self-contained (fresh learn, no promotion), so the cache only ever
    // holds default-configuration artifacts.
    const bool default_strategy =
        acfg.order == guide::OrderStrategy::Index &&
        acfg.guidance == guide::Guidance::None && acfg.rand_warmup == 0 &&
        !acfg.compact;

    InflightGuard inflight(*this, id);
    const std::shared_ptr<std::atomic<bool>> cancel = inflight.flag();
    api::SessionConfig scfg;
    scfg.threads = static_cast<unsigned>(req.get_number("threads", cfg_.threads));
    scfg.progress = [cancel, this](const api::Progress&) {
        return !cancel->load(std::memory_order_acquire) && !draining();
    };
    api::Session session(r.entry.design, std::move(scfg));

    // Warm path: reuse the cache entry's learned snapshot (no re-learn).
    // Cold: the Session learns on demand; promote that result for later
    // requests when it completed.
    const bool warm = r.entry.learned != nullptr && default_strategy;
    if (acfg.mode != atpg::LearnMode::None) {
        if (warm) session.use_learned(r.entry.learned);
        else {
            const core::LearnResult& learned = session.learn();
            if (learned.outcome.ok() && default_strategy) {
                const std::shared_ptr<const core::LearnedSnapshot> snap =
                    session.freeze_learned();
                cache_.attach_learned(r.entry.digest, snap);
                if (snap) store_write_through(r.entry, *snap);
            }
        }
    }

    const api::AtpgReport& report = session.atpg(std::move(acfg));
    if (report.outcome.run.status == exec::RunStatus::Cancelled)
        cancelled_.fetch_add(1, std::memory_order_relaxed);
    const auto c = report.list.counts();
    std::string out = head(true, "atpg", id, code_for(report.outcome.run));
    out += ", \"design\": \"" + hex_u64(r.entry.digest) + "\"";
    out += warm ? ", \"warm\": true" : ", \"warm\": false";
    out += ", \"mode\": \"" + mode_s + "\"";
    out += ", \"backend\": \"" + backend_s + "\"";
    out += ", \"total\": " + std::to_string(c.total);
    out += ", \"detected\": " + std::to_string(c.detected);
    out += ", \"untestable\": " + std::to_string(c.untestable);
    out += ", \"aborted\": " + std::to_string(c.aborted);
    out += ", \"undetected\": " + std::to_string(c.undetected);
    out += ", \"test_coverage\": " + fmt_double(report.list.test_coverage());
    out += ", \"tests\": " + std::to_string(report.outcome.tests.size());
    out += ", \"order\": \"" + order_s + "\"";
    out += ", \"guidance\": \"" + guidance_s + "\"";
    out += ", \"patterns\": {\"count\": " + std::to_string(report.outcome.tests.size());
    out += ", \"total_frames\": " + std::to_string(report.outcome.pattern_frames);
    out += ", \"compaction_before\": " +
           std::to_string(report.outcome.compaction_before);
    out += ", \"compaction_after\": " + std::to_string(report.outcome.compaction_after);
    out += "}";
    if (acfg.rand_warmup > 0) {
        out += ", \"warmup_detected\": " +
               std::to_string(report.outcome.detected_by_warmup);
        out += ", \"warmup_sequences\": " +
               std::to_string(report.outcome.warmup_sequences);
    }
    if (report.outcome.sat_targeted > 0) {
        out += ", \"sat_targeted\": " + std::to_string(report.outcome.sat_targeted);
        out += ", \"sat_witnesses\": " + std::to_string(report.outcome.sat_witnesses);
        out += ", \"untestable_by_cnf\": " +
               std::to_string(report.outcome.untestable_by_cnf);
    }
    out += ", \"cpu_seconds\": " + fmt_double(report.outcome.cpu_seconds, "%.3f");
    out += ", \"campaign_digest\": \"" + hex_u64(api::campaign_digest(report)) + "\"";
    out += ", \"outcome\": " + outcome_json(report.outcome.run);
    out += "}";
    return out;
}

std::string Service::cmd_fault_sim(const JsonValue& req, const std::string& id) {
    Resolved r = resolve(req, "fault_sim", id);
    if (!r.error.empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return r.error;
    }
    const std::string mode_s = req.get_string("mode", "forbidden");
    if (mode_s != "none" && mode_s != "forbidden" && mode_s != "known")
        return error_response("fault_sim", id, ProtoCode::Usage, "usage",
                              "unknown mode \"" + mode_s +
                                  "\" (want none, forbidden, or known)");
    InflightGuard inflight(*this, id);
    const std::shared_ptr<std::atomic<bool>> cancel = inflight.flag();
    api::SessionConfig scfg;
    scfg.threads = static_cast<unsigned>(req.get_number("threads", cfg_.threads));
    scfg.budget = budget_from(req, "limit_sequences");
    if (mode_s != "none") {
        scfg.atpg.mode = mode_s == "known" ? atpg::LearnMode::KnownValue
                                           : atpg::LearnMode::ForbiddenValue;
        scfg.atpg.count_c_cycle_redundant = true;
    }
    scfg.progress = [cancel, this](const api::Progress&) {
        return !cancel->load(std::memory_order_acquire) && !draining();
    };
    api::Session session(r.entry.design, std::move(scfg));
    if (r.entry.learned) session.use_learned(r.entry.learned);

    // Generate the campaign (warm learned data when cached), then validate
    // its tests with the independent fault simulator — the CLI's atpg +
    // fault_sim flow as one request.
    const api::FaultSimReport report = session.fault_sim();
    if (report.outcome.status == exec::RunStatus::Cancelled)
        cancelled_.fetch_add(1, std::memory_order_relaxed);
    std::string out = head(true, "fault_sim", id, code_for(report.outcome));
    out += ", \"design\": \"" + hex_u64(r.entry.digest) + "\"";
    out += ", \"total\": " + std::to_string(report.total);
    out += ", \"detected\": " + std::to_string(report.detected);
    out += ", \"sequences\": " + std::to_string(report.sequences);
    out += ", \"fault_coverage\": " + fmt_double(report.fault_coverage);
    out += ", \"outcome\": " + outcome_json(report.outcome);
    out += "}";
    return out;
}

std::string Service::cmd_stats(const JsonValue& req, const std::string& id) {
    std::string out = head(true, "stats", id, ProtoCode::Ok);

    const DesignCache::Stats cs = cache_.stats();
    std::size_t slots;
    {
        std::lock_guard<std::mutex> lock(slots_mu_);
        slots = slots_in_use_;
    }
    out += ", \"server\": {";
    out += "\"requests_served\": " + std::to_string(served_.load(std::memory_order_relaxed));
    out += ", \"requests_active\": " + std::to_string(active_.load(std::memory_order_acquire));
    out += ", \"errors\": " + std::to_string(errors_.load(std::memory_order_relaxed));
    out += ", \"cancelled\": " + std::to_string(cancelled_.load(std::memory_order_relaxed));
    out += draining() ? ", \"draining\": true" : ", \"draining\": false";
    out += ", \"sessions\": {\"limit\": " + std::to_string(cfg_.max_sessions);
    out += ", \"active\": " + std::to_string(slots) + "}";
    out += ", \"cache\": {\"entries\": " + std::to_string(cs.entries);
    out += ", \"bytes\": " + std::to_string(cs.bytes);
    out += ", \"max_bytes\": " + std::to_string(cs.max_bytes);
    out += ", \"hits\": " + std::to_string(cs.hits);
    out += ", \"misses\": " + std::to_string(cs.misses);
    out += ", \"evictions\": " + std::to_string(cs.evictions) + "}";
    if (const SnapshotStore* st = cfg_.store.get()) {
        const SnapshotStoreStats ss = st->stats();
        out += ", \"store\": {\"dir\": \"" + json_escape(st->dir()) + "\"";
        out += ", \"entries\": " + std::to_string(ss.entries);
        out += ", \"bytes\": " + std::to_string(ss.bytes);
        out += ", \"max_bytes\": " + std::to_string(ss.max_bytes);
        out += ", \"quarantined\": " + std::to_string(ss.quarantined);
        out += ", \"puts\": " + std::to_string(ss.puts);
        out += ", \"put_failures\": " + std::to_string(ss.put_failures);
        out += ", \"fetch_hits\": " + std::to_string(ss.fetch_hits);
        out += ", \"fetch_misses\": " + std::to_string(ss.fetch_misses);
        out += ", \"evictions\": " + std::to_string(ss.evictions) + "}";
    }
    if (transport_ != nullptr) {
        const TransportCounters& t = *transport_;
        out += ", \"connections\": {\"accepted\": " +
               std::to_string(t.accepted.load(std::memory_order_relaxed));
        out += ", \"active\": " +
               std::to_string(t.active.load(std::memory_order_relaxed));
        out += ", \"rejected_overloaded\": " +
               std::to_string(t.rejected_overloaded.load(std::memory_order_relaxed));
        out += ", \"idle_reaped\": " +
               std::to_string(t.idle_reaped.load(std::memory_order_relaxed));
        out += ", \"write_timeouts\": " +
               std::to_string(t.write_timeouts.load(std::memory_order_relaxed)) + "}";
    }
    out += "}";

    // Per-design section: the warm fast path — a cache lookup, an O(1)
    // Session, and counters; no simulation, no parse.
    if (req.get("design") != nullptr) {
        Resolved r = resolve(req, "stats", id);
        if (!r.error.empty()) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return r.error;
        }
        api::Session session(r.entry.design);
        if (r.entry.learned) session.use_learned(r.entry.learned);
        const api::SessionStats s = session.stats();
        out += ", \"design\": \"" + hex_u64(r.entry.digest) + "\"";
        out += ", \"circuit\": \"" + json_escape(r.entry.design->name()) + "\"";
        out += ", \"gates\": " + std::to_string(s.gates);
        out += ", \"stems\": " + std::to_string(s.stems);
        out += ", \"levels\": " + std::to_string(s.levels);
        out += ", \"clock_classes\": " + std::to_string(s.clock_classes);
        out += ", \"collapsed_faults\": " + std::to_string(s.collapsed_faults);
        out += ", \"memory\": {\"netlist_bytes\": " +
               std::to_string(s.memory.design.netlist_bytes);
        out += ", \"topology_bytes\": " + std::to_string(s.memory.design.topology_bytes);
        out += ", \"faults_bytes\": " + std::to_string(s.memory.design.faults_bytes);
        out += ", \"learned_bytes\": " +
               std::to_string(s.memory.design.learned_bytes + s.memory.learned_bytes);
        out += ", \"total_bytes\": " + std::to_string(s.memory.total()) + "}";
        if (r.entry.learned) {
            const core::LearnResult& res = r.entry.learned->result();
            out += ", \"learned\": {\"relations\": " + std::to_string(res.db.size());
            out += ", \"ties\": " + std::to_string(res.ties.count());
            out += ", \"relation_hash\": \"" +
                   hex_u64(core::relation_hash(res.db)) + "\"}";
        }
    }
    out += "}";
    return out;
}

std::string Service::cmd_cancel(const JsonValue& req, const std::string& id) {
    const std::string target = req.get_string("target");
    if (target.empty())
        return error_response("cancel", id, ProtoCode::Usage, "usage",
                              "cancel needs a \"target\" request id");
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        const auto it = inflight_.find(target);
        if (it != inflight_.end()) {
            it->second->store(true, std::memory_order_release);
            found = true;
        }
    }
    std::string out = head(true, "cancel", id, ProtoCode::Ok);
    out += ", \"target\": \"" + json_escape(target) + "\"";
    out += found ? ", \"found\": true" : ", \"found\": false";
    out += "}";
    return out;
}

std::string Service::cmd_shutdown(const std::string& id) {
    shutdown_.store(true, std::memory_order_release);
    begin_drain();
    std::string out = head(true, "shutdown", id, ProtoCode::Ok);
    out += ", \"draining\": true}";
    return out;
}

}  // namespace seqlearn::server
