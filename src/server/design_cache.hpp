#pragma once
// Content-addressed cache of compiled Designs.
//
// The serving flow is parse-once / request-many: the first `load` of a
// .bench file pays the full parse + levelize + collapse cost and every
// later request references the compiled artifact by the FNV-1a digest of
// the *bench bytes* — identical circuit text always lands on the same
// cache entry, whatever path or client it came from. Entries also carry an
// optional learned snapshot (attached by the first `learn` request), so a
// warm entry answers snapshot-backed learn/stats requests in microseconds
// where a cold load costs a full parse.
//
// Eviction is LRU by real memory accounting: each entry is charged
// Design::memory_bytes() plus its snapshot's memory_bytes(), and inserting
// past the byte cap evicts least-recently-used entries first. Eviction only
// drops the cache's shared_ptr — Sessions already running over an evicted
// Design keep it alive; a later request naming the evicted digest gets a
// structured "unknown design" error and re-loads.
//
// Thread safety: every public method is safe to call concurrently (one
// mutex; the expensive Design compile happens *outside* the lock, so a big
// load does not stall cache hits for other connections).

#include "api/design.hpp"
#include "core/learned_snapshot.hpp"
#include "netlist/diagnostics.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace seqlearn::server {

/// FNV-1a over the raw bench bytes — the cache key.
std::uint64_t content_digest(std::string_view bytes);

class DesignCache {
public:
    struct Config {
        /// Byte cap across all entries (Design + snapshot accounting);
        /// inserting past it evicts LRU entries. 0 = unlimited.
        std::size_t max_bytes = 512u << 20;
    };

    /// One cached artifact. Immutable handle: the snapshot pointer is the
    /// value at lookup time (a concurrent attach_learned publishes a fresh
    /// view to later lookups, never mutates one already handed out).
    struct Entry {
        std::uint64_t digest = 0;
        api::DesignPtr design;
        std::shared_ptr<const core::LearnedSnapshot> learned;  ///< may be null
        /// The original bench bytes the digest was computed over — what a
        /// durable snapshot store must persist so a restarted daemon can
        /// recompile the identical design (a re-serialized netlist would
        /// digest differently). Charged against the byte cap.
        std::shared_ptr<const std::string> bench;
        std::size_t bytes = 0;  ///< what this entry charges against the cap
    };

    struct Stats {
        std::size_t entries = 0;
        std::size_t bytes = 0;
        std::size_t max_bytes = 0;
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;
    };

    struct LoadResult {
        Entry entry;                      ///< design null on parse errors
        netlist::Diagnostics diagnostics; ///< parse problems, line-numbered
        bool was_cached = false;          ///< true = no parse happened
    };

    DesignCache() = default;
    explicit DesignCache(Config cfg) : cfg_(cfg) {}

    /// Get-or-compile: returns the existing entry for these exact bytes, or
    /// parses + compiles and inserts a new one (evicting LRU entries past
    /// the byte cap). On parse errors nothing is inserted and the result's
    /// design is null. `name` labels the circuit in reports.
    LoadResult load(std::string_view bench_bytes, std::string name);

    /// Lookup by digest, bumping the entry to most-recently-used. Design
    /// null when the digest is unknown (never seen or evicted).
    Entry find(std::uint64_t digest);

    /// Attach (or replace) the learned snapshot of an existing entry — the
    /// promotion path from one request's learn() to every later request on
    /// the same circuit. Re-charges the entry's bytes and may evict *other*
    /// entries to make room. No-op when the digest is unknown.
    void attach_learned(std::uint64_t digest,
                        std::shared_ptr<const core::LearnedSnapshot> snap);

    Stats stats() const;

private:
    struct Node {
        Entry entry;
    };
    using LruList = std::list<Node>;

    void evict_past_cap_locked();
    static std::size_t entry_bytes(const Entry& e);

    Config cfg_;
    mutable std::mutex mu_;
    LruList lru_;  // front = most recent
    std::unordered_map<std::uint64_t, LruList::iterator> by_digest_;
    std::size_t bytes_ = 0;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

}  // namespace seqlearn::server
