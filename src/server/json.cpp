#include "server/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace seqlearn::server {

// Named (not anonymous-namespace) so JsonValue's friend declaration sees it.
class Parser {
public:
    Parser(std::string_view text, std::string* error) : s_(text), error_(error) {}

    std::optional<JsonValue> run() {
        JsonValue v;
        if (!parse_value(v)) return std::nullopt;
        skip_ws();
        if (pos_ != s_.size()) {
            fail("trailing characters after JSON document");
            return std::nullopt;
        }
        return v;
    }

private:
    void fail(const std::string& why) {
        if (error_ != nullptr && error_->empty())
            *error_ = why + " at offset " + std::to_string(pos_);
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(std::string_view word) {
        if (s_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool parse_value(JsonValue& out) {
        skip_ws();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return false;
        }
        // Nesting depth bound: protocol frames are flat; a deeply nested
        // document is hostile input, not a request.
        if (depth_ > 32) {
            fail("nesting too deep");
            return false;
        }
        const char c = s_[pos_];
        switch (c) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': {
                out.type_ = JsonValue::Type::String;
                return parse_string(out.str_);
            }
            case 't':
                if (!literal("true")) break;
                out.type_ = JsonValue::Type::Bool;
                out.bool_ = true;
                return true;
            case 'f':
                if (!literal("false")) break;
                out.type_ = JsonValue::Type::Bool;
                out.bool_ = false;
                return true;
            case 'n':
                if (!literal("null")) break;
                out.type_ = JsonValue::Type::Null;
                return true;
            default: return parse_number(out);
        }
        fail("invalid token");
        return false;
    }

    bool parse_object(JsonValue& out) {
        out.type_ = JsonValue::Type::Object;
        ++pos_;  // '{'
        ++depth_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            JsonValue member;
            if (!parse_value(member)) return false;
            out.obj_.insert_or_assign(std::move(key), std::move(member));
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool parse_array(JsonValue& out) {
        out.type_ = JsonValue::Type::Array;
        ++pos_;  // '['
        ++depth_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parse_value(item)) return false;
            out.arr_.push_back(std::move(item));
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) break;
                const char e = s_[pos_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > s_.size()) {
                            fail("truncated \\u escape");
                            return false;
                        }
                        unsigned code = 0;
                        const auto [p, ec] = std::from_chars(
                            s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
                        if (ec != std::errc() || p != s_.data() + pos_ + 4) {
                            fail("bad \\u escape");
                            return false;
                        }
                        pos_ += 4;
                        // UTF-8 encode the BMP code point (the protocol's
                        // strings are names and bench text — surrogate
                        // pairs are not expected and decode as-is).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        }
                        break;
                    }
                    default: fail("unknown escape"); return false;
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            out += c;
            ++pos_;
        }
        fail("unterminated string");
        return false;
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("invalid number");
            return false;
        }
        double value = 0.0;
        const auto [p, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, value);
        if (ec != std::errc() || p != s_.data() + pos_) {
            fail("invalid number");
            return false;
        }
        out.type_ = JsonValue::Type::Number;
        out.num_ = value;
        return true;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string* error_;
};

const JsonValue* JsonValue::get(std::string_view key) const {
    if (type_ != Type::Object) return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(std::string_view key, std::string fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->is_string() ? v->str_ : std::move(fallback);
}

double JsonValue::get_number(std::string_view key, double fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->is_number() ? v->num_ : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->type() == Type::Bool ? v->bool_ : fallback;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
    if (error != nullptr) error->clear();
    return Parser(text, error).run();
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string hex_u64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view s) {
    if (s.substr(0, 2) == "0x" || s.substr(0, 2) == "0X") s.remove_prefix(2);
    if (s.empty() || s.size() > 16) return std::nullopt;
    std::uint64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
    if (ec != std::errc() || p != s.data() + s.size()) return std::nullopt;
    return v;
}

}  // namespace seqlearn::server
