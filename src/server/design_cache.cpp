#include "server/design_cache.hpp"

#include <sstream>
#include <utility>

namespace seqlearn::server {

std::uint64_t content_digest(std::string_view bytes) {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::size_t DesignCache::entry_bytes(const Entry& e) {
    std::size_t bytes = e.design ? e.design->memory_bytes() : 0;
    if (e.learned) bytes += e.learned->memory_bytes();
    if (e.bench) bytes += e.bench->size();
    return bytes;
}

DesignCache::LoadResult DesignCache::load(std::string_view bench_bytes,
                                          std::string name) {
    const std::uint64_t digest = content_digest(bench_bytes);
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = by_digest_.find(digest);
        if (it != by_digest_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            LoadResult out;
            out.entry = it->second->entry;
            out.was_cached = true;
            return out;
        }
        ++misses_;
    }

    // Compile outside the lock: a 100k-gate parse must not block cache hits
    // on other connections.
    std::istringstream in{std::string(bench_bytes)};
    api::DesignLoad loaded = api::load_design(in, std::move(name));
    LoadResult out;
    out.diagnostics = std::move(loaded.diagnostics);
    if (!loaded.design) return out;  // parse errors: nothing inserted

    Entry entry;
    entry.digest = digest;
    entry.design = std::move(loaded.design);
    entry.bench = std::make_shared<const std::string>(bench_bytes);
    entry.bytes = entry_bytes(entry);

    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_digest_.find(digest);
    if (it != by_digest_.end()) {
        // Another connection compiled the same bytes while we parsed; keep
        // the incumbent (it may already carry a learned snapshot).
        lru_.splice(lru_.begin(), lru_, it->second);
        out.entry = it->second->entry;
        out.was_cached = true;
        return out;
    }
    lru_.push_front(Node{entry});
    by_digest_[digest] = lru_.begin();
    bytes_ += entry.bytes;
    out.entry = std::move(entry);
    evict_past_cap_locked();
    return out;
}

DesignCache::Entry DesignCache::find(std::uint64_t digest) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_digest_.find(digest);
    if (it == by_digest_.end()) {
        ++misses_;
        return {};
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->entry;
}

void DesignCache::attach_learned(std::uint64_t digest,
                                 std::shared_ptr<const core::LearnedSnapshot> snap) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_digest_.find(digest);
    if (it == by_digest_.end()) return;
    Entry& e = it->second->entry;
    bytes_ -= e.bytes;
    e.learned = std::move(snap);
    e.bytes = entry_bytes(e);
    bytes_ += e.bytes;
    // The freshly warmed entry is the one being worked on: make it MRU so
    // the eviction sweep charges colder entries first.
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_past_cap_locked();
}

void DesignCache::evict_past_cap_locked() {
    if (cfg_.max_bytes == 0) return;
    // Never evict the MRU entry: the cache must keep serving the circuit
    // being worked on even when that one entry alone exceeds the cap.
    while (bytes_ > cfg_.max_bytes && lru_.size() > 1) {
        const Node& victim = lru_.back();
        bytes_ -= victim.entry.bytes;
        by_digest_.erase(victim.entry.digest);
        lru_.pop_back();
        ++evictions_;
    }
}

DesignCache::Stats DesignCache::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.entries = lru_.size();
    s.bytes = bytes_;
    s.max_bytes = cfg_.max_bytes;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    return s;
}

}  // namespace seqlearn::server
