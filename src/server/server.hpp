#pragma once
// The TCP transport for the serving protocol: newline-framed JSON over
// loopback sockets.
//
// Framing is one request object per '\n'-terminated line in, one response
// object per line out, answered in order on each connection (concurrency
// comes from opening K connections, which is exactly how the tests and the
// throughput bench model K clients). A frame longer than `max_frame_bytes`
// gets a structured `frame` error response and the rest of the oversized
// line is discarded — the connection stays usable; it is never dropped and
// the process never allocates the hostile frame.
//
// Lifecycle:
//
//     Server server(cfg);
//     std::string err;
//     if (!server.start(&err)) ...        // bound + listening; port() is live
//     ...
//     server.stop();                       // graceful: drain, then close
//
// stop() (also run from the destructor) is the graceful-shutdown path the
// `serve` command ties to SIGINT/SIGTERM: stop accepting, cancel in-flight
// runs via Service::begin_drain() — each in-flight request still gets its
// response, carrying a Cancelled outcome — wait for them to finish under
// `drain_deadline`, then shut the connections down and join every thread.
// A `shutdown` protocol request triggers the same path: the accept loop
// notices Service::shutdown_requested() and stop() runs from inside the
// server; wait() unblocks in whoever is driving the process.
//
// The listener binds 127.0.0.1 only: the protocol has no authentication,
// so it must not be reachable off-host.

#include "server/service.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace seqlearn::server {

struct ServerConfig {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Frames longer than this get a structured error, not a buffer.
    std::size_t max_frame_bytes = 64u << 20;
    /// How long stop() waits for in-flight requests to drain before
    /// closing their connections anyway.
    std::chrono::milliseconds drain_deadline{10000};
    /// Idle/read deadline per connection: a connection delivering no bytes
    /// for this long (a stalled or slow-loris client, mid-frame or between
    /// frames) is reaped. 0 = never — the pre-hardening behavior.
    std::chrono::milliseconds idle_timeout{0};
    /// Write deadline per response line: a client that stops draining its
    /// socket (so send() would block past this) loses the connection
    /// instead of pinning the serving thread. 0 = never.
    std::chrono::milliseconds write_timeout{0};
    /// Concurrent-connection cap: connection N+1 gets one structured
    /// `overloaded` (code 7) response and an immediate close. 0 = no cap.
    std::size_t max_conns = 0;
    /// Chaos hook (null in production): SockSend arrivals can be armed to
    /// force a short send, exercising the partial-write resend path.
    exec::FailurePoint* failpoint = nullptr;
    ServiceConfig service;
};

class Server {
public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind + listen + start the accept loop. Returns false (with a reason
    /// in *error) when the port cannot be bound.
    bool start(std::string* error);

    /// The bound port — the configured one, or the ephemeral pick.
    std::uint16_t port() const noexcept { return port_; }

    /// Graceful shutdown; idempotent, safe from any thread (including a
    /// signal-watching loop). Blocks until every connection thread joined.
    void stop();

    /// Block until stop() has run (protocol `shutdown`, or another thread).
    void wait();

    Service& service() noexcept { return service_; }

    /// Transport counters (accepted / active / rejected / reaped), also
    /// surfaced through the protocol's `stats` response.
    const TransportCounters& counters() const noexcept { return counters_; }

private:
    void accept_loop();
    void serve_connection(int fd);
    void close_listener();
    bool send_line(int fd, std::string_view line);

    ServerConfig cfg_;
    Service service_;
    TransportCounters counters_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;

    std::thread accept_thread_;
    std::mutex conns_mu_;
    std::vector<std::thread> conn_threads_;
    std::vector<int> conn_fds_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stop_mu_;  ///< serializes stop() callers
};

}  // namespace seqlearn::server
