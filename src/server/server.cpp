#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace seqlearn::server {

namespace {

/// Write the full line + '\n'. MSG_NOSIGNAL: a client that hung up must
/// surface as a failed send, not a SIGPIPE.
bool send_line(int fd, std::string_view line) {
    std::string framed(line);
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(cfg), service_(cfg.service) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never off-host
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(listen_fd_, 64) < 0) {
        if (error)
            *error = std::string("bind/listen on port ") + std::to_string(cfg_.port) +
                     ": " + std::strerror(errno);
        close_listener();
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
}

void Server::accept_loop() {
    // Poll with a short timeout so the stop flag and a protocol `shutdown`
    // are noticed within ~100ms even when no client ever connects.
    while (!stopping_.load(std::memory_order_acquire) &&
           !service_.shutdown_requested()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
}

void Server::serve_connection(int fd) {
    std::string frame;
    bool discarding = false;
    char chunk[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;  // EOF, error, or stop()'s shutdown()
        bool client_gone = false;
        for (ssize_t i = 0; i < n; ++i) {
            const char c = chunk[i];
            if (discarding) {
                // Oversized frame: the error response was already written;
                // swallow bytes until the line ends, then resume normally.
                if (c == '\n') discarding = false;
                continue;
            }
            if (c != '\n') {
                frame.push_back(c);
                if (frame.size() > cfg_.max_frame_bytes) {
                    frame.clear();
                    frame.shrink_to_fit();
                    discarding = true;
                    if (!send_line(fd,
                                   "{\"ok\": false, \"code\": 3, \"error\": "
                                   "{\"code\": 3, \"class\": \"frame\", \"message\": "
                                   "\"frame exceeds max_frame_bytes; rest of line "
                                   "discarded\"}}")) {
                        client_gone = true;
                        break;
                    }
                }
                continue;
            }
            if (!frame.empty() && frame.back() == '\r') frame.pop_back();
            if (frame.empty()) continue;  // blank line: keepalive no-op
            const std::string response = service_.handle(frame);
            frame.clear();
            if (!send_line(fd, response)) {
                client_gone = true;
                break;
            }
        }
        if (client_gone) break;
    }
    // Deregister-then-close under the registry lock, so stop() can never
    // shutdown() a descriptor number the kernel already reused.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                        conn_fds_.end());
    }
    ::close(fd);
}

void Server::close_listener() {
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void Server::stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_.load(std::memory_order_acquire)) return;
    stopping_.store(true, std::memory_order_release);

    // 1. Cancel in-flight runs; their responses are still written (each run
    //    stops at a work-item boundary with a Cancelled outcome).
    service_.begin_drain();

    // 2. Stop accepting.
    if (accept_thread_.joinable()) accept_thread_.join();
    close_listener();

    // 3. Wait (bounded) for in-flight requests to finish writing responses.
    const auto deadline = std::chrono::steady_clock::now() + cfg_.drain_deadline;
    while (service_.active_requests() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    // 4. Unblock every connection reader and join.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : conn_threads_) {
        if (t.joinable()) t.join();
    }
    conn_threads_.clear();

    stopped_.store(true, std::memory_order_release);
}

void Server::wait() {
    for (;;) {
        if (stopped_.load(std::memory_order_acquire)) return;
        if (service_.shutdown_requested() &&
            !stopping_.load(std::memory_order_acquire)) {
            stop();
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

}  // namespace seqlearn::server
