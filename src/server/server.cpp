#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace seqlearn::server {

/// Write the full line + '\n'. MSG_NOSIGNAL: a client that hung up must
/// surface as a failed send, not a SIGPIPE. EINTR retries; partial sends
/// (real, or forced by an armed SockSend failpoint) resume at the next
/// unsent byte. With a write deadline configured, a client that stops
/// draining its socket costs at most `write_timeout` of this thread's time
/// before the connection is declared dead — without one, a single
/// non-reading client could pin the serving thread forever.
bool Server::send_line(int fd, std::string_view line) {
    std::string framed(line);
    framed += '\n';
    const bool deadline_set = cfg_.write_timeout.count() > 0;
    const auto deadline = std::chrono::steady_clock::now() + cfg_.write_timeout;
    std::size_t sent = 0;
    while (sent < framed.size()) {
        if (deadline_set) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) {
                counters_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
            pollfd pfd{fd, POLLOUT, 0};
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
                    .count();
            const int ready = ::poll(&pfd, 1, left > 0 ? static_cast<int>(left) : 1);
            if (ready < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            if (ready == 0) {
                counters_.write_timeouts.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
        }
        std::size_t len = framed.size() - sent;
        if (cfg_.failpoint != nullptr &&
            cfg_.failpoint->fire(exec::FailSite::SockSend) && len > 1) {
            len = 1;  // injected short send; the loop must finish the frame
        }
        const ssize_t n = ::send(fd, framed.data() + sent, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

Server::Server(ServerConfig cfg) : cfg_(cfg), service_(cfg.service) {
    service_.set_transport_counters(&counters_);
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never off-host
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(listen_fd_, 64) < 0) {
        if (error)
            *error = std::string("bind/listen on port ") + std::to_string(cfg_.port) +
                     ": " + std::strerror(errno);
        close_listener();
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
}

void Server::accept_loop() {
    // Poll with a short timeout so the stop flag and a protocol `shutdown`
    // are noticed within ~100ms even when no client ever connects.
    while (!stopping_.load(std::memory_order_acquire) &&
           !service_.shutdown_requested()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        counters_.accepted.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        // Connection cap: answer with a structured overloaded error and
        // close, so a client sees *why* instead of a silent RST. conn_fds_
        // counts exactly the live connections (deregistered at close).
        if (cfg_.max_conns > 0 && conn_fds_.size() >= cfg_.max_conns) {
            counters_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
            send_line(fd,
                      "{\"ok\": false, \"code\": 7, \"error\": "
                      "{\"code\": 7, \"class\": \"overloaded\", \"message\": "
                      "\"connection limit reached; retry later\"}}");
            ::close(fd);
            continue;
        }
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
}

void Server::serve_connection(int fd) {
    counters_.active.fetch_add(1, std::memory_order_relaxed);
    std::string frame;
    bool discarding = false;
    char chunk[64 * 1024];
    for (;;) {
        // Idle/read deadline: wait for bytes with poll so a stalled client
        // (silent, or trickling then stopping mid-frame — the slow-loris
        // shape) is reaped after idle_timeout instead of holding a thread
        // and its partial frame forever. stop()'s shutdown() makes the fd
        // readable (EOF), so the poll also wakes for graceful shutdown.
        if (cfg_.idle_timeout.count() > 0) {
            pollfd pfd{fd, POLLIN, 0};
            const int ready =
                ::poll(&pfd, 1, static_cast<int>(cfg_.idle_timeout.count()));
            if (ready < 0) {
                if (errno == EINTR) continue;
                break;
            }
            if (ready == 0) {
                counters_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
                break;
            }
        }
        ssize_t n;
        do {
            n = ::recv(fd, chunk, sizeof chunk, 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) break;  // EOF, error, or stop()'s shutdown()
        bool client_gone = false;
        for (ssize_t i = 0; i < n; ++i) {
            const char c = chunk[i];
            if (discarding) {
                // Oversized frame: the error response was already written;
                // swallow bytes until the line ends, then resume normally.
                if (c == '\n') discarding = false;
                continue;
            }
            if (c != '\n') {
                frame.push_back(c);
                if (frame.size() > cfg_.max_frame_bytes) {
                    frame.clear();
                    frame.shrink_to_fit();
                    discarding = true;
                    if (!send_line(fd,
                                   "{\"ok\": false, \"code\": 3, \"error\": "
                                   "{\"code\": 3, \"class\": \"frame\", \"message\": "
                                   "\"frame exceeds max_frame_bytes; rest of line "
                                   "discarded\"}}")) {
                        client_gone = true;
                        break;
                    }
                }
                continue;
            }
            if (!frame.empty() && frame.back() == '\r') frame.pop_back();
            if (frame.empty()) continue;  // blank line: keepalive no-op
            const std::string response = service_.handle(frame);
            frame.clear();
            if (!send_line(fd, response)) {
                client_gone = true;
                break;
            }
        }
        if (client_gone) break;
    }
    // Deregister-then-close under the registry lock, so stop() can never
    // shutdown() a descriptor number the kernel already reused.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                        conn_fds_.end());
    }
    ::close(fd);
    counters_.active.fetch_sub(1, std::memory_order_relaxed);
}

void Server::close_listener() {
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void Server::stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_.load(std::memory_order_acquire)) return;
    stopping_.store(true, std::memory_order_release);

    // 1. Cancel in-flight runs; their responses are still written (each run
    //    stops at a work-item boundary with a Cancelled outcome).
    service_.begin_drain();

    // 2. Stop accepting.
    if (accept_thread_.joinable()) accept_thread_.join();
    close_listener();

    // 3. Wait (bounded) for in-flight requests to finish writing responses.
    const auto deadline = std::chrono::steady_clock::now() + cfg_.drain_deadline;
    while (service_.active_requests() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    // 4. Unblock every connection reader and join.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : conn_threads_) {
        if (t.joinable()) t.join();
    }
    conn_threads_.clear();

    stopped_.store(true, std::memory_order_release);
}

void Server::wait() {
    for (;;) {
        if (stopped_.load(std::memory_order_acquire)) return;
        if (service_.shutdown_requested() &&
            !stopping_.load(std::memory_order_acquire)) {
            stop();
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

}  // namespace seqlearn::server
