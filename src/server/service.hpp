#pragma once
// The serving protocol, independent of any transport.
//
// A Service turns one newline-framed JSON request into one JSON response
// line — the same schema the CLI's --json mode prints, so anything that can
// read `seqlearn_cli learn --json` output can read a server response. The
// transport (server.hpp, or a test harness calling handle() directly) owns
// the sockets; the Service owns everything stateful:
//
//   * the content-addressed DesignCache (bench bytes -> compiled Design,
//     LRU-evicted by real memory accounting, with attached learned
//     snapshots promoted by the first completing `learn` request),
//   * a bounded session pool: at most `max_sessions` heavy commands
//     (load / learn / atpg / fault_sim) run at once; excess requests wait
//     up to `queue_timeout` for a slot and then get a structured
//     `overloaded` error instead of piling up,
//   * the in-flight request registry: any heavy request carrying an "id"
//     can be cancelled by a `cancel` request from another connection — the
//     run stops at its next work-item boundary and the response reports a
//     Cancelled outcome with the partial results that were committed,
//   * the drain switch for graceful shutdown: begin_drain() cancels every
//     in-flight run (responses are still written) and rejects new heavy
//     requests, so a transport can stop without dropping a connection
//     mid-request.
//
// Error taxonomy — the CLI exit codes, verbatim, plus one server-only code:
//   0 ok, 2 usage (bad request / unknown design), 3 parse (malformed frame
//   or bench text), 4 budget exhausted, 5 cancelled / shutting down,
//   6 internal failure, 7 overloaded (no session slot within the timeout).
// Protocol failures are `{"ok": false, "error": {code, class, message}}`;
// a governed run that stopped early is NOT a protocol failure — it replies
// `"ok": true` with its partial results, the structured `outcome`, and the
// matching nonzero `code`, exactly like the CLI prints partial results and
// exits 4/5.
//
// Thread safety: handle() may be called from any number of transport
// threads concurrently.

#include "server/design_cache.hpp"
#include "server/snapshot_store.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace seqlearn::server {

/// Protocol error codes (the CLI exit-code taxonomy + `Overloaded`).
enum class ProtoCode : int {
    Ok = 0,
    Usage = 2,
    Parse = 3,
    Budget = 4,
    Cancelled = 5,
    Internal = 6,
    Overloaded = 7,
};

struct ServiceConfig {
    /// Heavy commands (load/learn/atpg/fault_sim) running at once.
    std::size_t max_sessions = 4;
    /// How long a heavy request waits for a free session slot before the
    /// structured `overloaded` error.
    std::chrono::milliseconds queue_timeout{30000};
    /// Content-addressed Design cache sizing (LRU byte cap).
    DesignCache::Config cache;
    /// Worker threads per running stage (0 = hardware_concurrency).
    /// Results are bit-identical at any setting.
    unsigned threads = 1;
    /// Durable snapshot store (null = in-memory only). When set, the first
    /// completed full learn of a design writes through, and a digest that
    /// misses the in-memory cache falls back here — the warm-restart path.
    std::shared_ptr<SnapshotStore> store;
};

/// Transport-level counters the TCP server maintains and `stats` surfaces.
/// Lives here (not in server.hpp) so the transport-agnostic Service can
/// print it without depending on the socket layer.
struct TransportCounters {
    std::atomic<std::uint64_t> accepted{0};            ///< connections accepted
    std::atomic<std::uint64_t> active{0};              ///< currently serving
    std::atomic<std::uint64_t> rejected_overloaded{0}; ///< over --max-conns
    std::atomic<std::uint64_t> idle_reaped{0};         ///< idle deadline hit
    std::atomic<std::uint64_t> write_timeouts{0};      ///< write deadline hit
};

class Service {
public:
    explicit Service(ServiceConfig cfg);
    Service() : Service(ServiceConfig{}) {}

    /// Serve one request frame (one JSON object, no trailing newline) and
    /// return the response JSON (no trailing newline). Never throws: every
    /// failure becomes a structured error response.
    std::string handle(std::string_view frame);

    /// Graceful-shutdown switch: cancel every in-flight run and reject new
    /// heavy requests with code 5 / class "shutting_down". Idempotent.
    void begin_drain();
    bool draining() const noexcept {
        return draining_.load(std::memory_order_acquire);
    }

    /// True once a `shutdown` request has been served — the transport's cue
    /// to stop accepting and drain.
    bool shutdown_requested() const noexcept {
        return shutdown_.load(std::memory_order_acquire);
    }

    /// Heavy commands currently inside handle() (draining waits on this).
    std::size_t active_requests() const noexcept {
        return active_.load(std::memory_order_acquire);
    }

    DesignCache& cache() noexcept { return cache_; }
    SnapshotStore* store() noexcept { return cfg_.store.get(); }

    /// Let the transport publish its counters for `stats` (null = the
    /// response carries no "connections" section). Set before serving.
    void set_transport_counters(const TransportCounters* c) noexcept {
        transport_ = c;
    }

private:
    class SlotGuard;
    class InflightGuard;

    std::string dispatch(std::string_view frame);
    std::string cmd_load(const class JsonValue& req, const std::string& id);
    std::string cmd_learn(const JsonValue& req, const std::string& id);
    std::string cmd_atpg(const JsonValue& req, const std::string& id);
    std::string cmd_fault_sim(const JsonValue& req, const std::string& id);
    std::string cmd_stats(const JsonValue& req, const std::string& id);
    std::string cmd_cancel(const JsonValue& req, const std::string& id);
    std::string cmd_shutdown(const std::string& id);

    /// Cache lookup with durable-store fallback (see resolve notes in the
    /// .cpp): a digest evicted from memory but present on disk is
    /// recompiled and its learned snapshot re-attached transparently.
    struct Resolved;
    Resolved resolve(const JsonValue& req, std::string_view cmd,
                     const std::string& id);

    /// Write-through: persist a freshly promoted learned snapshot to the
    /// durable store (best effort — a failed put is counted, not fatal).
    void store_write_through(const DesignCache::Entry& entry,
                             const core::LearnedSnapshot& snap);

    /// Wait for a session slot. Returns false on timeout (-> overloaded).
    bool acquire_slot();
    void release_slot();

    /// Register a heavy request's cancel flag under `id` (or a generated
    /// one); `cancel` requests flip it.
    std::shared_ptr<std::atomic<bool>> register_inflight(const std::string& id);
    void unregister_inflight(const std::string& id);

    ServiceConfig cfg_;
    DesignCache cache_;
    const TransportCounters* transport_ = nullptr;

    std::mutex slots_mu_;
    std::condition_variable slots_cv_;
    std::size_t slots_in_use_ = 0;

    std::mutex inflight_mu_;
    std::unordered_map<std::string, std::shared_ptr<std::atomic<bool>>> inflight_;
    std::atomic<std::uint64_t> next_request_seq_{0};

    std::atomic<bool> draining_{false};
    std::atomic<bool> shutdown_{false};
    std::atomic<std::size_t> active_{0};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> cancelled_{0};
};

}  // namespace seqlearn::server
