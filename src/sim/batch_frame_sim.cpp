#include "sim/batch_frame_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace seqlearn::sim {

using netlist::GateId;

namespace {

constexpr std::uint64_t lane_bit(int lane) noexcept { return 1ULL << lane; }

}  // namespace

void BatchFrameResult::finish_lane(int lane, FrameSimResult& out) const {
    const std::uint64_t bit = lane_bit(lane);
    out.conflict = (fallback & bit) != 0;
    out.conflict_gate = netlist::kNoGate;
    out.conflict_frame = 0;
    out.frames_run = frames_run[static_cast<std::size_t>(lane)];
    out.stopped_on_repeat = (stopped_on_repeat & bit) != 0;
    if (out.conflict) {
        // The batched events of a contradictory lane are invalid from a
        // schedule-dependent point on; only the verdict is usable here.
        out.implied.clear();
        return;
    }
}

FrameSimResult& BatchFrameResult::extract_lane(int lane, FrameSimResult& out) const {
    out.implied.clear();
    const std::uint64_t bit = lane_bit(lane);
    if ((fallback & bit) == 0) {
        for (const Event& e : events) {
            if (e.ones & bit) out.implied.push_back({e.frame, e.gate, Val3::One});
            else if (e.zeros & bit) out.implied.push_back({e.frame, e.gate, Val3::Zero});
        }
    }
    finish_lane(lane, out);
    return out;
}

void BatchFrameResult::extract_all(std::span<FrameSimResult> outs) const {
    int lanes = 0;
    for (std::uint64_t m = used; m != 0; m &= m - 1) ++lanes;
    // An undersized `outs` would leave stale results from a previous batch
    // in the un-extracted slots — catch the misuse in Debug builds (Release
    // clamps, which is still wrong but bounded; see the header contract).
    assert(outs.size() >= static_cast<std::size_t>(lanes) &&
           "extract_all: outs must hold one result per simulated lane");
    lanes = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(lanes), outs.size()));
    for (int l = 0; l < lanes; ++l) outs[static_cast<std::size_t>(l)].implied.clear();
    const std::uint64_t wanted = (lanes == 64 ? ~0ULL : (lane_bit(lanes) - 1)) & ~fallback;
    for (const Event& e : events) {
        for (std::uint64_t m = (e.ones | e.zeros) & wanted; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            outs[static_cast<std::size_t>(l)].implied.push_back(
                {e.frame, e.gate, (e.ones >> l) & 1 ? Val3::One : Val3::Zero});
        }
    }
    for (int l = 0; l < lanes; ++l) finish_lane(l, outs[static_cast<std::size_t>(l)]);
}

BatchFrameSimulator::BatchFrameSimulator(const Topology& topo, SeqGating gating)
    : topo_(&topo),
      gating_(std::move(gating)),
      val_(topo.size(), logic::kPatAllX),
      queued_(topo.size(), 0),
      scalar_(topo, gating_) {
    buckets_.resize(topo.max_level() + 1);
}

void BatchFrameSimulator::reset_frame_scratch() {
    for (const GateId g : touched_) {
        val_[g] = logic::kPatAllX;
        queued_[g] = 0;
    }
    touched_.clear();
    // As in the scalar simulator: a drained sweep leaves the buckets empty;
    // only an early bail-out (every lane retired mid-frame) leaves events
    // behind, and [evt_lo_, evt_hi_] still brackets them.
    if (evt_lo_ != UINT32_MAX) {
        for (std::uint32_t l = evt_lo_; l <= evt_hi_ && l < buckets_.size(); ++l) {
            for (const GateId g : buckets_[l]) queued_[g] = 0;
            buckets_[l].clear();
        }
        evt_lo_ = UINT32_MAX;
        evt_hi_ = 0;
    }
    pending_ = 0;
}

// Give `g` the binary values of `p` in the lanes of `mask`: detect per-lane
// contradictions (those lanes are flagged for scalar fallback and retired),
// record the newly assigned lanes as one event, enqueue combinational
// fanouts, and force equivalence partners in the same lanes.
void BatchFrameSimulator::assign(GateId g, Pattern p, std::uint64_t mask, std::uint32_t frame,
                                 BatchFrameResult& res) {
    mask &= live_;
    if (mask == 0) return;
    Pattern& v = val_[g];
    std::uint64_t want1 = p.ones & mask;
    std::uint64_t want0 = p.zeros & mask;
    const std::uint64_t conflict = (want1 & v.zeros) | (want0 & v.ones);
    if (conflict != 0) {
        res.fallback |= conflict;
        live_ &= ~conflict;
        want1 &= ~conflict;
        want0 &= ~conflict;
    }
    const std::uint64_t known = v.ones | v.zeros;
    const std::uint64_t new1 = want1 & ~known;
    const std::uint64_t new0 = want0 & ~known;
    if ((new1 | new0) == 0) return;
    if (known == 0) touched_.push_back(g);
    v.ones |= new1;
    v.zeros |= new0;
    res.events.push_back({frame, g, new1, new0});
    for (const GateId fo : topo_->comb_fanouts(g)) {
        if (!queued_[fo]) {
            queued_[fo] = 1;
            const std::uint32_t lvl = topo_->level(fo);
            buckets_[lvl].push_back(fo);
            evt_lo_ = std::min(evt_lo_, lvl);
            evt_hi_ = std::max(evt_hi_, lvl);
            ++pending_;
        }
    }
    if (equiv_ && g < equiv_->size()) {
        for (const EquivLink& link : (*equiv_)[g]) {
            const Pattern forced = link.inverted ? Pattern{new0, new1} : Pattern{new1, new0};
            assign(link.other, forced, new1 | new0, frame, res);
        }
    }
}

void BatchFrameSimulator::propagate(std::uint32_t frame, BatchFrameResult& res) {
    // Identical sweep structure to the scalar simulator; evaluation is
    // lane-wise over the pattern planes, and an evaluated gate is assigned
    // only in the lanes where the result is binary.
    while (pending_ > 0) {
        if (live_ == 0) return;  // every lane retired; reset cleans the rest
        for (std::uint32_t level = evt_lo_; level <= evt_hi_; ++level) {
            for (std::size_t i = 0; i < buckets_[level].size(); ++i) {
                const GateId g = buckets_[level][i];
                queued_[g] = 0;
                --pending_;
                if (!topo_->is_comb(g)) continue;
                const auto fi = topo_->fanins(g);
                const Pattern v = logic::eval_op_indirect(
                    topo_->op(g), fi.size(), [&](std::size_t k) { return val_[fi[k]]; });
                const std::uint64_t known = v.ones | v.zeros;
                if (known == 0) continue;
                assign(g, v, known, frame, res);
            }
            buckets_[level].clear();
        }
    }
    evt_lo_ = UINT32_MAX;
    evt_hi_ = 0;
}

BatchFrameResult& BatchFrameSimulator::run_batch(std::span<const BatchLane> lanes,
                                                 const FrameSimOptions& opt,
                                                 BatchFrameResult& out) {
    assert(lanes.size() <= 64 && "run_batch is 64 lanes wide; chunk larger spans (run_lanes does)");
    const int n = static_cast<int>(std::min<std::size_t>(lanes.size(), 64));
    out.events.clear();
    out.used = n == 64 ? ~0ULL : (lane_bit(n) - 1);
    out.fallback = 0;
    out.stopped_on_repeat = 0;
    out.frames_run.fill(0);
    live_ = out.used;

    // Flatten the per-lane schedules frame-major. The stable sort keeps each
    // lane's equal-frame injections in their given order — the same order a
    // scalar run applies them in.
    inj_.clear();
    // The scalar rule counts only tie cycles below the run's own frame
    // limit into its last-seed frame, so lanes with different limits need
    // different tie components: sort the distinct cycles once and take the
    // largest below each lane's limit.
    std::vector<std::uint32_t>& tie_cycles = tie_cycles_scratch_;
    tie_cycles.clear();
    if (ties_ && tie_cycles_) {
        for (GateId g = 0; g < ties_->size(); ++g) {
            if ((*ties_)[g] != Val3::X && (*tie_cycles_)[g] < opt.max_frames)
                tie_cycles.push_back((*tie_cycles_)[g]);
        }
        std::sort(tie_cycles.begin(), tie_cycles.end());
        tie_cycles.erase(std::unique(tie_cycles.begin(), tie_cycles.end()),
                         tie_cycles.end());
    }
    for (int l = 0; l < n; ++l) {
        const std::uint32_t lim = lanes[static_cast<std::size_t>(l)].max_frames;
        const std::uint32_t limit = lim == 0 ? opt.max_frames : std::min(lim, opt.max_frames);
        lane_limit_[static_cast<std::size_t>(l)] = limit;
        std::uint32_t last = 0;
        const auto it = std::lower_bound(tie_cycles.begin(), tie_cycles.end(), limit);
        if (it != tie_cycles.begin()) last = *(it - 1);
        for (const Injection& x : lanes[static_cast<std::size_t>(l)].injections) {
            inj_.push_back({x.frame, x.gate, x.value, static_cast<std::uint8_t>(l)});
            last = std::max(last, x.frame);
        }
        lane_seed_done_[static_cast<std::size_t>(l)] = last;
    }
    std::stable_sort(inj_.begin(), inj_.end(),
                     [](const LaneInjection& a, const LaneInjection& b) {
                         return a.frame < b.frame;
                     });

    state_.clear();
    next_state_.clear();
    std::size_t inj_cursor = 0;

    for (std::uint32_t frame = 0; frame < opt.max_frames && live_ != 0; ++frame) {
        // Retire lanes whose own frame window is exhausted (their frames_run
        // already equals the limit).
        for (std::uint64_t m = live_; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            if (frame >= lane_limit_[static_cast<std::size_t>(l)]) live_ &= ~lane_bit(l);
        }
        if (live_ == 0) break;

        reset_frame_scratch();
        for (std::uint64_t m = live_; m != 0; m &= m - 1)
            out.frames_run[static_cast<std::size_t>(std::countr_zero(m))] = frame + 1;

        // Seeds, in the scalar order: constants, tie facts, carried state,
        // this frame's injections. Each assign masks itself by the live set,
        // so retired lanes receive nothing.
        for (const GateId g : topo_->const_gates()) {
            const Val3 cv = topo_->op(g) == logic::GateOp::Const1 ? Val3::One : Val3::Zero;
            assign(g, logic::pat_broadcast(cv), ~0ULL, frame, out);
        }
        if (ties_) {
            for (GateId g = 0; g < ties_->size(); ++g) {
                if ((*ties_)[g] == Val3::X) continue;
                if (tie_cycles_ && (*tie_cycles_)[g] > frame) continue;
                assign(g, logic::pat_broadcast((*ties_)[g]), ~0ULL, frame, out);
            }
        }
        for (const StateEntry& e : state_) {
            assign(e.gate, e.pat, e.pat.ones | e.pat.zeros, frame, out);
        }
        while (inj_cursor < inj_.size() && inj_[inj_cursor].frame == frame) {
            const LaneInjection& x = inj_[inj_cursor++];
            Pattern p = logic::kPatAllX;
            logic::pat_set(p, x.lane, x.value);
            assign(x.gate, p, lane_bit(x.lane), frame, out);
        }

        propagate(frame, out);
        if (live_ == 0) break;

        // Capture: sequential elements fed by a touched gate take their
        // per-lane gated data value. A multi-fanin element appears once per
        // driving pin; the captured pattern is identical each time, so the
        // gate-keyed dedup below matches the scalar (gate, value) unique.
        next_state_.clear();
        for (const GateId t : touched_) {
            for (const GateId fo : topo_->seq_fanouts(t)) {
                const Pattern d = val_[topo_->fanins(fo)[0]];
                const Pattern cap{gating_.allows(fo, Val3::One) ? d.ones & live_ : 0,
                                  gating_.allows(fo, Val3::Zero) ? d.zeros & live_ : 0};
                if ((cap.ones | cap.zeros) == 0) continue;
                next_state_.push_back({fo, cap});
            }
        }
        std::sort(next_state_.begin(), next_state_.end(),
                  [](const StateEntry& a, const StateEntry& b) { return a.gate < b.gate; });
        next_state_.erase(std::unique(next_state_.begin(), next_state_.end(),
                                      [](const StateEntry& a, const StateEntry& b) {
                                          return a.gate == b.gate;
                                      }),
                          next_state_.end());

        // Per-lane stop rules, in the scalar order: state repeat first, then
        // empty next state; both only once the lane's seeding is complete.
        std::uint64_t seeding_done = 0;
        for (std::uint64_t m = live_; m != 0; m &= m - 1) {
            const int l = std::countr_zero(m);
            if (frame >= lane_seed_done_[static_cast<std::size_t>(l)]) seeding_done |= lane_bit(l);
        }
        if (seeding_done != 0) {
            if (opt.stop_on_state_repeat && frame > 0) {
                // Merge-walk both sorted state lists; a lane's states are
                // equal iff no gate differs in presence or value.
                std::uint64_t diff = 0;
                std::size_t i = 0, j = 0;
                while (i < state_.size() || j < next_state_.size()) {
                    const bool take_old =
                        j >= next_state_.size() ||
                        (i < state_.size() && state_[i].gate < next_state_[j].gate);
                    const bool take_new =
                        i >= state_.size() ||
                        (j < next_state_.size() && next_state_[j].gate < state_[i].gate);
                    if (take_old) {
                        diff |= state_[i].pat.ones | state_[i].pat.zeros;
                        ++i;
                    } else if (take_new) {
                        diff |= next_state_[j].pat.ones | next_state_[j].pat.zeros;
                        ++j;
                    } else {
                        diff |= (state_[i].pat.ones ^ next_state_[j].pat.ones) |
                                (state_[i].pat.zeros ^ next_state_[j].pat.zeros);
                        ++i;
                        ++j;
                    }
                }
                const std::uint64_t repeat = seeding_done & ~diff;
                out.stopped_on_repeat |= repeat;
                live_ &= ~repeat;
                seeding_done &= ~repeat;
            }
            std::uint64_t nonempty = 0;
            for (const StateEntry& e : next_state_) nonempty |= e.pat.ones | e.pat.zeros;
            live_ &= ~(seeding_done & ~nonempty);
        }

        std::swap(state_, next_state_);
    }
    // A final reset so stale per-frame values never leak into the next run
    // (and so a bailed-out frame's leftover events are cleaned up).
    reset_frame_scratch();
    return out;
}

void BatchFrameSimulator::run_lanes(std::span<const BatchLane> lanes, const FrameSimOptions& opt,
                                    std::span<FrameSimResult> outs) {
    // Chunk by the 64-lane batch width so oversized spans are handled
    // instead of silently truncated.
    for (std::size_t base = 0; base < lanes.size(); base += 64) {
        const std::size_t n = std::min<std::size_t>(64, lanes.size() - base);
        const std::span<const BatchLane> chunk = lanes.subspan(base, n);
        const std::span<FrameSimResult> chunk_outs = outs.subspan(base, n);
        run_batch(chunk, opt, lanes_scratch_);
        lanes_scratch_.extract_all(chunk_outs);
        for (std::size_t l = 0; l < n; ++l) {
            if ((lanes_scratch_.fallback >> l) & 1) {
                FrameSimOptions lane_opt = opt;
                if (chunk[l].max_frames != 0)
                    lane_opt.max_frames = std::min(chunk[l].max_frames, opt.max_frames);
                scalar_.run_into(chunk[l].injections, lane_opt, chunk_outs[l]);
            }
            canonicalize(chunk_outs[l]);
        }
    }
}

}  // namespace seqlearn::sim
