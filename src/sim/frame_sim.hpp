#pragma once
// Sparse event-driven forward simulation across time frames — the engine
// underneath both learning passes (paper Section 3).
//
// A run starts from the all-X state, applies scheduled injections at the
// start of their frames, and propagates three-valued values forward. Within
// a frame only the fanout cone of non-X values is visited, so a run costs
// O(cone) rather than O(circuit). Values cross frame boundaries only through
// sequential elements whose gating allows the value (Section 3.3 rules:
// multi-port latches block, unconstrained set/reset restricts by value,
// foreign clock classes block). Simulation stops early when the sequential
// state repeats across two consecutive frames (paper Section 3.1) or when
// nothing remains to propagate.
//
// Conflicts — a node acquiring both binary values — abort the run and are
// reported; multiple-node learning turns them into tie-gate proofs.
//
// Hot-path design: all connectivity is read from a flat CSR
// netlist::Topology (contiguous fanin/fanout spans, per-gate op codes,
// fanouts partitioned into combinational/sequential sub-spans), and every
// scratch buffer — including the result's implied list via run_into() — is
// reused across runs, so a run in steady state performs no heap allocation.

#include "logic/val3.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace seqlearn::sim {

using logic::Val3;
using netlist::GateId;
using netlist::Netlist;
using netlist::Topology;

/// Per-sequential-element, per-value propagation permission.
class SeqGating {
public:
    /// Everything propagates (single clock domain, no set/reset concerns).
    static SeqGating all_open(const Netlist& nl);

    /// Apply the paper's Section-3.3 rules for a learning pass over
    /// `class_members` (a clock class): elements outside the class block both
    /// values; multi-port latches block; an element with an unconstrained
    /// set (reset) line only passes 1 (0); unconstrained set+reset blocks.
    static SeqGating for_class(const Netlist& nl, std::span<const GateId> class_members);

    /// May value `v` (binary) propagate through sequential element `id`?
    bool allows(GateId id, Val3 v) const noexcept {
        const std::uint8_t bit = v == Val3::One ? 2 : 1;
        return (mask_[id] & bit) != 0;
    }

private:
    explicit SeqGating(std::size_t n) : mask_(n, 0) {}
    std::vector<std::uint8_t> mask_;
};

/// Combinational equivalence links used to overcome 3-valued pessimism
/// (paper Section 3.1): when a gate takes a binary value, its equivalent
/// (or inverse-equivalent) partners take the matching value too.
struct EquivLink {
    GateId other = netlist::kNoGate;
    bool inverted = false;
};

/// gate id -> links; empty vectors for gates without partners.
using EquivMap = std::vector<std::vector<EquivLink>>;

/// A scheduled assignment: `gate` takes `value` at the start of `frame`.
struct Injection {
    std::uint32_t frame = 0;
    GateId gate = netlist::kNoGate;
    Val3 value = Val3::X;
};

/// A binary value observed during the run.
struct ImpliedValue {
    std::uint32_t frame = 0;
    GateId gate = netlist::kNoGate;
    Val3 value = Val3::X;

    friend bool operator==(const ImpliedValue&, const ImpliedValue&) = default;
};

struct FrameSimOptions {
    /// Maximum number of frames simulated (paper uses 50).
    std::uint32_t max_frames = 50;
    /// Stop when the sequential state repeats over consecutive frames.
    bool stop_on_state_repeat = true;
};

struct FrameSimResult {
    /// Every binary value observed, in (frame, discovery) order — frames are
    /// simulated in order, so this list is sorted by frame; includes the
    /// injected values themselves.
    std::vector<ImpliedValue> implied;
    /// True when two contradictory binary values met; the run stops there.
    bool conflict = false;
    GateId conflict_gate = netlist::kNoGate;
    std::uint32_t conflict_frame = 0;
    /// Number of frames actually simulated.
    std::uint32_t frames_run = 0;
    /// True when the run ended on the state-repeat rule.
    bool stopped_on_repeat = false;
};

/// Re-order `res.implied` into canonical (frame, gate) order. Within a frame
/// the fixpoint a run computes is unique, but the *discovery* order depends
/// on the event schedule — and the 64-lane BatchFrameSimulator interleaves
/// the schedules of all its lanes. Consumers that must produce identical
/// results from a scalar run and from an extracted batch lane (the learning
/// extraction) canonicalize both first. Keys are unique (a gate acquires at
/// most one value per frame), so the order is total.
void canonicalize(FrameSimResult& res);

/// Reusable event-driven simulator; one instance per (topology, gating) pair
/// amortizes the CSR build and scratch buffers across many runs.
class FrameSimulator {
public:
    /// Build (and own) the CSR topology from `nl`.
    FrameSimulator(const Netlist& nl, SeqGating gating);

    /// Share an existing topology (must outlive the simulator).
    FrameSimulator(const Topology& topo, SeqGating gating);

    /// Force known equivalence classes during simulation (may be null).
    /// The map must outlive the simulator.
    void set_equivalences(const EquivMap* equiv) noexcept { equiv_ = equiv; }

    /// Take known tied gates as established facts: `ties` maps gate id to
    /// its tied value (X = not tied). A tie is seeded in every frame at or
    /// after its proof cycle (`cycles`, same indexing; null = all ties hold
    /// from frame 0, i.e. combinationally). Both vectors must outlive the
    /// simulator (may be null).
    void set_ties(const std::vector<Val3>* ties,
                  const std::vector<std::uint32_t>* cycles = nullptr) noexcept {
        ties_ = ties;
        tie_cycles_ = cycles;
    }

    /// Run one injection scenario into a caller-owned result whose buffers
    /// are reused across calls (the zero-allocation path — hand the same
    /// result object back on every call). Injections may target any frame
    /// below opt.max_frames; out-of-range injections are ignored.
    /// Returns `out` for chaining.
    FrameSimResult& run_into(std::span<const Injection> injections,
                             const FrameSimOptions& opt, FrameSimResult& out);

    /// Convenience wrapper allocating a fresh result per call.
    FrameSimResult run(std::span<const Injection> injections, const FrameSimOptions& opt) {
        FrameSimResult res;
        run_into(injections, opt, res);
        return res;
    }

    const Topology& topology() const noexcept { return *topo_; }

private:
    struct StateEntry {
        GateId gate;
        Val3 value;
        friend bool operator==(const StateEntry&, const StateEntry&) = default;
    };

    bool assign(GateId g, Val3 v, std::uint32_t frame, FrameSimResult& res);
    void propagate(std::uint32_t frame, FrameSimResult& res);
    void reset_frame_scratch();

    std::unique_ptr<const Topology> owned_topo_;  // null when sharing
    const Topology* topo_;
    SeqGating gating_;
    const EquivMap* equiv_ = nullptr;
    const std::vector<Val3>* ties_ = nullptr;
    const std::vector<std::uint32_t>* tie_cycles_ = nullptr;

    std::vector<Val3> val_;
    std::vector<GateId> touched_;
    std::vector<std::vector<GateId>> buckets_;
    std::vector<std::uint8_t> queued_;
    std::size_t pending_ = 0;
    // Occupied-level bounds of the event buckets: the sweep visits only
    // [evt_lo_, evt_hi_] instead of every level (deep circuits have hundreds
    // of levels while a sparse run touches a handful of gates).
    std::uint32_t evt_lo_ = UINT32_MAX;
    std::uint32_t evt_hi_ = 0;
    // Reused run() scratch: out-of-order injections (slow path) and the
    // sequential state entering/leaving the current frame.
    std::vector<Injection> inj_scratch_;
    std::vector<StateEntry> state_;
    std::vector<StateEntry> next_state_;
};

}  // namespace seqlearn::sim
