#pragma once
// 64-lane bit-parallel multi-frame event-driven simulation.
//
// The scalar FrameSimulator evaluates one injection scenario per run; the
// learning passes need two runs per stem (inject 0, inject 1), and every run
// re-seeds the same constants, learned ties, and equivalence forcings before
// propagating a usually-small divergent cone. BatchFrameSimulator runs up to
// 64 independent scenarios through ONE occupied-level-band event sweep per
// frame: each gate holds a logic::Pattern (two 64-bit planes: ones, zeros;
// both clear = X) instead of a Val3, every seed that is common to all lanes
// (constants, ties, tie-driven state) is paid once per frame instead of once
// per frame per scenario, and a gate shared by several lanes' cones is
// evaluated once for all of them.
//
// Lane semantics are exactly the scalar simulator's, lane-wise:
//  - the event queue is driven by the lane-divergence mask — a gate is
//    (re)queued when any live lane assigns one of its fanins, and an
//    evaluation assigns only the lanes where the result is binary, new, and
//    the lane is still live;
//  - per-lane stop rules (state repeat, empty next state, max_frames) retire
//    lanes individually; retired lanes stop seeding and stop recording;
//  - a lane whose closure turns contradictory (a gate acquiring both binary
//    values) is flagged in `fallback` and retired: its batched events are
//    not usable because the scalar run aborts mid-propagation at a
//    schedule-dependent point. run_lanes() re-runs such lanes on an internal
//    scalar FrameSimulator, so callers always observe bit-identical
//    per-lane semantics; callers that only need the conflict *verdict* (the
//    single-node learner: an injection that conflicts proves a stem tie)
//    can consume the flag directly and skip the re-run.
//
// Within a frame the batch sweep interleaves all lanes' event schedules, so
// per-lane discovery order differs from a scalar run's; the per-frame
// fixpoint does not (3-valued propagation is monotone, so the closure is
// schedule-independent). Raw extraction keeps the batch order — consumers
// are expected to be order-insensitive within a frame (the learning
// extraction is) or to apply sim::canonicalize to both sides before
// comparing, which run_lanes() does for its callers.

#include "logic/pattern.hpp"
#include "sim/frame_sim.hpp"

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::sim {

using logic::Pattern;

/// One scenario: the injection schedule a scalar run would receive, plus an
/// optional per-lane frame limit (0 = the batch-wide opt.max_frames). A
/// lane with limit L behaves exactly like a scalar run with max_frames = L
/// — the multiple-node learner batches targets whose windows differ.
struct BatchLane {
    std::span<const Injection> injections;
    std::uint32_t max_frames = 0;
};

/// Raw result of a batched run: a flat event stream (frame-major; each event
/// carries the planes of the lanes assigned at that point) plus per-lane
/// outcome summaries.
struct BatchFrameResult {
    struct Event {
        std::uint32_t frame;
        netlist::GateId gate;
        std::uint64_t ones;   ///< lanes newly assigned 1 by this event
        std::uint64_t zeros;  ///< lanes newly assigned 0 by this event
    };
    std::vector<Event> events;
    /// Lanes that were simulated (bit i = lane i of the input span).
    std::uint64_t used = 0;
    /// Lanes that hit a contradiction: their events are invalid from an
    /// unspecified point on — re-run them on a scalar FrameSimulator (or
    /// consume the conflict verdict directly).
    std::uint64_t fallback = 0;
    /// Lanes that ended on the state-repeat rule.
    std::uint64_t stopped_on_repeat = 0;
    std::array<std::uint32_t, 64> frames_run{};

    /// Extract one non-fallback lane into `out` (buffers reused). The
    /// implied list is grouped by frame (frames simulate in order); within a
    /// frame it carries the batch sweep's discovery order — the *set* per
    /// frame equals a scalar run's (the fixpoint is schedule-independent),
    /// the order does not; apply sim::canonicalize for a total order.
    /// Returns `out` for chaining.
    FrameSimResult& extract_lane(int lane, FrameSimResult& out) const;

    /// Extract every used lane in one pass over the event stream (total cost
    /// = the sum of per-lane implied sizes, not 64 * events); same ordering
    /// contract as extract_lane. Fallback lanes get conflict=true and an
    /// empty implied list — callers wanting their full scalar result must
    /// re-run them (see run_lanes). `outs` must hold at least as many
    /// results as lanes were simulated.
    void extract_all(std::span<FrameSimResult> outs) const;

private:
    void finish_lane(int lane, FrameSimResult& out) const;
};

/// Reusable 64-lane simulator; shares the caller's CSR topology and is
/// configured exactly like a FrameSimulator (gating, equivalences, ties).
class BatchFrameSimulator {
public:
    /// Share an existing topology (must outlive the simulator).
    BatchFrameSimulator(const Topology& topo, SeqGating gating);

    /// Force known equivalence classes during simulation (may be null; must
    /// outlive the simulator).
    void set_equivalences(const EquivMap* equiv) noexcept {
        equiv_ = equiv;
        scalar_.set_equivalences(equiv);
    }

    /// Seed established tie facts in every frame at or after their proof
    /// cycle — same contract as FrameSimulator::set_ties.
    void set_ties(const std::vector<Val3>* ties,
                  const std::vector<std::uint32_t>* cycles = nullptr) noexcept {
        ties_ = ties;
        tie_cycles_ = cycles;
        scalar_.set_ties(ties, cycles);
    }

    /// Run up to 64 scenarios through one batched event sweep into a
    /// caller-owned result whose buffers are reused across calls. Returns
    /// `out` for chaining.
    BatchFrameResult& run_batch(std::span<const BatchLane> lanes, const FrameSimOptions& opt,
                                BatchFrameResult& out);

    /// Convenience: run the batch and materialize every lane as a
    /// FrameSimResult equal to canonicalize(scalar run of the same
    /// scenario) — fallback lanes are re-run on the internal scalar
    /// simulator, and every lane is canonicalized, so the output is a pure
    /// function of the scenario. More than 64 lanes are processed in
    /// 64-wide chunks. `outs.size()` must be >= `lanes.size()`.
    void run_lanes(std::span<const BatchLane> lanes, const FrameSimOptions& opt,
                   std::span<FrameSimResult> outs);

    const Topology& topology() const noexcept { return *topo_; }

private:
    struct StateEntry {
        netlist::GateId gate;
        Pattern pat;
    };

    void assign(netlist::GateId g, Pattern p, std::uint64_t mask, std::uint32_t frame,
                BatchFrameResult& res);
    void propagate(std::uint32_t frame, BatchFrameResult& res);
    void reset_frame_scratch();

    const Topology* topo_;
    SeqGating gating_;
    const EquivMap* equiv_ = nullptr;
    const std::vector<Val3>* ties_ = nullptr;
    const std::vector<std::uint32_t>* tie_cycles_ = nullptr;

    std::vector<Pattern> val_;
    std::vector<netlist::GateId> touched_;
    std::vector<std::vector<netlist::GateId>> buckets_;
    std::vector<std::uint8_t> queued_;
    std::size_t pending_ = 0;
    std::uint32_t evt_lo_ = UINT32_MAX;
    std::uint32_t evt_hi_ = 0;
    std::uint64_t live_ = 0;

    // Flattened injection schedule, frame-major with per-lane tags, plus the
    // frame after which each lane's seeding is complete.
    struct LaneInjection {
        std::uint32_t frame;
        netlist::GateId gate;
        Val3 value;
        std::uint8_t lane;
    };
    std::vector<LaneInjection> inj_;
    std::array<std::uint32_t, 64> lane_seed_done_{};
    std::array<std::uint32_t, 64> lane_limit_{};
    std::vector<std::uint32_t> tie_cycles_scratch_;

    std::vector<StateEntry> state_;
    std::vector<StateEntry> next_state_;

    // Scalar twin for fallback lanes (kept configured in lockstep).
    FrameSimulator scalar_;
    BatchFrameResult lanes_scratch_;  // run_lanes() working storage
};

}  // namespace seqlearn::sim
