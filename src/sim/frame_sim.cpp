#include "sim/frame_sim.hpp"

#include <algorithm>

namespace seqlearn::sim {

using netlist::GateType;
using netlist::is_sequential;
using netlist::SetReset;

SeqGating SeqGating::all_open(const Netlist& nl) {
    SeqGating g(nl.size());
    for (const GateId id : nl.seq_elements()) g.mask_[id] = 3;
    return g;
}

SeqGating SeqGating::for_class(const Netlist& nl, std::span<const GateId> class_members) {
    SeqGating g(nl.size());
    for (const GateId id : class_members) {
        const netlist::SeqAttrs& a = nl.seq_attrs(id);
        if (a.num_ports > 1) continue;  // Section 3.3.1: multi-port latches block
        std::uint8_t mask = 3;
        if (a.sr_unconstrained) {
            switch (a.set_reset) {
                case SetReset::None: break;
                case SetReset::SetOnly: mask = 2; break;    // only 1 survives a free set line
                case SetReset::ResetOnly: mask = 1; break;  // only 0 survives a free reset line
                case SetReset::Both: mask = 0; break;       // Section 3.3.3: block entirely
            }
        }
        g.mask_[id] = mask;
    }
    return g;
}

FrameSimulator::FrameSimulator(const Netlist& nl, SeqGating gating)
    : nl_(&nl),
      gating_(std::move(gating)),
      lv_(netlist::levelize(nl)),
      val_(nl.size(), Val3::X),
      queued_(nl.size(), 0) {
    buckets_.resize(lv_.max_level + 1);
    for (GateId id = 0; id < nl.size(); ++id) {
        if (nl.type(id) == GateType::Const0 || nl.type(id) == GateType::Const1)
            consts_.push_back(id);
    }
}

void FrameSimulator::reset_frame_scratch() {
    for (const GateId g : touched_) {
        val_[g] = Val3::X;
        queued_[g] = 0;
    }
    touched_.clear();
    for (auto& b : buckets_) b.clear();
    pending_ = 0;
}

// Give `g` the binary value `v`; detect contradictions; record; enqueue
// combinational fanouts; force equivalence partners. Returns false on
// conflict.
bool FrameSimulator::assign(GateId g, Val3 v, std::uint32_t frame, FrameSimResult& res) {
    if (val_[g] == v) return true;
    if (val_[g] != Val3::X) {
        res.conflict = true;
        res.conflict_gate = g;
        res.conflict_frame = frame;
        return false;
    }
    val_[g] = v;
    touched_.push_back(g);
    res.implied.push_back({frame, g, v});
    for (const GateId fo : nl_->fanouts(g)) {
        if (is_sequential(nl_->type(fo))) continue;  // consumed at the frame boundary
        if (!queued_[fo]) {
            queued_[fo] = 1;
            buckets_[lv_.level[fo]].push_back(fo);
            ++pending_;
        }
    }
    if (equiv_ && g < equiv_->size()) {
        for (const EquivLink& link : (*equiv_)[g]) {
            const Val3 forced = link.inverted ? logic::v3_not(v) : v;
            if (!assign(link.other, forced, frame, res)) return false;
        }
    }
    return true;
}

void FrameSimulator::propagate(std::uint32_t frame, FrameSimResult& res) {
    // Equivalence forcing can enqueue gates at levels already swept, so the
    // level sweep repeats until no events remain. Values only move X ->
    // binary, so the total work is bounded by the number of assignments.
    while (pending_ > 0) {
        for (std::uint32_t level = 0; level < buckets_.size(); ++level) {
            // assign() may append to the bucket being drained; index-based
            // loop handles growth.
            for (std::size_t i = 0; i < buckets_[level].size(); ++i) {
                const GateId g = buckets_[level][i];
                queued_[g] = 0;
                --pending_;
                const GateType t = nl_->type(g);
                if (t == GateType::Input || is_sequential(t)) continue;
                scratch_ins_.clear();
                for (const GateId f : nl_->fanins(g)) scratch_ins_.push_back(val_[f]);
                const Val3 v = logic::eval_op(netlist::to_op(t), scratch_ins_);
                if (v == Val3::X) continue;
                if (!assign(g, v, frame, res)) return;
            }
            buckets_[level].clear();
        }
    }
}

FrameSimResult FrameSimulator::run(std::span<const Injection> injections,
                                   const FrameSimOptions& opt) {
    FrameSimResult res;
    // Injections sorted by frame for sequential application.
    std::vector<Injection> inj(injections.begin(), injections.end());
    std::sort(inj.begin(), inj.end(),
              [](const Injection& a, const Injection& b) { return a.frame < b.frame; });
    std::uint32_t last_seed_frame = 0;
    for (const Injection& x : inj) last_seed_frame = std::max(last_seed_frame, x.frame);
    if (ties_ && tie_cycles_) {
        for (GateId g = 0; g < ties_->size(); ++g) {
            if ((*ties_)[g] != Val3::X && (*tie_cycles_)[g] < opt.max_frames)
                last_seed_frame = std::max(last_seed_frame, (*tie_cycles_)[g]);
        }
    }

    std::vector<StateEntry> state;       // binary sequential outputs entering this frame
    std::vector<StateEntry> next_state;  // captured at this frame's boundary
    std::size_t inj_cursor = 0;

    for (std::uint32_t frame = 0; frame < opt.max_frames; ++frame) {
        reset_frame_scratch();

        // Seed 0: constant sources (event-driven evaluation never visits
        // them otherwise).
        for (const GateId g : consts_) {
            const Val3 cv = nl_->type(g) == GateType::Const1 ? Val3::One : Val3::Zero;
            if (!assign(g, cv, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }
        // Seed 1: established tie facts (paper: later passes exploit
        // previously learned ties). A sequential tie proven from cycle c is
        // a fact only in frames with at least c predecessors.
        if (ties_) {
            for (GateId g = 0; g < ties_->size(); ++g) {
                if ((*ties_)[g] == Val3::X) continue;
                if (tie_cycles_ && (*tie_cycles_)[g] > frame) continue;
                if (!assign(g, (*ties_)[g], frame, res)) {
                    res.frames_run = frame + 1;
                    return res;
                }
            }
        }
        // Seed 2: sequential state from the previous frame.
        for (const StateEntry& e : state) {
            if (!assign(e.gate, e.value, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }
        // Seed 3: this frame's injections.
        while (inj_cursor < inj.size() && inj[inj_cursor].frame == frame) {
            const Injection& x = inj[inj_cursor++];
            if (!assign(x.gate, x.value, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }

        propagate(frame, res);
        res.frames_run = frame + 1;
        if (res.conflict) return res;

        // Capture: sequential elements fed by a touched gate (or touched
        // themselves, for direct feedback) take their gated data value.
        next_state.clear();
        for (const GateId t : touched_) {
            for (const GateId fo : nl_->fanouts(t)) {
                if (!is_sequential(nl_->type(fo))) continue;
                const Val3 d = val_[nl_->fanins(fo)[0]];
                if (d == Val3::X) continue;
                if (!gating_.allows(fo, d)) continue;
                next_state.push_back({fo, d});
            }
        }
        std::sort(next_state.begin(), next_state.end(),
                  [](const StateEntry& a, const StateEntry& b) { return a.gate < b.gate; });
        next_state.erase(std::unique(next_state.begin(), next_state.end()), next_state.end());

        // Stop rules apply only once every scheduled injection has fired and
        // every sequential tie has activated.
        const bool seeding_done = inj_cursor >= inj.size() && frame >= last_seed_frame;
        if (seeding_done && opt.stop_on_state_repeat && frame > 0 && next_state == state) {
            res.stopped_on_repeat = true;
            return res;
        }
        if (seeding_done && next_state.empty()) return res;

        state = std::move(next_state);
        next_state.clear();
    }
    return res;
}

}  // namespace seqlearn::sim
