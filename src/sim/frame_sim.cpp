#include "sim/frame_sim.hpp"

#include <algorithm>

namespace seqlearn::sim {

using netlist::GateType;
using netlist::SetReset;

SeqGating SeqGating::all_open(const Netlist& nl) {
    SeqGating g(nl.size());
    for (const GateId id : nl.seq_elements()) g.mask_[id] = 3;
    return g;
}

SeqGating SeqGating::for_class(const Netlist& nl, std::span<const GateId> class_members) {
    SeqGating g(nl.size());
    for (const GateId id : class_members) {
        const netlist::SeqAttrs& a = nl.seq_attrs(id);
        if (a.num_ports > 1) continue;  // Section 3.3.1: multi-port latches block
        std::uint8_t mask = 3;
        if (a.sr_unconstrained) {
            switch (a.set_reset) {
                case SetReset::None: break;
                case SetReset::SetOnly: mask = 2; break;    // only 1 survives a free set line
                case SetReset::ResetOnly: mask = 1; break;  // only 0 survives a free reset line
                case SetReset::Both: mask = 0; break;       // Section 3.3.3: block entirely
            }
        }
        g.mask_[id] = mask;
    }
    return g;
}

void canonicalize(FrameSimResult& res) {
    std::sort(res.implied.begin(), res.implied.end(),
              [](const ImpliedValue& a, const ImpliedValue& b) {
                  return a.frame != b.frame ? a.frame < b.frame : a.gate < b.gate;
              });
}

FrameSimulator::FrameSimulator(const Netlist& nl, SeqGating gating)
    : owned_topo_(std::make_unique<Topology>(nl)),
      topo_(owned_topo_.get()),
      gating_(std::move(gating)),
      val_(topo_->size(), Val3::X),
      queued_(topo_->size(), 0) {
    buckets_.resize(topo_->max_level() + 1);
}

FrameSimulator::FrameSimulator(const Topology& topo, SeqGating gating)
    : topo_(&topo),
      gating_(std::move(gating)),
      val_(topo.size(), Val3::X),
      queued_(topo.size(), 0) {
    buckets_.resize(topo.max_level() + 1);
}

void FrameSimulator::reset_frame_scratch() {
    for (const GateId g : touched_) {
        val_[g] = Val3::X;
        queued_[g] = 0;
    }
    touched_.clear();
    // A completed propagate() drains, clears, and bound-resets every bucket
    // it visited; only a conflict abort leaves events behind, and then
    // [evt_lo_, evt_hi_] still brackets them. Clear the queued_ flag of
    // every discarded event (gates already drained have it down; undrained
    // ones must not stay blocked) or later runs silently skip them.
    if (evt_lo_ != UINT32_MAX) {
        for (std::uint32_t l = evt_lo_; l <= evt_hi_ && l < buckets_.size(); ++l) {
            for (const GateId g : buckets_[l]) queued_[g] = 0;
            buckets_[l].clear();
        }
        evt_lo_ = UINT32_MAX;
        evt_hi_ = 0;
    }
    pending_ = 0;
}

// Give `g` the binary value `v`; detect contradictions; record; enqueue
// combinational fanouts; force equivalence partners. Returns false on
// conflict.
bool FrameSimulator::assign(GateId g, Val3 v, std::uint32_t frame, FrameSimResult& res) {
    if (val_[g] == v) return true;
    if (val_[g] != Val3::X) {
        res.conflict = true;
        res.conflict_gate = g;
        res.conflict_frame = frame;
        return false;
    }
    val_[g] = v;
    touched_.push_back(g);
    res.implied.push_back({frame, g, v});
    for (const GateId fo : topo_->comb_fanouts(g)) {
        if (!queued_[fo]) {
            queued_[fo] = 1;
            const std::uint32_t lvl = topo_->level(fo);
            buckets_[lvl].push_back(fo);
            evt_lo_ = std::min(evt_lo_, lvl);
            evt_hi_ = std::max(evt_hi_, lvl);
            ++pending_;
        }
    }
    if (equiv_ && g < equiv_->size()) {
        for (const EquivLink& link : (*equiv_)[g]) {
            const Val3 forced = link.inverted ? logic::v3_not(v) : v;
            if (!assign(link.other, forced, frame, res)) return false;
        }
    }
    return true;
}

void FrameSimulator::propagate(std::uint32_t frame, FrameSimResult& res) {
    // Equivalence forcing can enqueue gates at levels already swept, so the
    // level sweep repeats until no events remain. Values only move X ->
    // binary, so the total work is bounded by the number of assignments.
    // Only the occupied band [evt_lo_, evt_hi_] is visited; enqueues during
    // the sweep extend evt_hi_ (picked up by the re-read bound) or lower
    // evt_lo_ (picked up by the next while pass).
    while (pending_ > 0) {
        for (std::uint32_t level = evt_lo_; level <= evt_hi_; ++level) {
            // assign() may append to the bucket being drained; index-based
            // loop handles growth.
            for (std::size_t i = 0; i < buckets_[level].size(); ++i) {
                const GateId g = buckets_[level][i];
                queued_[g] = 0;
                --pending_;
                if (!topo_->is_comb(g)) continue;
                const auto fi = topo_->fanins(g);
                const Val3 v = logic::eval_op_indirect(
                    topo_->op(g), fi.size(), [&](std::size_t k) { return val_[fi[k]]; });
                if (v == Val3::X) continue;
                if (!assign(g, v, frame, res)) return;
            }
            buckets_[level].clear();
        }
    }
    evt_lo_ = UINT32_MAX;
    evt_hi_ = 0;
}

FrameSimResult& FrameSimulator::run_into(std::span<const Injection> injections,
                                         const FrameSimOptions& opt, FrameSimResult& out) {
    out.implied.clear();
    out.conflict = false;
    out.conflict_gate = netlist::kNoGate;
    out.conflict_frame = 0;
    out.frames_run = 0;
    out.stopped_on_repeat = false;
    FrameSimResult& res = out;

    // Injections are applied in frame order. The universal caller — learning
    // passing one frame-0 injection per run — is already sorted, so the copy
    // + sort happens only for genuinely out-of-order schedules. Equal
    // (frame, gate) keys are in order by definition, so the paired
    // stem=0/stem=1 probes and tie-seeded multi-injection schedules stay on
    // the fast path; the slow path uses a stable sort so equal-frame
    // injections keep their given order (matching what the fast path does —
    // an unstable sort would make the conflict outcome of same-frame
    // schedules depend on std::sort internals).
    std::span<const Injection> inj = injections;
    bool sorted = true;
    for (std::size_t i = 1; i < injections.size(); ++i) {
        if (injections[i].frame < injections[i - 1].frame) {
            sorted = false;
            break;
        }
    }
    if (!sorted) {
        inj_scratch_.assign(injections.begin(), injections.end());
        std::stable_sort(inj_scratch_.begin(), inj_scratch_.end(),
                         [](const Injection& a, const Injection& b) { return a.frame < b.frame; });
        inj = inj_scratch_;
    }
    std::uint32_t last_seed_frame = 0;
    for (const Injection& x : inj) last_seed_frame = std::max(last_seed_frame, x.frame);
    if (ties_ && tie_cycles_) {
        for (GateId g = 0; g < ties_->size(); ++g) {
            if ((*ties_)[g] != Val3::X && (*tie_cycles_)[g] < opt.max_frames)
                last_seed_frame = std::max(last_seed_frame, (*tie_cycles_)[g]);
        }
    }

    state_.clear();       // binary sequential outputs entering this frame
    next_state_.clear();  // captured at this frame's boundary
    std::size_t inj_cursor = 0;

    for (std::uint32_t frame = 0; frame < opt.max_frames; ++frame) {
        reset_frame_scratch();

        // Seed 0: constant sources (event-driven evaluation never visits
        // them otherwise).
        for (const GateId g : topo_->const_gates()) {
            const Val3 cv = topo_->op(g) == logic::GateOp::Const1 ? Val3::One : Val3::Zero;
            if (!assign(g, cv, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }
        // Seed 1: established tie facts (paper: later passes exploit
        // previously learned ties). A sequential tie proven from cycle c is
        // a fact only in frames with at least c predecessors.
        if (ties_) {
            for (GateId g = 0; g < ties_->size(); ++g) {
                if ((*ties_)[g] == Val3::X) continue;
                if (tie_cycles_ && (*tie_cycles_)[g] > frame) continue;
                if (!assign(g, (*ties_)[g], frame, res)) {
                    res.frames_run = frame + 1;
                    return res;
                }
            }
        }
        // Seed 2: sequential state from the previous frame.
        for (const StateEntry& e : state_) {
            if (!assign(e.gate, e.value, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }
        // Seed 3: this frame's injections.
        while (inj_cursor < inj.size() && inj[inj_cursor].frame == frame) {
            const Injection& x = inj[inj_cursor++];
            if (!assign(x.gate, x.value, frame, res)) {
                res.frames_run = frame + 1;
                return res;
            }
        }

        propagate(frame, res);
        res.frames_run = frame + 1;
        if (res.conflict) return res;

        // Capture: sequential elements fed by a touched gate (or touched
        // themselves, for direct feedback) take their gated data value.
        next_state_.clear();
        for (const GateId t : touched_) {
            for (const GateId fo : topo_->seq_fanouts(t)) {
                const Val3 d = val_[topo_->fanins(fo)[0]];
                if (d == Val3::X) continue;
                if (!gating_.allows(fo, d)) continue;
                next_state_.push_back({fo, d});
            }
        }
        std::sort(next_state_.begin(), next_state_.end(),
                  [](const StateEntry& a, const StateEntry& b) { return a.gate < b.gate; });
        next_state_.erase(std::unique(next_state_.begin(), next_state_.end()),
                          next_state_.end());

        // Stop rules apply only once every scheduled injection has fired and
        // every sequential tie has activated.
        const bool seeding_done = inj_cursor >= inj.size() && frame >= last_seed_frame;
        if (seeding_done && opt.stop_on_state_repeat && frame > 0 && next_state_ == state_) {
            res.stopped_on_repeat = true;
            return res;
        }
        if (seeding_done && next_state_.empty()) return res;

        std::swap(state_, next_state_);
    }
    return res;
}

}  // namespace seqlearn::sim
