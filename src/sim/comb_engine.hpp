#pragma once
// Levelized full-circuit 3-valued evaluation, plus a scalar multi-frame
// sequence simulator built on it.
//
// These are the *reference* engines: simple, exhaustive, used by tests,
// reachability analysis, and anywhere clarity beats speed. The learning
// passes use the sparse event-driven FrameSimulator instead.

#include "logic/val3.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <vector>

namespace seqlearn::sim {

using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

/// Levelized evaluator over all combinational gates. Evaluation walks the
/// CSR topology schedule and reads fanin values through flat index spans —
/// no per-gate operand gather.
class CombEngine {
public:
    explicit CombEngine(const Netlist& nl);

    /// Evaluate every combinational gate from the source values already in
    /// `vals` (primary inputs, constants, and sequential-element outputs;
    /// constants are overwritten with their fixed value). `vals` must be
    /// sized nl.size().
    void eval(std::vector<Val3>& vals) const;

    const netlist::Levelization& levels() const noexcept { return topo_.levels(); }
    const netlist::Topology& topology() const noexcept { return topo_; }
    const Netlist& netlist() const noexcept { return *nl_; }

private:
    const Netlist* nl_;
    netlist::Topology topo_;
};

/// One frame of primary-input values, indexed like Netlist::inputs().
using InputFrame = std::vector<Val3>;

/// A test sequence: one InputFrame per clock cycle.
using InputSequence = std::vector<InputFrame>;

/// Result of simulating a sequence: values of every gate in every frame.
struct SequenceResult {
    /// frame -> gate -> value.
    std::vector<std::vector<Val3>> frames;
    /// frame -> output values (indexed like Netlist::outputs()).
    std::vector<std::vector<Val3>> outputs;
};

/// Simulate `seq` from the all-X initial state under 3-valued semantics.
/// Flip-flops capture their D value at each frame boundary; latches are
/// treated as transparent captures at the boundary as well (the scalar
/// reference keeps a single-phase clock model). `initial_state`, when given,
/// provides per-sequential-element starting values (indexed like
/// Netlist::seq_elements()).
SequenceResult simulate_sequence(const Netlist& nl, const InputSequence& seq,
                                 const std::vector<Val3>* initial_state = nullptr);

}  // namespace seqlearn::sim
