#pragma once
// 64-way bit-parallel levelized simulation.
//
// Drives the gate-equivalence candidate search (paper Section 3.1:
// "Equivalent combinational gates can be efficiently identified based on
// parallel pattern simulation techniques") and provides the plane machinery
// reused by the fault simulator.
//
// Evaluation walks the CSR topology schedule and applies each gate's
// operator directly over the pattern array through the flat fanin span —
// no per-gate operand gather.

#include "logic/pattern.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"
#include "util/rng.hpp"

#include <span>
#include <vector>

namespace seqlearn::sim {

using logic::Pattern;
using netlist::GateId;
using netlist::Netlist;

/// Levelized evaluator over 64-lane patterns.
class ParallelSim {
public:
    explicit ParallelSim(const Netlist& nl);

    /// Evaluate every combinational gate from the source patterns already in
    /// `pats` (inputs and sequential-element outputs). `pats` must be sized
    /// nl.size().
    void eval(std::vector<Pattern>& pats) const;

    /// Fill all source lanes (inputs and sequential outputs) with random
    /// binary values and evaluate. Convenient for signature collection.
    void eval_random(std::vector<Pattern>& pats, util::Rng& rng) const;

    const Netlist& netlist() const noexcept { return *nl_; }
    const netlist::Topology& topology() const noexcept { return topo_; }

private:
    const Netlist* nl_;
    netlist::Topology topo_;
};

/// Per-gate 64-bit signatures accumulated over `rounds` random evaluations;
/// two combinationally equivalent gates always have equal signatures, and
/// inverse-equivalent gates have complementary ones. Collisions are
/// candidates only — callers must prove equivalence before using it.
///
/// Storage is one flat gate-major array (`rounds` words per gate) written
/// in place — no per-gate vectors.
struct SignatureSet {
    /// words[g * rounds + r] = the ones-plane of gate g in round r.
    std::vector<std::uint64_t> words;
    std::size_t rounds = 0;

    /// The signature words of gate `g`.
    std::span<const std::uint64_t> of(GateId g) const noexcept {
        return {words.data() + static_cast<std::size_t>(g) * rounds, rounds};
    }
};

SignatureSet collect_signatures(const Netlist& nl, std::size_t rounds, std::uint64_t seed);

}  // namespace seqlearn::sim
