#include "sim/comb_engine.hpp"

#include <stdexcept>

namespace seqlearn::sim {

CombEngine::CombEngine(const Netlist& nl) : nl_(&nl), topo_(nl) {}

void CombEngine::eval(std::vector<Val3>& vals) const {
    if (vals.size() != topo_.size()) throw std::invalid_argument("CombEngine::eval: bad size");
    Val3* const v = vals.data();
    for (const GateId id : topo_.schedule()) {
        if (!(topo_.flags(id) & (netlist::Topology::kComb | netlist::Topology::kConst)))
            continue;
        const auto fi = topo_.fanins(id);
        v[id] = logic::eval_op_indirect(topo_.op(id), fi.size(),
                                        [&](std::size_t k) { return v[fi[k]]; });
    }
}

SequenceResult simulate_sequence(const Netlist& nl, const InputSequence& seq,
                                 const std::vector<Val3>* initial_state) {
    const CombEngine engine(nl);
    const auto inputs = nl.inputs();
    const auto seq_elems = nl.seq_elements();
    if (initial_state && initial_state->size() != seq_elems.size())
        throw std::invalid_argument("simulate_sequence: bad initial state size");

    SequenceResult out;
    out.frames.reserve(seq.size());
    out.outputs.reserve(seq.size());

    std::vector<Val3> state(seq_elems.size(), Val3::X);
    if (initial_state) state = *initial_state;

    for (const InputFrame& frame : seq) {
        if (frame.size() != inputs.size())
            throw std::invalid_argument("simulate_sequence: bad input frame size");
        std::vector<Val3> vals(nl.size(), Val3::X);
        for (std::size_t i = 0; i < inputs.size(); ++i) vals[inputs[i]] = frame[i];
        for (std::size_t i = 0; i < seq_elems.size(); ++i) vals[seq_elems[i]] = state[i];
        engine.eval(vals);
        for (std::size_t i = 0; i < seq_elems.size(); ++i) {
            // Scalar reference model: every element captures its (first-port)
            // data value at the frame boundary.
            state[i] = vals[nl.fanins(seq_elems[i])[0]];
        }
        std::vector<Val3> povals;
        povals.reserve(nl.outputs().size());
        for (const GateId o : nl.outputs()) povals.push_back(vals[o]);
        out.frames.push_back(std::move(vals));
        out.outputs.push_back(std::move(povals));
    }
    return out;
}

}  // namespace seqlearn::sim
