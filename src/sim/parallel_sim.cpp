#include "sim/parallel_sim.hpp"

#include <stdexcept>

namespace seqlearn::sim {

ParallelSim::ParallelSim(const Netlist& nl) : nl_(&nl), topo_(nl) {}

void ParallelSim::eval(std::vector<Pattern>& pats) const {
    if (pats.size() != topo_.size()) throw std::invalid_argument("ParallelSim::eval: bad size");
    Pattern* const vals = pats.data();
    for (const GateId id : topo_.schedule()) {
        if (!(topo_.flags(id) & (netlist::Topology::kComb | netlist::Topology::kConst)))
            continue;
        const auto fi = topo_.fanins(id);
        vals[id] = logic::eval_op_indirect(topo_.op(id), fi.size(),
                                           [&](std::size_t k) { return vals[fi[k]]; });
    }
}

void ParallelSim::eval_random(std::vector<Pattern>& pats, util::Rng& rng) const {
    if (pats.size() != topo_.size())
        throw std::invalid_argument("ParallelSim::eval_random: bad size");
    auto randomize = [&](GateId id) {
        const std::uint64_t bits = rng.next_u64();
        pats[id] = Pattern{bits, ~bits};
    };
    for (const GateId id : nl_->inputs()) randomize(id);
    for (const GateId id : nl_->seq_elements()) randomize(id);
    eval(pats);
}

SignatureSet collect_signatures(const Netlist& nl, std::size_t rounds, std::uint64_t seed) {
    ParallelSim sim(nl);
    util::Rng rng(seed);
    const std::size_t n = nl.size();
    SignatureSet out;
    out.rounds = rounds;
    out.words.assign(n * rounds, 0);  // one preallocated rounds-per-gate block
    std::vector<Pattern> pats(n);
    for (std::size_t r = 0; r < rounds; ++r) {
        sim.eval_random(pats, rng);
        for (GateId id = 0; id < n; ++id) out.words[id * rounds + r] = pats[id].ones;
    }
    return out;
}

}  // namespace seqlearn::sim
