#include "sim/parallel_sim.hpp"

#include <stdexcept>

namespace seqlearn::sim {

using netlist::GateType;
using netlist::is_sequential;

ParallelSim::ParallelSim(const Netlist& nl) : nl_(&nl), lv_(netlist::levelize(nl)) {}

void ParallelSim::eval(std::vector<Pattern>& pats) const {
    if (pats.size() != nl_->size()) throw std::invalid_argument("ParallelSim::eval: bad size");
    std::vector<Pattern> ins;
    for (const GateId id : lv_.topo_order) {
        const GateType t = nl_->type(id);
        if (t == GateType::Input || is_sequential(t)) continue;
        const auto fanins = nl_->fanins(id);
        ins.clear();
        for (const GateId f : fanins) ins.push_back(pats[f]);
        pats[id] = logic::eval_op(netlist::to_op(t), ins.data(), static_cast<int>(ins.size()));
    }
}

void ParallelSim::eval_random(std::vector<Pattern>& pats, util::Rng& rng) const {
    if (pats.size() != nl_->size())
        throw std::invalid_argument("ParallelSim::eval_random: bad size");
    auto randomize = [&](GateId id) {
        const std::uint64_t bits = rng.next_u64();
        pats[id] = Pattern{bits, ~bits};
    };
    for (const GateId id : nl_->inputs()) randomize(id);
    for (const GateId id : nl_->seq_elements()) randomize(id);
    eval(pats);
}

SignatureSet collect_signatures(const Netlist& nl, std::size_t rounds, std::uint64_t seed) {
    ParallelSim sim(nl);
    util::Rng rng(seed);
    SignatureSet out;
    out.rounds = rounds;
    out.sig.assign(nl.size(), {});
    for (auto& s : out.sig) s.reserve(rounds);
    std::vector<Pattern> pats(nl.size());
    for (std::size_t r = 0; r < rounds; ++r) {
        sim.eval_random(pats, rng);
        for (GateId id = 0; id < nl.size(); ++id) out.sig[id].push_back(pats[id].ones);
    }
    return out;
}

}  // namespace seqlearn::sim
