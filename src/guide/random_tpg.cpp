#include "guide/random_tpg.hpp"

#include "util/rng.hpp"

#include <algorithm>

namespace seqlearn::guide {

using logic::Val3;

std::optional<Guidance> parse_guidance(std::string_view s) {
    if (s == "none") return Guidance::None;
    if (s == "scoap") return Guidance::Scoap;
    return std::nullopt;
}

std::string_view guidance_name(Guidance g) {
    return g == Guidance::Scoap ? "scoap" : "none";
}

std::optional<FillMode> parse_fill(std::string_view s) {
    if (s == "x") return FillMode::X;
    if (s == "zero") return FillMode::Zero;
    if (s == "one") return FillMode::One;
    if (s == "random") return FillMode::Random;
    return std::nullopt;
}

std::string_view fill_name(FillMode m) {
    switch (m) {
        case FillMode::X: return "x";
        case FillMode::Zero: return "zero";
        case FillMode::One: return "one";
        case FillMode::Random: return "random";
    }
    return "x";
}

WarmupStats random_warmup(fault::FaultSimulator& fsim, fault::FaultList& list,
                          std::size_t num_inputs, std::size_t sequences,
                          std::size_t frames_per_sequence, std::uint64_t seed,
                          std::vector<sim::InputSequence>& tests) {
    WarmupStats stats;
    util::Rng rng(seed);
    for (std::size_t s = 0; s < sequences; ++s) {
        sim::InputSequence seq(frames_per_sequence, sim::InputFrame(num_inputs, Val3::X));
        for (auto& frame : seq) {
            for (auto& v : frame) v = rng.chance(0.5) ? Val3::One : Val3::Zero;
        }
        const std::size_t dropped = fsim.drop_detected(seq, list);
        stats.dropped += dropped;
        if (dropped > 0) {
            ++stats.sequences_kept;
            tests.push_back(std::move(seq));
        }
    }
    return stats;
}

namespace {

/// Position-wise merge of two 3-valued sequences; nullopt when any position
/// carries conflicting binary values. The merged sequence is as long as the
/// longer input (the shorter one is implicitly X-padded).
std::optional<sim::InputSequence> merge_compatible(const sim::InputSequence& a,
                                                   const sim::InputSequence& b) {
    const sim::InputSequence& longer = a.size() >= b.size() ? a : b;
    const sim::InputSequence& shorter = a.size() >= b.size() ? b : a;
    sim::InputSequence merged = longer;
    for (std::size_t t = 0; t < shorter.size(); ++t) {
        for (std::size_t i = 0; i < shorter[t].size(); ++i) {
            const Val3 sv = shorter[t][i];
            if (sv == Val3::X) continue;
            Val3& mv = merged[t][i];
            if (mv == Val3::X)
                mv = sv;
            else if (mv != sv)
                return std::nullopt;
        }
    }
    return merged;
}

}  // namespace

CompactionStats compact_tests(fault::FaultSimulator& fsim,
                              std::span<const fault::Fault> faults,
                              std::vector<sim::InputSequence>& tests, FillMode fill,
                              std::uint64_t seed) {
    CompactionStats stats;
    stats.before = tests.size();
    stats.after = tests.size();
    if (tests.empty()) return stats;

    // Reverse-order first-detection replay (classic static compaction):
    // tests are replayed newest-first, so test i is responsible for exactly
    // the faults no LATER test detects. Late deterministic tests were
    // generated for hard faults but also detect easy ones in passing, which
    // strips early tests — warmup patterns especially — of their credit;
    // any test left with an empty set is provably redundant. The union of
    // responsibilities is still every detected fault, so coverage is
    // preserved exactly.
    fault::FaultList replay(std::vector<fault::Fault>(faults.begin(), faults.end()));
    std::vector<std::vector<std::size_t>> resp(tests.size());
    std::vector<fault::FaultStatus> before(replay.size());
    for (std::size_t i = tests.size(); i-- > 0;) {
        for (std::size_t j = 0; j < replay.size(); ++j) before[j] = replay.status(j);
        fsim.drop_detected(tests[i], replay);
        for (std::size_t j = 0; j < replay.size(); ++j) {
            if (before[j] == fault::FaultStatus::Undetected &&
                replay.status(j) == fault::FaultStatus::Detected)
                resp[i].push_back(j);
        }
    }

    // Greedy forward pass: keep a test unless it is redundant (empty
    // responsibility) or it verifiably merges into an earlier kept pattern.
    // kMaxVerifies bounds the fault-sim spend per test; candidates are
    // scanned oldest-first so warmup patterns (X-free, rarely mergeable)
    // fail the cheap compatibility check without costing a simulation.
    constexpr std::size_t kMaxVerifies = 8;
    std::vector<sim::InputSequence> kept;
    std::vector<std::vector<std::size_t>> kept_resp;
    kept.reserve(tests.size());
    for (std::size_t i = 0; i < tests.size(); ++i) {
        if (resp[i].empty()) continue;  // detects nothing first — drop outright
        bool merged = false;
        std::size_t verifies = 0;
        for (std::size_t k = 0; k < kept.size() && verifies < kMaxVerifies; ++k) {
            auto m = merge_compatible(kept[k], tests[i]);
            if (!m) continue;
            ++verifies;
            std::vector<fault::Fault> check;
            check.reserve(kept_resp[k].size() + resp[i].size());
            for (const std::size_t j : kept_resp[k]) check.push_back(faults[j]);
            for (const std::size_t j : resp[i]) check.push_back(faults[j]);
            const std::vector<bool> det = fsim.run(*m, check);
            if (!std::all_of(det.begin(), det.end(), [](bool d) { return d; })) continue;
            kept[k] = std::move(*m);
            kept_resp[k].insert(kept_resp[k].end(), resp[i].begin(), resp[i].end());
            ++stats.merges;
            merged = true;
            break;
        }
        if (!merged) {
            kept.push_back(std::move(tests[i]));
            kept_resp.push_back(std::move(resp[i]));
        }
    }

    // Fill after verification: refinement of X positions is sound under
    // 3-valued simulation (defined values never change), so the verified
    // detections survive any fill.
    if (fill != FillMode::X) {
        util::Rng rng(seed);
        for (auto& seq : kept) {
            for (auto& frame : seq) {
                for (auto& v : frame) {
                    if (v != Val3::X) continue;
                    switch (fill) {
                        case FillMode::Zero: v = Val3::Zero; break;
                        case FillMode::One: v = Val3::One; break;
                        default: v = rng.chance(0.5) ? Val3::One : Val3::Zero; break;
                    }
                }
            }
        }
    }

    tests = std::move(kept);
    stats.after = tests.size();
    return stats;
}

}  // namespace seqlearn::guide
