#pragma once
// Pluggable fault-ordering strategies for the ATPG campaign.
//
// The campaign builds one canonical target schedule (the deterministic
// fault-index queue); a strategy permutes that schedule and nothing else.
// Parallel runs commit verdicts in schedule order (exec::speculate_ordered),
// so a given strategy is bit-identical at any thread count — the strategy
// changes *which* identical run you get, not its determinism.

#include "fault/fault_list.hpp"
#include "guide/testability.hpp"
#include "netlist/topology.hpp"

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace seqlearn::guide {

enum class OrderStrategy : std::uint8_t {
    Index,           ///< collapsed fault-index order (today's behavior)
    Level,           ///< shallow lines first (combinational level, index tiebreak)
    ScoapHardFirst,  ///< descending SCOAP hardness (hardest testable-looking first)
    Random,          ///< Fisher–Yates shuffle from a 64-bit seed
};

/// Parse a strategy name ("index", "level", "scoap_hard_first", "random").
/// Returns nullopt on unknown names (callers produce the usage error).
std::optional<OrderStrategy> parse_order(std::string_view s);

/// Canonical name of `s` (inverse of parse_order).
std::string_view order_name(OrderStrategy s);

/// Permute `targets` (indices into `list`) in place according to `s`.
/// All sorts are stable with the fault index as the final tiebreak, so the
/// result is a pure function of (targets, strategy, seed, circuit).
/// `tst` is required for ScoapHardFirst and ignored otherwise; kInf-hard
/// faults (untestable-looking) sort *last* under hard-first so the engine
/// does not burn its backtrack budget on them before touching anything
/// provable. `seed` is used by Random only.
void order_targets(std::vector<std::size_t>& targets, OrderStrategy s,
                   const netlist::Topology& topo, const fault::FaultList& list,
                   const Testability* tst, std::uint64_t seed);

}  // namespace seqlearn::guide
