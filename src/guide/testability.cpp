#include "guide/testability.hpp"

#include <algorithm>

namespace seqlearn::guide {

namespace {

using logic::GateOp;

constexpr std::uint32_t kInf = Testability::kInf;

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) noexcept {
    return std::min<std::uint32_t>(kInf, a + b);
}

}  // namespace

Testability::Testability(const Topology& topo) : topo_(&topo) {
    const std::size_t n = topo.size();
    cc0_.assign(n, kInf);
    cc1_.assign(n, kInf);
    co_.assign(n, kInf);
    pin_co_.assign(topo.num_fanin_edges(), kInf);

    // --- sources ----------------------------------------------------------
    for (const GateId g : topo.inputs()) cc0_[g] = cc1_[g] = 1;
    for (const GateId g : topo.const_gates()) {
        if (topo.op(g) == GateOp::Const0)
            cc0_[g] = 1;
        else
            cc1_[g] = 1;
    }

    // --- controllability fixpoint -----------------------------------------
    // Each sweep evaluates the combinational schedule (sources first, level
    // order — one pass suffices within a frame) and then lets values cross
    // the frame boundary through the sequential elements. Costs only ever
    // decrease, so the iteration terminates; kMaxSweeps bounds pathological
    // long state chains.
    bool changed = true;
    while (changed && sweeps_ < kMaxSweeps) {
        changed = false;
        ++sweeps_;
        for (const GateId g : topo.schedule()) {
            if (!topo.is_comb(g) || topo.is_const(g)) continue;
            const auto fis = topo.fanins(g);
            const GateOp op = topo.op(g);
            std::uint32_t v0 = kInf;
            std::uint32_t v1 = kInf;
            switch (op) {
                case GateOp::Buf:
                case GateOp::Not:
                    v0 = sat_add(cc0_[fis[0]], 1);
                    v1 = sat_add(cc1_[fis[0]], 1);
                    break;
                case GateOp::And:
                case GateOp::Nand: {
                    std::uint32_t all1 = 1, any0 = kInf;
                    for (const GateId fi : fis) {
                        all1 = sat_add(all1, cc1_[fi]);
                        any0 = std::min(any0, cc0_[fi]);
                    }
                    v1 = all1;                // every input at 1
                    v0 = sat_add(any0, 1);    // cheapest input at 0
                    break;
                }
                case GateOp::Or:
                case GateOp::Nor: {
                    std::uint32_t all0 = 1, any1 = kInf;
                    for (const GateId fi : fis) {
                        all0 = sat_add(all0, cc0_[fi]);
                        any1 = std::min(any1, cc1_[fi]);
                    }
                    v0 = all0;
                    v1 = sat_add(any1, 1);
                    break;
                }
                case GateOp::Xor:
                case GateOp::Xnor: {
                    // Parity DP: cheapest way to reach even/odd parity over
                    // the inputs seen so far.
                    std::uint32_t even = 0, odd = kInf;
                    for (const GateId fi : fis) {
                        const std::uint32_t ne = std::min(sat_add(even, cc0_[fi]),
                                                          sat_add(odd, cc1_[fi]));
                        const std::uint32_t no = std::min(sat_add(even, cc1_[fi]),
                                                          sat_add(odd, cc0_[fi]));
                        even = ne;
                        odd = no;
                    }
                    v0 = sat_add(even, 1);
                    v1 = sat_add(odd, 1);
                    break;
                }
                default:
                    break;
            }
            if (logic::output_inverted(op)) std::swap(v0, v1);
            if (v0 < cc0_[g]) { cc0_[g] = v0; changed = true; }
            if (v1 < cc1_[g]) { cc1_[g] = v1; changed = true; }
        }
        for (const GateId g : topo.seq_elements()) {
            // Dff: fanin[0] is D. Dlatch: every fanin is a data port; any
            // port can deliver the value, so take the cheapest.
            std::uint32_t v0 = kInf, v1 = kInf;
            for (const GateId fi : topo.fanins(g)) {
                v0 = std::min(v0, cc0_[fi]);
                v1 = std::min(v1, cc1_[fi]);
            }
            v0 = sat_add(v0, kSeqStep);
            v1 = sat_add(v1, kSeqStep);
            if (v0 < cc0_[g]) { cc0_[g] = v0; changed = true; }
            if (v1 < cc1_[g]) { cc1_[g] = v1; changed = true; }
        }
    }

    // --- observability fixpoint -------------------------------------------
    // CO(primary output) = 0; every other stem takes the min over the pin
    // observabilities of its sinks. A reverse-schedule pass propagates one
    // level band per visit; sequential feedback needs the outer loop.
    for (const GateId g : topo.outputs()) co_[g] = 0;
    const auto sched = topo.schedule();
    changed = true;
    std::size_t co_sweeps = 0;
    while (changed && co_sweeps < kMaxSweeps) {
        changed = false;
        ++co_sweeps;
        for (std::size_t s = sched.size(); s-- > 0;) {
            const GateId g = sched[s];
            const auto fis = topo.fanins(g);
            if (fis.empty()) continue;
            const std::uint32_t base = topo.fanin_offset(g);
            if (topo.is_seq(g)) {
                // Crossing the boundary backwards costs the same step as
                // forwards; a change on D is seen one frame later.
                const std::uint32_t v = sat_add(co_[g], kSeqStep);
                for (std::size_t i = 0; i < fis.size(); ++i) {
                    if (v < pin_co_[base + i]) { pin_co_[base + i] = v; changed = true; }
                }
            } else {
                const GateOp op = topo.op(g);
                const Val3 ctrl = controlling_value(op);
                for (std::size_t i = 0; i < fis.size(); ++i) {
                    // Propagating through pin i requires every other input
                    // at its noncontrolling value (AND family: 1, OR
                    // family: 0) — or, for parity gates, at any binary
                    // value, so the cheaper controllability counts.
                    std::uint32_t v = sat_add(co_[g], 1);
                    for (std::size_t j = 0; j < fis.size(); ++j) {
                        if (j == i) continue;
                        const GateId fj = fis[j];
                        std::uint32_t side;
                        if (ctrl == Val3::Zero)
                            side = cc1_[fj];
                        else if (ctrl == Val3::One)
                            side = cc0_[fj];
                        else
                            side = std::min(cc0_[fj], cc1_[fj]);
                        v = sat_add(v, side);
                    }
                    if (v < pin_co_[base + i]) { pin_co_[base + i] = v; changed = true; }
                }
            }
        }
        // Fold pin observabilities back into the stems they load.
        for (GateId g = 0; g < topo.size(); ++g) {
            const auto fis = topo.fanins(g);
            const std::uint32_t base = topo.fanin_offset(g);
            for (std::size_t i = 0; i < fis.size(); ++i) {
                const GateId d = fis[i];
                if (pin_co_[base + i] < co_[d]) { co_[d] = pin_co_[base + i]; changed = true; }
            }
        }
    }
    sweeps_ += co_sweeps;
}

std::uint32_t Testability::hardness(const fault::Fault& f) const noexcept {
    const Val3 activate = logic::v3_opposite(f.stuck);
    if (f.pin == fault::kOutputPin)
        return sat_add(controllability(f.gate, activate), co_[f.gate]);
    const GateId driver = topo_->fanins(f.gate)[static_cast<std::size_t>(f.pin)];
    return sat_add(controllability(driver, activate),
                   pin_co(f.gate, static_cast<std::size_t>(f.pin)));
}

std::size_t Testability::memory_bytes() const noexcept {
    return (cc0_.capacity() + cc1_.capacity() + co_.capacity() + pin_co_.capacity()) *
           sizeof(std::uint32_t);
}

}  // namespace seqlearn::guide
