#pragma once
// Deterministic random test-pattern generation and static compaction.
//
// Random warmup bulk-drops the easy faults through the 64-lane fault
// simulator before the deterministic engine runs, so ATPG only sees the
// hard remainder. The generator is the library-wide xoshiro engine seeded
// from a digest of the result-affecting campaign configuration: the same
// (circuit, config) pair always replays the same warmup, independent of
// thread count.
//
// Static compaction greedily merges X-rich test sequences position-wise
// (two sequences are compatible when no frame position holds conflicting
// binary values) and accepts a merge only after the fault simulator
// re-verifies that the merged sequence still detects every fault either
// original was responsible for — merging is a heuristic, the simulator is
// the oracle. Remaining X positions are then filled per FillMode; filling
// refines a 3-valued sequence, and Kleene evaluation is monotone under
// refinement, so a verified detection can never be lost by the fill.

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/comb_engine.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace seqlearn::guide {

/// Engine search guidance selector (AtpgConfig::guidance).
enum class Guidance : std::uint8_t {
    None,   ///< structural scan order, bit-identical to the historical goldens
    Scoap,  ///< SCOAP-guided backtrace and D-frontier selection
};

/// How compaction fills the don't-care positions of merged sequences.
enum class FillMode : std::uint8_t {
    X,       ///< leave X (maximally mergeable output)
    Zero,    ///< fill with 0
    One,     ///< fill with 1
    Random,  ///< deterministic random fill (same seed as the warmup)
};

std::optional<Guidance> parse_guidance(std::string_view s);
std::string_view guidance_name(Guidance g);
std::optional<FillMode> parse_fill(std::string_view s);
std::string_view fill_name(FillMode m);

struct WarmupStats {
    std::size_t dropped = 0;         ///< faults moved Undetected -> Detected
    std::size_t sequences_kept = 0;  ///< generated sequences that earned credit
};

/// Run `sequences` random sequences of `frames_per_sequence` frames over
/// `num_inputs`-wide frames, dropping detected faults from `list` and
/// appending every credited sequence to `tests`. Pure function of the seed.
WarmupStats random_warmup(fault::FaultSimulator& fsim, fault::FaultList& list,
                          std::size_t num_inputs, std::size_t sequences,
                          std::size_t frames_per_sequence, std::uint64_t seed,
                          std::vector<sim::InputSequence>& tests);

struct CompactionStats {
    std::size_t before = 0;  ///< pattern count going in
    std::size_t after = 0;   ///< pattern count coming out
    std::size_t merges = 0;  ///< verified merges performed
};

/// Statically compact `tests` in place. `faults` is the campaign's fault
/// universe (used to recompute per-test responsibility by first-detection
/// replay); every merge is re-verified by `fsim` before acceptance, and
/// tests that detect nothing not already covered by an earlier test are
/// dropped. `seed` drives FillMode::Random only.
CompactionStats compact_tests(fault::FaultSimulator& fsim,
                              std::span<const fault::Fault> faults,
                              std::vector<sim::InputSequence>& tests, FillMode fill,
                              std::uint64_t seed);

}  // namespace seqlearn::guide
