#pragma once
// SCOAP testability analysis over the shared Topology snapshot.
//
// Computes the classic Goldstein controllability/observability measures,
// extended to sequential circuits the same way the frame simulators extend
// combinational evaluation: flip-flop controllabilities are iterated across
// frame boundaries to a fixpoint (each crossing adds a sequential step
// penalty), and observabilities are back-propagated per level band until
// they stop improving. All costs are saturating unsigned integers; a line
// that no bounded-cost assignment can control (or no output can observe)
// stays at kInf.
//
// The numbers are *costs*, not probabilities: CC0(l)/CC1(l) estimate how
// many line assignments (plus frame crossings) it takes to drive line `l`
// to 0/1, and CO(l) how many to propagate a change on `l` to a primary
// output. Guided ATPG uses them comparatively only — cheapest fanin first,
// best-observable D-frontier gate first — so the absolute scale is
// irrelevant as long as it is deterministic, which it is: the analysis is a
// pure function of the Topology.
//
// One instance is computed per api::Design (eagerly, like clock classes and
// the collapsed fault set) and shared read-only by every Session, the fault
// orderer, the guided engine, and the backend router.

#include "fault/fault.hpp"
#include "logic/val3.hpp"
#include "netlist/topology.hpp"

#include <cstdint>
#include <vector>

namespace seqlearn::guide {

using logic::Val3;
using netlist::GateId;
using netlist::Topology;

class Testability {
public:
    /// Saturation value: "not controllable/observable within any bounded
    /// cost". Small enough that a saturating add can never wrap uint32.
    static constexpr std::uint32_t kInf = 0x3fffffff;

    /// Cost of crossing one frame boundary (through a flip-flop or latch).
    /// Classic sequential SCOAP charges a fixed per-cycle penalty so a
    /// value reachable only through state is visibly more expensive than
    /// any single-frame assignment chain.
    static constexpr std::uint32_t kSeqStep = 10;

    /// Analyze `topo`. The Topology must outlive this object (api::Design
    /// owns both, so the lifetime is automatic there).
    explicit Testability(const Topology& topo);

    /// Controllability-to-0 / -to-1 of gate `g`'s output line.
    std::uint32_t cc0(GateId g) const noexcept { return cc0_[g]; }
    std::uint32_t cc1(GateId g) const noexcept { return cc1_[g]; }
    /// cc0 or cc1 selected by `v`. Precondition: v is binary.
    std::uint32_t controllability(GateId g, Val3 v) const noexcept {
        return v == Val3::Zero ? cc0_[g] : cc1_[g];
    }

    /// Observability of gate `g`'s output (stem) line: min over its fanout
    /// pin observabilities, 0 if `g` is a primary output.
    std::uint32_t co(GateId g) const noexcept { return co_[g]; }

    /// Observability of input pin `pin` of gate `g` (flat per-edge array,
    /// same numbering as Topology::fanin_offset).
    std::uint32_t pin_co(GateId g, std::size_t pin) const noexcept {
        return pin_co_[topo_->fanin_offset(g) + pin];
    }

    /// SCOAP hardness of a stuck-at fault: cost of activating it (drive its
    /// line to the opposite of the stuck value) plus cost of observing its
    /// line. Pin faults use the driver's controllability and the pin's
    /// observability; stem faults use the gate's own cc/co. Saturates at
    /// kInf for untestable-looking faults, which sorts them last under
    /// hard-first ordering's descending-finite convention (see order_targets).
    std::uint32_t hardness(const fault::Fault& f) const noexcept;

    /// Number of controllability + observability sweeps until fixpoint
    /// (diagnostic; bounded by kMaxSweeps).
    std::size_t sweeps() const noexcept { return sweeps_; }

    /// Heap bytes of the four cost arrays (Design memory accounting).
    std::size_t memory_bytes() const noexcept;

private:
    static constexpr std::size_t kMaxSweeps = 64;

    const Topology* topo_;
    std::vector<std::uint32_t> cc0_;     // per gate
    std::vector<std::uint32_t> cc1_;     // per gate
    std::vector<std::uint32_t> co_;      // per gate (stem)
    std::vector<std::uint32_t> pin_co_;  // per fanin edge
    std::size_t sweeps_ = 0;
};

}  // namespace seqlearn::guide
