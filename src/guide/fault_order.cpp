#include "guide/fault_order.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace seqlearn::guide {

std::optional<OrderStrategy> parse_order(std::string_view s) {
    if (s == "index") return OrderStrategy::Index;
    if (s == "level") return OrderStrategy::Level;
    if (s == "scoap_hard_first") return OrderStrategy::ScoapHardFirst;
    if (s == "random") return OrderStrategy::Random;
    return std::nullopt;
}

std::string_view order_name(OrderStrategy s) {
    switch (s) {
        case OrderStrategy::Index: return "index";
        case OrderStrategy::Level: return "level";
        case OrderStrategy::ScoapHardFirst: return "scoap_hard_first";
        case OrderStrategy::Random: return "random";
    }
    return "index";
}

void order_targets(std::vector<std::size_t>& targets, OrderStrategy s,
                   const netlist::Topology& topo, const fault::FaultList& list,
                   const Testability* tst, std::uint64_t seed) {
    switch (s) {
        case OrderStrategy::Index:
            // The canonical schedule is already index-sorted.
            return;
        case OrderStrategy::Level:
            std::stable_sort(targets.begin(), targets.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return topo.level(list.fault(a).gate) <
                                        topo.level(list.fault(b).gate);
                             });
            return;
        case OrderStrategy::ScoapHardFirst: {
            assert(tst != nullptr);
            // Hardest finite-cost fault first; kInf (untestable-looking)
            // last so provers see them after the easy coverage is banked.
            auto key = [&](std::size_t i) {
                const std::uint32_t h = tst->hardness(list.fault(i));
                return h >= Testability::kInf ? 0u : h;
            };
            std::stable_sort(targets.begin(), targets.end(),
                             [&](std::size_t a, std::size_t b) { return key(a) > key(b); });
            return;
        }
        case OrderStrategy::Random: {
            util::Rng rng(seed);
            for (std::size_t i = targets.size(); i > 1; --i)
                std::swap(targets[i - 1], targets[rng.below(i)]);
            return;
        }
    }
}

}  // namespace seqlearn::guide
