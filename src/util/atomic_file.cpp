#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seqlearn::util {

namespace {

std::string parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

void set_error(std::string* error, const char* what, const std::string& path) {
    if (error) *error = std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// EINTR-safe full write; a short write (real or injected) is reported as
/// ENOSPC — the caller's cleanup path is identical either way.
bool write_all(int fd, std::string_view bytes, exec::FailurePoint* fp) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        std::size_t len = bytes.size() - off;
        const bool injected_short =
            fp != nullptr && fp->fire(exec::FailSite::FsWrite);
        if (injected_short) {
            // Simulate the disk filling up: deliver at most one byte, then
            // fail the next attempt.
            if (len > 1) len = 1;
        }
        const ssize_t n = ::write(fd, bytes.data() + off, len);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (injected_short) {
            errno = ENOSPC;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

bool fsync_parent_dir(const std::string& path) {
    const std::string dir = parent_dir(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error, exec::FailurePoint* failpoint) {
    // The temp file must live in the destination's directory: rename(2) is
    // only atomic within one filesystem. The pid suffix keeps concurrent
    // writers of the same path from clobbering each other's temp file (last
    // rename wins, each file complete).
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        set_error(error, "cannot create", tmp);
        return false;
    }
    if (!write_all(fd, bytes, failpoint)) {
        set_error(error, "short write to", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    // fsync BEFORE rename: once the new name is visible, its contents must
    // already be durable, or a crash could leave a committed-looking entry
    // with unwritten pages.
    const bool fsync_failed =
        (failpoint != nullptr && failpoint->fire(exec::FailSite::FsFsync)) ||
        ::fsync(fd) != 0;
    if (fsync_failed) {
        if (error) *error = "fsync " + tmp + " failed";
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        set_error(error, "close of", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    const bool rename_failed =
        (failpoint != nullptr && failpoint->fire(exec::FailSite::FsRename)) ||
        ::rename(tmp.c_str(), path.c_str()) != 0;
    if (rename_failed) {
        if (error) *error = "rename " + tmp + " -> " + path + " failed";
        ::unlink(tmp.c_str());
        return false;
    }
    // Directory fsync makes the rename durable. A failure here is reported
    // (the caller may retry), but the destination already holds complete
    // new contents — worst case a crash rolls back to the complete old ones.
    if (!fsync_parent_dir(path)) {
        if (error) *error = "fsync of directory holding " + path + " failed";
        return false;
    }
    return true;
}

}  // namespace seqlearn::util
