#pragma once
// Crash-safe file replacement.
//
// A plain ofstream over the destination truncates it first: a crash (or a
// full disk) mid-write leaves the previous contents destroyed and a torn
// half-file in their place. atomic_write_file never exposes that state.
// The bytes go to a temp file in the destination's directory, the temp file
// is fsync'd, rename(2)'d over the destination, and the directory is
// fsync'd so the rename itself survives a power cut. At every instant the
// destination path holds either the complete old contents or the complete
// new contents — the invariant the CLI's --save-db/--checkpoint writers and
// the daemon's snapshot store both build on.
//
// On any failure (short write, failed fsync, failed rename — real or
// injected through the exec::FailurePoint I/O sites) the temp file is
// unlinked, `*error` gets a one-line reason, and the destination is
// untouched.

#include "exec/failpoint.hpp"

#include <string>
#include <string_view>

namespace seqlearn::util {

/// Replace `path` with `bytes` crash-safely (see the header comment).
/// Returns false with *error set (when non-null) on failure; the
/// destination then still holds its previous contents, if any. `failpoint`
/// (null in production) injects deterministic failures at the FsWrite /
/// FsFsync / FsRename sites.
bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error, exec::FailurePoint* failpoint = nullptr);

/// fsync the directory containing `path` (after an unlink, say). Best
/// effort: returns false when the directory cannot be opened or synced.
bool fsync_parent_dir(const std::string& path);

}  // namespace seqlearn::util
