#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace seqlearn::util {

namespace {
bool is_space(char c) noexcept {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
    while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
    return s;
}

std::vector<std::string_view> split(std::string_view s, std::string_view seps) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
            const std::string_view token = trim(s.substr(start, i - start));
            if (!token.empty()) out.push_back(token);
            start = i + 1;
        }
    }
    return out;
}

std::string to_upper(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::toupper(static_cast<unsigned char>(a[i])) !=
            std::toupper(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

}  // namespace seqlearn::util
