#pragma once
// Deterministic pseudo-random number generation.
//
// All randomized components of the library (workload generators, parallel
// pattern simulation, property tests) draw from this engine so that every
// experiment is reproducible from a single seed.

#include <cstdint>

namespace seqlearn::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// initial state (including seed 0).
class Rng {
public:
    /// Construct with a 64-bit seed; equal seeds give equal streams.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

    /// Re-initialize the state from `seed` (same mixing as the constructor).
    void reseed(std::uint64_t seed) noexcept;

    /// Next uniformly distributed 64-bit value.
    std::uint64_t next_u64() noexcept;

    /// Uniform value in [0, bound). Precondition: bound > 0.
    /// Uses rejection sampling, so the distribution is exactly uniform.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in the closed interval [lo, hi]. Precondition: lo <= hi.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
    bool chance(double p) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;

private:
    std::uint64_t s_[4]{};
};

}  // namespace seqlearn::util
