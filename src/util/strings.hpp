#pragma once
// Small string helpers used by the .bench parser and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace seqlearn::util {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Split on any character in `seps`, dropping empty tokens and trimming each.
std::vector<std::string_view> split(std::string_view s, std::string_view seps);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// True when `s` begins with `prefix` (case sensitive).
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// printf-style formatting into a std::string.
/// Kept variadic-template-free on purpose: report printers call it in hot
/// loops and the gcc format attribute catches mismatched arguments.
[[gnu::format(printf, 1, 2)]] std::string format(const char* fmt, ...);

}  // namespace seqlearn::util
