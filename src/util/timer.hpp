#pragma once
// Wall-clock stopwatch for the CPU(s) columns of the experiment tables.

#include <chrono>

namespace seqlearn::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
public:
    Timer() noexcept : start_(Clock::now()) {}

    /// Restart the stopwatch.
    void reset() noexcept { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    double millis() const noexcept { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace seqlearn::util
