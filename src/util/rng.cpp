#include "util/rng.hpp"

namespace seqlearn::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Rejection sampling over the largest multiple of `bound` that fits in
    // 64 bits; the expected number of draws is < 2.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

double Rng::uniform01() noexcept {
    // 53 random bits scaled into [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace seqlearn::util
