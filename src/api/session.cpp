#include "api/session.hpp"

#include "core/db_io.hpp"
#include "util/atomic_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace seqlearn::api {

Session::Session(DesignPtr design, SessionConfig cfg)
    : design_(std::move(design)),
      cfg_(std::move(cfg)),
      cancel_(std::make_unique<exec::CancelFlag>()) {
    if (!design_) throw std::invalid_argument("Session: null design");
}

Session::Session(netlist::Netlist nl, SessionConfig cfg)
    : Session(DesignBuilder(std::move(nl)).build(), std::move(cfg)) {}

Session Session::view(const netlist::Netlist& nl, SessionConfig cfg) {
    return Session(netlist::Netlist(nl), std::move(cfg));
}

unsigned Session::resolve_threads(unsigned stage_threads) const noexcept {
    if (stage_threads != 0) return stage_threads;
    if (cfg_.threads != 0) return cfg_.threads;
    return exec::Pool::hardware_threads();
}

exec::Pool& Session::executor(unsigned workers) {
    if (!pool_ || pool_->size() < workers) {
        pool_ = std::make_unique<exec::Pool>(workers);
        // The fault simulator keeps a pool pointer; re-wire it after growth.
        if (fsim_) fsim_->set_executor(pool_.get(), resolve_threads(0));
    }
    return *pool_;
}

fault::FaultSimulator& Session::fault_simulator() {
    if (!fsim_) {
        fsim_.emplace(design_->topology());
        const unsigned workers = resolve_threads(0);
        if (workers > 1) fsim_->set_executor(&executor(workers), workers);
    }
    return *fsim_;
}

atpg::Engine& Session::engine() {
    if (!engine_) engine_.emplace(design_->topology());
    return *engine_;
}

const core::LearnResult& Session::learn() {
    // Only a complete cached result satisfies the no-arg call: returning a
    // partial (cancelled / budget-stopped / failed) result as if it were
    // final would silently starve every downstream stage of relations. A
    // caller who wants the partial data reads it through the learn(cfg)
    // return value, save_db(), or resume_learn().
    if (const core::LearnResult* active = active_learned()) {
        if (active->outcome.ok()) return *active;
    }
    return learn(cfg_.learn);
}

const core::LearnResult& Session::learn(const core::LearnConfig& lcfg) {
    return run_learn(lcfg, nullptr);
}

const core::LearnResult& Session::resume_learn(const core::LearnCheckpoint& ckpt) {
    return run_learn(cfg_.learn, &ckpt);
}

const core::LearnResult& Session::resume_learn(const core::LearnCheckpoint& ckpt,
                                               const core::LearnConfig& lcfg) {
    return run_learn(lcfg, &ckpt);
}

const core::LearnResult& Session::resume_learn(std::istream& in) {
    const core::LearnCheckpoint ckpt = core::load_checkpoint(in, netlist());
    return run_learn(cfg_.learn, &ckpt);
}

const core::LearnResult& Session::resume_learn(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("Session::resume_learn: cannot read " + path);
    return resume_learn(in);
}

void Session::save_checkpoint(std::ostream& out) {
    if (!learned_ || !learned_->cursor.valid)
        throw std::logic_error("Session::save_checkpoint: no resumable learn result");
    core::save_checkpoint(out, netlist(), core::make_checkpoint(netlist(), *learned_));
}

void Session::save_checkpoint(const std::string& path) {
    // Serialize first, then replace the file atomically: a crash (or a full
    // disk) mid-save must never truncate an existing checkpoint in place.
    std::ostringstream out;
    save_checkpoint(out);
    std::string error;
    if (!util::atomic_write_file(path, out.view(), &error, cfg_.failpoint))
        throw std::runtime_error("Session::save_checkpoint: " + error);
}

const core::LearnResult& Session::run_learn(const core::LearnConfig& lcfg,
                                            const core::LearnCheckpoint* ckpt) {
    core::LearnConfig cfg = lcfg;
    if (cfg_.progress && !cfg.on_stem) {
        cfg.on_stem = [this](std::size_t done, std::size_t total) {
            const bool keep_going = cfg_.progress({Stage::Learn, done, total});
            if (!keep_going) cancel_->request();
            return keep_going;
        };
    }
    cancel_->reset();
    cfg.cancel = cancel_.get();
    if (!cfg.budget.any()) cfg.budget = cfg_.budget;
    if (cfg.failpoint == nullptr) cfg.failpoint = cfg_.failpoint;
    const unsigned workers = resolve_threads(lcfg.threads);
    cfg.threads = workers;
    if (workers > 1) cfg.executor = &executor(workers);
    replace_learned(std::make_unique<core::LearnResult>(
        ckpt != nullptr
            ? core::resume_learn(design_->netlist(), design_->topology(), cfg, *ckpt)
            : core::learn(design_->netlist(), design_->topology(), cfg)));
    return *learned_;
}

std::shared_ptr<const core::LearnedSnapshot> Session::freeze_learned() {
    // When the active learned data already IS a shared snapshot (no
    // session-local result shadowing it), hand out that handle instead of
    // deep-copying an O(relations) database.
    if (!learned_) {
        if (snapshot_) return snapshot_;
        if (design_->learned() != nullptr) return design_->learned_ptr();
    }
    return core::freeze_learned(learn());
}

void Session::use_learned(std::shared_ptr<const core::LearnedSnapshot> snap) {
    // Drop any session-local result so the snapshot becomes the active data;
    // replace_learned also detaches the fault simulator from the dying tie
    // vectors.
    replace_learned(nullptr);
    snapshot_ = std::move(snap);
}

void Session::replace_learned(std::unique_ptr<core::LearnResult> next) {
    // The fault simulator may still point at the previous result's tie
    // vectors (set_good_ties's "must outlive" contract); drop those
    // pointers before the vectors die. Facade paths re-set ties on use.
    if (fsim_) fsim_->set_good_ties(nullptr, nullptr);
    learned_ = std::move(next);
}

const AtpgReport& Session::atpg() {
    // Same staleness rule as learn(): a campaign that ended early does not
    // satisfy the no-arg call — re-run rather than hand back partial
    // coverage as if it were final.
    if (atpg_ && atpg_->outcome.run.ok()) return *atpg_;
    return atpg(cfg_.atpg);
}

const AtpgReport& Session::atpg(atpg::AtpgConfig acfg) {
    // Modes that consume learned data get this session's active learned
    // data wired in (the Design snapshot when present, learning on demand
    // otherwise); an explicit cfg.learned — e.g. data brought in through
    // load_db on another session — is respected as-is. Mode None stays a
    // true no-learning baseline.
    if (acfg.mode != atpg::LearnMode::None && acfg.learned == nullptr) {
        acfg.learned = &learn();
    }
    if (cfg_.progress && !acfg.on_fault) {
        acfg.on_fault = [this](std::size_t done, std::size_t total) {
            const bool keep_going = cfg_.progress({Stage::Atpg, done, total});
            if (!keep_going) cancel_->request();
            return keep_going;
        };
    }
    cancel_->reset();
    acfg.cancel = cancel_.get();
    if (!acfg.budget.any()) acfg.budget = cfg_.budget;
    if (acfg.failpoint == nullptr) acfg.failpoint = cfg_.failpoint;
    // The Design computed SCOAP once at build time; never recompute per run.
    if (acfg.testability == nullptr) acfg.testability = &design_->testability();
    // Build the lazy engines BEFORE capturing the pool pointer: creating the
    // fault simulator may grow (i.e. replace) the pool for the session-wide
    // default worker count, which would dangle an earlier-captured executor.
    atpg::Engine& eng = engine();
    fault::FaultSimulator& fsim = fault_simulator();
    const unsigned workers = resolve_threads(acfg.threads);
    acfg.threads = workers;
    if (workers > 1) acfg.executor = &executor(workers);
    fault::FaultList list(design_->collapsed_faults().representatives());
    atpg::AtpgOutcome outcome = run_atpg(eng, fsim, list, acfg);
    atpg_.emplace(
        AtpgReport{std::move(list), std::move(outcome), acfg.learned != nullptr});
    return *atpg_;
}

std::uint64_t campaign_digest(const AtpgReport& report) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 1099511628211ULL;
    };
    for (std::size_t i = 0; i < report.list.size(); ++i)
        mix(static_cast<std::uint64_t>(report.list.status(i)));
    for (const sim::InputSequence& t : report.outcome.tests) {
        mix(t.size());
        for (const sim::InputFrame& fr : t)
            for (const logic::Val3 v : fr) mix(static_cast<std::uint64_t>(v));
    }
    return h;
}

FaultSimReport Session::fault_sim() {
    const AtpgReport& report = atpg();
    // Replay exactly the expected-value model the campaign validated its
    // tests with: tie-augmented only when that campaign used learned data
    // (a LearnMode::None baseline must not gain tie knowledge here).
    return fault_sim(report.outcome.tests, report.used_learned);
}

FaultSimReport Session::fault_sim(std::span<const sim::InputSequence> tests) {
    return fault_sim(tests, has_learned());
}

FaultSimReport Session::fault_sim(std::span<const sim::InputSequence> tests,
                                  bool with_ties) {
    fault::FaultSimulator& fsim = fault_simulator();
    // The tie-augmented good machine closes the 3-valued pessimism gap for
    // learning-aware campaigns (Section 4).
    const core::LearnResult* active = active_learned();
    if (with_ties && active) {
        fsim.set_good_ties(&active->ties.dense(), &active->ties.dense_cycles());
    } else {
        fsim.set_good_ties(nullptr, nullptr);
    }
    fault::FaultList list(design_->collapsed_faults().representatives());
    cancel_->reset();
    // Validation runs under the session-wide budget (it has no per-call
    // config of its own); the simulator additionally polls the same hooks
    // at its internal 63-fault pass boundaries.
    exec::Budget budget(cfg_.budget);
    exec::Budget* budget_ptr = cfg_.budget.any() ? &budget : nullptr;
    fsim.set_governance(cancel_.get(), budget_ptr, cfg_.failpoint);
    FaultSimReport report;
    try {
        for (const sim::InputSequence& t : tests) {
            const exec::RunStatus st = exec::poll_point(cancel_.get(), budget_ptr);
            if (st != exec::RunStatus::Completed) {
                report.outcome.status = st;
                if (budget_ptr != nullptr && (st == exec::RunStatus::DeadlineExceeded ||
                                              st == exec::RunStatus::LimitReached)) {
                    report.outcome.diagnostic = budget_ptr->detail();
                }
                break;
            }
            if (cfg_.progress &&
                !cfg_.progress({Stage::FaultSim, report.sequences, tests.size()})) {
                cancel_->request();
                report.outcome.status = exec::RunStatus::Cancelled;
                break;
            }
            fsim.drop_detected(t, list);
            if (budget_ptr != nullptr) budget_ptr->note_item();
            ++report.sequences;
        }
    } catch (const std::exception& e) {
        report.outcome = exec::RunOutcome::failed(e.what());
    }
    // The Budget above is stack-local: the simulator must not keep pointing
    // at it past this call.
    fsim.set_governance(nullptr, nullptr, nullptr);
    report.cancelled = !report.outcome.ok();
    const fault::FaultList::Counts c = list.counts();
    report.total = c.total;
    report.detected = c.detected;
    report.fault_coverage = list.fault_coverage();
    return report;
}

SessionStats Session::stats() {
    SessionStats s;
    s.circuit = netlist().counts();
    s.gates = netlist().size();
    s.stems = design_->stems().size();
    s.levels = topology().max_level();
    s.clock_classes = clock_classes().size();
    s.collapsed_faults = collapsed_faults().size();
    if (const core::LearnResult* active = active_learned()) {
        s.learned = true;
        s.learn = active->stats;
        s.relations = active->db.size();
        s.ties = active->ties.count();
        s.learn_outcome = active->outcome;
    }
    if (atpg_) {
        s.atpg_run = true;
        s.faults = atpg_->list.counts();
        s.test_coverage = atpg_->list.test_coverage();
        s.tests = atpg_->outcome.tests.size();
        s.pattern_frames = atpg_->outcome.pattern_frames;
        s.compaction_before = atpg_->outcome.compaction_before;
        s.compaction_after = atpg_->outcome.compaction_after;
        s.atpg_outcome = atpg_->outcome.run;
    }
    s.memory.design = design_->memory_footprint();
    if (learned_) {
        s.memory.learned_bytes = learned_->memory_bytes();
    } else if (snapshot_) {
        s.memory.learned_bytes = snapshot_->memory_bytes();
    }
    if (fsim_) s.memory.scratch_bytes += fsim_->memory_bytes();
    if (atpg_) {
        s.memory.scratch_bytes += atpg_->list.size() * (sizeof(fault::Fault) + 1) +
                                  atpg_->outcome.tests.capacity() * sizeof(sim::InputSequence);
        for (const sim::InputSequence& t : atpg_->outcome.tests) {
            s.memory.scratch_bytes += t.capacity() * sizeof(sim::InputFrame);
            for (const sim::InputFrame& f : t) s.memory.scratch_bytes += f.capacity();
        }
    }
    return s;
}

void Session::save_db(std::ostream& out) {
    // Use the active result even when partial — every relation and tie a
    // stopped run committed is sound, and forcing a re-run here would throw
    // away exactly the work the caller is trying to persist.
    const core::LearnResult* active = active_learned();
    const core::LearnResult& r = active != nullptr ? *active : learn();
    core::save_learned(out, netlist(), r.db, r.ties);
}

void Session::save_db(const std::string& path) {
    // Atomic temp+rename: a crash mid-save leaves the previous snapshot
    // intact instead of a torn file.
    std::ostringstream out;
    save_db(out);
    std::string error;
    if (!util::atomic_write_file(path, out.view(), &error, cfg_.failpoint))
        throw std::runtime_error("Session::save_db: " + error);
}

void Session::save_db_binary(std::ostream& out) {
    const core::LearnResult* active = active_learned();
    const core::LearnResult& r = active != nullptr ? *active : learn();
    core::save_learned_binary(out, netlist(), r.db, r.ties);
}

void Session::save_db_binary(const std::string& path) {
    std::ostringstream out(std::ios::binary);
    save_db_binary(out);
    std::string error;
    if (!util::atomic_write_file(path, out.view(), &error, cfg_.failpoint))
        throw std::runtime_error("Session::save_db_binary: " + error);
}

std::size_t Session::load_db(std::istream& in) {
    core::LoadedLearned loaded = core::load_learned_any(in, netlist());
    auto result = std::make_unique<core::LearnResult>(netlist().size());
    result->db = std::move(loaded.db);
    result->ties = std::move(loaded.ties);
    replace_learned(std::move(result));
    return loaded.skipped_lines;
}

std::size_t Session::load_db(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("Session::load_db: cannot read " + path);
    return load_db(in);
}

}  // namespace seqlearn::api
