#include "api/session.hpp"

#include "core/db_io.hpp"

#include <fstream>
#include <stdexcept>

namespace seqlearn::api {

Session::Session(netlist::Netlist nl, SessionConfig cfg)
    : Session(std::make_unique<netlist::Netlist>(std::move(nl)), nullptr, std::move(cfg)) {}

Session Session::view(const netlist::Netlist& nl, SessionConfig cfg) {
    return Session(nullptr, &nl, std::move(cfg));
}

Session::Session(std::unique_ptr<netlist::Netlist> owned, const netlist::Netlist* borrowed,
                 SessionConfig cfg)
    : cfg_(std::move(cfg)),
      owned_nl_(std::move(owned)),
      nl_(owned_nl_ ? owned_nl_.get() : borrowed),
      topo_(std::make_unique<const netlist::Topology>(*nl_)),
      cancel_(std::make_unique<exec::CancelFlag>()) {}

unsigned Session::resolve_threads(unsigned stage_threads) const noexcept {
    if (stage_threads != 0) return stage_threads;
    if (cfg_.threads != 0) return cfg_.threads;
    return exec::Pool::hardware_threads();
}

exec::Pool& Session::executor(unsigned workers) {
    if (!pool_ || pool_->size() < workers) {
        pool_ = std::make_unique<exec::Pool>(workers);
        // The fault simulator keeps a pool pointer; re-wire it after growth.
        if (fsim_) fsim_->set_executor(pool_.get(), resolve_threads(0));
    }
    return *pool_;
}

const std::vector<netlist::ClockClass>& Session::clock_classes() {
    if (!classes_) classes_.emplace(netlist::clock_classes(*nl_));
    return *classes_;
}

const fault::CollapsedFaults& Session::collapsed_faults() {
    if (!collapsed_) collapsed_.emplace(fault::collapse(*nl_));
    return *collapsed_;
}

fault::FaultSimulator& Session::fault_simulator() {
    if (!fsim_) {
        fsim_.emplace(*topo_);
        const unsigned workers = resolve_threads(0);
        if (workers > 1) fsim_->set_executor(&executor(workers), workers);
    }
    return *fsim_;
}

atpg::Engine& Session::engine() {
    if (!engine_) engine_.emplace(*topo_);
    return *engine_;
}

const core::LearnResult& Session::learn() {
    if (!learned_) return learn(cfg_.learn);
    return *learned_;
}

const core::LearnResult& Session::learn(const core::LearnConfig& lcfg) {
    core::LearnConfig cfg = lcfg;
    if (cfg_.progress && !cfg.on_stem) {
        cfg.on_stem = [this](std::size_t done, std::size_t total) {
            const bool keep_going = cfg_.progress({Stage::Learn, done, total});
            if (!keep_going) cancel_->request();
            return keep_going;
        };
    }
    cancel_->reset();
    cfg.cancel = cancel_.get();
    const unsigned workers = resolve_threads(lcfg.threads);
    cfg.threads = workers;
    if (workers > 1) cfg.executor = &executor(workers);
    replace_learned(std::make_unique<core::LearnResult>(core::learn(*nl_, *topo_, cfg)));
    return *learned_;
}

void Session::replace_learned(std::unique_ptr<core::LearnResult> next) {
    // The fault simulator may still point at the previous result's tie
    // vectors (set_good_ties's "must outlive" contract); drop those
    // pointers before the vectors die. Facade paths re-set ties on use.
    if (fsim_) fsim_->set_good_ties(nullptr, nullptr);
    learned_ = std::move(next);
}

const AtpgReport& Session::atpg() {
    if (!atpg_) return atpg(cfg_.atpg);
    return *atpg_;
}

const AtpgReport& Session::atpg(atpg::AtpgConfig acfg) {
    // Modes that consume learned data get this session's result wired in
    // (learning on demand); an explicit cfg.learned — e.g. data brought in
    // through load_db on another session — is respected as-is. Mode None
    // stays a true no-learning baseline.
    if (acfg.mode != atpg::LearnMode::None && acfg.learned == nullptr) {
        acfg.learned = &learn();
    }
    if (cfg_.progress && !acfg.on_fault) {
        acfg.on_fault = [this](std::size_t done, std::size_t total) {
            const bool keep_going = cfg_.progress({Stage::Atpg, done, total});
            if (!keep_going) cancel_->request();
            return keep_going;
        };
    }
    cancel_->reset();
    acfg.cancel = cancel_.get();
    // Build the lazy engines BEFORE capturing the pool pointer: creating the
    // fault simulator may grow (i.e. replace) the pool for the session-wide
    // default worker count, which would dangle an earlier-captured executor.
    atpg::Engine& eng = engine();
    fault::FaultSimulator& fsim = fault_simulator();
    const unsigned workers = resolve_threads(acfg.threads);
    acfg.threads = workers;
    if (workers > 1) acfg.executor = &executor(workers);
    fault::FaultList list(collapsed_faults().representatives());
    atpg::AtpgOutcome outcome = run_atpg(eng, fsim, list, acfg);
    atpg_.emplace(
        AtpgReport{std::move(list), std::move(outcome), acfg.learned != nullptr});
    return *atpg_;
}

FaultSimReport Session::fault_sim() {
    const AtpgReport& report = atpg();
    // Replay exactly the expected-value model the campaign validated its
    // tests with: tie-augmented only when that campaign used learned data
    // (a LearnMode::None baseline must not gain tie knowledge here).
    return fault_sim(report.outcome.tests, report.used_learned);
}

FaultSimReport Session::fault_sim(std::span<const sim::InputSequence> tests) {
    return fault_sim(tests, learned_ != nullptr);
}

FaultSimReport Session::fault_sim(std::span<const sim::InputSequence> tests,
                                  bool with_ties) {
    fault::FaultSimulator& fsim = fault_simulator();
    // The tie-augmented good machine closes the 3-valued pessimism gap for
    // learning-aware campaigns (Section 4).
    if (with_ties && learned_) {
        fsim.set_good_ties(&learned_->ties.dense(), &learned_->ties.dense_cycles());
    } else {
        fsim.set_good_ties(nullptr, nullptr);
    }
    fault::FaultList list(collapsed_faults().representatives());
    cancel_->reset();
    FaultSimReport report;
    for (const sim::InputSequence& t : tests) {
        if (cancel_->requested()) {
            report.cancelled = true;
            break;
        }
        if (cfg_.progress &&
            !cfg_.progress({Stage::FaultSim, report.sequences, tests.size()})) {
            cancel_->request();
            report.cancelled = true;
            break;
        }
        fsim.drop_detected(t, list);
        ++report.sequences;
    }
    const fault::FaultList::Counts c = list.counts();
    report.total = c.total;
    report.detected = c.detected;
    report.fault_coverage = list.fault_coverage();
    return report;
}

SessionStats Session::stats() {
    SessionStats s;
    s.circuit = nl_->counts();
    s.gates = nl_->size();
    s.stems = nl_->stems().size();
    s.levels = topo_->max_level();
    s.clock_classes = clock_classes().size();
    s.collapsed_faults = collapsed_faults().size();
    if (learned_) {
        s.learned = true;
        s.learn = learned_->stats;
        s.relations = learned_->db.size();
        s.ties = learned_->ties.count();
    }
    if (atpg_) {
        s.atpg_run = true;
        s.faults = atpg_->list.counts();
        s.test_coverage = atpg_->list.test_coverage();
        s.tests = atpg_->outcome.tests.size();
    }
    return s;
}

void Session::save_db(std::ostream& out) {
    const core::LearnResult& r = learn();
    core::save_learned(out, *nl_, r.db, r.ties);
}

void Session::save_db(const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("Session::save_db: cannot write " + path);
    save_db(out);
}

std::size_t Session::load_db(std::istream& in) {
    core::LoadedLearned loaded = core::load_learned(in, *nl_);
    auto result = std::make_unique<core::LearnResult>(nl_->size());
    result->db = std::move(loaded.db);
    result->ties = std::move(loaded.ties);
    replace_learned(std::move(result));
    return loaded.skipped_lines;
}

std::size_t Session::load_db(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("Session::load_db: cannot read " + path);
    return load_db(in);
}

}  // namespace seqlearn::api
