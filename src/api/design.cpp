#include "api/design.hpp"

#include "core/db_io.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace seqlearn::api {

Design::Design(netlist::Netlist nl, std::shared_ptr<const core::LearnedSnapshot> learned)
    : nl_(std::move(nl)),
      topo_(nl_),  // levelized exactly once, here
      classes_(netlist::clock_classes(nl_)),
      faults_(fault::collapse(nl_)),
      stems_(nl_.stems()),
      testability_(topo_),
      learned_(std::move(learned)) {}

Design::MemoryFootprint Design::memory_footprint() const noexcept {
    MemoryFootprint m;
    m.netlist_bytes = nl_.memory_bytes();
    m.topology_bytes = topo_.memory_bytes();
    m.faults_bytes = faults_.memory_bytes() + stems_.capacity() * sizeof(netlist::GateId) +
                     classes_.capacity() * sizeof(netlist::ClockClass);
    m.testability_bytes = testability_.memory_bytes();
    if (learned_) m.learned_bytes = learned_->memory_bytes();
    return m;
}

DesignBuilder& DesignBuilder::learned(std::shared_ptr<const core::LearnedSnapshot> snap) {
    learned_ = std::move(snap);
    return *this;
}

DesignBuilder& DesignBuilder::learned(core::LearnResult result) {
    learned_ = core::freeze_learned(std::move(result));
    return *this;
}

DesignBuilder& DesignBuilder::load_db(std::istream& in) {
    core::LoadedSnapshot loaded = core::load_snapshot(in, nl_);
    learned_ = std::move(loaded.snapshot);
    db_skipped_ = loaded.skipped_lines;
    return *this;
}

DesignBuilder& DesignBuilder::load_db(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("DesignBuilder::load_db: cannot read " + path);
    return load_db(in);
}

DesignPtr DesignBuilder::build() {
    return DesignPtr(new Design(std::move(nl_), std::move(learned_)));
}

DesignLoad load_design(std::istream& in, std::string name) {
    DesignLoad out;
    netlist::BenchReadResult parsed = netlist::read_bench_diag(in, std::move(name));
    out.diagnostics = std::move(parsed.diagnostics);
    if (!parsed.netlist) return out;
    out.design = DesignBuilder(std::move(*parsed.netlist)).build();
    return out;
}

DesignLoad load_design(const std::string& bench_path) {
    std::ifstream in(bench_path, std::ios::binary);
    if (!in) {
        DesignLoad out;
        out.diagnostics.error(0, "cannot open '" + bench_path + "'");
        return out;
    }
    return load_design(in, bench_path);
}

}  // namespace seqlearn::api
