#pragma once
// The seqlearn facade: one object for the paper's whole flow.
//
// The pipeline is a single arc — learn an implication database, feed it to
// ATPG, validate with fault simulation — but the stage engines historically
// had to be wired by hand, each re-deriving circuit structure. A Session
// owns the Netlist, the one shared CSR netlist::Topology (levels included)
// and the clock classes, builds the stage engines lazily over that snapshot,
// and exposes the flow as methods:
//
//     api::Session session(std::move(nl));
//     session.learn();                       // implication DB + ties
//     const api::AtpgReport& r = session.atpg();
//     api::FaultSimReport v = session.fault_sim();   // independent check
//     session.save_db("circuit.learned");
//
// Results are cached: learn() and atpg() run once and return the stored
// result on later calls; the config-taking overloads force a re-run. A
// ProgressObserver receives stem-granular callbacks during learning,
// fault-granular callbacks during ATPG, and sequence-granular callbacks
// during fault-sim validation, and can cancel any stage by returning false.

#include "atpg/atpg_loop.hpp"
#include "core/seq_learn.hpp"
#include "exec/cancel.hpp"
#include "exec/pool.hpp"
#include "fault/collapse.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/clock_class.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

namespace seqlearn::api {

/// Which pipeline stage a progress callback refers to.
enum class Stage : std::uint8_t {
    Learn,     ///< single-node learning; units are fanout stems
    Atpg,      ///< deterministic generation; units are targeted faults
    FaultSim,  ///< validation; units are test sequences
};

struct Progress {
    Stage stage = Stage::Learn;
    std::size_t done = 0;   ///< units completed so far
    std::size_t total = 0;  ///< units the stage will process
};

/// Stage observer; return false to cancel the running stage (partial
/// results are kept; learn/ATPG outcomes carry a cancelled flag). Whatever
/// the stage's thread count, callbacks are delivered serialized on the
/// thread that called the stage method, in canonical unit order — an
/// observer needs no locking of its own. A false return raises the
/// Session's atomic cancel flag, which parallel workers observe at their
/// next chunk boundary.
using ProgressObserver = std::function<bool(const Progress&)>;

/// One configuration for the whole flow. The nested atpg config's `learned`
/// and `on_fault` fields are managed by the Session (learned data is wired
/// in automatically for modes that use it), as are both stage configs'
/// `executor`/`cancel` fields (the Session's shared pool and cancel flag);
/// everything else passes through.
struct SessionConfig {
    core::LearnConfig learn;
    atpg::AtpgConfig atpg;
    ProgressObserver progress;
    /// Session-wide default worker count (0 = hardware_concurrency). A
    /// stage config's own `threads` field, when nonzero, wins for that
    /// stage. All stages share one exec::Pool sized to the largest request;
    /// N-thread results are bit-identical to 1-thread results.
    unsigned threads = 0;
};

/// Campaign result: the fault list with final statuses plus the outcome
/// counters and generated tests.
struct AtpgReport {
    fault::FaultList list;
    atpg::AtpgOutcome outcome;
    /// Whether the campaign ran with learned data (and hence validated its
    /// tests against the tie-augmented good machine). fault_sim() replays
    /// the same expected-value model.
    bool used_learned = false;
};

/// Independent validation result from fault-simulating a test set.
struct FaultSimReport {
    std::size_t total = 0;     ///< collapsed faults simulated
    std::size_t detected = 0;  ///< faults the test set detects
    std::size_t sequences = 0;
    double fault_coverage = 0.0;  ///< detected / total
    /// True when the progress observer cancelled validation early (the
    /// counts above cover only the sequences simulated before the cut).
    bool cancelled = false;
};

/// Aggregate view over everything the Session has computed so far.
struct SessionStats {
    netlist::Netlist::Counts circuit;
    std::size_t gates = 0;  ///< all netlist nodes
    std::size_t stems = 0;
    std::size_t levels = 0;
    std::size_t clock_classes = 0;
    std::size_t collapsed_faults = 0;
    bool learned = false;
    core::LearnStats learn;  ///< zeros until learned
    std::size_t relations = 0;
    std::size_t ties = 0;
    bool atpg_run = false;
    fault::FaultList::Counts faults;  ///< zeros until atpg_run
    double test_coverage = 0.0;
    std::size_t tests = 0;
};

class Session {
public:
    /// Take ownership of `nl`. The Topology snapshot is built immediately
    /// (levelizing once); engines and analyses are built on first use.
    explicit Session(netlist::Netlist nl, SessionConfig cfg = {});

    /// Borrow `nl` instead of owning it (must outlive the Session) — for
    /// one-shot flows over a netlist the caller keeps using; prefer the
    /// owning constructor for long-lived sessions.
    static Session view(const netlist::Netlist& nl, SessionConfig cfg = {});

    Session(Session&&) noexcept = default;
    Session& operator=(Session&&) noexcept = default;

    // --- shared structure -------------------------------------------------
    const netlist::Netlist& netlist() const noexcept { return *nl_; }
    const netlist::Topology& topology() const noexcept { return *topo_; }
    const std::vector<netlist::ClockClass>& clock_classes();
    const fault::CollapsedFaults& collapsed_faults();

    // --- lazily-built stage engines (all over the shared Topology) --------
    fault::FaultSimulator& fault_simulator();
    atpg::Engine& engine();

    // --- the flow ---------------------------------------------------------
    /// Run sequential learning once (cached) with cfg.learn.
    const core::LearnResult& learn();
    /// Re-run learning with an explicit config; replaces the cached result.
    const core::LearnResult& learn(const core::LearnConfig& lcfg);
    bool has_learned() const noexcept { return learned_ != nullptr; }

    /// Run the ATPG campaign once (cached) with cfg.atpg. Modes that use
    /// learned data trigger learn() automatically.
    const AtpgReport& atpg();
    /// Re-run the campaign with an explicit config; replaces the cache.
    const AtpgReport& atpg(atpg::AtpgConfig acfg);
    bool has_atpg() const noexcept { return atpg_.has_value(); }

    /// Fault-simulate the last campaign's test set (running atpg() first if
    /// needed) against a fresh fault list — the independent validation step.
    /// Uses the same expected-value model the campaign validated against:
    /// tie-augmented only when that campaign used learned data.
    FaultSimReport fault_sim();
    /// Fault-simulate an explicit test set. The good machine is
    /// tie-augmented when this session holds learned data.
    FaultSimReport fault_sim(std::span<const sim::InputSequence> tests);

    SessionStats stats();

    /// Ask the running stage to stop at its next work-item boundary. Safe
    /// from any thread (the one place a Session may be touched concurrently
    /// with a running stage). The flag re-arms when the next stage starts;
    /// a cancelled stage keeps its partial results, exactly as if the
    /// progress observer had returned false.
    void request_cancel() noexcept { cancel_->request(); }

    // --- learned-data persistence (core::db_io text format) ---------------
    /// Save the learned implication DB and ties (learning first if needed).
    void save_db(std::ostream& out);
    void save_db(const std::string& path);
    /// Load a saved DB as this session's learned data (replacing any learn()
    /// result); returns the number of skipped entries naming unknown gates.
    /// Throws std::runtime_error on malformed input or an unreadable path.
    std::size_t load_db(std::istream& in);
    std::size_t load_db(const std::string& path);

private:
    Session(std::unique_ptr<netlist::Netlist> owned, const netlist::Netlist* borrowed,
            SessionConfig cfg);
    FaultSimReport fault_sim(std::span<const sim::InputSequence> tests, bool with_ties);
    void replace_learned(std::unique_ptr<core::LearnResult> next);
    unsigned resolve_threads(unsigned stage_threads) const noexcept;
    exec::Pool& executor(unsigned workers);

    SessionConfig cfg_;
    std::unique_ptr<netlist::Netlist> owned_nl_;  // null for view sessions
    const netlist::Netlist* nl_;
    std::unique_ptr<const netlist::Topology> topo_;
    std::optional<std::vector<netlist::ClockClass>> classes_;
    std::optional<fault::CollapsedFaults> collapsed_;
    std::optional<fault::FaultSimulator> fsim_;
    std::optional<atpg::Engine> engine_;
    // Heap-allocated so the tie vectors the fault simulator may point at
    // keep a stable address across Session moves.
    std::unique_ptr<core::LearnResult> learned_;
    std::optional<AtpgReport> atpg_;
    // The shared thread pool (lazily built, grown if a stage asks for more
    // workers) and the stage cancel flag; both heap-allocated so pointers
    // handed to stage engines stay stable across Session moves.
    std::unique_ptr<exec::Pool> pool_;
    std::unique_ptr<exec::CancelFlag> cancel_;
};

}  // namespace seqlearn::api
