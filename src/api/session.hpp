#pragma once
// The seqlearn facade: a cheap per-request object over a shared Design.
//
// The pipeline is a single arc — learn an implication database, feed it to
// ATPG, validate with fault simulation. The immutable circuit structure
// lives in an api::Design (one CSR Topology, levelized once, plus clock
// classes, collapsed faults and optionally a frozen LearnedSnapshot); a
// Session adds only the mutable per-run state: lazily-built stage engines,
// a thread pool, a cancel flag and cached results. Constructing a Session
// from a shared Design costs microseconds, so N Sessions over one Design
// can serve N concurrent requests — each produces results bit-identical to
// a serial run, because everything they share is const.
//
//     api::DesignPtr design = api::DesignBuilder(std::move(nl)).build();
//     api::Session session(design);
//     session.learn();                       // implication DB + ties
//     const api::AtpgReport& r = session.atpg();
//     api::FaultSimReport v = session.fault_sim();   // independent check
//     session.save_db("circuit.learned");
//
//     // promote the learned result into a Design other Sessions share:
//     auto learned_design =
//         api::DesignBuilder(netlist::Netlist(session.netlist()))
//             .learned(session.freeze_learned())
//             .build();
//
// Results are cached: learn() and atpg() run once and return the stored
// result on later calls; the config-taking overloads force a re-run. A
// ProgressObserver receives stem-granular callbacks during learning,
// fault-granular callbacks during ATPG, and sequence-granular callbacks
// during fault-sim validation, and can cancel any stage by returning false.

#include "api/design.hpp"
#include "atpg/atpg_loop.hpp"
#include "core/seq_learn.hpp"
#include "exec/budget.hpp"
#include "exec/cancel.hpp"
#include "exec/failpoint.hpp"
#include "exec/outcome.hpp"
#include "exec/pool.hpp"
#include "fault/collapse.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/clock_class.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

namespace seqlearn::api {

/// Which pipeline stage a progress callback refers to.
enum class Stage : std::uint8_t {
    Learn,     ///< single-node learning; units are fanout stems
    Atpg,      ///< deterministic generation; units are targeted faults
    FaultSim,  ///< validation; units are test sequences
};

struct Progress {
    Stage stage = Stage::Learn;
    std::size_t done = 0;   ///< units completed so far
    std::size_t total = 0;  ///< units the stage will process
};

/// Stage observer; return false to cancel the running stage (partial
/// results are kept; learn/ATPG outcomes carry a cancelled flag). Whatever
/// the stage's thread count, callbacks are delivered serialized on the
/// thread that called the stage method, in canonical unit order — an
/// observer needs no locking of its own. A false return raises the
/// Session's atomic cancel flag, which parallel workers observe at their
/// next chunk boundary.
using ProgressObserver = std::function<bool(const Progress&)>;

/// One configuration for the whole flow. The nested atpg config's `learned`
/// and `on_fault` fields are managed by the Session (learned data is wired
/// in automatically for modes that use it), as are both stage configs'
/// `executor`/`cancel` fields (the Session's shared pool and cancel flag);
/// everything else passes through.
struct SessionConfig {
    core::LearnConfig learn;
    atpg::AtpgConfig atpg;
    ProgressObserver progress;
    /// Session-wide default worker count (0 = hardware_concurrency). A
    /// stage config's own `threads` field, when nonzero, wins for that
    /// stage. All stages share one exec::Pool sized to the largest request;
    /// N-thread results are bit-identical to 1-thread results.
    unsigned threads = 0;
    /// Session-wide default run budget, inherited by any stage whose own
    /// config leaves `budget` empty. Each stage materializes its own clock
    /// at stage entry (the deadline is per stage, not per session).
    exec::BudgetSpec budget;
    /// Session-wide fault-injection harness default (robustness tests only;
    /// null in production), inherited like `budget`.
    exec::FailurePoint* failpoint = nullptr;
};

/// Campaign result: the fault list with final statuses plus the outcome
/// counters and generated tests.
struct AtpgReport {
    fault::FaultList list;
    atpg::AtpgOutcome outcome;
    /// Whether the campaign ran with learned data (and hence validated its
    /// tests against the tie-augmented good machine). fault_sim() replays
    /// the same expected-value model.
    bool used_learned = false;
};

/// FNV-1a digest of a full campaign: every fault status in list order, then
/// every generated test vector (length-prefixed). Sensitive to any change in
/// search order, windowing, validation, or simulation — the determinism
/// goldens and the serving protocol's `campaign_digest` field both use this.
std::uint64_t campaign_digest(const AtpgReport& report);

/// Independent validation result from fault-simulating a test set.
struct FaultSimReport {
    std::size_t total = 0;     ///< collapsed faults simulated
    std::size_t detected = 0;  ///< faults the test set detects
    std::size_t sequences = 0;
    double fault_coverage = 0.0;  ///< detected / total
    /// How validation ended (cancel, budget, injected failure, or clean).
    /// On any early stop the counts above cover only the sequences fully
    /// simulated before the cut — a sound lower bound on coverage.
    exec::RunOutcome outcome;
    /// Convenience flag: true whenever validation ended early, i.e.
    /// !outcome.ok() (kept for report printers).
    bool cancelled = false;
};

/// Aggregate view over everything the Session has computed so far.
struct SessionStats {
    netlist::Netlist::Counts circuit;
    std::size_t gates = 0;  ///< all netlist nodes
    std::size_t stems = 0;
    std::size_t levels = 0;
    std::size_t clock_classes = 0;
    std::size_t collapsed_faults = 0;
    bool learned = false;
    core::LearnStats learn;  ///< zeros until learned
    std::size_t relations = 0;
    std::size_t ties = 0;
    bool atpg_run = false;
    fault::FaultList::Counts faults;  ///< zeros until atpg_run
    double test_coverage = 0.0;
    std::size_t tests = 0;
    /// Generated-pattern shape (zeros until atpg_run): pattern count equals
    /// `tests`; `pattern_frames` is the total frame count across all tests
    /// (the tester-time proxy); compaction_before/after report the static
    /// compaction pass (both 0 when it did not run).
    std::size_t pattern_frames = 0;
    std::size_t compaction_before = 0;
    std::size_t compaction_after = 0;
    /// How the cached learn / ATPG runs ended (Completed when never run —
    /// check `learned` / `atpg_run` to distinguish "clean" from "not yet").
    exec::RunOutcome learn_outcome;
    exec::RunOutcome atpg_outcome;

    /// Approximate heap footprint: the shared Design's components (charged
    /// once however many Sessions share it) plus this Session's own learned
    /// data and engine scratch — what a serving cache and its session pool
    /// account against a memory cap.
    struct Memory {
        Design::MemoryFootprint design;  ///< shared, charged per Design
        std::size_t learned_bytes = 0;   ///< session-local learned data (0 when
                                         ///< the Design snapshot is the active one
                                         ///< — that's in design.learned_bytes)
        std::size_t scratch_bytes = 0;   ///< this Session's engine scratch
        std::size_t total() const noexcept {
            return design.total() + learned_bytes + scratch_bytes;
        }
    };
    Memory memory;
};

class Session {
public:
    /// Attach to a shared immutable Design — the cheap constructor (no
    /// levelization, no analysis; engines are built lazily on first use).
    /// Any number of Sessions may share one Design concurrently. Throws
    /// std::invalid_argument on a null design.
    explicit Session(DesignPtr design, SessionConfig cfg = {});

    /// Convenience: take ownership of `nl` and compile a private Design
    /// for this Session (levelizing once). Prefer building the Design
    /// yourself when several Sessions will share the circuit.
    explicit Session(netlist::Netlist nl, SessionConfig cfg = {});

    /// Deprecated lifetime-footgun shim: the borrowed netlist had to
    /// outlive the Session. Now copies `nl` into a private Design; kept one
    /// release so existing callers compile. Use Session(DesignPtr) (or the
    /// owning constructor) instead.
    [[deprecated("construct from a shared api::Design instead")]]
    static Session view(const netlist::Netlist& nl, SessionConfig cfg = {});

    Session(Session&&) noexcept = default;
    Session& operator=(Session&&) noexcept = default;

    // --- shared structure (all forwarded from the immutable Design) -------
    const Design& design() const noexcept { return *design_; }
    /// The shared handle — pass it to other threads to open more Sessions.
    const DesignPtr& design_ptr() const noexcept { return design_; }
    const netlist::Netlist& netlist() const noexcept { return design_->netlist(); }
    const netlist::Topology& topology() const noexcept { return design_->topology(); }
    const std::vector<netlist::ClockClass>& clock_classes() const noexcept {
        return design_->clock_classes();
    }
    const fault::CollapsedFaults& collapsed_faults() const noexcept {
        return design_->collapsed_faults();
    }

    // --- lazily-built stage engines (all over the shared Topology) --------
    fault::FaultSimulator& fault_simulator();
    atpg::Engine& engine();

    // --- the flow ---------------------------------------------------------
    /// Learned data, session-local results first: this session's learn() /
    /// load_db() result if any, else the Design's frozen snapshot, else
    /// run learning with cfg.learn (caching the result). Only a *complete*
    /// cached result satisfies this call: when the cached run ended early
    /// (cancelled / budget / failed), learning re-runs from scratch — a
    /// cancelled Session stays reusable. Use resume_learn() to continue a
    /// budgeted run instead of restarting, and save_db() to persist a
    /// partial result without triggering a re-run. Never throws for
    /// run-time failures: inspect LearnResult::outcome.
    const core::LearnResult& learn();
    /// Re-run learning with an explicit config; replaces the cached result
    /// (the Design snapshot, if any, is shadowed, never modified).
    const core::LearnResult& learn(const core::LearnConfig& lcfg);
    /// True when learned data is available without running learn(): a
    /// session-local result, an injected snapshot (use_learned), or the
    /// Design's snapshot.
    bool has_learned() const noexcept {
        return learned_ != nullptr || snapshot_ != nullptr ||
               design_->learned() != nullptr;
    }

    /// Freeze the active learned data (learning first if needed) into a
    /// shareable snapshot — the promotion path into DesignBuilder::learned.
    /// The session keeps its own copy and stays usable. When the active
    /// data is already the Design's snapshot, that handle is returned
    /// directly (no copy).
    std::shared_ptr<const core::LearnedSnapshot> freeze_learned();

    /// Resume a budget-interrupted learning run from a checkpoint, caching
    /// the (possibly again partial) result like learn() does. The config —
    /// cfg.learn for the first overload — must have the same result-affecting
    /// fields as the run that produced the checkpoint (execution fields:
    /// threads / executor / batch_lanes / budget may differ freely); throws
    /// std::invalid_argument otherwise. A resumed run completes to the same
    /// final db/ties the uninterrupted run would have produced.
    const core::LearnResult& resume_learn(const core::LearnCheckpoint& ckpt);
    const core::LearnResult& resume_learn(const core::LearnCheckpoint& ckpt,
                                          const core::LearnConfig& lcfg);
    /// Load a serialized checkpoint (core::db_io text format) and resume.
    /// Throws std::runtime_error on malformed input or an unreadable path.
    const core::LearnResult& resume_learn(std::istream& in);
    const core::LearnResult& resume_learn(const std::string& path);

    /// Serialize this session's partial learn() result for a later
    /// resume_learn(). Throws std::logic_error when the session holds no
    /// resumable result (no learn() run, a complete one, or a Failed one —
    /// after an unwind the exact stop point is unknown).
    void save_checkpoint(std::ostream& out);
    void save_checkpoint(const std::string& path);

    /// Run the ATPG campaign once (cached) with cfg.atpg. Modes that use
    /// learned data trigger learn() automatically (which prefers the
    /// Design's snapshot — the learn-once / ATPG-many flow). Like learn(),
    /// a cached campaign that ended early does not satisfy this call — the
    /// campaign re-runs. Never throws for run-time failures: inspect
    /// AtpgOutcome::run.
    const AtpgReport& atpg();
    /// Re-run the campaign with an explicit config; replaces the cache.
    const AtpgReport& atpg(atpg::AtpgConfig acfg);
    bool has_atpg() const noexcept { return atpg_.has_value(); }

    /// Fault-simulate the last campaign's test set (running atpg() first if
    /// needed) against a fresh fault list — the independent validation step.
    /// Uses the same expected-value model the campaign validated against:
    /// tie-augmented only when that campaign used learned data.
    FaultSimReport fault_sim();
    /// Fault-simulate an explicit test set. The good machine is
    /// tie-augmented when this session has learned data (see has_learned()).
    FaultSimReport fault_sim(std::span<const sim::InputSequence> tests);

    SessionStats stats();

    /// Ask the running stage to stop at its next work-item boundary. Safe
    /// from any thread (the one place a Session may be touched concurrently
    /// with a running stage). The flag re-arms when the next stage starts;
    /// a cancelled stage keeps its partial results, exactly as if the
    /// progress observer had returned false.
    void request_cancel() noexcept { cancel_->request(); }

    // --- learned-data persistence (core::db_io) ---------------------------
    /// Save the active learned data (learning first if needed) in the
    /// name-keyed text format — archival, diffable, robust across mild
    /// netlist edits. A partial result from an interrupted run is saved
    /// as-is — every relation and tie in it is sound — without triggering a
    /// re-run.
    void save_db(std::ostream& out);
    void save_db(const std::string& path);
    /// Save in the gate-id-keyed binary v2 format instead: an order of
    /// magnitude faster to load, but bound to this exact netlist by digest
    /// (see core::save_learned_binary). The stream must be binary-mode.
    void save_db_binary(std::ostream& out);
    void save_db_binary(const std::string& path);
    /// Load a saved DB — either format, sniffed by magic — as this session's
    /// learned data (replacing any learn() result and shadowing the Design
    /// snapshot); returns the number of skipped entries naming unknown gates
    /// (always 0 for binary files, which reject mismatches wholesale).
    /// Throws std::runtime_error on malformed input or an unreadable path.
    std::size_t load_db(std::istream& in);
    std::size_t load_db(const std::string& path);

    /// Adopt a frozen snapshot as this session's active learned data without
    /// copying it (shadowing any learn() result and the Design's own
    /// snapshot). This is how a serving cache attaches knowledge learned by
    /// one request to later Sessions over the same cached Design — no Design
    /// rebuild, no O(relations) copy. Pass nullptr to drop back to the
    /// Design snapshot / fresh-learn behaviour.
    void use_learned(std::shared_ptr<const core::LearnedSnapshot> snap);

private:
    /// Session-local learned result, else the injected snapshot, else the
    /// Design snapshot, else null.
    const core::LearnResult* active_learned() const noexcept {
        if (learned_) return learned_.get();
        if (snapshot_) return &snapshot_->result();
        if (const core::LearnedSnapshot* s = design_->learned()) return &s->result();
        return nullptr;
    }
    FaultSimReport fault_sim(std::span<const sim::InputSequence> tests, bool with_ties);
    const core::LearnResult& run_learn(const core::LearnConfig& lcfg,
                                       const core::LearnCheckpoint* ckpt);
    void replace_learned(std::unique_ptr<core::LearnResult> next);
    unsigned resolve_threads(unsigned stage_threads) const noexcept;
    exec::Pool& executor(unsigned workers);

    DesignPtr design_;
    SessionConfig cfg_;
    std::optional<fault::FaultSimulator> fsim_;
    std::optional<atpg::Engine> engine_;
    // Heap-allocated so the tie vectors the fault simulator may point at
    // keep a stable address across Session moves.
    std::unique_ptr<core::LearnResult> learned_;
    // Injected via use_learned(): shared learned data adopted without a copy
    // (shadowed by learned_, shadows the Design snapshot).
    std::shared_ptr<const core::LearnedSnapshot> snapshot_;
    std::optional<AtpgReport> atpg_;
    // The shared thread pool (lazily built, grown if a stage asks for more
    // workers) and the stage cancel flag; both heap-allocated so pointers
    // handed to stage engines stay stable across Session moves.
    std::unique_ptr<exec::Pool> pool_;
    std::unique_ptr<exec::CancelFlag> cancel_;
};

}  // namespace seqlearn::api
