#pragma once
// The immutable, thread-safe circuit artifact every Session consumes.
//
// The paper's flow is one-producer/many-consumers: a circuit is compiled
// once (parse, levelize, partition clocks, collapse faults, optionally
// attach pre-learned knowledge), then any number of learning / ATPG /
// fault-simulation runs consume that frozen structure. A Design is exactly
// that artifact: everything in it is computed at build time and const
// afterwards, so a `std::shared_ptr<const Design>` can be handed to any
// number of threads, each constructing its own cheap api::Session over it,
// with no locking and bit-identical results to a serial run.
//
//     auto load = api::load_design("big.bench");      // streaming reader
//     if (!load.design) { /* inspect load.diagnostics */ }
//     api::Session s(load.design);                     // microseconds
//
//     // or assemble explicitly:
//     auto design = api::DesignBuilder(std::move(nl))
//                       .learned(session.freeze_learned())  // optional
//                       .build();
//
// Ownership: Design owns the Netlist, the one CSR Topology (levelized
// once), the clock classes and the collapsed fault universe. The optional
// LearnedSnapshot is held by shared_ptr so learned knowledge can also be
// shared across Designs (e.g. mild netlist edits reusing a saved DB).

#include "core/learned_snapshot.hpp"
#include "fault/collapse.hpp"
#include "guide/testability.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/clock_class.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace seqlearn::api {

class Design {
public:
    const std::string& name() const noexcept { return nl_.name(); }
    const netlist::Netlist& netlist() const noexcept { return nl_; }
    const netlist::Topology& topology() const noexcept { return topo_; }
    const std::vector<netlist::ClockClass>& clock_classes() const noexcept {
        return classes_;
    }
    const fault::CollapsedFaults& collapsed_faults() const noexcept { return faults_; }

    /// SCOAP testability analysis (sequential CC0/CC1/CO), computed once at
    /// build time like the clock classes, shared read-only by every Session
    /// (fault ordering, guided search, backend routing).
    const guide::Testability& testability() const noexcept { return testability_; }

    /// Pre-learned knowledge attached at build time, or nullptr.
    const core::LearnedSnapshot* learned() const noexcept { return learned_.get(); }
    std::shared_ptr<const core::LearnedSnapshot> learned_ptr() const noexcept {
        return learned_;
    }

    /// Fanout stems in id order, precomputed for stats/reporting and for
    /// consumers sizing progress totals (the learning pass derives its own
    /// per-clock-class schedule internally).
    const std::vector<netlist::GateId>& stems() const noexcept { return stems_; }

    /// Per-component heap footprint of the frozen artifact — what a serving
    /// cache charges against its memory cap for this Design.
    struct MemoryFootprint {
        std::size_t netlist_bytes = 0;
        std::size_t topology_bytes = 0;
        std::size_t faults_bytes = 0;
        std::size_t testability_bytes = 0;  ///< SCOAP cost arrays
        std::size_t learned_bytes = 0;      ///< attached snapshot, 0 when none

        std::size_t total() const noexcept {
            return netlist_bytes + topology_bytes + faults_bytes + testability_bytes +
                   learned_bytes;
        }
    };
    MemoryFootprint memory_footprint() const noexcept;
    std::size_t memory_bytes() const noexcept { return memory_footprint().total(); }

private:
    friend class DesignBuilder;
    Design(netlist::Netlist nl, std::shared_ptr<const core::LearnedSnapshot> learned);

    netlist::Netlist nl_;
    netlist::Topology topo_;
    std::vector<netlist::ClockClass> classes_;
    fault::CollapsedFaults faults_;
    std::vector<netlist::GateId> stems_;
    guide::Testability testability_;
    std::shared_ptr<const core::LearnedSnapshot> learned_;
};

/// How Designs are shared: immutable, reference-counted.
using DesignPtr = std::shared_ptr<const Design>;

/// Assembles a Design from a Netlist plus optional learned knowledge.
/// Compilation (levelization, clock classes, fault collapsing) happens once
/// in build(); the returned Design is frozen.
class DesignBuilder {
public:
    explicit DesignBuilder(netlist::Netlist nl) : nl_(std::move(nl)) {}

    /// Attach a frozen learned snapshot (shared; may feed other Designs).
    DesignBuilder& learned(std::shared_ptr<const core::LearnedSnapshot> snap);
    /// Freeze and attach a learn() result.
    DesignBuilder& learned(core::LearnResult result);

    /// Load a saved implication DB + tie set (core::db_io — text or binary,
    /// sniffed by magic) as the Design's learned snapshot. Text entries
    /// naming gates absent from the netlist are skipped (count via
    /// db_skipped()); a binary file must match the netlist digest exactly.
    /// Throws std::runtime_error on malformed input or an unreadable path.
    DesignBuilder& load_db(std::istream& in);
    DesignBuilder& load_db(const std::string& path);
    /// Entries skipped by the last load_db() call.
    std::size_t db_skipped() const noexcept { return db_skipped_; }

    /// Compile and freeze. The builder is consumed (netlist moved out).
    DesignPtr build();

private:
    netlist::Netlist nl_;
    std::shared_ptr<const core::LearnedSnapshot> learned_;
    std::size_t db_skipped_ = 0;
};

/// Result of loading a .bench file into a Design: the design (null when the
/// reader recorded any error) plus every parse diagnostic.
struct DesignLoad {
    DesignPtr design;
    netlist::Diagnostics diagnostics;

    bool ok() const noexcept { return design != nullptr; }
};

/// Parse `in` with the streaming .bench reader and compile the result into
/// a shared Design. On parse errors the design is null and the diagnostics
/// say why (line-numbered); warnings are reported alongside a valid design.
DesignLoad load_design(std::istream& in, std::string name = "circuit");

/// load_design from a file path (the path becomes the circuit name). An
/// unreadable path is reported as an error diagnostic, not an exception.
DesignLoad load_design(const std::string& bench_path);

}  // namespace seqlearn::api
