#include "netlist/topology.hpp"

namespace seqlearn::netlist {

Topology::Topology(const Netlist& nl) : lv_(levelize(nl)) {
    const std::size_t n = nl.size();
    type_.resize(n);
    op_.assign(n, logic::GateOp::Buf);
    flags_.assign(n, 0);

    std::size_t fanin_total = 0;
    std::size_t fanout_total = 0;
    for (GateId g = 0; g < n; ++g) {
        fanin_total += nl.fanins(g).size();
        fanout_total += nl.fanouts(g).size();
    }

    fanin_off_.resize(n + 1);
    fanout_off_.resize(n + 1);
    fanout_seq_.resize(n);
    fanin_.reserve(fanin_total);
    fanout_.reserve(fanout_total);

    for (GateId g = 0; g < n; ++g) {
        const GateType t = nl.type(g);
        type_[g] = t;
        std::uint8_t f = 0;
        if (t == GateType::Input) {
            f |= kInput;
        } else if (t == GateType::Const0 || t == GateType::Const1) {
            f |= kConst;
            op_[g] = to_op(t);
            consts_.push_back(g);
        } else if (is_sequential(t)) {
            f |= kSeq;
        } else {
            f |= kComb;
            op_[g] = to_op(t);
        }
        flags_[g] = f;

        fanin_off_[g] = static_cast<std::uint32_t>(fanin_.size());
        for (const GateId fi : nl.fanins(g)) fanin_.push_back(fi);

        // Stable partition of the fanout list: combinational sinks first,
        // sequential sinks last, each keeping the Netlist's relative order
        // (event-driven propagation order — and hence every downstream
        // discovery order — stays identical to iterating the Netlist lists).
        fanout_off_[g] = static_cast<std::uint32_t>(fanout_.size());
        for (const GateId fo : nl.fanouts(g))
            if (!is_sequential(nl.type(fo))) fanout_.push_back(fo);
        fanout_seq_[g] = static_cast<std::uint32_t>(fanout_.size());
        for (const GateId fo : nl.fanouts(g))
            if (is_sequential(nl.type(fo))) fanout_.push_back(fo);
    }
    fanin_off_[n] = static_cast<std::uint32_t>(fanin_.size());
    fanout_off_[n] = static_cast<std::uint32_t>(fanout_.size());

    inputs_.assign(nl.inputs().begin(), nl.inputs().end());
    outputs_.assign(nl.outputs().begin(), nl.outputs().end());
    seq_elems_.assign(nl.seq_elements().begin(), nl.seq_elements().end());
}

std::size_t Topology::memory_bytes() const noexcept {
    const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    return vec(fanin_off_) + vec(fanin_) + vec(fanout_off_) + vec(fanout_seq_) +
           vec(fanout_) + vec(type_) + vec(op_) + vec(flags_) + vec(consts_) +
           vec(inputs_) + vec(outputs_) + vec(seq_elems_) + vec(lv_.level) +
           vec(lv_.topo_order);
}

}  // namespace seqlearn::netlist
