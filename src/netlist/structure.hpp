#pragma once
// Structural traversals: fanin/fanout cones and reconvergence helpers.

#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"

#include <vector>

namespace seqlearn::netlist {

/// Gates reachable forward from `start` (excluding `start` itself).
/// When `through_seq` is false the traversal stops at sequential elements
/// (they are included in the result but not expanded).
std::vector<GateId> fanout_cone(const Netlist& nl, GateId start, bool through_seq);

/// Gates reachable backward from `start` (excluding `start` itself); same
/// sequential-element rule as fanout_cone.
std::vector<GateId> fanin_cone(const Netlist& nl, GateId start, bool through_seq);

/// The combinational support of `id`: all Input/Const/sequential-element
/// sources feeding it through combinational logic only.
std::vector<GateId> comb_support(const Netlist& nl, GateId id);

/// Sequential depth: the longest distance, counted in sequential elements,
/// from any primary input to any output/element, capped at `cap` to stay
/// finite on cyclic state machines.
std::size_t sequential_depth(const Netlist& nl, std::size_t cap = 64);

/// Topology overload of sequential_depth: identical result, computed over
/// the CSR snapshot (no Netlist adjacency walks).
std::size_t sequential_depth(const Topology& topo, std::size_t cap = 64);

}  // namespace seqlearn::netlist
