#pragma once
// Structured front-end diagnostics.
//
// The streaming .bench reader and the netlist builder report problems as
// line-numbered records instead of throwing on the first one, so a single
// pass over a broken multi-100k-gate file surfaces every error and warning
// at once (the way a compiler does). Errors mean no netlist is produced;
// warnings mean the input was accepted with a documented interpretation
// (e.g. a duplicate definition keeps the first one).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace seqlearn::netlist {

enum class Severity : std::uint8_t {
    Warning,  ///< input accepted; interpretation noted in the message
    Error,    ///< input rejected; no netlist is produced
};

/// One diagnostic record. `line` is 1-based; 0 means "no specific line"
/// (e.g. a whole-file problem such as an unreadable path).
struct Diagnostic {
    Severity severity = Severity::Error;
    std::uint32_t line = 0;
    std::string message;
};

/// An append-only collection of diagnostics with error/warning counters.
class Diagnostics {
public:
    void error(std::uint32_t line, std::string message);
    void warning(std::uint32_t line, std::string message);

    const std::vector<Diagnostic>& records() const noexcept { return records_; }
    std::size_t error_count() const noexcept { return errors_; }
    std::size_t warning_count() const noexcept { return warnings_; }
    bool ok() const noexcept { return errors_ == 0; }
    bool empty() const noexcept { return records_.empty(); }

    /// First error record, or nullptr when ok().
    const Diagnostic* first_error() const noexcept;

    /// "bench:12: error: expected '(...)'" — one line per record.
    std::string to_string(std::string_view source_name = "bench") const;

private:
    std::vector<Diagnostic> records_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
};

}  // namespace seqlearn::netlist
