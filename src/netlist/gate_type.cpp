#include "netlist/gate_type.hpp"

#include "util/strings.hpp"

#include <stdexcept>

namespace seqlearn::netlist {

logic::GateOp to_op(GateType t) {
    using logic::GateOp;
    switch (t) {
        case GateType::Const0: return GateOp::Const0;
        case GateType::Const1: return GateOp::Const1;
        case GateType::Buf: return GateOp::Buf;
        case GateType::Not: return GateOp::Not;
        case GateType::And: return GateOp::And;
        case GateType::Nand: return GateOp::Nand;
        case GateType::Or: return GateOp::Or;
        case GateType::Nor: return GateOp::Nor;
        case GateType::Xor: return GateOp::Xor;
        case GateType::Xnor: return GateOp::Xnor;
        case GateType::Input:
        case GateType::Dff:
        case GateType::Dlatch: break;
    }
    throw std::invalid_argument("to_op: gate type has no combinational operator");
}

std::string to_string(GateType t) {
    switch (t) {
        case GateType::Input: return "INPUT";
        case GateType::Const0: return "CONST0";
        case GateType::Const1: return "CONST1";
        case GateType::Buf: return "BUF";
        case GateType::Not: return "NOT";
        case GateType::And: return "AND";
        case GateType::Nand: return "NAND";
        case GateType::Or: return "OR";
        case GateType::Nor: return "NOR";
        case GateType::Xor: return "XOR";
        case GateType::Xnor: return "XNOR";
        case GateType::Dff: return "DFF";
        case GateType::Dlatch: return "DLATCH";
    }
    return "?";
}

GateType gate_type_from_string(std::string_view s) {
    using util::iequals;
    if (iequals(s, "INPUT")) return GateType::Input;
    if (iequals(s, "CONST0")) return GateType::Const0;
    if (iequals(s, "CONST1")) return GateType::Const1;
    if (iequals(s, "BUF") || iequals(s, "BUFF")) return GateType::Buf;
    if (iequals(s, "NOT") || iequals(s, "INV")) return GateType::Not;
    if (iequals(s, "AND")) return GateType::And;
    if (iequals(s, "NAND")) return GateType::Nand;
    if (iequals(s, "OR")) return GateType::Or;
    if (iequals(s, "NOR")) return GateType::Nor;
    if (iequals(s, "XOR")) return GateType::Xor;
    if (iequals(s, "XNOR")) return GateType::Xnor;
    if (iequals(s, "DFF")) return GateType::Dff;
    if (iequals(s, "DLATCH") || iequals(s, "LATCH")) return GateType::Dlatch;
    throw std::invalid_argument("unknown gate type: " + std::string(s));
}

}  // namespace seqlearn::netlist
