#pragma once
// Two-phase netlist construction with forward references.
//
// Sequential circuits contain feedback (a DFF's D input usually depends on
// the DFF itself), so gates must be declarable before their fanins exist.
// The builder collects declarations by name and resolves connectivity in
// build(), emitting gates in a dependency-friendly order (sources and
// sequential elements first, then combinational gates topologically).

#include "netlist/netlist.hpp"

#include <string>
#include <vector>

namespace seqlearn::netlist {

/// Declarative builder for Netlist.
///
/// Usage:
///   NetlistBuilder b("my_circuit");
///   b.input("I1");
///   b.dff("F1", "G2");               // D input may be declared later
///   b.gate(GateType::Nand, "G2", {"I1", "F1"});
///   b.output("G2");
///   Netlist nl = b.build();
class NetlistBuilder {
public:
    explicit NetlistBuilder(std::string circuit_name = "circuit")
        : name_(std::move(circuit_name)) {}

    /// Declare a primary input.
    NetlistBuilder& input(std::string name);

    /// Declare a constant source.
    NetlistBuilder& constant(std::string name, bool value);

    /// Declare a combinational gate with named fanins (forward refs allowed).
    NetlistBuilder& gate(GateType type, std::string name, std::vector<std::string> fanins);

    /// Declare a flip-flop with D input `d` and optional attributes.
    NetlistBuilder& dff(std::string name, std::string d, SeqAttrs attrs = {});

    /// Declare a latch with one data input per port.
    NetlistBuilder& dlatch(std::string name, std::vector<std::string> ports, SeqAttrs attrs = {});

    /// Mark a signal as primary output.
    NetlistBuilder& output(std::string name);

    /// Resolve all references and produce the netlist.
    /// Throws std::runtime_error on undeclared fanins or duplicate names.
    Netlist build() const;

private:
    struct Decl {
        GateType type;
        std::string name;
        std::vector<std::string> fanins;
        SeqAttrs attrs;
    };
    std::string name_;
    std::vector<Decl> decls_;
    std::vector<std::string> outputs_;
};

}  // namespace seqlearn::netlist
