#pragma once
// Two-phase netlist construction with forward references.
//
// Sequential circuits contain feedback (a DFF's D input usually depends on
// the DFF itself), so gates must be declarable before their fanins exist.
// The builder collects declarations and resolves connectivity in build(),
// emitting gates in a dependency-friendly order (sources and sequential
// elements first, then combinational gates topologically).
//
// Storage is flat: every signal name is interned once into a single char
// arena and declarations reference names by symbol id, so building a
// multi-100k-gate circuit costs O(total name bytes) memory with no per-decl
// string vectors. The streaming .bench reader feeds the *_sym entry points
// directly; the string-based entry points intern on the way in.
//
// Two build flavours:
//   - build() — legacy strict contract: throws std::runtime_error on the
//     first problem (duplicate names included);
//   - build(Diagnostics&) — collecting: records every problem as a
//     line-numbered Diagnostic (use at_line() to tag declarations with
//     source lines) and returns std::nullopt when any error was recorded.
//     Duplicate declarations are warnings there: the first wins.

#include "netlist/diagnostics.hpp"
#include "netlist/netlist.hpp"

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace seqlearn::netlist {

/// Declarative builder for Netlist.
///
/// Usage:
///   NetlistBuilder b("my_circuit");
///   b.input("I1");
///   b.dff("F1", "G2");               // D input may be declared later
///   b.gate(GateType::Nand, "G2", {"I1", "F1"});
///   b.output("G2");
///   Netlist nl = b.build();
class NetlistBuilder {
public:
    /// Interned symbol id of a signal name (dense, starting at 0).
    using Sym = std::uint32_t;

    explicit NetlistBuilder(std::string circuit_name = "circuit")
        : name_(std::move(circuit_name)) {
        sym_off_.push_back(0);
    }

    /// Tag subsequent declarations with a 1-based source line for
    /// diagnostics (sticky until the next call; 0 = no line).
    NetlistBuilder& at_line(std::uint32_t line) noexcept {
        cur_line_ = line;
        return *this;
    }

    // --- string-based declarations ---------------------------------------
    /// Declare a primary input.
    NetlistBuilder& input(std::string_view name);

    /// Declare a constant source.
    NetlistBuilder& constant(std::string_view name, bool value);

    /// Declare a combinational gate with named fanins (forward refs allowed).
    NetlistBuilder& gate(GateType type, std::string_view name,
                         const std::vector<std::string>& fanins);

    /// Declare a flip-flop with D input `d` and optional attributes.
    NetlistBuilder& dff(std::string_view name, std::string_view d, SeqAttrs attrs = {});

    /// Declare a latch with one data input per port.
    NetlistBuilder& dlatch(std::string_view name, const std::vector<std::string>& ports,
                           SeqAttrs attrs = {});

    /// Mark a signal as primary output.
    NetlistBuilder& output(std::string_view name);

    // --- interned declarations (the streaming reader's path) --------------
    /// Intern `name`, returning its stable symbol id.
    Sym intern(std::string_view name);

    /// The interned spelling of `s`. The view points into the builder's
    /// arena: valid only until the next intern() / declaration call (which
    /// may grow the arena), like iterators into a growing container.
    std::string_view spelling(Sym s) const noexcept {
        return {chars_.data() + sym_off_[s], sym_off_[s + 1] - sym_off_[s]};
    }

    /// True when `s` has a declaration (not just an interned mention).
    bool declared(Sym s) const noexcept { return sym_decl_[s] != kNoDecl; }

    /// Declare a source (Input / Const0 / Const1) by symbol.
    NetlistBuilder& declare_source(GateType type, Sym name);

    /// Declare a combinational gate by symbol.
    NetlistBuilder& declare_gate(GateType type, Sym name, std::span<const Sym> fanins);

    /// Declare a sequential element (Dff / Dlatch) by symbol. Dlatch port
    /// count is taken from the data arity, as with dlatch().
    NetlistBuilder& declare_seq(GateType type, Sym name, std::span<const Sym> data,
                                SeqAttrs attrs = {});

    /// Mark a symbol as primary output.
    NetlistBuilder& declare_output(Sym name);

    // --- builds -----------------------------------------------------------
    /// Resolve all references and produce the netlist.
    /// Throws std::runtime_error on the first problem (undeclared fanins,
    /// duplicate names, arity violations, combinational cycles).
    Netlist build() const;

    /// Resolve all references, recording every problem into `diags`.
    /// Returns the netlist when no error was recorded, std::nullopt
    /// otherwise. Duplicate declarations are downgraded to warnings (the
    /// first declaration wins); everything else that build() throws on is
    /// an error here.
    std::optional<Netlist> build(Diagnostics& diags) const;

private:
    static constexpr std::uint32_t kNoDecl = static_cast<std::uint32_t>(-1);

    struct Decl {
        GateType type;
        Sym name;
        std::uint32_t fanin_begin;
        std::uint32_t fanin_count;
        SeqAttrs attrs;
        std::uint32_t line;
    };
    struct OutputRef {
        Sym sym;
        std::uint32_t line;
    };
    struct DuplicateNote {
        std::uint32_t line;
        std::string message;
    };

    std::span<const Sym> decl_fanins(const Decl& d) const noexcept {
        return {fanins_.data() + d.fanin_begin, d.fanin_count};
    }
    void add_decl(GateType type, Sym name, std::span<const Sym> fanins, SeqAttrs attrs);
    void rehash(std::size_t buckets);
    std::optional<Netlist> build_impl(Diagnostics& diags, bool strict) const;

    std::string name_;
    std::uint32_t cur_line_ = 0;

    // Name interner: all bytes in one arena, open-addressed id table.
    std::string chars_;
    std::vector<std::uint32_t> sym_off_;  // n_syms + 1 offsets into chars_
    std::vector<std::uint32_t> table_;    // bucket -> sym + 1 (0 = empty)
    std::vector<std::uint32_t> sym_decl_; // sym -> decl index or kNoDecl

    std::vector<Sym> fanins_;  // flat fanin symbol lists
    std::vector<Decl> decls_;
    std::vector<OutputRef> outputs_;
    std::vector<DuplicateNote> duplicates_;
};

}  // namespace seqlearn::netlist
