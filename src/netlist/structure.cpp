#include "netlist/structure.hpp"

#include "netlist/levelize.hpp"

#include <algorithm>

namespace seqlearn::netlist {

namespace {

std::vector<GateId> cone(const Netlist& nl, GateId start, bool through_seq, bool forward) {
    std::vector<bool> seen(nl.size(), false);
    std::vector<GateId> out;
    std::vector<GateId> stack{start};
    // `start` is deliberately not pre-marked: a node reachable from itself
    // (through feedback) belongs to its own cone.
    while (!stack.empty()) {
        const GateId u = stack.back();
        stack.pop_back();
        const bool expand = (u == start) || through_seq || !is_sequential(nl.type(u));
        if (!expand) continue;
        const auto next = forward ? nl.fanouts(u) : nl.fanins(u);
        for (const GateId v : next) {
            if (seen[v]) continue;
            seen[v] = true;
            out.push_back(v);
            stack.push_back(v);
        }
    }
    return out;
}

}  // namespace

std::vector<GateId> fanout_cone(const Netlist& nl, GateId start, bool through_seq) {
    return cone(nl, start, through_seq, /*forward=*/true);
}

std::vector<GateId> fanin_cone(const Netlist& nl, GateId start, bool through_seq) {
    return cone(nl, start, through_seq, /*forward=*/false);
}

std::vector<GateId> comb_support(const Netlist& nl, GateId id) {
    std::vector<GateId> support;
    for (const GateId g : fanin_cone(nl, id, /*through_seq=*/false)) {
        const GateType t = nl.type(g);
        if (t == GateType::Input || t == GateType::Const0 || t == GateType::Const1 ||
            is_sequential(t)) {
            support.push_back(g);
        }
    }
    std::sort(support.begin(), support.end());
    return support;
}

std::size_t sequential_depth(const Topology& topo, std::size_t cap) {
    // Same wave relaxation as the Netlist overload, with the combinational
    // fanin support gathered by a backward walk over the CSR fanin spans
    // that does not expand through sequential elements.
    std::vector<std::size_t> depth(topo.size(), 0);
    std::vector<bool> seen(topo.size(), false);
    std::vector<GateId> stack;
    std::vector<GateId> touched;
    bool changed = true;
    std::size_t result = 0;
    std::size_t iter = 0;
    while (changed && iter++ < cap) {
        changed = false;
        for (const GateId ff : topo.seq_elements()) {
            std::size_t d = 1;  // the element itself is one stage
            for (const GateId g : touched) seen[g] = false;
            touched.clear();
            stack.assign(1, ff);
            while (!stack.empty()) {
                const GateId u = stack.back();
                stack.pop_back();
                if (u != ff && topo.is_seq(u)) continue;  // support boundary
                for (const GateId v : topo.fanins(u)) {
                    if (seen[v]) continue;
                    seen[v] = true;
                    touched.push_back(v);
                    if (topo.is_seq(v)) d = std::max(d, depth[v] + 1);
                    stack.push_back(v);
                }
            }
            d = std::min(d, cap);
            if (d > depth[ff]) {
                depth[ff] = d;
                changed = true;
                result = std::max(result, d);
            }
        }
    }
    return result;
}

std::size_t sequential_depth(const Netlist& nl, std::size_t cap) {
    // BFS in waves over sequential elements: depth of an element is one past
    // the max depth of elements in its combinational fanin support.
    std::vector<std::size_t> depth(nl.size(), 0);
    bool changed = true;
    std::size_t result = 0;
    std::size_t iter = 0;
    while (changed && iter++ < cap) {
        changed = false;
        for (const GateId ff : nl.seq_elements()) {
            std::size_t d = 1;  // the element itself is one stage
            for (const GateId s : comb_support(nl, ff)) {
                if (is_sequential(nl.type(s))) d = std::max(d, depth[s] + 1);
            }
            d = std::min(d, cap);
            if (d > depth[ff]) {
                depth[ff] = d;
                changed = true;
                result = std::max(result, d);
            }
        }
    }
    return result;
}

}  // namespace seqlearn::netlist
