#pragma once
// Flat compressed-sparse-row (CSR) view of a Netlist, built once and shared
// by every simulator.
//
// The Netlist stores per-gate std::vector fanin/fanout lists — convenient
// for construction and editing, but a pointer chase per gate on the
// simulation hot paths. Topology freezes the connectivity into four
// contiguous arrays (fanin offsets+edges, fanout offsets+edges), caches the
// per-gate operator code and structural flags, and carries the combinational
// levelization. Each gate's fanout range is additionally partitioned so its
// combinational sinks come first and its sequential sinks last: the
// event-driven frame simulator iterates the combinational span when
// scheduling and the sequential span at the frame boundary, with no
// per-edge type test.
//
// A Topology is a snapshot: it must be rebuilt after the Netlist is edited.

#include "logic/val3.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::netlist {

class Topology {
public:
    /// Structural flags per gate.
    enum Flag : std::uint8_t {
        kInput = 1,  ///< primary input
        kConst = 2,  ///< Const0/Const1 source
        kSeq = 4,    ///< Dff/Dlatch
        kComb = 8,   ///< evaluable combinational operator (excludes consts)
    };

    /// Build the CSR snapshot (levelizes internally; throws on
    /// combinational cycles, like levelize()).
    explicit Topology(const Netlist& nl);

    std::size_t size() const noexcept { return type_.size(); }

    // --- connectivity -----------------------------------------------------
    std::span<const GateId> fanins(GateId g) const noexcept {
        return {fanin_.data() + fanin_off_[g], fanin_.data() + fanin_off_[g + 1]};
    }
    std::span<const GateId> fanouts(GateId g) const noexcept {
        return {fanout_.data() + fanout_off_[g], fanout_.data() + fanout_off_[g + 1]};
    }
    /// Fanouts that are combinational gates (evaluated within a frame).
    std::span<const GateId> comb_fanouts(GateId g) const noexcept {
        return {fanout_.data() + fanout_off_[g], fanout_.data() + fanout_seq_[g]};
    }
    /// Fanouts that are sequential elements (captured at the frame boundary).
    std::span<const GateId> seq_fanouts(GateId g) const noexcept {
        return {fanout_.data() + fanout_seq_[g], fanout_.data() + fanout_off_[g + 1]};
    }
    std::size_t fanout_count(GateId g) const noexcept {
        return fanout_off_[g + 1] - fanout_off_[g];
    }
    /// Index of gate `g`'s first fanin edge in the flat edge numbering
    /// [0, num_fanin_edges()); pin `i` of `g` is edge fanin_offset(g) + i.
    /// Lets consumers keep per-pin side data in one flat array.
    std::uint32_t fanin_offset(GateId g) const noexcept { return fanin_off_[g]; }
    std::size_t num_fanin_edges() const noexcept { return fanin_.size(); }

    // --- interface lists (mirrors of the Netlist's, in the same order) ----
    std::span<const GateId> inputs() const noexcept { return inputs_; }
    std::span<const GateId> outputs() const noexcept { return outputs_; }
    std::span<const GateId> seq_elements() const noexcept { return seq_elems_; }

    // --- per-gate codes ---------------------------------------------------
    GateType type(GateId g) const noexcept { return type_[g]; }
    /// Operator code; meaningful only when is_comb(g) or is_const(g).
    logic::GateOp op(GateId g) const noexcept { return op_[g]; }
    std::uint8_t flags(GateId g) const noexcept { return flags_[g]; }
    bool is_input(GateId g) const noexcept { return flags_[g] & kInput; }
    bool is_const(GateId g) const noexcept { return flags_[g] & kConst; }
    bool is_seq(GateId g) const noexcept { return flags_[g] & kSeq; }
    bool is_comb(GateId g) const noexcept { return flags_[g] & kComb; }

    // --- schedule ---------------------------------------------------------
    const Levelization& levels() const noexcept { return lv_; }
    std::uint32_t level(GateId g) const noexcept { return lv_.level[g]; }
    std::uint32_t max_level() const noexcept { return lv_.max_level; }
    /// All gates in combinational evaluation order (sources first, then by
    /// non-decreasing level) — identical to levelize(nl).topo_order.
    std::span<const GateId> schedule() const noexcept { return lv_.topo_order; }
    /// Constant sources in id order (event-driven runs must seed them).
    std::span<const GateId> const_gates() const noexcept { return consts_; }

    /// Heap bytes held by the CSR arrays and the levelization — the
    /// per-circuit structural footprint the serving cache accounts against
    /// its memory cap (bytes/gate stays flat as circuits grow).
    std::size_t memory_bytes() const noexcept;

private:
    std::vector<std::uint32_t> fanin_off_;   // size() + 1
    std::vector<GateId> fanin_;
    std::vector<std::uint32_t> fanout_off_;  // size() + 1
    std::vector<std::uint32_t> fanout_seq_;  // start of the sequential span
    std::vector<GateId> fanout_;
    std::vector<GateType> type_;
    std::vector<logic::GateOp> op_;
    std::vector<std::uint8_t> flags_;
    std::vector<GateId> consts_;
    std::vector<GateId> inputs_;
    std::vector<GateId> outputs_;
    std::vector<GateId> seq_elems_;
    Levelization lv_;
};

}  // namespace seqlearn::netlist
