#include "netlist/diagnostics.hpp"

namespace seqlearn::netlist {

void Diagnostics::error(std::uint32_t line, std::string message) {
    records_.push_back({Severity::Error, line, std::move(message)});
    ++errors_;
}

void Diagnostics::warning(std::uint32_t line, std::string message) {
    records_.push_back({Severity::Warning, line, std::move(message)});
    ++warnings_;
}

const Diagnostic* Diagnostics::first_error() const noexcept {
    for (const Diagnostic& d : records_) {
        if (d.severity == Severity::Error) return &d;
    }
    return nullptr;
}

std::string Diagnostics::to_string(std::string_view source_name) const {
    std::string out;
    for (const Diagnostic& d : records_) {
        out.append(source_name);
        if (d.line != 0) {
            out += ':';
            out += std::to_string(d.line);
        }
        out += d.severity == Severity::Error ? ": error: " : ": warning: ";
        out += d.message;
        out += '\n';
    }
    return out;
}

}  // namespace seqlearn::netlist
