#pragma once
// ISCAS-89 .bench reader/writer.
//
// The classic format is preserved exactly:
//     INPUT(G0)
//     OUTPUT(G17)
//     G5 = DFF(G10)
//     G14 = NOT(G0)
//     G9 = NAND(G16, G15)
// Real-circuit attributes (multiple clock domains, phases, set/reset,
// multi-port latches) are carried in pragma comments so files stay readable
// by other ISCAS-89 tools:
//     #@ seq G5 clock=2 phase=1 sr=reset unconstrained
// A DLATCH with several data arguments is a multiple-port latch.
//
// The reader is streaming: one pass over the input through a fixed-size
// chunk buffer (no whole-file string), names interned flat in the builder,
// so a multi-100k-gate design parses in O(gates) memory. Problems are
// collected as line-numbered Diagnostics rather than aborting at the first
// one; read_bench_diag() is the primary entry point. The throwing
// read_bench()/read_bench_string() wrappers still throw on every error —
// but conditions now classified as warnings (duplicate definitions,
// pragmas naming unknown elements) are accepted where they used to throw;
// use read_bench_diag() to observe them.

#include "netlist/diagnostics.hpp"
#include "netlist/netlist.hpp"

#include <iosfwd>
#include <optional>
#include <string>

namespace seqlearn::netlist {

/// Result of parsing a .bench description: the netlist (present iff no
/// error was recorded) plus every diagnostic collected during the pass.
///
/// Errors: malformed syntax, unknown gate types, undeclared fanins,
/// undeclared OUTPUT signals, arity violations, combinational cycles,
/// malformed pragma keys/values, and stream read failures.
/// Warnings (netlist still produced): duplicate definitions (the first
/// wins), duplicate INPUT/OUTPUT marks, `#@ seq` pragmas naming unknown or
/// non-sequential elements (ignored — mirrors db_io's skip-unknown-gates
/// rule so files survive mild netlist edits), and unknown `#@` pragma tags
/// (ignored). Callers of the throwing wrappers see errors but not
/// warnings; use read_bench_diag to observe both.
struct BenchReadResult {
    std::optional<Netlist> netlist;
    Diagnostics diagnostics;

    bool ok() const noexcept { return netlist.has_value(); }
};

/// Parse a .bench description in one streaming pass, collecting diagnostics.
BenchReadResult read_bench_diag(std::istream& in, std::string circuit_name = "circuit");

/// Parse a .bench description held in a string, collecting diagnostics.
BenchReadResult read_bench_string_diag(std::string_view text,
                                       std::string circuit_name = "circuit");

/// Parse a .bench description. Throws std::runtime_error with a line number
/// on the first error (warnings are ignored). Legacy wrapper over
/// read_bench_diag().
Netlist read_bench(std::istream& in, std::string circuit_name = "circuit");

/// Parse a .bench description held in a string (throwing wrapper).
Netlist read_bench_string(std::string_view text, std::string circuit_name = "circuit");

/// Write `nl` in .bench format (including attribute pragmas for any
/// sequential element with non-default attributes).
void write_bench(std::ostream& out, const Netlist& nl);

/// write_bench into a string.
std::string write_bench_string(const Netlist& nl);

}  // namespace seqlearn::netlist
