#pragma once
// ISCAS-89 .bench reader/writer.
//
// The classic format is preserved exactly:
//     INPUT(G0)
//     OUTPUT(G17)
//     G5 = DFF(G10)
//     G14 = NOT(G0)
//     G9 = NAND(G16, G15)
// Real-circuit attributes (multiple clock domains, phases, set/reset,
// multi-port latches) are carried in pragma comments so files stay readable
// by other ISCAS-89 tools:
//     #@ seq G5 clock=2 phase=1 sr=reset unconstrained
// A DLATCH with several data arguments is a multiple-port latch.

#include "netlist/netlist.hpp"

#include <iosfwd>
#include <string>

namespace seqlearn::netlist {

/// Parse a .bench description. Throws std::runtime_error with a line number
/// on malformed input.
Netlist read_bench(std::istream& in, std::string circuit_name = "circuit");

/// Parse a .bench description held in a string.
Netlist read_bench_string(std::string_view text, std::string circuit_name = "circuit");

/// Write `nl` in .bench format (including attribute pragmas for any
/// sequential element with non-default attributes).
void write_bench(std::ostream& out, const Netlist& nl);

/// write_bench into a string.
std::string write_bench_string(const Netlist& nl);

}  // namespace seqlearn::netlist
