#include "netlist/builder.hpp"

#include <stdexcept>
#include <unordered_map>

namespace seqlearn::netlist {

NetlistBuilder& NetlistBuilder::input(std::string name) {
    decls_.push_back({GateType::Input, std::move(name), {}, {}});
    return *this;
}

NetlistBuilder& NetlistBuilder::constant(std::string name, bool value) {
    decls_.push_back({value ? GateType::Const1 : GateType::Const0, std::move(name), {}, {}});
    return *this;
}

NetlistBuilder& NetlistBuilder::gate(GateType type, std::string name,
                                     std::vector<std::string> fanins) {
    if (type == GateType::Input || is_sequential(type))
        throw std::invalid_argument("NetlistBuilder::gate: use input()/dff()/dlatch()");
    decls_.push_back({type, std::move(name), std::move(fanins), {}});
    return *this;
}

NetlistBuilder& NetlistBuilder::dff(std::string name, std::string d, SeqAttrs attrs) {
    decls_.push_back({GateType::Dff, std::move(name), {std::move(d)}, attrs});
    return *this;
}

NetlistBuilder& NetlistBuilder::dlatch(std::string name, std::vector<std::string> ports,
                                       SeqAttrs attrs) {
    attrs.num_ports = static_cast<std::uint8_t>(ports.size());
    decls_.push_back({GateType::Dlatch, std::move(name), std::move(ports), attrs});
    return *this;
}

NetlistBuilder& NetlistBuilder::output(std::string name) {
    outputs_.push_back(std::move(name));
    return *this;
}

Netlist NetlistBuilder::build() const {
    Netlist nl;
    nl.set_name(name_);

    std::unordered_map<std::string, std::size_t> decl_index;
    decl_index.reserve(decls_.size());
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        if (!decl_index.emplace(decls_[i].name, i).second)
            throw std::runtime_error("NetlistBuilder: duplicate declaration " + decls_[i].name);
    }

    std::vector<GateId> ids(decls_.size(), kNoGate);

    // Pass 1: sources and sequential elements. Sequential elements are
    // created with deferred fanins so that combinational feedback resolves.
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        const Decl& d = decls_[i];
        if (d.type == GateType::Input || d.type == GateType::Const0 ||
            d.type == GateType::Const1) {
            ids[i] = nl.add_gate(d.type, d.name, {});
        } else if (is_sequential(d.type)) {
            ids[i] = nl.add_sequential_deferred(d.type, d.name);
            nl.seq_attrs(ids[i]) = d.attrs;
        }
    }

    // Pass 2: combinational gates in dependency order (iterative DFS over
    // combinational fanin edges; sequential elements and sources are leaves).
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(decls_.size(), Mark::White);
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        if (ids[i] != kNoGate) mark[i] = Mark::Black;
    }
    // Two-visit DFS: a node is marked Grey when its expansion starts and
    // Black when it is emitted. A Grey fanin seen during expansion is an
    // ancestor on the current dependency path, i.e. a combinational cycle.
    std::vector<std::size_t> stack;
    for (std::size_t root = 0; root < decls_.size(); ++root) {
        if (mark[root] != Mark::White) continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const std::size_t i = stack.back();
            if (mark[i] == Mark::Black) {
                stack.pop_back();
                continue;
            }
            if (mark[i] == Mark::White) {
                mark[i] = Mark::Grey;
                for (const std::string& f : decls_[i].fanins) {
                    const auto it = decl_index.find(f);
                    if (it == decl_index.end())
                        throw std::runtime_error("NetlistBuilder: undeclared fanin " + f +
                                                 " of " + decls_[i].name);
                    const std::size_t j = it->second;
                    if (mark[j] == Mark::White) stack.push_back(j);
                    else if (mark[j] == Mark::Grey)
                        throw std::runtime_error("NetlistBuilder: combinational cycle through " +
                                                 decls_[j].name);
                }
                continue;  // revisit i once the pushed fanins are Black
            }
            // Second visit (Grey): all fanins are emitted.
            std::vector<GateId> fan;
            fan.reserve(decls_[i].fanins.size());
            for (const std::string& f : decls_[i].fanins) fan.push_back(ids[decl_index.at(f)]);
            ids[i] = nl.add_gate(decls_[i].type, decls_[i].name, fan);
            mark[i] = Mark::Black;
            stack.pop_back();
        }
    }

    // Pass 3: attach sequential fanins.
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        if (!is_sequential(decls_[i].type)) continue;
        std::vector<GateId> fan;
        fan.reserve(decls_[i].fanins.size());
        for (const std::string& f : decls_[i].fanins) {
            const auto it = decl_index.find(f);
            if (it == decl_index.end())
                throw std::runtime_error("NetlistBuilder: undeclared fanin " + f + " of " +
                                         decls_[i].name);
            fan.push_back(ids[it->second]);
        }
        nl.attach_seq_fanins(ids[i], fan);
    }

    for (const std::string& o : outputs_) {
        const GateId id = nl.find(o);
        if (id == kNoGate) throw std::runtime_error("NetlistBuilder: unknown output " + o);
        nl.mark_output(id);
    }
    nl.validate();
    return nl;
}

}  // namespace seqlearn::netlist
