#include "netlist/builder.hpp"

#include <stdexcept>

namespace seqlearn::netlist {

namespace {

std::uint64_t hash_bytes(std::string_view s) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

}  // namespace

NetlistBuilder::Sym NetlistBuilder::intern(std::string_view name) {
    if (table_.empty()) rehash(64);
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = hash_bytes(name) & mask;
    while (true) {
        const std::uint32_t entry = table_[slot];
        if (entry == 0) break;
        const Sym s = entry - 1;
        if (spelling(s) == name) return s;
        slot = (slot + 1) & mask;
    }
    const Sym s = static_cast<Sym>(sym_off_.size() - 1);
    chars_.append(name);
    sym_off_.push_back(static_cast<std::uint32_t>(chars_.size()));
    sym_decl_.push_back(kNoDecl);
    table_[slot] = s + 1;
    // Grow at 70% load so probe chains stay short.
    if ((sym_off_.size() - 1) * 10 >= table_.size() * 7) rehash(table_.size() * 2);
    return s;
}

void NetlistBuilder::rehash(std::size_t buckets) {
    table_.assign(buckets, 0);
    const std::size_t mask = buckets - 1;
    for (Sym s = 0; s + 1 < sym_off_.size(); ++s) {
        std::size_t slot = hash_bytes(spelling(s)) & mask;
        while (table_[slot] != 0) slot = (slot + 1) & mask;
        table_[slot] = s + 1;
    }
}

void NetlistBuilder::add_decl(GateType type, Sym name, std::span<const Sym> fanins,
                              SeqAttrs attrs) {
    if (sym_decl_[name] != kNoDecl) {
        duplicates_.push_back(
            {cur_line_, "duplicate definition of '" + std::string(spelling(name)) + "'"});
        return;
    }
    sym_decl_[name] = static_cast<std::uint32_t>(decls_.size());
    const auto begin = static_cast<std::uint32_t>(fanins_.size());
    fanins_.insert(fanins_.end(), fanins.begin(), fanins.end());
    decls_.push_back(
        {type, name, begin, static_cast<std::uint32_t>(fanins.size()), attrs, cur_line_});
}

NetlistBuilder& NetlistBuilder::declare_source(GateType type, Sym name) {
    add_decl(type, name, {}, {});
    return *this;
}

NetlistBuilder& NetlistBuilder::declare_gate(GateType type, Sym name,
                                             std::span<const Sym> fanins) {
    add_decl(type, name, fanins, {});
    return *this;
}

NetlistBuilder& NetlistBuilder::declare_seq(GateType type, Sym name, std::span<const Sym> data,
                                            SeqAttrs attrs) {
    if (type == GateType::Dlatch) attrs.num_ports = static_cast<std::uint8_t>(data.size());
    add_decl(type, name, data, attrs);
    return *this;
}

NetlistBuilder& NetlistBuilder::declare_output(Sym name) {
    outputs_.push_back({name, cur_line_});
    return *this;
}

NetlistBuilder& NetlistBuilder::input(std::string_view name) {
    return declare_source(GateType::Input, intern(name));
}

NetlistBuilder& NetlistBuilder::constant(std::string_view name, bool value) {
    return declare_source(value ? GateType::Const1 : GateType::Const0, intern(name));
}

NetlistBuilder& NetlistBuilder::gate(GateType type, std::string_view name,
                                     const std::vector<std::string>& fanins) {
    if (type == GateType::Input || is_sequential(type))
        throw std::invalid_argument("NetlistBuilder::gate: use input()/dff()/dlatch()");
    std::vector<Sym> fan;
    fan.reserve(fanins.size());
    for (const std::string& f : fanins) fan.push_back(intern(f));
    return declare_gate(type, intern(name), fan);
}

NetlistBuilder& NetlistBuilder::dff(std::string_view name, std::string_view d, SeqAttrs attrs) {
    const Sym data[] = {intern(d)};
    return declare_seq(GateType::Dff, intern(name), data, attrs);
}

NetlistBuilder& NetlistBuilder::dlatch(std::string_view name,
                                       const std::vector<std::string>& ports, SeqAttrs attrs) {
    std::vector<Sym> data;
    data.reserve(ports.size());
    for (const std::string& p : ports) data.push_back(intern(p));
    return declare_seq(GateType::Dlatch, intern(name), data, attrs);
}

NetlistBuilder& NetlistBuilder::output(std::string_view name) {
    return declare_output(intern(name));
}

Netlist NetlistBuilder::build() const {
    Diagnostics diags;
    std::optional<Netlist> nl = build_impl(diags, /*strict=*/true);
    if (!nl) {
        const Diagnostic* e = diags.first_error();
        throw std::runtime_error("NetlistBuilder: " +
                                 (e ? e->message : std::string("build failed")));
    }
    return std::move(*nl);
}

std::optional<Netlist> NetlistBuilder::build(Diagnostics& diags) const {
    return build_impl(diags, /*strict=*/false);
}

std::optional<Netlist> NetlistBuilder::build_impl(Diagnostics& diags, bool strict) const {
    // Success depends only on errors recorded by THIS build: `diags` may
    // arrive pre-loaded (a caller merging several passes into one report).
    const std::size_t errors_on_entry = diags.error_count();
    // Duplicates were detected at declaration time (the first declaration
    // won). The legacy contract treats them as fatal; the collecting one
    // reports them and keeps going.
    for (const DuplicateNote& d : duplicates_) {
        if (strict) diags.error(d.line, d.message);
        else diags.warning(d.line, d.message + " (first definition wins)");
    }

    // Pre-validate every declaration so all problems are reported in one
    // pass and the emission below cannot fail on references or arity.
    for (const Decl& d : decls_) {
        const std::string_view name = spelling(d.name);
        if (name.empty()) {
            diags.error(d.line, "empty signal name");
            continue;
        }
        const std::size_t arity = d.fanin_count;
        switch (d.type) {
            case GateType::Input:
            case GateType::Const0:
            case GateType::Const1:
                break;
            case GateType::Buf:
            case GateType::Not:
            case GateType::Dff:
                if (arity != 1)
                    diags.error(d.line, to_string(d.type) + " '" + std::string(name) +
                                            "' takes exactly one input");
                break;
            case GateType::Dlatch:
                if (arity == 0)
                    diags.error(d.line,
                                "DLATCH '" + std::string(name) + "' takes >= 1 data input");
                break;
            default:
                if (arity < 2)
                    diags.error(d.line, to_string(d.type) + " '" + std::string(name) +
                                            "' takes >= 2 inputs");
                break;
        }
        for (const Sym f : decl_fanins(d)) {
            if (!declared(f))
                diags.error(d.line, "undeclared fanin '" + std::string(spelling(f)) +
                                        "' of '" + std::string(name) + "'");
        }
    }
    std::vector<bool> output_seen(sym_off_.size() - 1, false);
    for (const OutputRef& o : outputs_) {
        if (!declared(o.sym)) {
            diags.error(o.line,
                        "OUTPUT of undeclared signal '" + std::string(spelling(o.sym)) + "'");
        } else if (output_seen[o.sym]) {
            if (!strict)
                diags.warning(o.line,
                              "duplicate OUTPUT of '" + std::string(spelling(o.sym)) + "'");
        } else {
            output_seen[o.sym] = true;
        }
    }
    if (diags.error_count() != errors_on_entry) return std::nullopt;

    Netlist nl;
    nl.set_name(name_);
    std::vector<GateId> ids(decls_.size(), kNoGate);

    // Pass 1: sources and sequential elements. Sequential elements are
    // created with deferred fanins so that combinational feedback resolves.
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        const Decl& d = decls_[i];
        if (d.type == GateType::Input || d.type == GateType::Const0 ||
            d.type == GateType::Const1) {
            ids[i] = nl.add_gate(d.type, std::string(spelling(d.name)), {});
        } else if (is_sequential(d.type)) {
            ids[i] = nl.add_sequential_deferred(d.type, std::string(spelling(d.name)));
            nl.seq_attrs(ids[i]) = d.attrs;
        }
    }

    // Pass 2: combinational gates in dependency order (iterative DFS over
    // combinational fanin edges; sequential elements and sources are leaves).
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(decls_.size(), Mark::White);
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        if (ids[i] != kNoGate) mark[i] = Mark::Black;
    }
    // Two-visit DFS: a node is marked Grey when its expansion starts and
    // Black when it is emitted. A Grey fanin seen during expansion is an
    // ancestor on the current dependency path, i.e. a combinational cycle.
    std::vector<std::size_t> stack;
    std::vector<GateId> fan;
    for (std::size_t root = 0; root < decls_.size(); ++root) {
        if (mark[root] != Mark::White) continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const std::size_t i = stack.back();
            if (mark[i] == Mark::Black) {
                stack.pop_back();
                continue;
            }
            if (mark[i] == Mark::White) {
                mark[i] = Mark::Grey;
                for (const Sym f : decl_fanins(decls_[i])) {
                    const std::size_t j = sym_decl_[f];
                    if (mark[j] == Mark::White) {
                        stack.push_back(j);
                    } else if (mark[j] == Mark::Grey) {
                        diags.error(decls_[j].line, "combinational cycle through '" +
                                                        std::string(spelling(decls_[j].name)) +
                                                        "'");
                        return std::nullopt;
                    }
                }
                continue;  // revisit i once the pushed fanins are Black
            }
            // Second visit (Grey): all fanins are emitted.
            fan.clear();
            for (const Sym f : decl_fanins(decls_[i])) fan.push_back(ids[sym_decl_[f]]);
            ids[i] = nl.add_gate(decls_[i].type, std::string(spelling(decls_[i].name)), fan);
            mark[i] = Mark::Black;
            stack.pop_back();
        }
    }

    // Pass 3: attach sequential fanins.
    for (std::size_t i = 0; i < decls_.size(); ++i) {
        if (!is_sequential(decls_[i].type)) continue;
        fan.clear();
        for (const Sym f : decl_fanins(decls_[i])) fan.push_back(ids[sym_decl_[f]]);
        nl.attach_seq_fanins(ids[i], fan);
    }

    for (const OutputRef& o : outputs_) nl.mark_output(ids[sym_decl_[o.sym]]);

    try {
        nl.validate();
    } catch (const std::exception& e) {
        diags.error(0, e.what());  // unreachable if the pre-checks are complete
        return std::nullopt;
    }
    return nl;
}

}  // namespace seqlearn::netlist
