#include "netlist/clock_class.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace seqlearn::netlist {

std::vector<ClockClass> clock_classes(const Netlist& nl) {
    std::map<std::tuple<std::uint16_t, std::uint8_t, bool>, ClockClass> classes;
    for (const GateId id : nl.seq_elements()) {
        const SeqAttrs& a = nl.seq_attrs(id);
        const bool is_latch = nl.type(id) == GateType::Dlatch;
        const auto key = std::make_tuple(a.clock_id, a.phase, is_latch);
        auto& cls = classes[key];
        cls.clock_id = a.clock_id;
        cls.phase = a.phase;
        cls.is_latch = is_latch;
        cls.members.push_back(id);
    }
    std::vector<ClockClass> out;
    out.reserve(classes.size());
    for (auto& [key, cls] : classes) out.push_back(std::move(cls));
    return out;
}

}  // namespace seqlearn::netlist
