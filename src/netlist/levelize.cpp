#include "netlist/levelize.hpp"

#include <stdexcept>

namespace seqlearn::netlist {

Levelization levelize(const Netlist& nl) {
    const std::size_t n = nl.size();
    Levelization out;
    out.level.assign(n, 0);
    out.topo_order.reserve(n);

    // Kahn's algorithm over combinational edges only: an edge u->v counts
    // unless v is sequential (sequential elements consume values at the frame
    // boundary, so they are sinks here and sources for their fanouts).
    std::vector<std::uint32_t> pending(n, 0);
    std::vector<GateId> ready;
    ready.reserve(n);
    for (GateId id = 0; id < n; ++id) {
        const GateType t = nl.type(id);
        if (is_sequential(t) || t == GateType::Input || t == GateType::Const0 ||
            t == GateType::Const1) {
            ready.push_back(id);
        } else {
            pending[id] = static_cast<std::uint32_t>(nl.fanins(id).size());
            if (pending[id] == 0) ready.push_back(id);  // defensive; arity checks forbid this
        }
    }

    std::size_t head = 0;
    std::vector<GateId> queue = std::move(ready);
    while (head < queue.size()) {
        const GateId u = queue[head++];
        out.topo_order.push_back(u);
        for (const GateId v : nl.fanouts(u)) {
            if (is_sequential(nl.type(v))) continue;
            // Multi-edges (same driver twice) decrement once per edge.
            if (--pending[v] == 0) {
                std::uint32_t lvl = 0;
                for (const GateId f : nl.fanins(v)) {
                    const std::uint32_t fl =
                        is_sequential(nl.type(f)) ? 0 : out.level[f];
                    lvl = std::max(lvl, fl + 1);
                }
                out.level[v] = lvl;
                out.max_level = std::max(out.max_level, lvl);
                queue.push_back(v);
            }
        }
    }

    if (out.topo_order.size() != n) {
        throw std::runtime_error("levelize: combinational cycle in netlist '" + nl.name() + "'");
    }
    return out;
}

}  // namespace seqlearn::netlist
