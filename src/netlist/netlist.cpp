#include "netlist/netlist.hpp"

#include "netlist/levelize.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqlearn::netlist {

GateId Netlist::find(std::string_view name) const {
    const auto it = by_name_.find(std::string(name));
    return it == by_name_.end() ? kNoGate : it->second;
}

const SeqAttrs& Netlist::seq_attrs(GateId id) const {
    if (seq_index_[id] < 0) throw std::invalid_argument("seq_attrs: not a sequential element");
    return seq_attrs_store_[static_cast<std::size_t>(seq_index_[id])];
}

SeqAttrs& Netlist::seq_attrs(GateId id) {
    if (seq_index_[id] < 0) throw std::invalid_argument("seq_attrs: not a sequential element");
    return seq_attrs_store_[static_cast<std::size_t>(seq_index_[id])];
}

std::vector<GateId> Netlist::stems() const {
    std::vector<GateId> out;
    for (GateId id = 0; id < gates_.size(); ++id) {
        if (gates_[id].fanouts.size() > 1) out.push_back(id);
    }
    return out;
}

Netlist::Counts Netlist::counts() const {
    Counts c;
    c.inputs = inputs_.size();
    c.outputs = outputs_.size();
    for (const GateId id : seq_elems_) {
        if (gates_[id].type == GateType::Dff) ++c.flip_flops;
        else ++c.latches;
    }
    c.combinational = gates_.size() - c.inputs - seq_elems_.size();
    return c;
}

GateId Netlist::add_gate(GateType type, std::string name, std::span<const GateId> fanins) {
    if (name.empty()) throw std::invalid_argument("add_gate: empty name");
    if (by_name_.contains(name)) throw std::invalid_argument("add_gate: duplicate name " + name);
    switch (type) {
        case GateType::Input:
        case GateType::Const0:
        case GateType::Const1:
            if (!fanins.empty()) throw std::invalid_argument("add_gate: source with fanins: " + name);
            break;
        case GateType::Buf:
        case GateType::Not:
        case GateType::Dff:
            if (fanins.size() != 1)
                throw std::invalid_argument("add_gate: " + to_string(type) + " needs 1 fanin: " + name);
            break;
        case GateType::Dlatch:
            if (fanins.empty()) throw std::invalid_argument("add_gate: DLATCH needs >=1 fanin: " + name);
            break;
        default:
            if (fanins.size() < 2)
                throw std::invalid_argument("add_gate: " + to_string(type) + " needs >=2 fanins: " + name);
            break;
    }
    const auto id = static_cast<GateId>(gates_.size());
    for (const GateId f : fanins) {
        if (f >= id) throw std::invalid_argument("add_gate: unresolved fanin for " + name);
    }
    Gate g;
    g.type = type;
    g.fanins.assign(fanins.begin(), fanins.end());
    gates_.push_back(std::move(g));
    names_.push_back(name);
    by_name_.emplace(std::move(name), id);
    seq_index_.push_back(-1);
    for (const GateId f : fanins) gates_[f].fanouts.push_back(id);
    if (type == GateType::Input) inputs_.push_back(id);
    if (is_sequential(type)) {
        seq_index_[id] = static_cast<std::int32_t>(seq_attrs_store_.size());
        seq_attrs_store_.emplace_back();
        if (type == GateType::Dlatch) {
            seq_attrs_store_.back().num_ports = static_cast<std::uint8_t>(gates_[id].fanins.size());
        }
        seq_elems_.push_back(id);
    }
    return id;
}

GateId Netlist::add_sequential_deferred(GateType type, std::string name) {
    if (!is_sequential(type))
        throw std::invalid_argument("add_sequential_deferred: not a sequential type");
    if (name.empty()) throw std::invalid_argument("add_sequential_deferred: empty name");
    if (by_name_.contains(name))
        throw std::invalid_argument("add_sequential_deferred: duplicate name " + name);
    const auto id = static_cast<GateId>(gates_.size());
    Gate g;
    g.type = type;
    gates_.push_back(std::move(g));
    names_.push_back(name);
    by_name_.emplace(std::move(name), id);
    seq_index_.push_back(static_cast<std::int32_t>(seq_attrs_store_.size()));
    seq_attrs_store_.emplace_back();
    seq_elems_.push_back(id);
    return id;
}

void Netlist::attach_seq_fanins(GateId id, std::span<const GateId> fanins) {
    if (seq_index_[id] < 0) throw std::invalid_argument("attach_seq_fanins: not sequential");
    Gate& g = gates_[id];
    if (!g.fanins.empty()) throw std::invalid_argument("attach_seq_fanins: already attached");
    if (fanins.empty()) throw std::invalid_argument("attach_seq_fanins: no data input");
    if (g.type == GateType::Dff && fanins.size() != 1)
        throw std::invalid_argument("attach_seq_fanins: DFF takes exactly one data input");
    for (const GateId f : fanins) {
        if (f >= gates_.size()) throw std::invalid_argument("attach_seq_fanins: bad fanin id");
    }
    g.fanins.assign(fanins.begin(), fanins.end());
    for (const GateId f : fanins) gates_[f].fanouts.push_back(id);
    if (g.type == GateType::Dlatch)
        seq_attrs_store_[static_cast<std::size_t>(seq_index_[id])].num_ports =
            static_cast<std::uint8_t>(fanins.size());
}

void Netlist::mark_output(GateId id) {
    if (id >= gates_.size()) throw std::invalid_argument("mark_output: bad id");
    if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) outputs_.push_back(id);
}

void Netlist::replace_fanin(GateId id, std::size_t slot, GateId new_fanin) {
    Gate& g = gates_[id];
    if (slot >= g.fanins.size()) throw std::invalid_argument("replace_fanin: bad slot");
    const GateId old = g.fanins[slot];
    if (old == new_fanin) return;
    auto& old_fo = gates_[old].fanouts;
    // A gate may appear in fanins more than once; remove one edge only.
    const auto it = std::find(old_fo.begin(), old_fo.end(), id);
    if (it != old_fo.end()) old_fo.erase(it);
    g.fanins[slot] = new_fanin;
    gates_[new_fanin].fanouts.push_back(id);
}

void Netlist::validate() const {
    for (GateId id = 0; id < gates_.size(); ++id) {
        const Gate& g = gates_[id];
        if (g.type == GateType::Dff && g.fanins.size() != 1)
            throw std::runtime_error("validate: DFF without data input: " + names_[id]);
        if (g.type == GateType::Dlatch && g.fanins.empty())
            throw std::runtime_error("validate: DLATCH without data input: " + names_[id]);
        for (const GateId f : g.fanins) {
            if (f >= gates_.size()) throw std::runtime_error("validate: dangling fanin at " + names_[id]);
            const auto& fo = gates_[f].fanouts;
            if (std::count(fo.begin(), fo.end(), id) < 1)
                throw std::runtime_error("validate: missing fanout edge into " + names_[id]);
        }
        for (const GateId f : g.fanouts) {
            if (f >= gates_.size()) throw std::runtime_error("validate: dangling fanout at " + names_[id]);
            const auto& fi = gates_[f].fanins;
            if (std::count(fi.begin(), fi.end(), id) < 1)
                throw std::runtime_error("validate: missing fanin edge from " + names_[id]);
        }
    }
    // Levelization throws on combinational cycles.
    (void)levelize(*this);
}

std::size_t Netlist::memory_bytes() const noexcept {
    const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    std::size_t bytes = gates_.capacity() * sizeof(Gate);
    for (const Gate& g : gates_) bytes += vec(g.fanins) + vec(g.fanouts);
    bytes += names_.capacity() * sizeof(std::string);
    for (const std::string& n : names_) {
        // Heap allocation only past the small-string buffer.
        if (n.capacity() > sizeof(std::string)) bytes += n.capacity() + 1;
    }
    // unordered_map: buckets plus one node (key string + value + links) per
    // entry — an estimate, but a stable one.
    bytes += by_name_.bucket_count() * sizeof(void*);
    for (const auto& [name, id] : by_name_) {
        bytes += sizeof(std::string) + sizeof(GateId) + 2 * sizeof(void*);
        if (name.capacity() > sizeof(std::string)) bytes += name.capacity() + 1;
    }
    return bytes + vec(inputs_) + vec(outputs_) + vec(seq_elems_) + vec(seq_index_) +
           vec(seq_attrs_store_);
}

}  // namespace seqlearn::netlist
