#pragma once
// Clock-class partitioning of sequential elements (paper Section 3.3.2).
//
// Relations are only valid regardless of clocking when learned among
// elements driven by the same clock net at the same phase; latches and
// flip-flops never share a class even on the same clock because their
// capture times differ. Learning runs once per class.

#include "netlist/netlist.hpp"

#include <vector>

namespace seqlearn::netlist {

/// One learning class of sequential elements.
struct ClockClass {
    std::uint16_t clock_id = 0;
    std::uint8_t phase = 0;
    bool is_latch = false;
    std::vector<GateId> members;
};

/// Partition all sequential elements of `nl` into clock classes, ordered by
/// (clock_id, phase, flip-flops-before-latches). Every sequential element
/// appears in exactly one class.
std::vector<ClockClass> clock_classes(const Netlist& nl);

}  // namespace seqlearn::netlist
