#pragma once
// The gate-level sequential netlist container.
//
// Gates are stored in a flat array indexed by GateId; names are kept for I/O
// and reporting. Primary outputs are signal marks (a PO list), not separate
// gates. Sequential elements carry SeqAttrs describing clocking and
// set/reset behaviour; those attributes drive the real-circuit rules of
// Section 3.3 of the paper.

#include "netlist/gate_type.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace seqlearn::netlist {

/// Index of a gate inside a Netlist.
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

/// Set/reset configuration of a sequential element.
enum class SetReset : std::uint8_t {
    None,       ///< no asynchronous set/reset lines
    SetOnly,    ///< asynchronous set (forces 1)
    ResetOnly,  ///< asynchronous reset (forces 0)
    Both,       ///< both set and reset lines present
};

/// Attributes of a sequential element (flip-flop or latch).
struct SeqAttrs {
    /// Identifier of the clock net driving the element. A gated clock must be
    /// given a distinct id by the front end (the paper treats a clock and its
    /// gated version as different clocks).
    std::uint16_t clock_id = 0;
    /// Capture phase on that clock (0 = leading/posedge, 1 = trailing/negedge).
    std::uint8_t phase = 0;
    /// Asynchronous set/reset lines present on the element.
    SetReset set_reset = SetReset::None;
    /// True when the set/reset lines are free to toggle during test
    /// (the paper's "unconstrained" case, which restricts learning);
    /// false when they are tied inactive, behaving like SetReset::None.
    bool sr_unconstrained = false;
    /// Number of data ports (Dlatch only; >1 blocks learning propagation).
    std::uint8_t num_ports = 1;
};

/// A single netlist node. `fanins` for a Dff is {D}; for a Dlatch it is one
/// data input per port.
struct Gate {
    GateType type = GateType::Buf;
    std::vector<GateId> fanins;
    std::vector<GateId> fanouts;
};

/// Gate-level sequential circuit.
///
/// Invariants (established by NetlistBuilder / BenchReader and checked by
/// validate()): names are unique and non-empty; every fanin/fanout edge is
/// consistent; Input/Const gates have no fanins; Buf/Not have exactly one;
/// Dff has exactly one; the combinational logic is acyclic (cycles must pass
/// through sequential elements).
class Netlist {
public:
    /// Circuit name used in reports.
    const std::string& name() const noexcept { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    /// Number of gates (all node kinds).
    std::size_t size() const noexcept { return gates_.size(); }

    const Gate& gate(GateId id) const noexcept { return gates_[id]; }
    GateType type(GateId id) const noexcept { return gates_[id].type; }
    std::span<const GateId> fanins(GateId id) const noexcept { return gates_[id].fanins; }
    std::span<const GateId> fanouts(GateId id) const noexcept { return gates_[id].fanouts; }
    const std::string& name_of(GateId id) const noexcept { return names_[id]; }

    /// Gate id for `name`, or kNoGate when absent.
    GateId find(std::string_view name) const;

    /// Primary inputs in creation order.
    std::span<const GateId> inputs() const noexcept { return inputs_; }
    /// Signals marked as primary outputs, in mark order.
    std::span<const GateId> outputs() const noexcept { return outputs_; }
    /// Sequential elements (flip-flops and latches) in creation order.
    std::span<const GateId> seq_elements() const noexcept { return seq_elems_; }

    /// Attributes of the sequential element `id`.
    /// Precondition: is_sequential(type(id)).
    const SeqAttrs& seq_attrs(GateId id) const;
    SeqAttrs& seq_attrs(GateId id);

    /// True when the node drives more than one fanout branch.
    bool is_stem(GateId id) const noexcept { return gates_[id].fanouts.size() > 1; }

    /// All fanout stems in id order.
    std::vector<GateId> stems() const;

    /// Count of gates per category used in reports.
    struct Counts {
        std::size_t inputs = 0;
        std::size_t outputs = 0;
        std::size_t flip_flops = 0;
        std::size_t latches = 0;
        std::size_t combinational = 0;  ///< gates excluding inputs and seq elements
    };
    Counts counts() const;

    /// Append a gate. Fanins must already exist; fanout edges are maintained
    /// automatically. Throws std::invalid_argument on duplicate name or
    /// arity violations. Returns the new gate's id.
    GateId add_gate(GateType type, std::string name, std::span<const GateId> fanins);

    /// Append a sequential element whose data fanins will be attached later
    /// with attach_seq_fanins(); used to build feedback loops.
    GateId add_sequential_deferred(GateType type, std::string name);

    /// Attach the data fanins of a sequential element created by
    /// add_sequential_deferred(). May be called once per element.
    void attach_seq_fanins(GateId id, std::span<const GateId> fanins);

    /// Mark an existing signal as a primary output (idempotent).
    void mark_output(GateId id);

    /// Replace fanin slot `slot` of gate `id` with `new_fanin`, maintaining
    /// fanout edges on both the old and new driver.
    void replace_fanin(GateId id, std::size_t slot, GateId new_fanin);

    /// Throws std::runtime_error describing the first violated invariant, if
    /// any (including combinational cycles).
    void validate() const;

    /// Approximate heap bytes held by the container (gate adjacency lists,
    /// names, the name index, interface lists) — feeds the serving cache's
    /// memory accounting alongside Topology::memory_bytes().
    std::size_t memory_bytes() const noexcept;

private:
    std::string name_ = "circuit";
    std::vector<Gate> gates_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, GateId> by_name_;
    std::vector<GateId> inputs_;
    std::vector<GateId> outputs_;
    std::vector<GateId> seq_elems_;
    // Parallel to gates_: index into seq_attrs_store_, or -1.
    std::vector<std::int32_t> seq_index_;
    std::vector<SeqAttrs> seq_attrs_store_;
};

}  // namespace seqlearn::netlist
