#pragma once
// Combinational levelization and topological ordering.
//
// Sources (inputs, constants, sequential-element outputs) sit at level 0;
// every combinational gate sits one past its deepest fanin. The topological
// order drives the levelized simulators and the ATPG's implication engine.

#include "netlist/netlist.hpp"

#include <vector>

namespace seqlearn::netlist {

/// Result of levelizing a netlist's combinational logic.
struct Levelization {
    /// Level per gate; sources are 0.
    std::vector<std::uint32_t> level;
    /// All gates in a valid combinational evaluation order: sources first,
    /// then combinational gates by non-decreasing level.
    std::vector<GateId> topo_order;
    /// Highest level in the circuit.
    std::uint32_t max_level = 0;
};

/// Levelize `nl`. Throws std::runtime_error when the combinational logic
/// contains a cycle (a cycle not broken by a sequential element).
Levelization levelize(const Netlist& nl);

}  // namespace seqlearn::netlist
