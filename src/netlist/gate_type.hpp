#pragma once
// Gate vocabulary of the netlist substrate.
//
// The library models gate-level sequential circuits in the ISCAS-89 style:
// primary inputs, combinational gates, and sequential elements (edge-
// triggered flip-flops and level-sensitive latches, possibly multi-port).
// Primary outputs are marks on signals, not gates.

#include "logic/val3.hpp"

#include <cstdint>
#include <string>

namespace seqlearn::netlist {

/// Type of a netlist node.
enum class GateType : std::uint8_t {
    Input,   ///< primary input; no fanins
    Const0,  ///< constant 0 source; no fanins
    Const1,  ///< constant 1 source; no fanins
    Buf,
    Not,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Dff,     ///< edge-triggered flip-flop; fanin[0] is D
    Dlatch,  ///< level-sensitive latch; fanin[i] is the data input of port i
};

/// True for Dff and Dlatch.
constexpr bool is_sequential(GateType t) noexcept {
    return t == GateType::Dff || t == GateType::Dlatch;
}

/// True for evaluable combinational operators (excludes Input and
/// sequential elements; includes constants).
constexpr bool is_combinational(GateType t) noexcept {
    return !is_sequential(t) && t != GateType::Input;
}

/// Map a combinational gate type onto its logic operator.
/// Precondition: is_combinational(t).
logic::GateOp to_op(GateType t);

/// Gate-type name as used by the .bench format ("NAND", "DFF", ...).
std::string to_string(GateType t);

/// Parse a .bench gate-type token (case-insensitive). Throws
/// std::invalid_argument on unknown names.
GateType gate_type_from_string(std::string_view s);

}  // namespace seqlearn::netlist
