#include "netlist/bench_io.hpp"

#include "netlist/builder.hpp"
#include "util/strings.hpp"

#include <charconv>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace seqlearn::netlist {

namespace {

using util::iequals;
using util::trim;

/// Chunked line scanner: reads the stream through a fixed 64 KiB buffer and
/// hands out one trimmed-at-'\n' string_view per call. Lines that span a
/// chunk boundary are assembled in a small carry string; everything else is
/// a zero-copy view into the buffer. The input is never materialized whole.
class LineScanner {
public:
    explicit LineScanner(std::istream& in) : in_(in), buf_(kChunk) {}

    /// Next line (without its terminator); false at end of input. The view
    /// is valid until the next call.
    bool next(std::string_view& line) {
        bool have_carry = false;
        carry_.clear();
        while (true) {
            if (pos_ == len_) {
                refill();
                if (len_ == 0) {
                    if (have_carry) {
                        line = carry_;
                        return true;  // final line without trailing newline
                    }
                    return false;
                }
            }
            const char* base = buf_.data();
            const void* nl = std::memchr(base + pos_, '\n', len_ - pos_);
            if (nl == nullptr) {
                carry_.append(base + pos_, len_ - pos_);
                have_carry = true;
                pos_ = len_;
                continue;
            }
            const auto end = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
            if (have_carry) {
                carry_.append(base + pos_, end - pos_);
                line = carry_;
            } else {
                line = std::string_view(base + pos_, end - pos_);
            }
            pos_ = end + 1;
            return true;
        }
    }

    /// True when the underlying stream reported an I/O error (as opposed to
    /// a clean end of input).
    bool bad() const { return in_.bad(); }

private:
    static constexpr std::size_t kChunk = 64 * 1024;

    void refill() {
        pos_ = len_ = 0;
        if (eof_) return;
        in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        len_ = static_cast<std::size_t>(in_.gcount());
        if (len_ < buf_.size()) eof_ = true;
    }

    std::istream& in_;
    std::vector<char> buf_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
    std::string carry_;
    bool eof_ = false;
};

std::optional<unsigned long> parse_num(std::string_view v) {
    if (v.empty()) return std::nullopt;
    unsigned long x = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), x);
    if (ec != std::errc() || p != v.data() + v.size()) return std::nullopt;
    return x;
}

/// Split on any of `seps` into reused `out`, dropping empty tokens and
/// trimming each (allocation-free twin of util::split for the hot loop).
void split_into(std::string_view s, std::string_view seps,
                std::vector<std::string_view>& out) {
    out.clear();
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find_first_of(seps, start);
        const std::size_t stop = end == std::string_view::npos ? s.size() : end;
        const std::string_view tok = trim(s.substr(start, stop - start));
        if (!tok.empty()) out.push_back(tok);
        if (end == std::string_view::npos) break;
        start = end + 1;
    }
}

struct PragmaRef {
    NetlistBuilder::Sym sym;
    SeqAttrs attrs;
    std::uint32_t line;
};

/// Parse "#@ seq NAME key[=value] ..." (tokens[0] is "seq").
void parse_seq_pragma(NetlistBuilder& b, std::span<const std::string_view> tokens,
                      std::uint32_t line_no, std::vector<PragmaRef>& pragmas,
                      Diagnostics& diags) {
    if (tokens.size() < 2) {
        diags.error(line_no, "#@ seq pragma without element name");
        return;
    }
    PragmaRef p;
    p.sym = b.intern(tokens[1]);
    p.line = line_no;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string_view tok = tokens[i];
        const auto eq = tok.find('=');
        const std::string_view key = eq == std::string_view::npos ? tok : tok.substr(0, eq);
        const std::string_view val = eq == std::string_view::npos ? "" : tok.substr(eq + 1);
        if (iequals(key, "clock")) {
            const auto n = parse_num(val);
            if (!n || *n > 0xFFFF) {
                diags.error(line_no, "bad clock id '" + std::string(val) + "'");
                return;
            }
            p.attrs.clock_id = static_cast<std::uint16_t>(*n);
        } else if (iequals(key, "phase")) {
            const auto n = parse_num(val);
            if (!n || *n > 0xFF) {
                diags.error(line_no, "bad phase '" + std::string(val) + "'");
                return;
            }
            p.attrs.phase = static_cast<std::uint8_t>(*n);
        } else if (iequals(key, "sr")) {
            if (iequals(val, "none")) p.attrs.set_reset = SetReset::None;
            else if (iequals(val, "set")) p.attrs.set_reset = SetReset::SetOnly;
            else if (iequals(val, "reset")) p.attrs.set_reset = SetReset::ResetOnly;
            else if (iequals(val, "both")) p.attrs.set_reset = SetReset::Both;
            else {
                diags.error(line_no, "bad sr value '" + std::string(val) +
                                         "' (none/set/reset/both)");
                return;
            }
        } else if (iequals(key, "unconstrained")) {
            p.attrs.sr_unconstrained = true;
        } else if (iequals(key, "constrained")) {
            p.attrs.sr_unconstrained = false;
        } else {
            // A misspelled key would silently mis-clock the element —
            // that's corruption, not a tolerable edit, so it is an error
            // (as it was for the legacy throwing reader).
            diags.error(line_no, "unknown seq pragma key '" + std::string(key) + "'");
            return;
        }
    }
    pragmas.push_back(p);
}

}  // namespace

BenchReadResult read_bench_diag(std::istream& in, std::string circuit_name) {
    BenchReadResult res;
    Diagnostics& diags = res.diagnostics;
    NetlistBuilder b(std::move(circuit_name));
    std::vector<PragmaRef> pragmas;
    LineScanner scan(in);
    std::string_view raw;
    std::uint32_t line_no = 0;
    std::vector<std::string_view> tokens;          // reused per line
    std::vector<NetlistBuilder::Sym> arg_syms;     // reused per line
    while (scan.next(raw)) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (line.empty()) continue;
        b.at_line(line_no);
        if (line[0] == '#') {
            const std::string_view body = trim(line.substr(1));
            if (!util::starts_with(body, "@")) continue;  // ordinary comment
            split_into(body.substr(1), " \t", tokens);
            if (tokens.empty()) continue;
            if (iequals(tokens[0], "seq")) {
                parse_seq_pragma(b, tokens, line_no, pragmas, diags);
            } else {
                diags.warning(line_no, "unknown #@ pragma '" + std::string(tokens[0]) +
                                           "'; ignored");
            }
            continue;
        }
        // INPUT(x) / OUTPUT(x) / name = TYPE(args)
        const auto lparen = line.find('(');
        const auto rparen = line.rfind(')');
        if (lparen == std::string_view::npos || rparen == std::string_view::npos ||
            rparen < lparen) {
            diags.error(line_no, "expected '(...)' in: " + std::string(line));
            continue;
        }
        const std::string_view head = trim(line.substr(0, lparen));
        const std::string_view args_sv = line.substr(lparen + 1, rparen - lparen - 1);
        split_into(args_sv, ",", tokens);

        if (iequals(head, "INPUT")) {
            if (tokens.size() != 1) {
                diags.error(line_no, "INPUT takes one signal");
                continue;
            }
            b.input(tokens[0]);
            continue;
        }
        if (iequals(head, "OUTPUT")) {
            if (tokens.size() != 1) {
                diags.error(line_no, "OUTPUT takes one signal");
                continue;
            }
            b.output(tokens[0]);
            continue;
        }
        const auto eq = head.find('=');
        if (eq == std::string_view::npos) {
            diags.error(line_no, "expected 'name = TYPE(...)'");
            continue;
        }
        const std::string_view name = trim(head.substr(0, eq));
        const std::string_view type_tok = trim(head.substr(eq + 1));
        if (name.empty() || type_tok.empty()) {
            diags.error(line_no, "malformed assignment");
            continue;
        }
        GateType type{};
        try {
            type = gate_type_from_string(type_tok);
        } catch (const std::invalid_argument& e) {
            diags.error(line_no, e.what());
            continue;
        }
        // Arity is validated by the builder (tagged with this line via
        // at_line), and keeping the declaration means a bad-arity gate's
        // consumers don't cascade into spurious undeclared-fanin errors.
        if (type == GateType::Const0 || type == GateType::Const1) {
            if (!tokens.empty())
                diags.warning(line_no, "constant takes no arguments; ignored");
            b.constant(name, type == GateType::Const1);
            continue;
        }
        arg_syms.clear();
        for (const std::string_view a : tokens) arg_syms.push_back(b.intern(a));
        const NetlistBuilder::Sym name_sym = b.intern(name);
        if (is_sequential(type)) b.declare_seq(type, name_sym, arg_syms);
        else b.declare_gate(type, name_sym, arg_syms);
    }
    if (scan.bad()) diags.error(line_no, "stream read failure (truncated input?)");

    // build() succeeds or fails on its OWN errors only; a netlist is
    // returned to the caller only when the whole pass (scan + build) was
    // error-free.
    std::optional<Netlist> nl = b.build(diags);
    if (!nl || !diags.ok()) return res;

    for (const PragmaRef& p : pragmas) {
        const GateId id = nl->find(b.spelling(p.sym));
        if (id == kNoGate || !is_sequential(nl->type(id))) {
            diags.warning(p.line, "#@ seq pragma for unknown sequential element '" +
                                      std::string(b.spelling(p.sym)) + "'; ignored");
            continue;
        }
        SeqAttrs attrs = p.attrs;
        attrs.num_ports = nl->seq_attrs(id).num_ports;  // ports come from arity
        nl->seq_attrs(id) = attrs;
    }
    res.netlist = std::move(nl);
    return res;
}

BenchReadResult read_bench_string_diag(std::string_view text, std::string circuit_name) {
    std::istringstream in{std::string(text)};
    return read_bench_diag(in, std::move(circuit_name));
}

Netlist read_bench(std::istream& in, std::string circuit_name) {
    BenchReadResult res = read_bench_diag(in, std::move(circuit_name));
    if (!res.netlist) {
        const Diagnostic* e = res.diagnostics.first_error();
        throw std::runtime_error(e ? "bench:" + std::to_string(e->line) + ": " + e->message
                                   : "bench: parse failed");
    }
    return std::move(*res.netlist);
}

Netlist read_bench_string(std::string_view text, std::string circuit_name) {
    std::istringstream in{std::string(text)};
    return read_bench(in, std::move(circuit_name));
}

void write_bench(std::ostream& out, const Netlist& nl) {
    out << "# " << nl.name() << "\n";
    for (const GateId id : nl.inputs()) out << "INPUT(" << nl.name_of(id) << ")\n";
    for (const GateId id : nl.outputs()) out << "OUTPUT(" << nl.name_of(id) << ")\n";
    for (GateId id = 0; id < nl.size(); ++id) {
        const GateType t = nl.type(id);
        if (t == GateType::Input) continue;
        out << nl.name_of(id) << " = " << to_string(t) << "(";
        bool first = true;
        for (const GateId f : nl.fanins(id)) {
            if (!first) out << ", ";
            out << nl.name_of(f);
            first = false;
        }
        out << ")\n";
    }
    for (const GateId id : nl.seq_elements()) {
        const SeqAttrs& a = nl.seq_attrs(id);
        const SeqAttrs defaults{};
        const bool nondefault = a.clock_id != defaults.clock_id || a.phase != defaults.phase ||
                                a.set_reset != defaults.set_reset ||
                                a.sr_unconstrained != defaults.sr_unconstrained;
        if (!nondefault) continue;
        out << "#@ seq " << nl.name_of(id) << " clock=" << a.clock_id
            << " phase=" << static_cast<int>(a.phase);
        switch (a.set_reset) {
            case SetReset::None: out << " sr=none"; break;
            case SetReset::SetOnly: out << " sr=set"; break;
            case SetReset::ResetOnly: out << " sr=reset"; break;
            case SetReset::Both: out << " sr=both"; break;
        }
        out << (a.sr_unconstrained ? " unconstrained" : " constrained") << "\n";
    }
}

std::string write_bench_string(const Netlist& nl) {
    std::ostringstream out;
    write_bench(out, nl);
    return out.str();
}

}  // namespace seqlearn::netlist
