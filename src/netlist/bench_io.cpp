#include "netlist/bench_io.hpp"

#include "netlist/builder.hpp"
#include "util/strings.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace seqlearn::netlist {

namespace {

using util::iequals;
using util::split;
using util::trim;

struct SeqPragma {
    std::string name;
    SeqAttrs attrs;
};

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
    throw std::runtime_error("bench:" + std::to_string(line_no) + ": " + msg);
}

SeqPragma parse_seq_pragma(std::string_view rest, std::size_t line_no) {
    // rest = "NAME key[=value] ..."
    const auto tokens = split(rest, " \t");
    if (tokens.empty()) fail(line_no, "#@ seq pragma without element name");
    SeqPragma p;
    p.name = std::string(tokens[0]);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string_view tok = tokens[i];
        const auto eq = tok.find('=');
        const std::string_view key = eq == std::string_view::npos ? tok : tok.substr(0, eq);
        const std::string_view val = eq == std::string_view::npos ? "" : tok.substr(eq + 1);
        if (iequals(key, "clock")) {
            p.attrs.clock_id = static_cast<std::uint16_t>(std::stoul(std::string(val)));
        } else if (iequals(key, "phase")) {
            p.attrs.phase = static_cast<std::uint8_t>(std::stoul(std::string(val)));
        } else if (iequals(key, "sr")) {
            if (iequals(val, "none")) p.attrs.set_reset = SetReset::None;
            else if (iequals(val, "set")) p.attrs.set_reset = SetReset::SetOnly;
            else if (iequals(val, "reset")) p.attrs.set_reset = SetReset::ResetOnly;
            else if (iequals(val, "both")) p.attrs.set_reset = SetReset::Both;
            else fail(line_no, "bad sr value (none/set/reset/both)");
        } else if (iequals(key, "unconstrained")) {
            p.attrs.sr_unconstrained = true;
        } else if (iequals(key, "constrained")) {
            p.attrs.sr_unconstrained = false;
        } else {
            fail(line_no, "unknown seq pragma key: " + std::string(key));
        }
    }
    return p;
}

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name) {
    NetlistBuilder b(circuit_name);
    std::vector<SeqPragma> pragmas;
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string_view line = trim(raw);
        if (line.empty()) continue;
        if (line[0] == '#') {
            const std::string_view body = trim(line.substr(1));
            if (util::starts_with(body, "@")) {
                const auto tokens = split(body.substr(1), " \t");
                if (!tokens.empty() && iequals(tokens[0], "seq")) {
                    const auto pos = raw.find(std::string(tokens[0]));
                    pragmas.push_back(
                        parse_seq_pragma(trim(std::string_view(raw).substr(pos + tokens[0].size())),
                                         line_no));
                }
            }
            continue;
        }
        // INPUT(x) / OUTPUT(x) / name = TYPE(args)
        const auto lparen = line.find('(');
        const auto rparen = line.rfind(')');
        if (lparen == std::string_view::npos || rparen == std::string_view::npos ||
            rparen < lparen) {
            fail(line_no, "expected '(...)' in: " + std::string(line));
        }
        const std::string_view head = trim(line.substr(0, lparen));
        const std::string_view args_sv = line.substr(lparen + 1, rparen - lparen - 1);
        const auto args_views = split(args_sv, ",");
        std::vector<std::string> args;
        args.reserve(args_views.size());
        for (const auto a : args_views) args.emplace_back(a);

        if (iequals(head, "INPUT")) {
            if (args.size() != 1) fail(line_no, "INPUT takes one signal");
            b.input(args[0]);
            continue;
        }
        if (iequals(head, "OUTPUT")) {
            if (args.size() != 1) fail(line_no, "OUTPUT takes one signal");
            b.output(args[0]);
            continue;
        }
        const auto eq = head.find('=');
        if (eq == std::string_view::npos) fail(line_no, "expected 'name = TYPE(...)'");
        const std::string name{trim(head.substr(0, eq))};
        const std::string_view type_tok = trim(head.substr(eq + 1));
        if (name.empty() || type_tok.empty()) fail(line_no, "malformed assignment");
        GateType type{};
        try {
            type = gate_type_from_string(type_tok);
        } catch (const std::invalid_argument& e) {
            fail(line_no, e.what());
        }
        if (type == GateType::Dff) {
            if (args.size() != 1) fail(line_no, "DFF takes one data input");
            b.dff(name, args[0]);
        } else if (type == GateType::Dlatch) {
            if (args.empty()) fail(line_no, "DLATCH takes >=1 data input");
            b.dlatch(name, args);
        } else if (type == GateType::Const0 || type == GateType::Const1) {
            b.constant(name, type == GateType::Const1);
        } else {
            b.gate(type, name, args);
        }
    }
    Netlist nl = b.build();
    for (const SeqPragma& p : pragmas) {
        const GateId id = nl.find(p.name);
        if (id == kNoGate)
            throw std::runtime_error("bench: #@ seq pragma for unknown element " + p.name);
        SeqAttrs attrs = p.attrs;
        attrs.num_ports = nl.seq_attrs(id).num_ports;  // ports come from arity
        nl.seq_attrs(id) = attrs;
    }
    return nl;
}

Netlist read_bench_string(std::string_view text, std::string circuit_name) {
    std::istringstream in{std::string(text)};
    return read_bench(in, std::move(circuit_name));
}

void write_bench(std::ostream& out, const Netlist& nl) {
    out << "# " << nl.name() << "\n";
    for (const GateId id : nl.inputs()) out << "INPUT(" << nl.name_of(id) << ")\n";
    for (const GateId id : nl.outputs()) out << "OUTPUT(" << nl.name_of(id) << ")\n";
    for (GateId id = 0; id < nl.size(); ++id) {
        const GateType t = nl.type(id);
        if (t == GateType::Input) continue;
        out << nl.name_of(id) << " = " << to_string(t) << "(";
        bool first = true;
        for (const GateId f : nl.fanins(id)) {
            if (!first) out << ", ";
            out << nl.name_of(f);
            first = false;
        }
        out << ")\n";
    }
    for (const GateId id : nl.seq_elements()) {
        const SeqAttrs& a = nl.seq_attrs(id);
        const SeqAttrs defaults{};
        const bool nondefault = a.clock_id != defaults.clock_id || a.phase != defaults.phase ||
                                a.set_reset != defaults.set_reset ||
                                a.sr_unconstrained != defaults.sr_unconstrained;
        if (!nondefault) continue;
        out << "#@ seq " << nl.name_of(id) << " clock=" << a.clock_id
            << " phase=" << static_cast<int>(a.phase);
        switch (a.set_reset) {
            case SetReset::None: out << " sr=none"; break;
            case SetReset::SetOnly: out << " sr=set"; break;
            case SetReset::ResetOnly: out << " sr=reset"; break;
            case SetReset::Both: out << " sr=both"; break;
        }
        out << (a.sr_unconstrained ? " unconstrained" : " constrained") << "\n";
    }
}

std::string write_bench_string(const Netlist& nl) {
    std::ostringstream out;
    write_bench(out, nl);
    return out.str();
}

}  // namespace seqlearn::netlist
