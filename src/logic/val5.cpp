#include "logic/val5.hpp"

#include <array>

namespace seqlearn::logic {

DVal eval_op(GateOp op, std::span<const DVal> ins) noexcept {
    // Plane-wise evaluation is exact for the pair algebra: the good plane of
    // the output depends only on good planes of inputs, and likewise faulty.
    // Evaluate without materializing per-plane arrays for the common cases.
    switch (op) {
        case GateOp::Const0: return kDZero;
        case GateOp::Const1: return kDOne;
        case GateOp::Buf: return ins.empty() ? kDX : ins[0];
        case GateOp::Not: return ins.empty() ? kDX : dval_not(ins[0]);
        case GateOp::And:
        case GateOp::Nand: {
            DVal acc = kDOne;
            for (const DVal v : ins) {
                acc.good = v3_and(acc.good, v.good);
                acc.faulty = v3_and(acc.faulty, v.faulty);
            }
            return op == GateOp::Nand ? dval_not(acc) : acc;
        }
        case GateOp::Or:
        case GateOp::Nor: {
            DVal acc = kDZero;
            for (const DVal v : ins) {
                acc.good = v3_or(acc.good, v.good);
                acc.faulty = v3_or(acc.faulty, v.faulty);
            }
            return op == GateOp::Nor ? dval_not(acc) : acc;
        }
        case GateOp::Xor:
        case GateOp::Xnor: {
            DVal acc = kDZero;
            for (const DVal v : ins) {
                acc.good = v3_xor(acc.good, v.good);
                acc.faulty = v3_xor(acc.faulty, v.faulty);
            }
            return op == GateOp::Xnor ? dval_not(acc) : acc;
        }
    }
    return kDX;
}

std::string to_string(DVal v) {
    if (v == kDZero) return "0";
    if (v == kDOne) return "1";
    if (v == kDX) return "X";
    if (v == kD) return "D";
    if (v == kDBar) return "D'";
    return std::string{to_char(v.good)} + "/" + to_char(v.faulty);
}

}  // namespace seqlearn::logic
