#pragma once
// Three-valued (Kleene) logic and combinational gate operators.
//
// The learning technique of the paper runs entirely on 3-valued forward
// simulation: a node is 0, 1, or X (unknown). X is "no information", so all
// operators are the standard Kleene extensions: a gate output is binary only
// when the inputs force it regardless of how the Xs are resolved.

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>

namespace seqlearn::logic {

/// A three-valued logic value.
enum class Val3 : std::uint8_t {
    Zero = 0,
    One = 1,
    X = 2,
};

/// Combinational gate operator. The netlist's richer gate-type enum maps onto
/// this for evaluation; sequential elements and ports are not operators.
enum class GateOp : std::uint8_t {
    Const0,
    Const1,
    Buf,
    Not,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
};

/// Kleene negation: !0=1, !1=0, !X=X.
constexpr Val3 v3_not(Val3 a) noexcept {
    return a == Val3::X ? Val3::X : (a == Val3::Zero ? Val3::One : Val3::Zero);
}

/// Kleene conjunction: 0 dominates, X otherwise unless both are 1.
constexpr Val3 v3_and(Val3 a, Val3 b) noexcept {
    if (a == Val3::Zero || b == Val3::Zero) return Val3::Zero;
    if (a == Val3::One && b == Val3::One) return Val3::One;
    return Val3::X;
}

/// Kleene disjunction: 1 dominates, X otherwise unless both are 0.
constexpr Val3 v3_or(Val3 a, Val3 b) noexcept {
    if (a == Val3::One || b == Val3::One) return Val3::One;
    if (a == Val3::Zero && b == Val3::Zero) return Val3::Zero;
    return Val3::X;
}

/// Kleene exclusive-or: binary only when both operands are binary.
constexpr Val3 v3_xor(Val3 a, Val3 b) noexcept {
    if (a == Val3::X || b == Val3::X) return Val3::X;
    return a == b ? Val3::Zero : Val3::One;
}

/// True when `v` is 0 or 1 (not X).
constexpr bool is_binary(Val3 v) noexcept { return v != Val3::X; }

/// The opposite binary value. Precondition: is_binary(v).
constexpr Val3 v3_opposite(Val3 v) noexcept { return v3_not(v); }

/// Evaluate `op` over `ins` under 3-valued semantics.
/// Const0/Const1 ignore inputs; Buf/Not take the first input.
Val3 eval_op(GateOp op, std::span<const Val3> ins) noexcept;

/// Evaluate `op` over `n` operands fetched through `get(i)` — identical
/// semantics to eval_op over a gathered span, without materializing the
/// operands (the simulators read fanin values straight out of their value
/// arrays through a CSR index span).
template <typename GetFn>
    requires std::same_as<std::invoke_result_t<GetFn&, std::size_t>, Val3>
Val3 eval_op_indirect(GateOp op, std::size_t n, GetFn&& get) noexcept {
    switch (op) {
        case GateOp::Const0: return Val3::Zero;
        case GateOp::Const1: return Val3::One;
        case GateOp::Buf: return n == 0 ? Val3::X : get(0);
        case GateOp::Not: return n == 0 ? Val3::X : v3_not(get(0));
        case GateOp::And:
        case GateOp::Nand: {
            Val3 acc = Val3::One;
            for (std::size_t i = 0; i < n; ++i) acc = v3_and(acc, get(i));
            return op == GateOp::Nand ? v3_not(acc) : acc;
        }
        case GateOp::Or:
        case GateOp::Nor: {
            Val3 acc = Val3::Zero;
            for (std::size_t i = 0; i < n; ++i) acc = v3_or(acc, get(i));
            return op == GateOp::Nor ? v3_not(acc) : acc;
        }
        case GateOp::Xor:
        case GateOp::Xnor: {
            Val3 acc = Val3::Zero;
            for (std::size_t i = 0; i < n; ++i) acc = v3_xor(acc, get(i));
            return op == GateOp::Xnor ? v3_not(acc) : acc;
        }
    }
    return Val3::X;
}

/// The controlling value of `op` (the input value that determines the output
/// by itself), or X when the operator has none (Buf/Not/Xor/Xnor/consts).
constexpr Val3 controlling_value(GateOp op) noexcept {
    switch (op) {
        case GateOp::And:
        case GateOp::Nand: return Val3::Zero;
        case GateOp::Or:
        case GateOp::Nor: return Val3::One;
        default: return Val3::X;
    }
}

/// Output inversion parity of `op`: true for Not/Nand/Nor/Xnor.
constexpr bool output_inverted(GateOp op) noexcept {
    switch (op) {
        case GateOp::Not:
        case GateOp::Nand:
        case GateOp::Nor:
        case GateOp::Xnor: return true;
        default: return false;
    }
}

/// Non-controlled output: the value the gate produces when no input carries
/// the controlling value and all are binary (e.g. And -> 1, Nor -> 0).
constexpr Val3 noncontrolled_output(GateOp op) noexcept {
    switch (op) {
        case GateOp::And: return Val3::One;
        case GateOp::Nand: return Val3::Zero;
        case GateOp::Or: return Val3::Zero;
        case GateOp::Nor: return Val3::One;
        default: return Val3::X;
    }
}

/// '0', '1', or 'X'.
char to_char(Val3 v) noexcept;

/// Parse '0'/'1'/'x'/'X'; anything else throws std::invalid_argument.
Val3 val3_from_char(char c);

/// Human-readable operator name ("AND", "NOR", ...).
std::string to_string(GateOp op);

}  // namespace seqlearn::logic
