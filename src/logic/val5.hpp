#pragma once
// Composite good/faulty logic for test generation.
//
// A DVal carries the value of a line in the fault-free circuit (good plane)
// and in the faulty circuit (faulty plane), each three-valued. This is
// Muth's nine-valued algebra; the classic five-valued D-calculus constants
// (0, 1, X, D, D̄) are the subset with equal-or-fault-effect planes. Using
// the full pair representation keeps sequential (multi-frame) implications
// sound: a line may be known in one plane and unknown in the other.

#include "logic/val3.hpp"

#include <string>

namespace seqlearn::logic {

/// Good/faulty value pair for one circuit line.
struct DVal {
    Val3 good = Val3::X;
    Val3 faulty = Val3::X;

    constexpr bool operator==(const DVal&) const noexcept = default;
};

inline constexpr DVal kDZero{Val3::Zero, Val3::Zero};
inline constexpr DVal kDOne{Val3::One, Val3::One};
inline constexpr DVal kDX{Val3::X, Val3::X};
/// D: good 1, faulty 0.
inline constexpr DVal kD{Val3::One, Val3::Zero};
/// D̄: good 0, faulty 1.
inline constexpr DVal kDBar{Val3::Zero, Val3::One};

/// True when both planes carry binary values.
constexpr bool fully_known(DVal v) noexcept {
    return is_binary(v.good) && is_binary(v.faulty);
}

/// True when the value is a fault effect (planes are binary and differ).
constexpr bool is_fault_effect(DVal v) noexcept {
    return fully_known(v) && v.good != v.faulty;
}

/// True when both planes agree on the same binary value.
constexpr bool is_binary_equal(DVal v) noexcept {
    return fully_known(v) && v.good == v.faulty;
}

constexpr DVal dval_not(DVal a) noexcept { return {v3_not(a.good), v3_not(a.faulty)}; }

/// Evaluate `op` plane-wise over `ins`.
DVal eval_op(GateOp op, std::span<const DVal> ins) noexcept;

/// "0", "1", "X", "D", "D'", or "g/f" for mixed-knowledge values.
std::string to_string(DVal v);

}  // namespace seqlearn::logic
