#pragma once
// 64-wide bit-parallel three-valued patterns.
//
// Two-plane encoding per lane: (ones bit, zeros bit) =
//   (1,0) -> 1,  (0,1) -> 0,  (0,0) -> X.  (1,1) never occurs.
// Used by the parallel-pattern simulator for gate-equivalence candidate
// signatures and by the 64-fault-parallel fault simulator.

#include "logic/val3.hpp"

#include <concepts>
#include <cstdint>
#include <type_traits>

namespace seqlearn::logic {

/// 64 three-valued lanes.
struct Pattern {
    std::uint64_t ones = 0;
    std::uint64_t zeros = 0;

    constexpr bool operator==(const Pattern&) const noexcept = default;
};

inline constexpr Pattern kPatAllX{0, 0};
inline constexpr Pattern kPatAllZero{0, ~0ULL};
inline constexpr Pattern kPatAllOne{~0ULL, 0};

constexpr Pattern pat_not(Pattern a) noexcept { return {a.zeros, a.ones}; }

constexpr Pattern pat_and(Pattern a, Pattern b) noexcept {
    return {a.ones & b.ones, a.zeros | b.zeros};
}

constexpr Pattern pat_or(Pattern a, Pattern b) noexcept {
    return {a.ones | b.ones, a.zeros & b.zeros};
}

constexpr Pattern pat_xor(Pattern a, Pattern b) noexcept {
    return {(a.ones & b.zeros) | (a.zeros & b.ones),
            (a.ones & b.ones) | (a.zeros & b.zeros)};
}

/// Lanes where the value is binary (not X).
constexpr std::uint64_t pat_known(Pattern a) noexcept { return a.ones | a.zeros; }

/// Lanes where `a` and `b` are both binary and differ.
constexpr std::uint64_t pat_diff(Pattern a, Pattern b) noexcept {
    return (a.ones & b.zeros) | (a.zeros & b.ones);
}

/// Set lane `lane` (0..63) to `v`.
constexpr void pat_set(Pattern& p, int lane, Val3 v) noexcept {
    const std::uint64_t bit = 1ULL << lane;
    p.ones &= ~bit;
    p.zeros &= ~bit;
    if (v == Val3::One) p.ones |= bit;
    else if (v == Val3::Zero) p.zeros |= bit;
}

/// Read lane `lane` (0..63).
constexpr Val3 pat_get(Pattern p, int lane) noexcept {
    const std::uint64_t bit = 1ULL << lane;
    if (p.ones & bit) return Val3::One;
    if (p.zeros & bit) return Val3::Zero;
    return Val3::X;
}

/// Broadcast one scalar value to all 64 lanes.
constexpr Pattern pat_broadcast(Val3 v) noexcept {
    switch (v) {
        case Val3::Zero: return kPatAllZero;
        case Val3::One: return kPatAllOne;
        case Val3::X: return kPatAllX;
    }
    return kPatAllX;
}

/// Evaluate a gate operator over patterns (same semantics as the scalar
/// eval_op applied lane-wise).
Pattern eval_op(GateOp op, const Pattern* ins, int n_ins) noexcept;

/// Pattern twin of logic::eval_op_indirect: evaluate `op` over `n` operands
/// fetched through `get(i)`, without gathering them into a buffer first.
template <typename GetFn>
    requires std::same_as<std::invoke_result_t<GetFn&, std::size_t>, Pattern>
Pattern eval_op_indirect(GateOp op, std::size_t n, GetFn&& get) noexcept {
    switch (op) {
        case GateOp::Const0: return kPatAllZero;
        case GateOp::Const1: return kPatAllOne;
        case GateOp::Buf: return n == 0 ? kPatAllX : get(0);
        case GateOp::Not: return n == 0 ? kPatAllX : pat_not(get(0));
        case GateOp::And:
        case GateOp::Nand: {
            Pattern acc = kPatAllOne;
            for (std::size_t i = 0; i < n; ++i) acc = pat_and(acc, get(i));
            return op == GateOp::Nand ? pat_not(acc) : acc;
        }
        case GateOp::Or:
        case GateOp::Nor: {
            Pattern acc = kPatAllZero;
            for (std::size_t i = 0; i < n; ++i) acc = pat_or(acc, get(i));
            return op == GateOp::Nor ? pat_not(acc) : acc;
        }
        case GateOp::Xor:
        case GateOp::Xnor: {
            Pattern acc = kPatAllZero;
            for (std::size_t i = 0; i < n; ++i) acc = pat_xor(acc, get(i));
            return op == GateOp::Xnor ? pat_not(acc) : acc;
        }
    }
    return kPatAllX;
}

}  // namespace seqlearn::logic
