#include "logic/val3.hpp"

#include <stdexcept>

namespace seqlearn::logic {

Val3 eval_op(GateOp op, std::span<const Val3> ins) noexcept {
    return eval_op_indirect(op, ins.size(), [&](std::size_t i) { return ins[i]; });
}

char to_char(Val3 v) noexcept {
    switch (v) {
        case Val3::Zero: return '0';
        case Val3::One: return '1';
        case Val3::X: return 'X';
    }
    return '?';
}

Val3 val3_from_char(char c) {
    switch (c) {
        case '0': return Val3::Zero;
        case '1': return Val3::One;
        case 'x':
        case 'X': return Val3::X;
        default: throw std::invalid_argument("val3_from_char: expected 0/1/X");
    }
}

std::string to_string(GateOp op) {
    switch (op) {
        case GateOp::Const0: return "CONST0";
        case GateOp::Const1: return "CONST1";
        case GateOp::Buf: return "BUF";
        case GateOp::Not: return "NOT";
        case GateOp::And: return "AND";
        case GateOp::Nand: return "NAND";
        case GateOp::Or: return "OR";
        case GateOp::Nor: return "NOR";
        case GateOp::Xor: return "XOR";
        case GateOp::Xnor: return "XNOR";
    }
    return "?";
}

}  // namespace seqlearn::logic
