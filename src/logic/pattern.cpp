#include "logic/pattern.hpp"

namespace seqlearn::logic {

Pattern eval_op(GateOp op, const Pattern* ins, int n_ins) noexcept {
    switch (op) {
        case GateOp::Const0: return kPatAllZero;
        case GateOp::Const1: return kPatAllOne;
        case GateOp::Buf: return n_ins == 0 ? kPatAllX : ins[0];
        case GateOp::Not: return n_ins == 0 ? kPatAllX : pat_not(ins[0]);
        case GateOp::And:
        case GateOp::Nand: {
            Pattern acc = kPatAllOne;
            for (int i = 0; i < n_ins; ++i) acc = pat_and(acc, ins[i]);
            return op == GateOp::Nand ? pat_not(acc) : acc;
        }
        case GateOp::Or:
        case GateOp::Nor: {
            Pattern acc = kPatAllZero;
            for (int i = 0; i < n_ins; ++i) acc = pat_or(acc, ins[i]);
            return op == GateOp::Nor ? pat_not(acc) : acc;
        }
        case GateOp::Xor:
        case GateOp::Xnor: {
            Pattern acc = kPatAllZero;
            for (int i = 0; i < n_ins; ++i) acc = pat_xor(acc, ins[i]);
            return op == GateOp::Xnor ? pat_not(acc) : acc;
        }
    }
    return kPatAllX;
}

}  // namespace seqlearn::logic
