#include "logic/pattern.hpp"

namespace seqlearn::logic {

Pattern eval_op(GateOp op, const Pattern* ins, int n_ins) noexcept {
    return eval_op_indirect(op, static_cast<std::size_t>(n_ins),
                            [&](std::size_t i) { return ins[i]; });
}

}  // namespace seqlearn::logic
