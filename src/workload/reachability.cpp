#include "workload/reachability.hpp"

#include "sim/comb_engine.hpp"

#include <stdexcept>

namespace seqlearn::workload {

using logic::Val3;
using netlist::Netlist;

std::vector<bool> image_set(const Netlist& nl, std::size_t depth, std::size_t max_ffs) {
    const auto seq = nl.seq_elements();
    const auto inputs = nl.inputs();
    const std::size_t k = seq.size();
    if (k > max_ffs) throw std::invalid_argument("image_set: too many sequential elements");
    if (inputs.size() > 16) throw std::invalid_argument("image_set: too many inputs");
    const sim::CombEngine engine(nl);
    const std::uint64_t n_states = 1ULL << k;
    const std::uint64_t n_inputs = 1ULL << inputs.size();

    auto step = [&](std::uint64_t s, std::uint64_t u) {
        std::vector<Val3> vals(nl.size(), Val3::X);
        for (std::size_t i = 0; i < k; ++i)
            vals[seq[i]] = (s >> i) & 1 ? Val3::One : Val3::Zero;
        for (std::size_t i = 0; i < inputs.size(); ++i)
            vals[inputs[i]] = (u >> i) & 1 ? Val3::One : Val3::Zero;
        engine.eval(vals);
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < k; ++i) {
            if (vals[nl.fanins(seq[i])[0]] == Val3::One) next |= 1ULL << i;
        }
        return next;
    };

    std::vector<bool> current(n_states, true);
    for (std::size_t d = 0; d < depth; ++d) {
        std::vector<bool> next(n_states, false);
        for (std::uint64_t s = 0; s < n_states; ++s) {
            if (!current[s]) continue;
            for (std::uint64_t u = 0; u < n_inputs; ++u) next[step(s, u)] = true;
        }
        if (next == current) break;
        current = std::move(next);
    }
    return current;
}

std::uint64_t count_states(const std::vector<bool>& set) {
    std::uint64_t n = 0;
    for (const bool b : set) n += b;
    return n;
}

}  // namespace seqlearn::workload
