#include "workload/fires.hpp"

#include "logic/val3.hpp"
#include "netlist/levelize.hpp"

#include <algorithm>

namespace seqlearn::workload {

using logic::GateOp;
using logic::Val3;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Single-frame implication box: forward evaluation plus unique backward
// implications to a fixpoint, free state (sequential outputs unassigned),
// three-valued.
class ImplyBox {
public:
    explicit ImplyBox(const Netlist& nl) : nl_(&nl), lv_(netlist::levelize(nl)) {}

    // Assert `g = v` and return all implied values (empty-on-conflict with
    // `ok=false`). Values indexed by gate; X = unknown.
    bool run(GateId g, Val3 v, std::vector<Val3>& val) {
        val.assign(nl_->size(), Val3::X);
        ok_ = true;
        // Constants are facts.
        for (GateId id = 0; id < nl_->size(); ++id) {
            if (nl_->type(id) == GateType::Const0) assign(val, id, Val3::Zero);
            if (nl_->type(id) == GateType::Const1) assign(val, id, Val3::One);
        }
        assign(val, g, v);
        while (ok_ && !work_.empty()) {
            const GateId u = work_.back();
            work_.pop_back();
            // Forward into consumers.
            for (const GateId h : nl_->fanouts(u)) {
                if (!comb(h)) continue;
                const Val3 out = eval(val, h);
                if (out != Val3::X) assign(val, h, out);
                backward(val, h);
                if (!ok_) return false;
            }
            backward(val, u);
            if (!ok_) return false;
        }
        return ok_;
    }

private:
    bool comb(GateId h) const {
        const GateType t = nl_->type(h);
        return netlist::is_combinational(t) && t != GateType::Const0 && t != GateType::Const1;
    }

    Val3 eval(const std::vector<Val3>& val, GateId h) const {
        ins_.clear();
        for (const GateId f : nl_->fanins(h)) ins_.push_back(val[f]);
        return logic::eval_op(netlist::to_op(nl_->type(h)), ins_);
    }

    void assign(std::vector<Val3>& val, GateId g, Val3 v) {
        if (val[g] == v) return;
        if (val[g] != Val3::X) {
            ok_ = false;
            return;
        }
        val[g] = v;
        work_.push_back(g);
    }

    void backward(std::vector<Val3>& val, GateId h) {
        if (!comb(h) || val[h] == Val3::X) return;
        const GateOp op = netlist::to_op(nl_->type(h));
        const auto fanins = nl_->fanins(h);
        if (op == GateOp::Buf || op == GateOp::Not) {
            assign(val, fanins[0], op == GateOp::Not ? logic::v3_not(val[h]) : val[h]);
            return;
        }
        const Val3 ctrl = logic::controlling_value(op);
        if (ctrl == Val3::X) {
            // XOR family: all-but-one known determines the last.
            std::size_t unknown = fanins.size();
            Val3 acc = Val3::Zero;
            for (std::size_t i = 0; i < fanins.size(); ++i) {
                if (val[fanins[i]] == Val3::X) {
                    if (unknown != fanins.size()) return;
                    unknown = i;
                } else {
                    acc = logic::v3_xor(acc, val[fanins[i]]);
                }
            }
            if (unknown == fanins.size()) return;
            Val3 need = logic::v3_xor(val[h], acc);
            if (op == GateOp::Xnor) need = logic::v3_not(need);
            assign(val, fanins[unknown], need);
            return;
        }
        const Val3 nco = logic::noncontrolled_output(op);
        if (val[h] == nco) {
            for (const GateId f : fanins) assign(val, f, logic::v3_not(ctrl));
        } else {
            std::size_t unknown = fanins.size();
            for (std::size_t i = 0; i < fanins.size(); ++i) {
                if (val[fanins[i]] == ctrl) return;
                if (val[fanins[i]] == Val3::X) {
                    if (unknown != fanins.size()) return;
                    unknown = i;
                }
            }
            if (unknown != fanins.size()) assign(val, fanins[unknown], ctrl);
        }
    }

    const Netlist* nl_;
    netlist::Levelization lv_;
    std::vector<GateId> work_;
    mutable std::vector<Val3> ins_;
    bool ok_ = true;
};

}  // namespace

FiresResult fires_untestable(const Netlist& nl, std::span<const fault::Fault> universe) {
    FiresResult out;
    ImplyBox box(nl);
    std::vector<Val3> val0, val1;

    // undetectable_mask[v][fault index] for the current stem.
    std::vector<bool> accumulated(universe.size(), false);

    // Only the *excitation* half of FIRE is applied: a fault is undetectable
    // under s=v when its line is implied to the stuck value (it can never be
    // excited in a frame where s=v). The propagation-blocking half of the
    // published algorithm is unsound without per-fault reconvergence
    // analysis — a "blocking" side input inside the fault's cone can itself
    // carry the effect — so this implementation deliberately omits it and
    // reports conservatively fewer untestable faults (see EXPERIMENTS.md).
    auto undetectable_under = [&](const std::vector<Val3>& val,
                                  std::vector<bool>& mask) {
        for (std::size_t i = 0; i < universe.size(); ++i) {
            const fault::Fault& f = universe[i];
            const GateId line =
                f.pin == fault::kOutputPin ? f.gate : nl.fanins(f.gate)[f.pin];
            mask[i] = val[line] == f.stuck;
        }
    };

    for (const GateId stem : nl.stems()) {
        ++out.stems_analyzed;
        const bool ok0 = box.run(stem, Val3::Zero, val0);
        const bool ok1 = box.run(stem, Val3::One, val1);
        if (!ok0 && !ok1) continue;  // degenerate circuit; no claim
        std::vector<bool> m0(universe.size(), true), m1(universe.size(), true);
        // A conflicting assertion means the stem cannot take that value at
        // all: every fault is "undetectable under" it vacuously, so the
        // other side alone decides.
        if (ok0) undetectable_under(val0, m0);
        if (ok1) undetectable_under(val1, m1);
        for (std::size_t i = 0; i < universe.size(); ++i) {
            if (m0[i] && m1[i]) accumulated[i] = true;
        }
    }
    for (std::size_t i = 0; i < universe.size(); ++i) {
        if (accumulated[i]) out.untestable.push_back(universe[i]);
    }
    return out;
}

}  // namespace seqlearn::workload
