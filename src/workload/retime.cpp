#include "workload/retime.hpp"

#include "netlist/builder.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace seqlearn::workload {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Mutable "declaration soup" the transform edits by name.
struct Soup {
    struct Node {
        GateType type;
        std::vector<std::string> fanins;
        netlist::SeqAttrs attrs{};
    };
    std::map<std::string, Node> nodes;
    std::vector<std::string> outputs;
    std::string name;

    static Soup from(const Netlist& nl) {
        Soup s;
        s.name = nl.name();
        for (GateId id = 0; id < nl.size(); ++id) {
            Soup::Node node;
            node.type = nl.type(id);
            for (const GateId f : nl.fanins(id)) node.fanins.push_back(nl.name_of(f));
            if (netlist::is_sequential(node.type)) node.attrs = nl.seq_attrs(id);
            s.nodes.emplace(nl.name_of(id), std::move(node));
        }
        for (const GateId o : nl.outputs()) s.outputs.push_back(nl.name_of(o));
        return s;
    }

    Netlist build() const {
        netlist::NetlistBuilder b(name);
        for (const auto& [n, node] : nodes) {
            switch (node.type) {
                case GateType::Input: b.input(n); break;
                case GateType::Const0: b.constant(n, false); break;
                case GateType::Const1: b.constant(n, true); break;
                case GateType::Dff: b.dff(n, node.fanins[0], node.attrs); break;
                case GateType::Dlatch: b.dlatch(n, node.fanins, node.attrs); break;
                default: b.gate(node.type, n, node.fanins); break;
            }
        }
        for (const auto& o : outputs) b.output(o);
        return b.build();
    }

    std::size_t fanout_count(const std::string& sig) const {
        std::size_t n = 0;
        for (const auto& [name2, node] : nodes) {
            n += static_cast<std::size_t>(
                std::count(node.fanins.begin(), node.fanins.end(), sig));
        }
        n += static_cast<std::size_t>(std::count(outputs.begin(), outputs.end(), sig));
        return n;
    }
};

}  // namespace

Netlist forward_retime(const Netlist& nl, std::size_t max_moves, std::uint64_t seed,
                       RetimeStats* stats) {
    util::Rng rng(seed);
    Soup soup = Soup::from(nl);
    soup.name = nl.name() + "_rt";
    std::size_t fresh = 0;
    std::size_t moves = 0;

    for (std::size_t attempt = 0; attempt < max_moves * 8 && moves < max_moves; ++attempt) {
        // Eligible: a plain DFF whose D is a single-fanout combinational
        // gate with at least two inputs (pushing through an inverter just
        // renames state; through a 2+-input gate it *duplicates* state).
        std::vector<std::string> candidates;
        for (const auto& [n, node] : soup.nodes) {
            if (node.type != GateType::Dff) continue;
            if (node.attrs.set_reset != netlist::SetReset::None) continue;
            const auto it = soup.nodes.find(node.fanins[0]);
            if (it == soup.nodes.end()) continue;
            const Soup::Node& g = it->second;
            if (!netlist::is_combinational(g.type) || g.type == GateType::Const0 ||
                g.type == GateType::Const1) {
                continue;
            }
            if (g.fanins.size() < 2) continue;
            if (soup.fanout_count(node.fanins[0]) != 1) continue;
            candidates.push_back(n);
        }
        if (candidates.empty()) break;
        const std::string ff = candidates[rng.below(candidates.size())];
        const std::string gate = soup.nodes.at(ff).fanins[0];
        const Soup::Node g = soup.nodes.at(gate);
        const netlist::SeqAttrs attrs = soup.nodes.at(ff).attrs;

        // One new register per gate input (deliberately not shared even if
        // an equal register exists — the redundancy is the point).
        std::vector<std::string> regs;
        for (const std::string& src : g.fanins) {
            const std::string r = util::format("rt%zu", fresh++);
            soup.nodes.emplace(r, Soup::Node{GateType::Dff, {src}, attrs});
            regs.push_back(r);
        }
        // The FF becomes the combinational gate over the new registers; the
        // old gate disappears (its only fanout was the FF).
        soup.nodes[ff] = Soup::Node{g.type, regs, {}};
        soup.nodes.erase(gate);
        ++moves;
    }

    if (stats != nullptr) {
        stats->moves_applied = moves;
        stats->registers_before = nl.seq_elements().size();
        std::size_t after = 0;
        for (const auto& [n, node] : soup.nodes)
            after += netlist::is_sequential(node.type) ? 1 : 0;
        stats->registers_after = after;
    }
    return soup.build();
}

}  // namespace seqlearn::workload
