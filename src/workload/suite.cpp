#include "workload/suite.hpp"

#include "workload/circuit_gen.hpp"
#include "workload/paper_circuits.hpp"
#include "workload/retime.hpp"

#include <stdexcept>

namespace seqlearn::workload {

using netlist::Netlist;

namespace {

// A small FSM-flavoured base circuit for the retimed family: dense state
// feedback, moderate logic, every FF observable.
Netlist retime_base(std::string name, std::size_t n_ffs, std::size_t n_gates,
                    std::uint64_t seed) {
    GenParams p;
    p.name = std::move(name);
    p.seed = seed;
    p.n_inputs = 5;
    p.n_outputs = 6;
    p.n_ffs = n_ffs;
    p.n_gates = n_gates;
    p.locality = 0.8;
    p.shadow_ff_fraction = 0.0;  // redundancy comes from retiming instead
    p.xor_fraction = 0.05;
    return generate(p);
}

Netlist industrial(std::string name, std::size_t n_ffs, std::size_t n_gates,
                   std::uint64_t seed) {
    GenParams p = iscas_like(std::move(name), n_ffs, n_gates, seed);
    p.clock_domains = 3;
    p.latch_fraction = 0.05;
    p.sr_fraction = 0.10;
    return generate(p);
}

}  // namespace

Netlist suite_circuit(const std::string& name) {
    if (name == "s27") return s27();
    if (name == "fig1x") return fig1_analog();
    if (name == "fig2x") return fig2_analog();

    // Generator circuits calibrated to the paper's Table 3 (FFs, gates).
    if (name == "gen382") return generate(iscas_like(name, 21, 158, 382));
    if (name == "gen400") return generate(iscas_like(name, 21, 164, 400));
    if (name == "gen641") return generate(iscas_like(name, 19, 377, 641));
    if (name == "gen953") return generate(iscas_like(name, 29, 424, 953));
    if (name == "gen1269") return generate(iscas_like(name, 37, 569, 1269));
    if (name == "gen1423") return generate(iscas_like(name, 74, 657, 1423));
    if (name == "gen3330") return generate(iscas_like(name, 132, 1789, 3330));
    if (name == "gen3384") return generate(iscas_like(name, 183, 1685, 3384));
    if (name == "gen4863") return generate(iscas_like(name, 104, 2342, 4863));
    if (name == "gen5378") return generate(iscas_like(name, 179, 2779, 5378));
    if (name == "gen6669") return generate(iscas_like(name, 239, 3080, 6669));
    if (name == "gen9234") return generate(iscas_like(name, 228, 5597, 9234));
    if (name == "gen13207") return generate(iscas_like(name, 638, 7951, 13207));
    if (name == "gen15850") return generate(iscas_like(name, 597, 9772, 15850));
    if (name == "gen38417") return generate(iscas_like(name, 1636, 22179, 38417));
    if (name == "gen38584") return generate(iscas_like(name, 1452, 19253, 38584));

    // Retimed family: forward-retime FSM-ish bases until the register count
    // roughly doubles, mirroring the paper's retimed circuits.
    if (name == "rt510a") return forward_retime(retime_base("rt510a", 13, 150, 510), 8, 1);
    if (name == "rt510b") return forward_retime(retime_base("rt510b", 14, 150, 511), 8, 2);
    if (name == "rt832") return forward_retime(retime_base("rt832", 14, 120, 832), 8, 3);
    if (name == "rtscf") return forward_retime(retime_base("rtscf", 10, 500, 901), 6, 4);

    // Industrial stand-ins: multiple clock domains, latches, partial
    // set/reset.
    if (name == "ind20k") return industrial(name, 460, 8693, 20001);
    if (name == "ind60k") return industrial(name, 7068, 63156, 20002);
    if (name == "ind250k") return industrial(name, 6000, 250000, 20003);

    throw std::invalid_argument("suite_circuit: unknown circuit " + name);
}

std::vector<std::string> table3_names() {
    return {"s27",     "fig1x",   "fig2x",   "gen382",   "gen400",   "gen641",
            "gen953",  "gen1269", "gen1423", "gen3330",  "gen3384",  "gen4863",
            "gen5378", "gen6669", "gen9234", "gen13207", "gen15850", "gen38417",
            "gen38584", "rt510a", "rt510b",  "rt832",    "rtscf",    "ind20k",
            "ind60k",  "ind250k"};
}

std::vector<std::string> table4_names() {
    // The 20k-gate pair is exercised by Table 3 (learning capacity); the
    // untestable-fault comparison carries on the mid-size set.
    return {"gen3330", "gen5378", "gen9234", "gen13207", "gen15850", "rt510a", "rt832"};
}

std::vector<std::string> table5_names() {
    // The ATPG-hard subset. Mid-size generator circuits plus the retimed
    // family; the multi-thousand-gate circuits are exercised by Table 3
    // (learning scales there) but are kept out of the ATPG bench to hold
    // its runtime to minutes.
    return {"gen953", "gen1269", "gen1423", "rt510a", "rt510b", "rt832", "rtscf"};
}

}  // namespace seqlearn::workload
