#pragma once
// Embedded circuits: ISCAS-89 s27 (exact) and reconstructions of the
// paper's Figure 1 and Figure 2 example circuits.
//
// The paper's figures are not fully specified by the text (gate functions
// are not enumerated), so fig1_analog/fig2_analog are *mechanism analogs*:
// they are built to exhibit, with the same node naming style, every
// phenomenon the figures illustrate — see each function's contract. The
// Table 1/Table 2 bench regenerates the paper's tables on fig1_analog.

#include "netlist/netlist.hpp"

namespace seqlearn::workload {

/// The ISCAS-89 s27 benchmark (public domain), exactly as distributed.
netlist::Netlist s27();

/// Figure-1 analog. Phenomena exercised (paper Section 3.1-3.2):
///  - a combinationally tied gate (G3) learned because both values of a
///    stem imply the same value at frame 0;
///  - FF-FF invalid-state relations from single-node learning;
///  - additional relations only multiple-node learning extracts;
///  - additional relations only the gate-equivalence assist enables
///    (a reconvergent XOR pair G2/G4 equivalent to a plain signal);
///  - a sequentially tied gate (G15) proven by a multiple-node conflict.
netlist::Netlist fig1_analog();

/// Figure-2 analog, faithful to the paper's worked example: stems I2 and I3
/// each imply G9=1 one frame later, so G9=0 implies I2=1 and I3=1 in the
/// previous frame, which forces F2=0 — the relation G9=0 => F2=0 that no
/// single-stem (or inject-on-G9) technique can learn. G6/G7 are the AND
/// decision nodes of the paper's Section-4 discussion.
netlist::Netlist fig2_analog();

}  // namespace seqlearn::workload
