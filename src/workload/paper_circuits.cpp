#include "workload/paper_circuits.hpp"

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"

namespace seqlearn::workload {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;

Netlist s27() {
    // Exact ISCAS-89 netlist.
    constexpr const char* text = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
    return netlist::read_bench_string(text, "s27");
}

Netlist fig1_analog() {
    NetlistBuilder b("fig1_analog");
    b.input("I1").input("I2").input("I3").input("I4").input("I5");

    // Combinational tie: G3 = AND(I1, NOT I1) == 0, learned from stem I1.
    b.gate(GateType::Not, "G1", {"I1"});
    b.gate(GateType::And, "G3", {"I1", "G1"});

    // Multiple-node cluster (paper Figure-2 mechanism folded into Figure 1):
    // F1 = DFF(!I2), F2 = DFF(NAND(I2,I3)), F3 = DFF(!I3);
    // G8 = OR(AND(F1,F2), AND(F2,F3)): G8=0 => F1=F2=F3=0 one frame on,
    // learnable only by multiple-node injection of I2=1 and I3=1 together.
    b.gate(GateType::Not, "G10", {"I2"});
    b.gate(GateType::Nand, "G9", {"I2", "I3"});
    b.gate(GateType::Not, "G13", {"I3"});
    b.dff("F1", "G10");
    b.dff("F2", "G9");
    b.dff("F3", "G13");
    b.gate(GateType::And, "G6", {"F1", "F2"});
    b.gate(GateType::And, "G7", {"F2", "F3"});
    b.gate(GateType::Or, "G8", {"G6", "G7"});

    // Gate-equivalence assist: G4 = XOR(I5, XOR(I5, I4)) == I4, invisible to
    // plain 3-valued simulation. F4 tracks I4, F5 tracks G4; their relations
    // appear only when the equivalence is exploited.
    b.gate(GateType::Xor, "G2", {"I5", "I4"});
    b.gate(GateType::Xor, "G4", {"I5", "G2"});
    b.dff("F4", "I4");
    b.dff("F5", "G4");

    // Single-node invalid-state relation: F4=1 => F6=1 one frame on
    // (both follow from I4=1; G5 = OR(I4, F3) feeds F6).
    b.gate(GateType::Or, "G5", {"I4", "F3"});
    b.dff("F6", "G5");

    // Sequentially tied gate via multiple-node conflict: G15 = AND(F4, !F6',
    // F7) with F6' = DFF(AND(I4, !I5)) and F7 = DFF(!I5): G15=1 would need
    // I4=1, I5=0 and AND(I4,!I5)=0 in the same earlier frame — impossible,
    // but no single stem sees it. (F6 above plays a different role; the
    // tie cluster uses its own register F7 plus G12's register F8.)
    b.gate(GateType::Not, "G11", {"I5"});
    b.gate(GateType::And, "G12", {"I4", "G11"});
    b.dff("F7", "G11");
    b.dff("F8", "G12");
    b.gate(GateType::Not, "G14", {"F8"});
    b.gate(GateType::And, "G15", {"F4", "G14", "F7"});

    b.output("G15").output("G8").output("F5").output("F6").output("G3");
    return b.build();
}

Netlist fig2_analog() {
    NetlistBuilder b("fig2_analog");
    b.input("I1").input("I2").input("I3");
    b.gate(GateType::Not, "G1", {"I2"});
    b.gate(GateType::Nand, "G3", {"I2", "I3"});
    b.gate(GateType::Not, "G2", {"I3"});
    b.dff("F1", "G1");
    b.dff("F2", "G3");
    b.dff("F3", "G2");
    // The Section-4 decision nodes: justifying G6=0 offers F1=0 or F2=0;
    // justifying G7=0 offers F2=0 or F3=0. The learned relation
    // G9=0 => F2=0 collapses both decisions.
    b.gate(GateType::And, "G6", {"F1", "F2"});
    b.gate(GateType::And, "G7", {"F2", "F3"});
    b.gate(GateType::Or, "G9", {"G6", "G7"});
    b.gate(GateType::And, "G5", {"G9", "I1"});
    b.output("G5").output("G9");
    return b.build();
}

}  // namespace seqlearn::workload
