#pragma once
// Synthetic sequential circuit generation.
//
// Public ISCAS-89 netlists beyond s27 are not shipped with this repository,
// so the experiment suite uses generator circuits calibrated to the paper's
// (FF, gate) sizes. The generator produces ISCAS-like structure — random
// mixed-type combinational logic with locality-biased (reconvergent)
// wiring, state feedback through flip-flops — plus the ingredients the
// learning technique feeds on: shadow registers (duplicated or derived
// state bits that create invalid states) and optional multi-clock, latch,
// and partial set/reset decoration to exercise the Section-3.3 rules.

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

#include <string>

namespace seqlearn::workload {

struct GenParams {
    std::string name = "gen";
    std::uint64_t seed = 1;
    std::size_t n_inputs = 8;
    std::size_t n_outputs = 8;
    /// Primary flip-flops (before shadows).
    std::size_t n_ffs = 16;
    /// Combinational gates.
    std::size_t n_gates = 100;
    /// Fraction of XOR/XNOR gates (they resist learning, as in real logic).
    double xor_fraction = 0.08;
    /// Fraction of 3-input gates.
    double wide_fraction = 0.25;
    /// Wiring locality in (0,1): higher = more reconvergence.
    double locality = 0.75;
    /// Probability an FF's D input comes from a gate (vs a primary input).
    double ff_from_gate = 0.9;
    /// Fraction of FF data inputs routed through an XOR with a primary
    /// input. Purely random feedback logic tends to collapse into absorbing
    /// states (everything converges to constants); the mixers keep the
    /// state controllable the way designed FSMs are.
    double ff_mixer_fraction = 0.5;
    /// Extra registers duplicating or deriving existing state bits; each
    /// one lowers the density of encoding and yields FF-FF relations.
    double shadow_ff_fraction = 0.2;
    /// Clock domains (round-robin assignment when > 1).
    std::size_t clock_domains = 1;
    /// Fraction of sequential elements realized as latches.
    double latch_fraction = 0.0;
    /// Fraction of flip-flops given an unconstrained set or reset line.
    double sr_fraction = 0.0;
};

/// Generate a circuit; deterministic in `params` (including the seed).
netlist::Netlist generate(const GenParams& params);

/// Parameters calibrated to an ISCAS-89-sized circuit: `n_ffs` and
/// `n_gates` match the paper's Table 3 row for the like-named circuit.
GenParams iscas_like(std::string name, std::size_t n_ffs, std::size_t n_gates,
                     std::uint64_t seed);

}  // namespace seqlearn::workload
