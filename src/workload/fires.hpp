#pragma once
// FIRE-style fault-independent untestable-fault identification — the
// comparator of the paper's Table 4 (Iyer/Long/Abramovici's FIRES).
//
// Principle: every test assigns each fanout stem 0 or 1 (a test leaving the
// stem at X still works under either refinement, by Kleene monotonicity).
// Therefore a fault undetectable when s=0 is asserted AND undetectable when
// s=1 is asserted is undetectable outright. For each stem value the
// analysis computes necessary implications (forward + unique backward, one
// frame, free state, pseudo outputs observable) and declares a fault
// undetectable under that value when it is unexcitable (the faulted line is
// implied to the stuck value) or unpropagatable (every path from the fault
// site to an observation point passes a gate with an implied controlling
// side input).

#include "fault/fault.hpp"

#include <vector>

namespace seqlearn::workload {

struct FiresResult {
    /// Faults proven untestable, in universe order.
    std::vector<fault::Fault> untestable;
    std::size_t stems_analyzed = 0;
};

/// Run the analysis over every fanout stem of `nl` against `universe`.
FiresResult fires_untestable(const netlist::Netlist& nl,
                             std::span<const fault::Fault> universe);

}  // namespace seqlearn::workload
