#pragma once
// The named experiment suite.
//
// One place maps circuit names to builders so every bench and example
// refers to the same workloads. Names mirror the paper's Table 3:
//  - "s27", "fig1x", "fig2x": embedded circuits;
//  - "gen382" ... "gen38417": generator circuits calibrated to the
//    like-named ISCAS-89/93 circuit's (FF, gate) size;
//  - "rt510a", "rt510b", "rt832", "rtscf": retimed circuits (low density
//    of encoding), standing in for s510jcsrre/s510josrre/s832jcsrer/
//    scfjisdre;
//  - "ind20k", "ind60k", "ind250k": large multi-clock-domain circuits with
//    latches and partial set/reset, standing in for indust1..3 (ind250k is
//    sized to keep the bench under a minute; scaling is linear).

#include "netlist/netlist.hpp"

#include <string>
#include <vector>

namespace seqlearn::workload {

/// Build a suite circuit by name; throws std::invalid_argument for unknown
/// names. Deterministic: equal names give identical netlists.
netlist::Netlist suite_circuit(const std::string& name);

/// Table 3 row order (all circuits the learning bench reports).
std::vector<std::string> table3_names();

/// Table 4 subset (untestable-fault comparison).
std::vector<std::string> table4_names();

/// Table 5 subset (the ATPG-hard circuits).
std::vector<std::string> table5_names();

}  // namespace seqlearn::workload
