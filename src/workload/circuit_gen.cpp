#include "workload/circuit_gen.hpp"

#include "netlist/builder.hpp"
#include "util/strings.hpp"

#include <algorithm>

namespace seqlearn::workload {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::SeqAttrs;
using util::format;

namespace {

// Locality-biased pick: mostly recent entries, occasionally anything.
std::size_t biased_pick(util::Rng& rng, std::size_t pool, double locality) {
    if (pool == 1) return 0;
    if (!rng.chance(locality)) return rng.below(pool);
    // Geometric walk back from the end of the pool.
    std::size_t back = 0;
    while (rng.chance(0.6) && back + 1 < pool) ++back;
    const std::size_t window = std::min<std::size_t>(pool, 8 + back * 4);
    return pool - 1 - rng.below(window);
}

}  // namespace

Netlist generate(const GenParams& p) {
    util::Rng rng(p.seed);
    NetlistBuilder b(p.name);

    std::vector<std::string> pool;  // all referencable signals
    std::vector<std::string> gate_names;

    for (std::size_t i = 0; i < p.n_inputs; ++i) {
        const std::string n = format("i%zu", i);
        b.input(n);
        pool.push_back(n);
    }
    std::vector<std::string> ff_names;
    for (std::size_t i = 0; i < p.n_ffs; ++i) {
        ff_names.push_back(format("f%zu", i));
        pool.push_back(ff_names.back());
    }

    for (std::size_t i = 0; i < p.n_gates; ++i) {
        GateType t;
        if (rng.chance(p.xor_fraction)) {
            t = rng.chance(0.5) ? GateType::Xor : GateType::Xnor;
        } else {
            const GateType kinds[] = {GateType::And, GateType::Nand, GateType::Or,
                                      GateType::Nor, GateType::Not, GateType::And,
                                      GateType::Or,  GateType::Nand};
            t = kinds[rng.below(std::size(kinds))];
        }
        std::size_t arity = t == GateType::Not ? 1 : (rng.chance(p.wide_fraction) ? 3 : 2);
        std::vector<std::string> fan;
        for (std::size_t a = 0; a < arity; ++a) {
            // Distinct fanins: duplicated inputs degenerate gates into
            // buffers/constants and flood the circuit with tied logic.
            std::string pick;
            for (int attempt = 0; attempt < 8; ++attempt) {
                pick = pool[biased_pick(rng, pool.size(), p.locality)];
                if (std::find(fan.begin(), fan.end(), pick) == fan.end()) break;
            }
            fan.push_back(pick);
        }
        const std::string n = format("g%zu", i);
        b.gate(t, n, std::move(fan));
        pool.push_back(n);
        gate_names.push_back(n);
    }

    // Sequential attributes: clock domains round-robin, optional latches and
    // unconstrained set/reset decoration.
    auto seq_attrs_for = [&](std::size_t index) {
        SeqAttrs a{};
        if (p.clock_domains > 1)
            a.clock_id = static_cast<std::uint16_t>(index % p.clock_domains);
        if (rng.chance(p.sr_fraction)) {
            a.set_reset = rng.chance(0.5) ? netlist::SetReset::SetOnly
                                          : netlist::SetReset::ResetOnly;
            a.sr_unconstrained = true;
        }
        return a;
    };

    std::vector<std::string> ff_data(p.n_ffs);
    for (std::size_t i = 0; i < p.n_ffs; ++i) {
        std::string d = (!gate_names.empty() && rng.chance(p.ff_from_gate))
                            ? gate_names[biased_pick(rng, gate_names.size(), p.locality)]
                            : pool[rng.below(p.n_inputs + p.n_ffs)];
        if (rng.chance(p.ff_mixer_fraction)) {
            const std::string mix = format("gmx%zu", i);
            b.gate(GateType::Xor, mix, {d, format("i%zu", rng.below(p.n_inputs))});
            d = mix;
        }
        ff_data[i] = d;
        const SeqAttrs a = seq_attrs_for(i);
        if (rng.chance(p.latch_fraction)) b.dlatch(ff_names[i], {d}, a);
        else b.dff(ff_names[i], d, a);
    }

    // Shadow registers: duplicates or derivations of existing state bits.
    // A duplicate creates F' == F (half the state space invalid); a derived
    // shadow F' = DFF(AND(d, x)) creates the implication F'=1 => F=1.
    const auto n_shadows =
        static_cast<std::size_t>(p.shadow_ff_fraction * static_cast<double>(p.n_ffs));
    for (std::size_t s = 0; s < n_shadows; ++s) {
        const std::size_t victim = rng.below(p.n_ffs);
        const std::string name = format("fs%zu", s);
        const SeqAttrs a = seq_attrs_for(p.n_ffs + s);
        const double roll = rng.uniform01();
        if (roll < 0.4) {
            b.dff(name, ff_data[victim], a);  // exact duplicate
        } else if (roll < 0.7) {
            const std::string inv = format("gsn%zu", s);
            b.gate(GateType::Not, inv, {ff_data[victim]});
            b.dff(name, inv, a);  // inverted duplicate
        } else {
            const std::string mix = format("gsm%zu", s);
            const std::string& other = pool[biased_pick(rng, pool.size(), p.locality)];
            b.gate(rng.chance(0.5) ? GateType::And : GateType::Or, mix,
                   {ff_data[victim], other});
            b.dff(name, mix, a);  // derived shadow
        }
        pool.push_back(name);
    }

    // Observation points: bias towards late gates so deep logic is visible.
    std::size_t marked = 0;
    for (std::size_t i = 0; i < p.n_outputs && !gate_names.empty(); ++i) {
        b.output(gate_names[biased_pick(rng, gate_names.size(), 0.9)]);
        ++marked;
    }
    if (marked == 0) b.output(pool.back());

    netlist::Netlist nl = b.build();
    // Dangling logic is unobservable and would make the fault universe
    // artificially untestable; real netlists observe every net somewhere,
    // so promote all zero-fanout signals to primary outputs.
    for (netlist::GateId id = 0; id < nl.size(); ++id) {
        if (nl.fanouts(id).empty() && nl.type(id) != GateType::Input) nl.mark_output(id);
    }
    return nl;
}

GenParams iscas_like(std::string name, std::size_t n_ffs, std::size_t n_gates,
                     std::uint64_t seed) {
    GenParams p;
    p.name = std::move(name);
    p.seed = seed;
    p.n_ffs = n_ffs;
    // Keep shadows inside the published FF count: ~1/6 of the registers act
    // as shadows of the others.
    p.shadow_ff_fraction = 0.2;
    p.n_ffs = std::max<std::size_t>(2, n_ffs - static_cast<std::size_t>(0.2 * n_ffs));
    p.n_gates = n_gates;
    p.n_inputs = std::clamp<std::size_t>(n_gates / 40, 4, 40);
    p.n_outputs = std::clamp<std::size_t>(n_gates / 30, 4, 60);
    return p;
}

}  // namespace seqlearn::workload
