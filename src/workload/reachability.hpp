#pragma once
// Exhaustive state-space oracles for small circuits.
//
// Used by tests, examples, and the retiming study to ground-truth learned
// invalid states and to measure the density of encoding (the paper's
// complexity indicator from reference [9]).

#include "netlist/netlist.hpp"

#include <vector>

namespace seqlearn::workload {

/// States with at least `depth` predecessor frames: Image^depth(AllStates)
/// with inputs free at every step, indexed by the packed state (bit i =
/// Netlist::seq_elements()[i]). The sequence is monotonically shrinking and
/// is cut short at its fixpoint. Throws when the circuit has more than
/// `max_ffs` sequential elements or more than 16 inputs.
std::vector<bool> image_set(const netlist::Netlist& nl, std::size_t depth,
                            std::size_t max_ffs = 20);

/// Number of states in image_set(nl, depth).
std::uint64_t count_states(const std::vector<bool>& set);

}  // namespace seqlearn::workload
