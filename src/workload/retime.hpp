#pragma once
// Forward retiming (paper Section 5 workload; references [9] and [16]).
//
// A forward-retiming move takes a flip-flop whose data input is a
// single-fanout combinational gate and pushes the register backward through
// that gate: one register per gate input replaces the single register at
// its output. Steady-state behaviour is preserved (the moved registers
// jointly deliver the same next value), but the replacement registers now
// encode redundantly correlated state — the density of encoding drops and
// invalid states appear, which is exactly why the paper's retimed circuits
// are hard for ATPG without learned invalid-state relations.

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace seqlearn::workload {

struct RetimeStats {
    std::size_t moves_applied = 0;
    std::size_t registers_before = 0;
    std::size_t registers_after = 0;
};

/// Apply up to `max_moves` random forward-retiming moves to a copy of `nl`.
/// Latches, multi-port elements, and elements with set/reset are never
/// moved. Returns the transformed circuit (named `nl.name() + "_rt"`).
netlist::Netlist forward_retime(const netlist::Netlist& nl, std::size_t max_moves,
                                std::uint64_t seed, RetimeStats* stats = nullptr);

}  // namespace seqlearn::workload
