#include "core/stem_records.hpp"

#include <algorithm>

namespace seqlearn::core {

const std::vector<StemRecord> StemRecords::kEmpty{};

void StemRecords::add(Literal node, Literal stem, std::uint32_t offset) {
    auto& vec = by_key_[lit_key(node)];
    if (cap_ != 0 && vec.size() >= cap_) return;
    const StemRecord rec{stem, offset};
    if (std::find(vec.begin(), vec.end(), rec) != vec.end()) return;
    vec.push_back(rec);
    ++total_;
}

const std::vector<StemRecord>& StemRecords::records_for(Literal node) const {
    const auto it = by_key_.find(lit_key(node));
    return it == by_key_.end() ? kEmpty : it->second;
}

std::vector<Literal> StemRecords::targets(std::size_t min_records) const {
    std::vector<Literal> out;
    out.reserve(by_key_.size());
    for (const auto& [key, recs] : by_key_) {
        if (recs.size() >= min_records) out.push_back(lit_from_key(key));
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace seqlearn::core
