#pragma once
// The implication database.
//
// Stores same-frame relations closed under contraposition: inserting
// a=va => b=vb also records !b=vb... i.e. (b,!vb) => (a,!va), so queries by
// either literal see every consequence. Adjacency is dense per literal
// (2 slots per gate), which makes the ATPG-side lookups O(degree).
//
// Each literal's edge list is kept sorted by the target literal's key, so
// membership (add/implies, the single-node learning inner loop) is a binary
// search over a contiguous array — no hash function, no separate membership
// set, and edges_of() spans stay cache-friendly for the ATPG consumers.

#include "core/implication.hpp"

#include <span>
#include <vector>

namespace seqlearn::core {

class ImplicationDB {
public:
    /// Create a database for a netlist with `num_gates` gates.
    explicit ImplicationDB(std::size_t num_gates);

    /// Insert `lhs => rhs` (and its contrapositive). Returns true when the
    /// relation was new. Self-implications (lhs == rhs) are ignored;
    /// lhs == !rhs (a tie statement) is rejected with std::invalid_argument
    /// — ties belong in TieSet, not here.
    bool add(Literal lhs, Literal rhs, std::uint32_t frame);

    /// True when `lhs => rhs` (directly stored or by contraposition).
    bool implies(Literal lhs, Literal rhs) const;

    /// One stored implication edge: `to` holds at the same frame whenever
    /// the queried literal does; `frame` is the first-learned frame tag.
    struct Edge {
        Literal to;
        std::uint32_t frame;
    };

    /// All consequences of `lhs` with their frame tags, sorted by target
    /// literal key. The span stays valid until the database is modified —
    /// safe under reentrant queries, unlike implied_by().
    std::span<const Edge> edges_of(Literal lhs) const;

    /// All literals directly implied by `lhs` in the same frame. Uses a
    /// shared scratch buffer: the span is invalidated by the next call.
    std::span<const Literal> implied_by(Literal lhs) const;

    /// Number of distinct relations (each counted once, not per direction).
    std::size_t size() const noexcept { return relation_count_; }

    /// Every relation in canonical orientation, with its first-learned frame.
    std::vector<Relation> relations() const;

    /// The first-learned frame of a stored relation; requires implies(lhs,rhs).
    std::uint32_t frame_of(Literal lhs, Literal rhs) const;

    /// Relation counts split the way Table 3 reports them, where "FF" means
    /// the literal sits on a sequential element of `nl`. Only relations with
    /// frame >= min_frame are counted (min_frame = 1 isolates what only
    /// sequential learning can extract).
    struct Counts {
        std::size_t ff_ff = 0;
        std::size_t gate_ff = 0;
        std::size_t gate_gate = 0;
    };
    Counts counts(const netlist::Netlist& nl, std::uint32_t min_frame) const;

private:
    // Indexed by lit_key; each edge appears in the list of its lhs literal
    // (and its contrapositive in the list of !rhs), sorted by lit_key(to).
    // Both directions are always stored, so "edge present" is exactly
    // "relation present" — no separate membership structure needed.
    std::vector<std::vector<Edge>> adj_;
    // Scratch return buffer for implied_by (rebuilt per call).
    mutable std::vector<Literal> scratch_;
    std::size_t relation_count_ = 0;

    const Edge* find_edge(Literal lhs, Literal rhs) const;
};

}  // namespace seqlearn::core
