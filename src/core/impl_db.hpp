#pragma once
// The implication database.
//
// Stores same-frame relations closed under contraposition: inserting
// a=va => b=vb also records !b=vb... i.e. (b,!vb) => (a,!va), so queries by
// either literal see every consequence. Adjacency is dense per literal
// (2 slots per gate), which makes the ATPG-side lookups O(degree).
//
// Each literal's edge list is kept sorted by the target literal's key, so
// membership (add/implies, the single-node learning inner loop) is a binary
// search over a contiguous array — no hash function, no separate membership
// set, and edges_of() spans stay cache-friendly for the ATPG consumers.

#include "core/implication.hpp"

#include <span>
#include <vector>

namespace seqlearn::core {

class ImplicationDB {
public:
    /// Create a database for a netlist with `num_gates` gates.
    explicit ImplicationDB(std::size_t num_gates);

    /// Insert `lhs => rhs` (and its contrapositive). Returns true when the
    /// relation was new. Self-implications (lhs == rhs) are ignored;
    /// lhs == !rhs (a tie statement) is rejected with std::invalid_argument
    /// — ties belong in TieSet, not here.
    bool add(Literal lhs, Literal rhs, std::uint32_t frame);

    /// Insert many relations at once: append every edge, then sort and
    /// dedupe each touched adjacency list once. Semantically identical to
    /// add() in a loop (duplicates keep the earliest frame), but bulk
    /// ingestion — the text snapshot loader — pays one sort pass instead of
    /// a sorted insert per edge.
    void add_batch(std::span<const Relation> rels);

    /// True when `lhs => rhs` (directly stored or by contraposition).
    bool implies(Literal lhs, Literal rhs) const;

    /// One stored implication edge: `to` holds at the same frame whenever
    /// the queried literal does; `frame` is the first-learned frame tag.
    struct Edge {
        Literal to;
        std::uint32_t frame;
    };

    /// All consequences of `lhs` with their frame tags, sorted by target
    /// literal key. The span stays valid until the database is modified —
    /// safe under reentrant queries, unlike implied_by().
    std::span<const Edge> edges_of(Literal lhs) const;

    /// Low-level restore API for the binary snapshot loader, used in pairs.
    /// set_edges() installs the complete adjacency list for `lhs` verbatim
    /// (one exact-sized allocation); edges must be strictly sorted by target
    /// key, target gates must be in range and differ from lhs's. Each list
    /// may be installed at most once. seal() then checks the whole install
    /// sequence for closure under contraposition — every edge's mirror
    /// present with the same frame, verified by an order-independent mirror
    /// hash accumulated during set_edges() (a corrupt file escapes only on a
    /// ~2^-64 collision) — and recomputes size(). Use the pair only on a
    /// database populated exclusively through set_edges(); queries between
    /// the two calls are safe but size() is stale until seal() runs. Both
    /// throw std::invalid_argument on violation: a file that fails here was
    /// not written by save_learned_binary.
    /// The vector overload moves the list in instead of copying it — the
    /// binary loader decodes each list into an exact-sized vector and hands
    /// it over without a second pass over the bytes.
    void set_edges(Literal lhs, std::span<const Edge> edges);
    void set_edges(Literal lhs, std::vector<Edge>&& edges);
    void seal();

    /// All literals directly implied by `lhs` in the same frame. Uses a
    /// shared scratch buffer: the span is invalidated by the next call.
    std::span<const Literal> implied_by(Literal lhs) const;

    /// Number of distinct relations (each counted once, not per direction).
    std::size_t size() const noexcept { return relation_count_; }

    /// Every relation in canonical orientation, with its first-learned frame.
    std::vector<Relation> relations() const;

    /// The first-learned frame of a stored relation; requires implies(lhs,rhs).
    std::uint32_t frame_of(Literal lhs, Literal rhs) const;

    /// Relation counts split the way Table 3 reports them, where "FF" means
    /// the literal sits on a sequential element of `nl`. Only relations with
    /// frame >= min_frame are counted (min_frame = 1 isolates what only
    /// sequential learning can extract).
    struct Counts {
        std::size_t ff_ff = 0;
        std::size_t gate_ff = 0;
        std::size_t gate_gate = 0;
    };
    Counts counts(const netlist::Netlist& nl, std::uint32_t min_frame) const;

    /// Heap bytes held by the adjacency lists — the learned-DB share of a
    /// cached Design's memory footprint.
    std::size_t memory_bytes() const noexcept;

private:
    // Indexed by lit_key; each edge appears in the list of its lhs literal
    // (and its contrapositive in the list of !rhs), sorted by lit_key(to).
    // Both directions are always stored, so "edge present" is exactly
    // "relation present" — no separate membership structure needed.
    std::vector<std::vector<Edge>> adj_;
    // Scratch return buffer for implied_by (rebuilt per call).
    mutable std::vector<Literal> scratch_;
    std::size_t relation_count_ = 0;
    // Closure-hash accumulators for the set_edges()/seal() restore path.
    std::uint64_t restore_fwd_sum_ = 0;
    std::uint64_t restore_mirror_sum_ = 0;
    std::size_t restore_edge_count_ = 0;

    const Edge* find_edge(Literal lhs, Literal rhs) const;
    // Shared set_edges validation + hash accumulation; returns the (empty)
    // destination list for the caller to fill.
    std::vector<Edge>& checked_restore_list(Literal lhs, std::span<const Edge> edges);
};

/// Order-independent FNV-1a digest of a database's canonical relation set:
/// relations sorted by (lhs key, rhs key, frame), each triple mixed in. Two
/// databases hold exactly the same relations iff their hashes match (modulo
/// collisions), whatever order they were learned in — the determinism
/// goldens and the serving protocol's `relation_hash` field both use this.
std::uint64_t relation_hash(const ImplicationDB& db);

}  // namespace seqlearn::core
