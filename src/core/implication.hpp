#pragma once
// Literals and same-time-frame implication relations.
//
// A literal (gate, value) asserts that the gate's output has the binary
// value in some time frame. A relation `lhs => rhs` learned by the
// sequential learning pass holds with both literals in the *same* frame and
// is logically identical to its contrapositive `!rhs => !lhs`; relations are
// kept in a canonical orientation so that equality and deduplication are
// well defined.

#include "logic/val3.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <string>

namespace seqlearn::core {

using logic::Val3;
using netlist::GateId;

/// A (gate, binary value) pair.
struct Literal {
    GateId gate = netlist::kNoGate;
    Val3 value = Val3::Zero;

    friend bool operator==(const Literal&, const Literal&) = default;
    friend auto operator<=>(const Literal&, const Literal&) = default;
};

/// The literal asserting the opposite value on the same gate.
constexpr Literal negate(Literal l) noexcept { return {l.gate, logic::v3_not(l.value)}; }

/// Dense key for a literal: gate*2 + value. Requires a binary value.
constexpr std::uint64_t lit_key(Literal l) noexcept {
    return (static_cast<std::uint64_t>(l.gate) << 1) | (l.value == Val3::One ? 1u : 0u);
}

/// Inverse of lit_key.
constexpr Literal lit_from_key(std::uint64_t k) noexcept {
    return {static_cast<GateId>(k >> 1), (k & 1) ? Val3::One : Val3::Zero};
}

/// A same-frame implication `lhs => rhs` with the frame at which it was
/// first learned (0 = derivable within one frame, i.e. combinational;
/// >= 1 = requires crossing that many frame boundaries, i.e. sequential).
struct Relation {
    Literal lhs;
    Literal rhs;
    std::uint32_t frame = 0;

    /// Canonical orientation: the side with the smaller literal key on the
    /// left, realized by flipping to the contrapositive when needed.
    Relation canonical() const noexcept {
        if (lit_key(lhs) <= lit_key(rhs)) return *this;
        return {negate(rhs), negate(lhs), frame};
    }

    friend bool operator==(const Relation&, const Relation&) = default;
};

/// "G9=0 -> F2=0".
std::string to_string(const netlist::Netlist& nl, const Relation& r);

/// "F2=1" formatting for a literal.
std::string to_string(const netlist::Netlist& nl, const Literal& l);

}  // namespace seqlearn::core
