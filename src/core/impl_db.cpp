#include "core/impl_db.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace seqlearn::core {

namespace {

// Position of (the edge to) `to` in a list sorted by lit_key(to).
std::vector<ImplicationDB::Edge>::const_iterator lower_bound_to(
    const std::vector<ImplicationDB::Edge>& list, Literal to) {
    return std::lower_bound(list.begin(), list.end(), lit_key(to),
                            [](const ImplicationDB::Edge& e, std::uint64_t key) {
                                return lit_key(e.to) < key;
                            });
}

}  // namespace

ImplicationDB::ImplicationDB(std::size_t num_gates) : adj_(num_gates * 2) {}

const ImplicationDB::Edge* ImplicationDB::find_edge(Literal lhs, Literal rhs) const {
    const auto key = lit_key(lhs);
    if (key >= adj_.size()) return nullptr;
    const auto it = lower_bound_to(adj_[key], rhs);
    if (it != adj_[key].end() && it->to == rhs) return &*it;
    return nullptr;
}

bool ImplicationDB::add(Literal lhs, Literal rhs, std::uint32_t frame) {
    if (lhs.gate == rhs.gate) {
        if (lhs.value == rhs.value) return false;  // tautology
        throw std::invalid_argument("ImplicationDB::add: tie statement (a => !a)");
    }
    std::vector<Edge>& fwd = adj_[lit_key(lhs)];
    const auto it = lower_bound_to(fwd, rhs);
    if (it != fwd.end() && it->to == rhs) {
        // Keep the earliest frame at which the relation was learned — on
        // both stored directions, so the forward and contrapositive edges
        // never disagree about when the relation was first seen.
        Edge& e = fwd[static_cast<std::size_t>(it - fwd.begin())];
        if (frame < e.frame) {
            e.frame = frame;
            std::vector<Edge>& bwd = adj_[lit_key(negate(rhs))];
            const auto mit = lower_bound_to(bwd, negate(lhs));
            bwd[static_cast<std::size_t>(mit - bwd.begin())].frame = frame;
        }
        return false;
    }
    fwd.insert(it, {rhs, frame});
    std::vector<Edge>& bwd = adj_[lit_key(negate(rhs))];
    bwd.insert(lower_bound_to(bwd, negate(lhs)), {negate(lhs), frame});
    ++relation_count_;
    return true;
}

void ImplicationDB::add_batch(std::span<const Relation> rels) {
    // Count first so every touched list gets exactly one reservation; the
    // per-edge growth reallocations are most of what makes an add() loop
    // slower than this. (Average list degree is small — a handful of edges —
    // so the later per-list fixups are near-free.)
    std::vector<std::uint32_t> incoming(adj_.size(), 0);
    std::vector<std::size_t> touched;
    for (const Relation& r : rels) {
        if (r.lhs.gate == r.rhs.gate) {
            if (r.lhs.value == r.rhs.value) continue;  // tautology
            throw std::invalid_argument(
                "ImplicationDB::add_batch: tie statement (a => !a)");
        }
        const std::size_t fwd = lit_key(r.lhs);
        const std::size_t bwd = lit_key(negate(r.rhs));
        if (incoming[fwd]++ == 0) touched.push_back(fwd);
        if (incoming[bwd]++ == 0) touched.push_back(bwd);
    }
    for (const std::size_t key : touched)
        adj_[key].reserve(adj_[key].size() + incoming[key]);
    for (const Relation& r : rels) {
        if (r.lhs.gate == r.rhs.gate) continue;
        adj_[lit_key(r.lhs)].push_back({r.rhs, r.frame});
        adj_[lit_key(negate(r.rhs))].push_back({negate(r.lhs), r.frame});
    }
    std::size_t edge_delta = 0;
    for (const std::size_t key : touched) {
        std::vector<Edge>& list = adj_[key];
        const std::size_t old_size = list.size() - incoming[key];
        // Restore the sorted-by-key invariant. Snapshot files arrive close
        // to sorted, so a stable insertion sort is O(n + inversions) for the
        // common small list; genuinely large or shuffled lists (possible
        // only in a hostile file) fall back to std::sort.
        if (list.size() > 32) {
            std::stable_sort(list.begin(), list.end(),
                             [](const Edge& a, const Edge& b) {
                                 return lit_key(a.to) < lit_key(b.to);
                             });
        } else {
            for (std::size_t i = 1; i < list.size(); ++i) {
                const Edge e = list[i];
                std::size_t p = i;
                while (p > 0 && lit_key(list[p - 1].to) > lit_key(e.to)) {
                    list[p] = list[p - 1];
                    --p;
                }
                list[p] = e;
            }
        }
        // Adjacent dedupe keeping the earliest frame — the add() contract
        // for a re-inserted relation.
        std::size_t w = 0;
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (w > 0 && list[w - 1].to == list[i].to) {
                if (list[i].frame < list[w - 1].frame)
                    list[w - 1].frame = list[i].frame;
            } else {
                list[w++] = list[i];
            }
        }
        list.resize(w);
        edge_delta += w - old_size;
    }
    // Every stored relation is exactly one forward plus one contrapositive
    // edge in two distinct lists (a duplicate loses both or neither), so the
    // surviving-edge delta is always even and counts relations directly.
    relation_count_ += edge_delta / 2;
}

namespace {

// Strong per-edge mixer (splitmix64-style) for the closure hash below.
std::uint64_t edge_mix(std::uint64_t src, std::uint64_t dst, std::uint64_t frame) {
    std::uint64_t x = src * 0x9e3779b97f4a7c15ULL + dst;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL + frame;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

std::vector<ImplicationDB::Edge>& ImplicationDB::checked_restore_list(
    Literal lhs, std::span<const Edge> edges) {
    const std::uint64_t key = lit_key(lhs);
    if (key >= adj_.size())
        throw std::invalid_argument("ImplicationDB::set_edges: lhs out of range");
    std::vector<Edge>& list = adj_[key];
    if (!list.empty())
        throw std::invalid_argument("ImplicationDB::set_edges: list already populated");
    const std::size_t num_gates = adj_.size() / 2;
    const std::uint64_t not_lhs_key = lit_key(negate(lhs));
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].to.gate >= num_gates)
            throw std::invalid_argument("ImplicationDB::set_edges: target out of range");
        if (edges[i].to.gate == lhs.gate)
            throw std::invalid_argument("ImplicationDB::set_edges: self or tie edge");
        if (i > 0 && lit_key(edges[i - 1].to) >= lit_key(edges[i].to))
            throw std::invalid_argument(
                "ImplicationDB::set_edges: targets not strictly sorted");
        // Accumulate the closure hash while the edges are already in cache;
        // seal() then only compares the sums. Commutative addition makes the
        // result independent of installation order.
        restore_fwd_sum_ += edge_mix(key, lit_key(edges[i].to), edges[i].frame);
        restore_mirror_sum_ +=
            edge_mix(lit_key(negate(edges[i].to)), not_lhs_key, edges[i].frame);
    }
    restore_edge_count_ += edges.size();
    return list;
}

void ImplicationDB::set_edges(Literal lhs, std::span<const Edge> edges) {
    checked_restore_list(lhs, edges).assign(edges.begin(), edges.end());
}

void ImplicationDB::set_edges(Literal lhs, std::vector<Edge>&& edges) {
    checked_restore_list(lhs, edges) = std::move(edges);
}

void ImplicationDB::seal() {
    // Closure under contraposition means the edge multiset equals its own
    // mirror image: (L => t, f) present iff (!t => !L, f) is. Looking each
    // mirror up edge-by-edge would be a random access per edge; instead
    // set_edges() accumulated an order-independent 64-bit sum of a strong
    // per-edge mix over the installed edges and over their mirrors. The sums
    // are equal iff the two multisets are equal — up to a ~2^-64 hash
    // collision, so this is an integrity check against corruption, not a
    // cryptographic defense.
    if (restore_fwd_sum_ != restore_mirror_sum_ || restore_edge_count_ % 2 != 0)
        throw std::invalid_argument(
            "ImplicationDB::seal: adjacency not closed under contraposition");
    // Mirroring pairs every edge with a distinct partner (set_edges rejects
    // edges within one gate), so surviving the check means the edges split
    // into mirror pairs — one stored relation each.
    relation_count_ = restore_edge_count_ / 2;
    restore_fwd_sum_ = 0;
    restore_mirror_sum_ = 0;
    restore_edge_count_ = 0;
}

bool ImplicationDB::implies(Literal lhs, Literal rhs) const {
    if (lhs.gate == rhs.gate) return false;
    return find_edge(lhs, rhs) != nullptr;
}

std::span<const ImplicationDB::Edge> ImplicationDB::edges_of(Literal lhs) const {
    const auto key = lit_key(lhs);
    if (key >= adj_.size()) return {};
    return adj_[key];
}

std::span<const Literal> ImplicationDB::implied_by(Literal lhs) const {
    scratch_.clear();
    const auto key = lit_key(lhs);
    if (key < adj_.size()) {
        for (const Edge& e : adj_[key]) scratch_.push_back(e.to);
    }
    return scratch_;
}

std::vector<Relation> ImplicationDB::relations() const {
    std::vector<Relation> out;
    out.reserve(relation_count_);
    for (std::size_t key = 0; key < adj_.size(); ++key) {
        const Literal lhs = lit_from_key(key);
        for (const Edge& e : adj_[key]) {
            const Relation r{lhs, e.to, e.frame};
            // Emit each relation once: only in its canonical orientation.
            if (r.canonical() == r) out.push_back(r);
        }
    }
    return out;
}

std::uint32_t ImplicationDB::frame_of(Literal lhs, Literal rhs) const {
    const Edge* e = find_edge(lhs, rhs);
    if (!e) throw std::invalid_argument("frame_of: relation not stored");
    return e->frame;
}

ImplicationDB::Counts ImplicationDB::counts(const netlist::Netlist& nl,
                                            std::uint32_t min_frame) const {
    Counts c;
    for (const Relation& r : relations()) {
        if (r.frame < min_frame) continue;
        const bool lhs_ff = netlist::is_sequential(nl.type(r.lhs.gate));
        const bool rhs_ff = netlist::is_sequential(nl.type(r.rhs.gate));
        if (lhs_ff && rhs_ff) ++c.ff_ff;
        else if (lhs_ff || rhs_ff) ++c.gate_ff;
        else ++c.gate_gate;
    }
    return c;
}

std::uint64_t relation_hash(const ImplicationDB& db) {
    std::vector<Relation> rels = db.relations();
    std::sort(rels.begin(), rels.end(), [](const Relation& a, const Relation& b) {
        return std::tuple(lit_key(a.lhs), lit_key(a.rhs), a.frame) <
               std::tuple(lit_key(b.lhs), lit_key(b.rhs), b.frame);
    });
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 1099511628211ULL;
    };
    for (const Relation& r : rels) {
        mix(lit_key(r.lhs));
        mix(lit_key(r.rhs));
        mix(r.frame);
    }
    return h;
}

std::size_t ImplicationDB::memory_bytes() const noexcept {
    std::size_t bytes = adj_.capacity() * sizeof(adj_[0]) +
                        scratch_.capacity() * sizeof(Literal);
    for (const auto& edges : adj_) bytes += edges.capacity() * sizeof(Edge);
    return bytes;
}

}  // namespace seqlearn::core
