#include "core/impl_db.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqlearn::core {

namespace {

// Position of (the edge to) `to` in a list sorted by lit_key(to).
std::vector<ImplicationDB::Edge>::const_iterator lower_bound_to(
    const std::vector<ImplicationDB::Edge>& list, Literal to) {
    return std::lower_bound(list.begin(), list.end(), lit_key(to),
                            [](const ImplicationDB::Edge& e, std::uint64_t key) {
                                return lit_key(e.to) < key;
                            });
}

}  // namespace

ImplicationDB::ImplicationDB(std::size_t num_gates) : adj_(num_gates * 2) {}

const ImplicationDB::Edge* ImplicationDB::find_edge(Literal lhs, Literal rhs) const {
    const auto key = lit_key(lhs);
    if (key >= adj_.size()) return nullptr;
    const auto it = lower_bound_to(adj_[key], rhs);
    if (it != adj_[key].end() && it->to == rhs) return &*it;
    return nullptr;
}

bool ImplicationDB::add(Literal lhs, Literal rhs, std::uint32_t frame) {
    if (lhs.gate == rhs.gate) {
        if (lhs.value == rhs.value) return false;  // tautology
        throw std::invalid_argument("ImplicationDB::add: tie statement (a => !a)");
    }
    std::vector<Edge>& fwd = adj_[lit_key(lhs)];
    const auto it = lower_bound_to(fwd, rhs);
    if (it != fwd.end() && it->to == rhs) {
        // Keep the earliest frame at which the relation was learned.
        Edge& e = fwd[static_cast<std::size_t>(it - fwd.begin())];
        if (frame < e.frame) e.frame = frame;
        return false;
    }
    fwd.insert(it, {rhs, frame});
    std::vector<Edge>& bwd = adj_[lit_key(negate(rhs))];
    bwd.insert(lower_bound_to(bwd, negate(lhs)), {negate(lhs), frame});
    ++relation_count_;
    return true;
}

bool ImplicationDB::implies(Literal lhs, Literal rhs) const {
    if (lhs.gate == rhs.gate) return false;
    return find_edge(lhs, rhs) != nullptr;
}

std::span<const ImplicationDB::Edge> ImplicationDB::edges_of(Literal lhs) const {
    const auto key = lit_key(lhs);
    if (key >= adj_.size()) return {};
    return adj_[key];
}

std::span<const Literal> ImplicationDB::implied_by(Literal lhs) const {
    scratch_.clear();
    const auto key = lit_key(lhs);
    if (key < adj_.size()) {
        for (const Edge& e : adj_[key]) scratch_.push_back(e.to);
    }
    return scratch_;
}

std::vector<Relation> ImplicationDB::relations() const {
    std::vector<Relation> out;
    out.reserve(relation_count_);
    for (std::size_t key = 0; key < adj_.size(); ++key) {
        const Literal lhs = lit_from_key(key);
        for (const Edge& e : adj_[key]) {
            const Relation r{lhs, e.to, e.frame};
            // Emit each relation once: only in its canonical orientation.
            if (r.canonical() == r) out.push_back(r);
        }
    }
    return out;
}

std::uint32_t ImplicationDB::frame_of(Literal lhs, Literal rhs) const {
    const Edge* e = find_edge(lhs, rhs);
    if (!e) throw std::invalid_argument("frame_of: relation not stored");
    return e->frame;
}

ImplicationDB::Counts ImplicationDB::counts(const netlist::Netlist& nl,
                                            std::uint32_t min_frame) const {
    Counts c;
    for (const Relation& r : relations()) {
        if (r.frame < min_frame) continue;
        const bool lhs_ff = netlist::is_sequential(nl.type(r.lhs.gate));
        const bool rhs_ff = netlist::is_sequential(nl.type(r.rhs.gate));
        if (lhs_ff && rhs_ff) ++c.ff_ff;
        else if (lhs_ff || rhs_ff) ++c.gate_ff;
        else ++c.gate_gate;
    }
    return c;
}

}  // namespace seqlearn::core
