#include "core/seq_learn.hpp"

#include "cnf/sat_learn.hpp"
#include "netlist/clock_class.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqlearn::core {

using netlist::GateId;
using netlist::Netlist;

namespace {

// Derived statistics shared by every exit path (clean, stopped, failed):
// they are pure functions of the accumulated db/ties, so they stay correct
// on any prefix.
void finalize_stats(LearnResult& result, const Netlist& nl, const util::Timer& timer) {
    const ImplicationDB::Counts seq_counts = result.db.counts(nl, /*min_frame=*/1);
    const ImplicationDB::Counts all_counts = result.db.counts(nl, /*min_frame=*/0);
    result.stats.ff_ff_relations = seq_counts.ff_ff;
    result.stats.gate_ff_relations = seq_counts.gate_ff;
    result.stats.comb_relations =
        (all_counts.ff_ff + all_counts.gate_ff + all_counts.gate_gate) -
        (seq_counts.ff_ff + seq_counts.gate_ff + seq_counts.gate_gate);
    result.stats.ties_combinational = result.ties.count_combinational();
    result.stats.ties_sequential = result.ties.count_sequential();
    result.stats.cpu_seconds = timer.seconds();
    result.stats.cancelled = !result.outcome.ok();
}

exec::RunOutcome outcome_from(exec::RunStatus st, const exec::Budget* budget) {
    exec::RunOutcome o;
    o.status = st;
    if (budget != nullptr && budget->detail() != nullptr &&
        (st == exec::RunStatus::DeadlineExceeded || st == exec::RunStatus::LimitReached)) {
        o.diagnostic = budget->detail();
    }
    return o;
}

LearnResult learn_impl(const Netlist& nl, const netlist::Topology& topo,
                       const LearnConfig& cfg, const LearnCheckpoint* ckpt) {
    const util::Timer timer;
    LearnResult result(nl.size());

    // The budget clock starts here, at run entry.
    exec::Budget budget(cfg.budget);
    exec::Budget* budget_ptr = cfg.budget.any() ? &budget : nullptr;

    // Resolve the execution environment once: a shared executor when the
    // caller (typically a Session) provides one, a private pool when more
    // than one thread is requested, pure serial otherwise. The serial path
    // never touches the pool machinery.
    const exec::StageExec ex = exec::resolve_stage_exec(cfg.executor, cfg.threads);
    const LearnExecEnv env{ex.pool, ex.workers, cfg.cancel, budget_ptr, cfg.failpoint};

    std::size_t start_class = 0;
    std::size_t start_unit = 0;
    bool start_in_multi = false;
    if (ckpt != nullptr) {
        result.db = ckpt->db;
        result.ties = ckpt->ties;
        result.stats.stems_processed = ckpt->stems_processed;
        result.stats.multi_targets = ckpt->multi_targets;
        result.stats.multi_relations = ckpt->multi_relations;
        result.stats.multi_ties = ckpt->multi_ties;
        start_class = ckpt->cursor.class_index;
        start_unit = ckpt->cursor.unit;
        start_in_multi = ckpt->cursor.in_multi;
    }

    try {
        if (cfg.use_equivalences) {
            result.equivalences = find_equivalences(nl, cfg.equiv, ex.pool, ex.workers);
            result.stats.equiv_classes = result.equivalences.num_classes;
        }

        const std::vector<GateId> stems = nl.stems();
        result.stats.stems = stems.size();

        // One learning pass per clock class; a single-domain circuit gets one
        // pass with everything open.
        std::vector<netlist::ClockClass> classes;
        if (cfg.respect_clock_classes) {
            classes = netlist::clock_classes(nl);
        }
        if (classes.empty()) {
            netlist::ClockClass all;
            all.members.assign(nl.seq_elements().begin(), nl.seq_elements().end());
            classes.push_back(std::move(all));
        }

        // Progress is reported monotonically across the per-class passes
        // (each pass visits every stem): done runs 0 .. classes * stems.
        std::size_t stems_done_base = start_class * stems.size();
        ProgressFn progress;
        if (cfg.on_stem) {
            const std::size_t grand_total = classes.size() * stems.size();
            progress = [&cfg, &stems_done_base, grand_total](std::size_t done, std::size_t) {
                return cfg.on_stem(stems_done_base + done, grand_total);
            };
        }

        // Every per-class simulator — one per worker — shares the caller's
        // CSR snapshot; only the cheap mutable scratch is cloned. All of
        // them alias the result's tie vectors, so committed ties are
        // simulation facts for every later stem regardless of which worker
        // simulates it.
        const unsigned num_sims = std::max(1u, ex.workers);
        const std::size_t batch_stems = cfg.batch_lanes / 2;  // 0 or 1 lane = scalar
        const std::uint64_t digest = learn_config_digest(cfg);
        bool stopped = false;
        for (std::size_t ci = start_class; ci < classes.size() && !stopped; ++ci) {
            const netlist::ClockClass& cls = classes[ci];
            const sim::SeqGating gating = sim::SeqGating::for_class(nl, cls.members);
            std::vector<sim::FrameSimulator> sims;
            std::vector<sim::BatchFrameSimulator> batch_sims;
            sims.reserve(num_sims);
            batch_sims.reserve(batch_stems != 0 ? num_sims : 0);
            for (unsigned w = 0; w < num_sims; ++w) {
                sims.emplace_back(topo, gating);
                if (cfg.use_equivalences)
                    sims.back().set_equivalences(&result.equivalences.map);
                sims.back().set_ties(&result.ties.dense(), &result.ties.dense_cycles());
                if (batch_stems != 0) {
                    batch_sims.emplace_back(topo, gating);
                    if (cfg.use_equivalences)
                        batch_sims.back().set_equivalences(&result.equivalences.map);
                    batch_sims.back().set_ties(&result.ties.dense(),
                                               &result.ties.dense_cycles());
                }
            }

            // Resuming mid-class restores that class's records and skips the
            // already-processed schedule prefix; the carried ties/db make the
            // remaining stems see exactly the state the interrupted run left.
            const bool resuming_here = ckpt != nullptr && ci == start_class;
            StemRecords records(cfg.record_cap);
            if (resuming_here) records = ckpt->records;
            const bool skip_single = resuming_here && start_in_multi;
            const std::size_t first_stem = (resuming_here && !start_in_multi) ? start_unit : 0;

            if (!skip_single) {
                const SingleNodeOutcome single = single_node_learning(
                    nl, sims, std::span<const GateId>(stems).subspan(first_stem),
                    cfg.max_frames, result.ties, result.db, records,
                    progress ? &progress : nullptr, env, batch_sims, batch_stems);
                result.stats.stems_processed += single.stems_processed;
                if (single.stop != exec::RunStatus::Completed) {
                    result.outcome = outcome_from(single.stop, budget_ptr);
                    result.cursor = {true, ci, false, first_stem + single.next_index, digest};
                    result.records = std::move(records);
                    stopped = true;
                    break;
                }
            }
            stems_done_base += stems.size();

            if (cfg.multiple_node) {
                MultipleNodeConfig mcfg = cfg.multi;
                mcfg.max_frames = cfg.max_frames;
                const std::size_t first_target = skip_single ? start_unit : 0;
                const MultipleNodeOutcome multi = multiple_node_learning(
                    nl, sims, records, mcfg, result.ties, result.db, env, batch_sims,
                    cfg.batch_lanes, first_target);
                result.stats.multi_targets += multi.targets_processed;
                result.stats.multi_relations += multi.relations_added;
                result.stats.multi_ties += multi.ties_found;
                if (multi.stop != exec::RunStatus::Completed) {
                    result.outcome = outcome_from(multi.stop, budget_ptr);
                    result.cursor = {true, ci, true, multi.next_index, digest};
                    result.records = std::move(records);
                    stopped = true;
                    break;
                }
            }
        }

        // SAT learn mode: probe a K-frame CNF unrolling seeded with
        // everything the frame-simulation passes proved. Serial and
        // deterministic; a governance stop keeps the mined prefix but
        // invalidates the cursor (the phase has no resume schedule).
        if (!stopped && cfg.sat_frames > 0) {
            const cnf::Seeds seeds{&result.ties, &result.db,
                                   cfg.use_equivalences ? &result.equivalences : nullptr};
            const cnf::SatLearnResult sat =
                cnf::sat_learn(topo, cfg.sat_frames, stems, seeds,
                               cnf::capture_model_for(nl), cfg.cancel, budget_ptr);
            for (const cnf::SatTie& t : sat.ties) result.ties.set(t.gate, t.value, t.cycle);
            for (const core::Relation& r : sat.relations)
                result.db.add(r.lhs, r.rhs, r.frame);
            result.stats.sat_probes += sat.stats.probes;
            result.stats.sat_ties += sat.stats.ties;
            result.stats.sat_relations += sat.stats.relations;
            if (!sat.run.ok()) {
                result.outcome = sat.run;
                result.cursor = {};
            }
        }
    } catch (const std::exception& e) {
        // Never throw across the learn() boundary: the committed prefix in
        // db/ties is intact (speculation windows apply nothing after a
        // throw), but the exact stop point is unknown — not resumable.
        result.outcome = exec::RunOutcome::failed(e.what());
        result.cursor = {};
        finalize_stats(result, nl, timer);
        return result;
    }

    finalize_stats(result, nl, timer);
    return result;
}

}  // namespace

std::uint64_t learn_config_digest(const LearnConfig& cfg) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(cfg.max_frames);
    mix(cfg.stop_on_state_repeat ? 1 : 0);
    mix(cfg.multiple_node ? 1 : 0);
    mix(cfg.use_equivalences ? 1 : 0);
    mix(cfg.respect_clock_classes ? 1 : 0);
    mix(cfg.sat_frames);
    mix(cfg.record_cap);
    mix(cfg.multi.min_records);
    mix(cfg.multi.max_targets);
    mix(cfg.equiv.sig_rounds);
    mix(cfg.equiv.support_cap);
    mix(cfg.equiv.max_bucket);
    mix(cfg.equiv.seed);
    return h;
}

LearnCheckpoint make_checkpoint(const Netlist& nl, const LearnResult& result) {
    if (!result.cursor.valid)
        throw std::logic_error("make_checkpoint: learn result has no resume cursor");
    LearnCheckpoint ckpt(nl.size());
    ckpt.cursor = result.cursor;
    ckpt.db = result.db;
    ckpt.ties = result.ties;
    ckpt.records = result.records;
    ckpt.stems_processed = result.stats.stems_processed;
    ckpt.multi_targets = result.stats.multi_targets;
    ckpt.multi_relations = result.stats.multi_relations;
    ckpt.multi_ties = result.stats.multi_ties;
    ckpt.circuit = nl.name();
    return ckpt;
}

LearnResult learn(const Netlist& nl, const netlist::Topology& topo, const LearnConfig& cfg) {
    return learn_impl(nl, topo, cfg, nullptr);
}

LearnResult resume_learn(const Netlist& nl, const netlist::Topology& topo,
                         const LearnConfig& cfg, const LearnCheckpoint& ckpt) {
    if (!ckpt.cursor.valid)
        throw std::invalid_argument("resume_learn: checkpoint has no resume cursor");
    if (!ckpt.circuit.empty() && ckpt.circuit != nl.name())
        throw std::invalid_argument("resume_learn: checkpoint is for circuit '" +
                                    ckpt.circuit + "', not '" + nl.name() + "'");
    if (ckpt.ties.dense().size() != nl.size())
        throw std::invalid_argument("resume_learn: checkpoint gate count mismatch");
    if (ckpt.cursor.config_digest != learn_config_digest(cfg))
        throw std::invalid_argument(
            "resume_learn: checkpoint was taken under a different learning config");
    return learn_impl(nl, topo, cfg, &ckpt);
}

}  // namespace seqlearn::core
