#include "core/seq_learn.hpp"

#include "netlist/clock_class.hpp"
#include "util/timer.hpp"

#include <algorithm>

namespace seqlearn::core {

using netlist::GateId;
using netlist::Netlist;

LearnResult learn(const Netlist& nl, const netlist::Topology& topo, const LearnConfig& cfg) {
    const util::Timer timer;
    LearnResult result(nl.size());

    // Resolve the execution environment once: a shared executor when the
    // caller (typically a Session) provides one, a private pool when more
    // than one thread is requested, pure serial otherwise. The serial path
    // never touches the pool machinery.
    const exec::StageExec ex = exec::resolve_stage_exec(cfg.executor, cfg.threads);
    const LearnExecEnv env{ex.pool, ex.workers, cfg.cancel};

    if (cfg.use_equivalences) {
        result.equivalences = find_equivalences(nl, cfg.equiv, ex.pool, ex.workers);
        result.stats.equiv_classes = result.equivalences.num_classes;
    }

    const std::vector<GateId> stems = nl.stems();
    result.stats.stems = stems.size();

    // One learning pass per clock class; a single-domain circuit gets one
    // pass with everything open.
    std::vector<netlist::ClockClass> classes;
    if (cfg.respect_clock_classes) {
        classes = netlist::clock_classes(nl);
    }
    if (classes.empty()) {
        netlist::ClockClass all;
        all.members.assign(nl.seq_elements().begin(), nl.seq_elements().end());
        classes.push_back(std::move(all));
    }

    // Progress is reported monotonically across the per-class passes (each
    // pass visits every stem): done runs 0 .. classes * stems.
    std::size_t stems_done_base = 0;
    ProgressFn progress;
    if (cfg.on_stem) {
        const std::size_t grand_total = classes.size() * stems.size();
        progress = [&cfg, &stems_done_base, grand_total](std::size_t done, std::size_t) {
            return cfg.on_stem(stems_done_base + done, grand_total);
        };
    }

    // Every per-class simulator — one per worker — shares the caller's CSR
    // snapshot; only the cheap mutable scratch is cloned. All of them alias
    // the result's tie vectors, so committed ties are simulation facts for
    // every later stem regardless of which worker simulates it.
    const unsigned num_sims = std::max(1u, ex.workers);
    const std::size_t batch_stems = cfg.batch_lanes / 2;  // 0 or 1 lane = scalar path
    for (const netlist::ClockClass& cls : classes) {
        const sim::SeqGating gating = sim::SeqGating::for_class(nl, cls.members);
        std::vector<sim::FrameSimulator> sims;
        std::vector<sim::BatchFrameSimulator> batch_sims;
        sims.reserve(num_sims);
        batch_sims.reserve(batch_stems != 0 ? num_sims : 0);
        for (unsigned w = 0; w < num_sims; ++w) {
            sims.emplace_back(topo, gating);
            if (cfg.use_equivalences) sims.back().set_equivalences(&result.equivalences.map);
            sims.back().set_ties(&result.ties.dense(), &result.ties.dense_cycles());
            if (batch_stems != 0) {
                batch_sims.emplace_back(topo, gating);
                if (cfg.use_equivalences)
                    batch_sims.back().set_equivalences(&result.equivalences.map);
                batch_sims.back().set_ties(&result.ties.dense(), &result.ties.dense_cycles());
            }
        }

        StemRecords records(cfg.record_cap);
        const SingleNodeOutcome single =
            single_node_learning(nl, sims, stems, cfg.max_frames, result.ties, result.db,
                                 records, progress ? &progress : nullptr, env, batch_sims,
                                 batch_stems);
        stems_done_base += stems.size();
        result.stats.stems_processed += single.stems_processed;
        if (single.cancelled) {
            result.stats.cancelled = true;
            break;
        }

        if (cfg.multiple_node) {
            MultipleNodeConfig mcfg = cfg.multi;
            mcfg.max_frames = cfg.max_frames;
            const MultipleNodeOutcome multi = multiple_node_learning(
                nl, sims, records, mcfg, result.ties, result.db, env, batch_sims,
                cfg.batch_lanes);
            result.stats.multi_targets += multi.targets_processed;
            result.stats.multi_relations += multi.relations_added;
            result.stats.multi_ties += multi.ties_found;
            if (multi.cancelled) {
                result.stats.cancelled = true;
                break;
            }
        }
    }

    const ImplicationDB::Counts seq_counts = result.db.counts(nl, /*min_frame=*/1);
    const ImplicationDB::Counts all_counts = result.db.counts(nl, /*min_frame=*/0);
    result.stats.ff_ff_relations = seq_counts.ff_ff;
    result.stats.gate_ff_relations = seq_counts.gate_ff;
    result.stats.comb_relations =
        (all_counts.ff_ff + all_counts.gate_ff + all_counts.gate_gate) -
        (seq_counts.ff_ff + seq_counts.gate_ff + seq_counts.gate_gate);
    result.stats.ties_combinational = result.ties.count_combinational();
    result.stats.ties_sequential = result.ties.count_sequential();
    result.stats.cpu_seconds = timer.seconds();
    return result;
}

}  // namespace seqlearn::core
