#pragma once
// Tie-gate registry (paper Section 3.2).
//
// A gate tied to v can only assume v: combinationally (tied at frame 0,
// independent of state) or sequentially (guaranteed v from frame c onward
// starting from *any* state — a c-cycle redundancy in the sense of FIRES).
// Ties feed back into learning (the simulator seeds them as facts) and
// yield untestable stuck-at faults.

#include "fault/fault.hpp"
#include "logic/val3.hpp"
#include "netlist/netlist.hpp"

#include <vector>

namespace seqlearn::core {

using logic::Val3;
using netlist::GateId;
using netlist::Netlist;

class TieSet {
public:
    explicit TieSet(std::size_t num_gates) : value_(num_gates, Val3::X), cycle_(num_gates, 0) {}

    /// Record that `gate` is tied to `v`, proven from frame `cycle` on.
    /// Re-recording with a smaller cycle keeps the smaller one. Recording
    /// the opposite value throws std::logic_error (a gate tied to both
    /// values means the learning run was fed an inconsistent circuit).
    void set(GateId gate, Val3 v, std::uint32_t cycle);

    /// Mutation counter: bumped by every set() that changes observable state
    /// (a new tie, or a proof cycle lowered). Parallel learning dispatches
    /// speculative work against a version snapshot and recomputes any item
    /// whose commit finds the version moved.
    std::uint64_t version() const noexcept { return version_; }

    /// Tied value of `gate`, or X when not tied.
    Val3 value(GateId gate) const noexcept { return value_[gate]; }

    /// Earliest frame from which the tie holds (0 = combinational).
    std::uint32_t cycle(GateId gate) const noexcept { return cycle_[gate]; }

    bool is_tied(GateId gate) const noexcept { return value_[gate] != Val3::X; }

    /// Dense gate -> tied-value vector, the format FrameSimulator::set_ties
    /// consumes. Valid as long as the TieSet lives and is not modified.
    const std::vector<Val3>& dense() const noexcept { return value_; }

    /// Dense gate -> proof-cycle vector (pairs with dense()).
    const std::vector<std::uint32_t>& dense_cycles() const noexcept { return cycle_; }

    std::size_t count() const noexcept { return count_; }
    std::size_t count_combinational() const;
    std::size_t count_sequential() const;

    /// All tied gates in id order.
    std::vector<GateId> tied_gates() const;

    /// Heap bytes held by the dense value/cycle vectors.
    std::size_t memory_bytes() const noexcept {
        return value_.capacity() * sizeof(Val3) + cycle_.capacity() * sizeof(std::uint32_t);
    }

    /// Untestable stuck-at faults implied by the ties, restricted to the
    /// given fault universe: for a gate tied to v, the stem fault s-a-v and
    /// every same-polarity branch fault on its fanout pins are untestable.
    std::vector<fault::Fault> untestable_faults(const Netlist& nl,
                                                std::span<const fault::Fault> universe) const;

private:
    std::vector<Val3> value_;
    std::vector<std::uint32_t> cycle_;
    std::size_t count_ = 0;
    std::uint64_t version_ = 0;
};

}  // namespace seqlearn::core
