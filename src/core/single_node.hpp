#pragma once
// Single-node learning (paper Section 3.1).
//
// For every fanout stem, inject 0 and 1 separately and forward-simulate
// across frames. By the contrapositive law, `s=0 => n1=v1@t` together with
// `s=1 => n2=v2@t` yields the same-frame relation `n1=!v1 => n2=v2` (at any
// frame with >= t predecessors). A node implied to the same value at the
// same frame by both stem values is a tie. All observations are also stored
// as stem records for the multiple-node pass.

#include "core/impl_db.hpp"
#include "core/stem_records.hpp"
#include "core/tie.hpp"
#include "sim/frame_sim.hpp"

#include <functional>
#include <span>

namespace seqlearn::core {

struct SingleNodeOutcome {
    std::size_t stems_processed = 0;
    std::size_t relations_added = 0;
    std::size_t ties_found = 0;
    /// Stems proven tied because injecting one value conflicted outright.
    std::size_t stem_ties = 0;
    /// True when the progress observer requested cancellation.
    bool cancelled = false;
};

/// Run single-node learning over `stems` using `sim` (whose gating,
/// equivalences, and ties configure the pass). New relations land in `db`,
/// new ties in `ties` (and are available to later stems via the simulator's
/// tie vector, which aliases `ties`), and observations in `records`.
///
/// Relations are stored when at least one side is a sequential element
/// (gate-gate relations follow from these and are skipped, as in the
/// paper). Constants and already-tied gates never form relations.
/// `progress`, when non-null, is invoked before each stem with (stems
/// visited so far, stems.size()); returning false cancels the pass (partial
/// results are kept and the outcome flagged cancelled).
SingleNodeOutcome single_node_learning(
    const netlist::Netlist& nl, sim::FrameSimulator& sim,
    std::span<const netlist::GateId> stems, std::uint32_t max_frames, TieSet& ties,
    ImplicationDB& db, StemRecords& records,
    const std::function<bool(std::size_t, std::size_t)>* progress = nullptr);

}  // namespace seqlearn::core
