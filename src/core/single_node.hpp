#pragma once
// Single-node learning (paper Section 3.1).
//
// For every fanout stem, inject 0 and 1 separately and forward-simulate
// across frames. By the contrapositive law, `s=0 => n1=v1@t` together with
// `s=1 => n2=v2@t` yields the same-frame relation `n1=!v1 => n2=v2` (at any
// frame with >= t predecessors). A node implied to the same value at the
// same frame by both stem values is a tie. All observations are also stored
// as stem records for the multiple-node pass.
//
// Execution model: the pass is serially defined — ties learned at stem k
// are simulation facts for every stem after k — yet runs on N workers with
// bit-identical results via ordered speculation (exec::speculate_ordered):
// workers simulate and extract stems against the tie state frozen at window
// dispatch, emitting per-stem result deltas; the calling thread commits the
// deltas in stem order, and any stem whose commit finds the tie set moved
// since its dispatch is recomputed against the fresh state. Tie discoveries
// are rare (a few percent of stems), so almost all speculation commits.
//
// Batching: when the caller supplies BatchFrameSimulators, stems are packed
// `batch_stems` at a time — each stem's {inject 0, inject 1} pair occupying
// two lanes — and a whole batch becomes one 64-lane bit-parallel run and one
// speculation item, shrinking both the simulation cost (constants, learned
// ties, and shared cone gates are evaluated once per batch instead of once
// per run) and the ordered-commit traffic by the batch factor. The shared
// extraction body is order-insensitive within a frame (per-frame ties are
// established before relations are emitted), so the batched and scalar
// schedules produce bit-identical learning results even though their event
// orders differ; a batch whose commit lands a new tie re-derives its
// remaining stems against the fresh tie state, preserving the exact serial
// semantics.

#include "core/impl_db.hpp"
#include "core/stem_records.hpp"
#include "core/tie.hpp"
#include "exec/budget.hpp"
#include "exec/cancel.hpp"
#include "exec/failpoint.hpp"
#include "exec/outcome.hpp"
#include "exec/pool.hpp"
#include "sim/batch_frame_sim.hpp"
#include "sim/frame_sim.hpp"

#include <functional>
#include <span>

namespace seqlearn::core {

struct SingleNodeOutcome {
    std::size_t stems_processed = 0;
    std::size_t relations_added = 0;
    std::size_t ties_found = 0;
    /// Stems proven tied because injecting one value conflicted outright.
    std::size_t stem_ties = 0;
    /// Why the pass stopped: Completed after the full stem list, otherwise
    /// the cancel/budget status observed at a stem boundary. Every stem
    /// before `next_index` is fully committed, none after is touched — the
    /// result is an exact prefix of the serial schedule.
    exec::RunStatus stop = exec::RunStatus::Completed;
    /// Resume cursor: index of the first stem not processed.
    std::size_t next_index = 0;
};

/// How a learning pass executes: serial when `pool` is null (or resolves to
/// one worker), speculative-parallel otherwise. `cancel` and `budget`, when
/// non-null, are polled at stem boundaries — cooperative, thread-safe stop
/// switches in addition to the progress observer's return value.
/// `failpoint`, when non-null, is the fault-injection harness polled inside
/// work items, speculation commits, and batch recomputes.
struct LearnExecEnv {
    exec::Pool* pool = nullptr;
    unsigned max_workers = 0;  ///< cap within the pool (0 = all slots)
    exec::CancelFlag* cancel = nullptr;
    exec::Budget* budget = nullptr;
    exec::FailurePoint* failpoint = nullptr;
};

/// Run single-node learning over `stems` using the per-worker simulators
/// `sims` (all sharing one Topology, identically configured: gating,
/// equivalences, and tie vectors aliasing `ties`). sims[0] drives the serial
/// path; sims.size() must be >= the resolved worker count. New relations
/// land in `db`, new ties in `ties` (and become simulation facts for later
/// stems via the aliased tie vectors), and observations in `records`.
///
/// Relations are stored when at least one side is a sequential element
/// (gate-gate relations follow from these and are skipped, as in the
/// paper). Constants and already-tied gates never form relations.
/// `progress`, when non-null, is invoked on the calling thread before each
/// stem with (stems visited so far, stems.size()); returning false cancels
/// the pass (partial results are kept and the outcome's stop status set).
///
/// `batch_sims` (same count and configuration discipline as `sims`) enables
/// 64-lane batched simulation: stems are packed `batch_stems` per batch
/// (clamped to 32 = 64 lanes / 2 injections). Empty `batch_sims` or
/// `batch_stems` == 0 selects the one-run-per-injection path. Results are
/// bit-identical either way.
SingleNodeOutcome single_node_learning(
    const netlist::Netlist& nl, std::span<sim::FrameSimulator> sims,
    std::span<const netlist::GateId> stems, std::uint32_t max_frames, TieSet& ties,
    ImplicationDB& db, StemRecords& records,
    const std::function<bool(std::size_t, std::size_t)>* progress = nullptr,
    const LearnExecEnv& env = {}, std::span<sim::BatchFrameSimulator> batch_sims = {},
    std::size_t batch_stems = 0);

}  // namespace seqlearn::core
