#include "core/multiple_node.hpp"

#include "exec/speculate.hpp"

#include <algorithm>
#include <array>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

/// Targets per 64-lane batch: one injection-schedule lane per target.
constexpr std::size_t kMaxBatchTargets = 64;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

struct TargetScratch {
    std::vector<sim::Injection> inj;
    sim::FrameSimResult res;
};

// Mutations one target wants to apply; at most one tie (the target itself).
struct TargetDelta {
    bool processed = false;
    bool contradiction = false;
    bool tie = false;
    GateId tie_gate = netlist::kNoGate;
    Val3 tie_value = Val3::X;
    std::uint32_t tie_cycle = 0;
    struct Rel {
        Literal lhs;
        Literal rhs;
        std::uint32_t frame;
    };
    std::vector<Rel> relations;

    void clear() {
        processed = contradiction = tie = false;
        relations.clear();
    }
};

struct DirectCtx {
    TieSet& ties;
    ImplicationDB& db;
    MultipleNodeOutcome& out;

    bool tied(GateId g) const { return ties.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        ties.set(g, v, cycle);
        ++out.ties_found;
    }
    void mark_contradiction() { ++out.contradiction_ties; }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        if (db.add(lhs, rhs, frame)) ++out.relations_added;
    }
};

struct SpecCtx {
    const TieSet& live;
    TargetDelta& delta;

    // Unlike the single-node pass, a target never reads a tie it set itself
    // (the tie paths return immediately), so no overlay is needed.
    bool tied(GateId g) const { return live.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        delta.tie = true;
        delta.tie_gate = g;
        delta.tie_value = v;
        delta.tie_cycle = cycle;
    }
    void mark_contradiction() { delta.contradiction = true; }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        delta.relations.push_back({lhs, rhs, frame});
    }
};

// The structural half of a target: the contrapositive injection schedule
// and its exact frame window. Independent of the tie set (tied stems stay
// in the schedule on purpose — their seeded facts produce the proving
// conflict), so plans can be built once per batch.
struct TargetPlan {
    bool contradictory = false;
    std::uint32_t T = 0;
};

// Append the injections of `target` to `inj` and return the plan.
TargetPlan plan_target(const StemRecords& records, const MultipleNodeConfig& cfg,
                       Literal target, std::vector<sim::Injection>& inj) {
    TargetPlan plan;
    const std::vector<StemRecord>& recs = records.records_for(target);
    std::uint32_t max_offset = 0;
    for (const StemRecord& r : recs)
        if (r.offset < cfg.max_frames) max_offset = std::max(max_offset, r.offset);
    plan.T = max_offset;

    // Contrapositive injections: target=!v at T, stems=!sv at T-offset.
    const std::size_t first = inj.size();
    const Literal premise = negate(target);
    inj.push_back({plan.T, premise.gate, premise.value});
    for (const StemRecord& r : recs) {
        if (r.offset > plan.T) continue;
        // Tied stems are not skipped: if a record contraposes against
        // the tied value, the simulator's tie seeding produces the
        // conflict that proves the target tie.
        const Literal st = negate(r.stem);
        const std::uint32_t frame = plan.T - r.offset;
        bool duplicate = false;
        for (std::size_t i = first; i < inj.size(); ++i) {
            if (inj[i].frame == frame && inj[i].gate == st.gate) {
                if (inj[i].value != st.value) plan.contradictory = true;
                duplicate = true;
                break;
            }
        }
        if (!duplicate) inj.push_back({frame, st.gate, st.value});
    }
    return plan;
}

// Extraction over a completed run (order-insensitive: the relation set is a
// function of the frame-T implied set alone). Shared by every path.
template <typename Ctx>
void extract_target(const Netlist& nl, Literal target, std::uint32_t T,
                    const sim::FrameSimResult& res, Ctx& ctx) {
    if (res.conflict) {
        ctx.set_tie(target.gate, target.value, T);
        return;
    }
    const Literal premise = negate(target);
    const bool premise_seq = netlist::is_sequential(nl.type(premise.gate));
    for (const sim::ImpliedValue& iv : res.implied) {
        if (iv.frame != T) continue;
        if (iv.gate == premise.gate) continue;
        if (is_constant(nl, iv.gate) || ctx.tied(iv.gate)) continue;
        if (!premise_seq && !netlist::is_sequential(nl.type(iv.gate))) continue;
        ctx.add_relation(premise, {iv.gate, iv.value}, T);
    }
}

// One target, start to finish, on the scalar simulator — shared by the
// serial, speculative, and recompute paths. Returns whether the target was
// processed.
template <typename Ctx>
bool process_target(const Netlist& nl, sim::FrameSimulator& sim, const StemRecords& records,
                    const MultipleNodeConfig& cfg, Literal target, TargetScratch& s,
                    Ctx& ctx) {
    if (ctx.tied(target.gate) || is_constant(nl, target.gate)) return false;
    s.inj.clear();
    const TargetPlan plan = plan_target(records, cfg, target, s.inj);

    if (plan.contradictory) {
        // Two records contrapose to opposite values on the same stem at
        // the same frame: the premise n=!v is impossible outright.
        ctx.set_tie(target.gate, target.value, plan.T);
        ctx.mark_contradiction();
        return true;
    }

    sim::FrameSimOptions opt;
    opt.max_frames = plan.T + 1;
    opt.stop_on_state_repeat = false;  // the window is already exact
    sim.run_into(s.inj, opt, s.res);
    extract_target(nl, target, plan.T, s.res, ctx);
    return true;
}

MultipleNodeOutcome run_serial(const Netlist& nl, sim::FrameSimulator& sim,
                               const StemRecords& records, const MultipleNodeConfig& cfg,
                               std::span<const Literal> targets, TieSet& ties,
                               ImplicationDB& db, const LearnExecEnv& env) {
    MultipleNodeOutcome out;
    TargetScratch scratch;
    DirectCtx ctx{ties, db, out};
    for (std::size_t idx = 0; idx < targets.size(); ++idx) {
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            break;
        }
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets) break;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        if (process_target(nl, sim, records, cfg, targets[idx], scratch, ctx))
            ++out.targets_processed;
        if (env.budget != nullptr) env.budget->note_item();
        out.next_index = idx + 1;
    }
    return out;
}

// ------------------------------------------------------------------ batched

// Per-worker scratch for the batched path. Lane spans point into the flat
// `inj` buffer, which is fully built before the spans are taken.
struct MultiBatchScratch {
    std::vector<sim::Injection> inj;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> inj_span;  // per lane
    std::vector<sim::BatchLane> lanes;
    sim::BatchFrameResult bres;
    std::array<sim::FrameSimResult, kMaxBatchTargets> lane_res;
};

// Plan and simulate targets [base, base+count) as one batch against the
// current tie view. lane_of[p] >= 0 indexes the target's lane; -1 = no lane
// (skipped or contradictory — see plans[p]).
struct BatchPlanEntry {
    int lane = -1;
    bool skipped = true;
    TargetPlan plan;
};

template <typename TiedFn>
void simulate_target_batch(sim::BatchFrameSimulator& bsim, std::span<const Literal> targets,
                           std::size_t base, std::size_t count, const StemRecords& records,
                           const MultipleNodeConfig& cfg, const Netlist& nl, TiedFn&& tied,
                           MultiBatchScratch& w,
                           std::array<BatchPlanEntry, kMaxBatchTargets>& entries) {
    w.inj.clear();
    w.inj_span.clear();
    w.lanes.clear();
    int n_lanes = 0;
    for (std::size_t p = 0; p < count; ++p) {
        BatchPlanEntry& e = entries[p];
        e = {};
        const Literal target = targets[base + p];
        if (tied(target.gate) || is_constant(nl, target.gate)) continue;
        e.skipped = false;
        const std::size_t first = w.inj.size();
        e.plan = plan_target(records, cfg, target, w.inj);
        if (e.plan.contradictory) {
            w.inj.resize(first);  // no simulation needed
            continue;
        }
        e.lane = n_lanes++;
        w.inj_span.push_back({static_cast<std::uint32_t>(first),
                              static_cast<std::uint32_t>(w.inj.size() - first)});
    }
    if (n_lanes == 0) return;
    std::uint32_t max_T = 0;
    int lane = 0;
    for (std::size_t p = 0; p < count; ++p) {
        if (entries[p].lane < 0) continue;
        const auto [off, len] = w.inj_span[static_cast<std::size_t>(lane)];
        w.lanes.push_back({{w.inj.data() + off, len}, entries[p].plan.T + 1});
        max_T = std::max(max_T, entries[p].plan.T);
        ++lane;
    }
    sim::FrameSimOptions opt;
    opt.max_frames = max_T + 1;
    opt.stop_on_state_repeat = false;  // every lane's window is exact
    bsim.run_batch(w.lanes, opt, w.bres);
    w.bres.extract_all({w.lane_res.data(), static_cast<std::size_t>(n_lanes)});
}

// NOTE: structural twin of single_node.cpp's run_batched — the commit
// skeleton is shared via exec::speculate_batches; keep the client
// scaffolding (slot sizing, version snapshot, re-batch-after-tie recompute
// loop) in lockstep with that file.
MultipleNodeOutcome run_batched(const Netlist& nl,
                                std::span<sim::BatchFrameSimulator> batch_sims,
                                const StemRecords& records, const MultipleNodeConfig& cfg,
                                std::span<const Literal> targets, std::size_t batch_targets,
                                TieSet& ties, ImplicationDB& db, const LearnExecEnv& env,
                                unsigned workers) {
    MultipleNodeOutcome out;
    const std::size_t n = targets.size();
    const std::size_t bs = std::min(batch_targets, kMaxBatchTargets);

    const exec::SpeculateOptions sopt;
    std::vector<MultiBatchScratch> ws(workers);

    struct BatchDelta {
        std::vector<TargetDelta> deltas;
        std::vector<std::uint8_t> processed;
        std::size_t computed = 0;
    };
    std::vector<BatchDelta> slots(exec::resolved_max_window(sopt, workers));

    std::uint64_t dispatch_version = 0;
    std::size_t next_progress = 0;

    // The serial observation point of a target: cancel/budget and the
    // max-targets cap, polled before every target in commit order. The poll
    // runs before the once-per-target dedup so sticky stop conditions Stop a
    // retried batch whose compute fast-aborted (see single_node.cpp).
    auto observe_target = [&](std::size_t idx) -> bool {
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            out.next_index = idx;
            return false;
        }
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets) {
            out.next_index = idx;
            return false;
        }
        if (idx >= next_progress) {
            if (env.budget != nullptr) env.budget->note_item();
            next_progress = idx + 1;
            out.next_index = next_progress;
        }
        return true;
    };

    // Re-derive targets [i, end) on the calling thread against the live tie
    // set, re-batching after every target that lands a tie. Returns false
    // when stopped by cancel/budget (hitting the target cap just ends the
    // work and stays a Completed outcome).
    auto recompute_rest = [&](std::size_t i, std::size_t end) -> bool {
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::BatchRecompute);
        DirectCtx ctx{ties, db, out};
        MultiBatchScratch& w = ws[0];
        std::array<BatchPlanEntry, kMaxBatchTargets> entries;
        while (i < end) {
            const std::size_t count = std::min(bs, end - i);
            simulate_target_batch(batch_sims[0], targets, i, count, records, cfg, nl,
                                  [&](GateId g) { return ties.is_tied(g); }, w, entries);
            std::size_t done = count;
            for (std::size_t p = 0; p < count; ++p) {
                if (!observe_target(i + p)) return out.stop == exec::RunStatus::Completed;
                const BatchPlanEntry& e = entries[p];
                if (e.skipped) continue;
                ++out.targets_processed;
                const std::uint64_t v0 = ties.version();
                if (e.plan.contradictory) {
                    ctx.set_tie(targets[i + p].gate, targets[i + p].value, e.plan.T);
                    ctx.mark_contradiction();
                } else {
                    extract_target(nl, targets[i + p], e.plan.T,
                                   w.lane_res[static_cast<std::size_t>(e.lane)], ctx);
                }
                if (ties.version() != v0) {
                    done = p + 1;  // successors were simulated pre-tie
                    break;
                }
            }
            i += done;
        }
        return true;
    };

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        BatchDelta& d = slots[slot];
        const std::size_t base = item * bs;
        const std::size_t count = std::min(bs, n - base);
        d.deltas.resize(std::max(d.deltas.size(), count));
        d.processed.assign(count, 0);
        d.computed = 0;
        // Fast abort on a pending sticky stop (see single_node.cpp).
        if ((env.cancel != nullptr && env.cancel->requested()) ||
            (env.budget != nullptr && env.budget->deadline_exceeded()))
            return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        MultiBatchScratch& w = ws[worker];
        std::array<BatchPlanEntry, kMaxBatchTargets> entries;
        simulate_target_batch(batch_sims[worker], targets, base, count, records, cfg, nl,
                              [&](GateId g) { return ties.is_tied(g); }, w, entries);
        for (std::size_t p = 0; p < count; ++p) {
            TargetDelta& delta = d.deltas[p];
            delta.clear();
            d.computed = p + 1;
            const BatchPlanEntry& e = entries[p];
            if (e.skipped) continue;
            SpecCtx ctx{ties, delta};
            if (e.plan.contradictory) {
                ctx.set_tie(targets[base + p].gate, targets[base + p].value, e.plan.T);
                ctx.mark_contradiction();
            } else {
                extract_target(nl, targets[base + p], e.plan.T,
                               w.lane_res[static_cast<std::size_t>(e.lane)], ctx);
            }
            d.processed[p] = 1;
            // A tie makes every later target's simulation stale; the commit
            // side re-derives the remainder.
            if (delta.tie) break;
        }
    };
    auto stale = [&](std::size_t pos, std::size_t slot) {
        return ties.version() != dispatch_version || pos >= slots[slot].computed;
    };
    auto apply = [&](std::size_t, std::size_t slot, std::size_t pos) {
        const BatchDelta& d = slots[slot];
        if (!d.processed[pos]) return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::SpecCommit);
        const TargetDelta& delta = d.deltas[pos];
        ++out.targets_processed;
        if (delta.tie) {
            ties.set(delta.tie_gate, delta.tie_value, delta.tie_cycle);
            ++out.ties_found;
        }
        if (delta.contradiction) ++out.contradiction_ties;
        for (const TargetDelta::Rel& r : delta.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
    };
    exec::speculate_batches(workers > 1 ? env.pool : nullptr, n, bs, sopt, prepare,
                            compute, observe_target, stale, apply, recompute_rest, workers);
    return out;
}

}  // namespace

MultipleNodeOutcome multiple_node_learning(const Netlist& nl,
                                           std::span<sim::FrameSimulator> sims,
                                           const StemRecords& records,
                                           const MultipleNodeConfig& cfg, TieSet& ties,
                                           ImplicationDB& db, const LearnExecEnv& env,
                                           std::span<sim::BatchFrameSimulator> batch_sims,
                                           std::size_t batch_targets,
                                           std::size_t first_target) {
    const std::vector<Literal> all_targets = records.targets(cfg.min_records);
    const std::size_t skip = std::min(first_target, all_targets.size());
    const std::span<const Literal> targets{all_targets.data() + skip,
                                           all_targets.size() - skip};
    // Every path below reports next_index relative to `targets`; shift back
    // to the global order before returning.
    auto globalize = [skip](MultipleNodeOutcome out) {
        out.next_index += skip;
        return out;
    };

    unsigned workers = env.pool != nullptr ? env.pool->size() : 1;
    if (env.max_workers != 0) workers = std::min(workers, env.max_workers);
    workers = std::min<unsigned>(workers, static_cast<unsigned>(sims.size()));

    if (batch_targets != 0 && !batch_sims.empty() && !targets.empty()) {
        workers = std::min<unsigned>(workers, static_cast<unsigned>(batch_sims.size()));
        return globalize(run_batched(nl, batch_sims, records, cfg, targets, batch_targets,
                                     ties, db, env, std::max(1u, workers)));
    }

    if (workers <= 1 || targets.size() < 2) {
        return globalize(run_serial(nl, sims[0], records, cfg, targets, ties, db, env));
    }

    MultipleNodeOutcome out;
    const exec::SpeculateOptions sopt;
    std::vector<TargetScratch> ws(workers);
    std::vector<TargetDelta> slots(exec::resolved_max_window(sopt, workers));
    std::uint64_t dispatch_version = 0;
    std::size_t next_progress = 0;

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        TargetDelta& d = slots[slot];
        d.clear();
        // Fast abort on a pending sticky stop (see single_node.cpp).
        if ((env.cancel != nullptr && env.cancel->requested()) ||
            (env.budget != nullptr && env.budget->deadline_exceeded()))
            return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        SpecCtx ctx{ties, d};
        d.processed =
            process_target(nl, sims[worker], records, cfg, targets[item], ws[worker], ctx);
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> exec::Commit {
        // Poll before the dedup: sticky stop conditions must Stop a retried
        // item whose compute fast-aborted (see single_node.cpp).
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            out.next_index = item;
            return exec::Commit::Stop;
        }
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets) {
            out.next_index = item;
            return exec::Commit::Stop;
        }
        if (item >= next_progress) {
            if (env.budget != nullptr) env.budget->note_item();
            next_progress = item + 1;
            out.next_index = next_progress;
        }
        if (ties.version() != dispatch_version) return exec::Commit::Retry;
        const TargetDelta& d = slots[slot];
        if (!d.processed) return exec::Commit::Done;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::SpecCommit);
        ++out.targets_processed;
        if (d.tie) {
            ties.set(d.tie_gate, d.tie_value, d.tie_cycle);
            ++out.ties_found;
        }
        if (d.contradiction) ++out.contradiction_ties;
        for (const TargetDelta::Rel& r : d.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
        return exec::Commit::Done;
    };
    exec::speculate_ordered(env.pool, targets.size(), sopt, prepare, compute, commit,
                            workers);
    return globalize(out);
}

}  // namespace seqlearn::core
