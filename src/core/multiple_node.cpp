#include "core/multiple_node.hpp"

#include "exec/speculate.hpp"

#include <algorithm>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

struct TargetScratch {
    std::vector<sim::Injection> inj;
    sim::FrameSimResult res;
};

// Mutations one target wants to apply; at most one tie (the target itself).
struct TargetDelta {
    bool processed = false;
    bool contradiction = false;
    bool tie = false;
    GateId tie_gate = netlist::kNoGate;
    Val3 tie_value = Val3::X;
    std::uint32_t tie_cycle = 0;
    struct Rel {
        Literal lhs;
        Literal rhs;
        std::uint32_t frame;
    };
    std::vector<Rel> relations;

    void clear() {
        processed = contradiction = tie = false;
        relations.clear();
    }
};

struct DirectCtx {
    TieSet& ties;
    ImplicationDB& db;
    MultipleNodeOutcome& out;

    bool tied(GateId g) const { return ties.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        ties.set(g, v, cycle);
        ++out.ties_found;
    }
    void mark_contradiction() { ++out.contradiction_ties; }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        if (db.add(lhs, rhs, frame)) ++out.relations_added;
    }
};

struct SpecCtx {
    const TieSet& live;
    TargetDelta& delta;

    // Unlike the single-node pass, a target never reads a tie it set itself
    // (the tie paths return immediately), so no overlay is needed.
    bool tied(GateId g) const { return live.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        delta.tie = true;
        delta.tie_gate = g;
        delta.tie_value = v;
        delta.tie_cycle = cycle;
    }
    void mark_contradiction() { delta.contradiction = true; }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        delta.relations.push_back({lhs, rhs, frame});
    }
};

// One target, start to finish — shared by the serial, speculative, and
// recompute paths. Returns whether the target was processed.
template <typename Ctx>
bool process_target(const Netlist& nl, sim::FrameSimulator& sim, const StemRecords& records,
                    const MultipleNodeConfig& cfg, Literal target, TargetScratch& s,
                    Ctx& ctx) {
    if (ctx.tied(target.gate) || is_constant(nl, target.gate)) return false;
    const std::vector<StemRecord>& recs = records.records_for(target);

    std::uint32_t max_offset = 0;
    for (const StemRecord& r : recs)
        if (r.offset < cfg.max_frames) max_offset = std::max(max_offset, r.offset);
    const std::uint32_t T = max_offset;

    // Contrapositive injections: target=!v at T, stems=!sv at T-offset.
    s.inj.clear();
    const Literal premise = negate(target);
    s.inj.push_back({T, premise.gate, premise.value});
    bool contradictory = false;
    for (const StemRecord& r : recs) {
        if (r.offset > T) continue;
        // Tied stems are not skipped: if a record contraposes against
        // the tied value, the simulator's tie seeding produces the
        // conflict that proves the target tie.
        const Literal st = negate(r.stem);
        const std::uint32_t frame = T - r.offset;
        bool duplicate = false;
        for (const sim::Injection& x : s.inj) {
            if (x.frame == frame && x.gate == st.gate) {
                if (x.value != st.value) contradictory = true;
                duplicate = true;
                break;
            }
        }
        if (!duplicate) s.inj.push_back({frame, st.gate, st.value});
    }

    if (contradictory) {
        // Two records contrapose to opposite values on the same stem at
        // the same frame: the premise n=!v is impossible outright.
        ctx.set_tie(target.gate, target.value, T);
        ctx.mark_contradiction();
        return true;
    }

    sim::FrameSimOptions opt;
    opt.max_frames = T + 1;
    opt.stop_on_state_repeat = false;  // the window is already exact
    sim.run_into(s.inj, opt, s.res);

    if (s.res.conflict) {
        ctx.set_tie(target.gate, target.value, T);
        return true;
    }

    const bool premise_seq = netlist::is_sequential(nl.type(premise.gate));
    for (const sim::ImpliedValue& iv : s.res.implied) {
        if (iv.frame != T) continue;
        if (iv.gate == premise.gate) continue;
        if (is_constant(nl, iv.gate) || ctx.tied(iv.gate)) continue;
        if (!premise_seq && !netlist::is_sequential(nl.type(iv.gate))) continue;
        ctx.add_relation(premise, {iv.gate, iv.value}, T);
    }
    return true;
}

MultipleNodeOutcome run_serial(const Netlist& nl, sim::FrameSimulator& sim,
                               const StemRecords& records, const MultipleNodeConfig& cfg,
                               std::span<const Literal> targets, TieSet& ties,
                               ImplicationDB& db, exec::CancelFlag* cancel) {
    MultipleNodeOutcome out;
    TargetScratch scratch;
    DirectCtx ctx{ties, db, out};
    for (const Literal target : targets) {
        if (cancel != nullptr && cancel->requested()) {
            out.cancelled = true;
            break;
        }
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets) break;
        if (process_target(nl, sim, records, cfg, target, scratch, ctx))
            ++out.targets_processed;
    }
    return out;
}

}  // namespace

MultipleNodeOutcome multiple_node_learning(const Netlist& nl,
                                           std::span<sim::FrameSimulator> sims,
                                           const StemRecords& records,
                                           const MultipleNodeConfig& cfg, TieSet& ties,
                                           ImplicationDB& db, const LearnExecEnv& env) {
    const std::vector<Literal> targets = records.targets(cfg.min_records);

    unsigned workers = env.pool != nullptr ? env.pool->size() : 1;
    if (env.max_workers != 0) workers = std::min(workers, env.max_workers);
    workers = std::min<unsigned>(workers, static_cast<unsigned>(sims.size()));
    if (workers <= 1 || targets.size() < 2) {
        return run_serial(nl, sims[0], records, cfg, targets, ties, db, env.cancel);
    }

    MultipleNodeOutcome out;
    const exec::SpeculateOptions sopt;
    std::vector<TargetScratch> ws(workers);
    std::vector<TargetDelta> slots(exec::resolved_max_window(sopt, workers));
    std::uint64_t dispatch_version = 0;

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        TargetDelta& d = slots[slot];
        d.clear();
        SpecCtx ctx{ties, d};
        d.processed =
            process_target(nl, sims[worker], records, cfg, targets[item], ws[worker], ctx);
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> exec::Commit {
        (void)item;
        if (env.cancel != nullptr && env.cancel->requested()) {
            out.cancelled = true;
            return exec::Commit::Stop;
        }
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets)
            return exec::Commit::Stop;
        if (ties.version() != dispatch_version) return exec::Commit::Retry;
        const TargetDelta& d = slots[slot];
        if (!d.processed) return exec::Commit::Done;
        ++out.targets_processed;
        if (d.tie) {
            ties.set(d.tie_gate, d.tie_value, d.tie_cycle);
            ++out.ties_found;
        }
        if (d.contradiction) ++out.contradiction_ties;
        for (const TargetDelta::Rel& r : d.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
        return exec::Commit::Done;
    };
    exec::speculate_ordered(env.pool, targets.size(), sopt, prepare, compute, commit,
                            workers);
    return out;
}

}  // namespace seqlearn::core
