#include "core/multiple_node.hpp"

#include <algorithm>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

}  // namespace

MultipleNodeOutcome multiple_node_learning(const Netlist& nl, sim::FrameSimulator& sim,
                                           const StemRecords& records,
                                           const MultipleNodeConfig& cfg, TieSet& ties,
                                           ImplicationDB& db) {
    MultipleNodeOutcome out;
    std::vector<sim::Injection> inj;
    sim::FrameSimResult res;  // reused across targets

    for (const Literal target : records.targets(cfg.min_records)) {
        if (cfg.max_targets != 0 && out.targets_processed >= cfg.max_targets) break;
        if (ties.is_tied(target.gate) || is_constant(nl, target.gate)) continue;
        const std::vector<StemRecord>& recs = records.records_for(target);

        std::uint32_t max_offset = 0;
        for (const StemRecord& r : recs)
            if (r.offset < cfg.max_frames) max_offset = std::max(max_offset, r.offset);
        const std::uint32_t T = max_offset;

        // Contrapositive injections: target=!v at T, stems=!sv at T-offset.
        inj.clear();
        const Literal premise = negate(target);
        inj.push_back({T, premise.gate, premise.value});
        bool contradictory = false;
        for (const StemRecord& r : recs) {
            if (r.offset > T) continue;
            // Tied stems are not skipped: if a record contraposes against
            // the tied value, the simulator's tie seeding produces the
            // conflict that proves the target tie.
            const Literal s = negate(r.stem);
            const std::uint32_t frame = T - r.offset;
            bool duplicate = false;
            for (const sim::Injection& x : inj) {
                if (x.frame == frame && x.gate == s.gate) {
                    if (x.value != s.value) contradictory = true;
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate) inj.push_back({frame, s.gate, s.value});
        }
        ++out.targets_processed;

        if (contradictory) {
            // Two records contrapose to opposite values on the same stem at
            // the same frame: the premise n=!v is impossible outright.
            ties.set(target.gate, target.value, T);
            ++out.ties_found;
            ++out.contradiction_ties;
            continue;
        }

        sim::FrameSimOptions opt;
        opt.max_frames = T + 1;
        opt.stop_on_state_repeat = false;  // the window is already exact
        sim.run_into(inj, opt, res);

        if (res.conflict) {
            ties.set(target.gate, target.value, T);
            ++out.ties_found;
            continue;
        }

        const bool premise_seq = netlist::is_sequential(nl.type(premise.gate));
        for (const sim::ImpliedValue& iv : res.implied) {
            if (iv.frame != T) continue;
            if (iv.gate == premise.gate) continue;
            if (is_constant(nl, iv.gate) || ties.is_tied(iv.gate)) continue;
            if (!premise_seq && !netlist::is_sequential(nl.type(iv.gate))) continue;
            if (db.add(premise, {iv.gate, iv.value}, T)) ++out.relations_added;
        }
    }
    return out;
}

}  // namespace seqlearn::core
