#include "core/db_io.hpp"

#include "util/strings.hpp"

#include <bit>
#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace seqlearn::core {

using netlist::Diagnostics;
using netlist::GateId;
using netlist::Netlist;

namespace {

// Strict full-token numeric parsing: the whole token must be digits (the
// std::stoul the loaders used before silently accepted trailing garbage,
// turning a corrupt "12x" frame into frame 12).
template <typename T>
bool parse_uint(std::string_view tok, T& out) {
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !tok.empty();
}

bool parse_value(std::string_view tok, Val3& out) {
    if (tok == "0") {
        out = Val3::Zero;
        return true;
    }
    if (tok == "1") {
        out = Val3::One;
        return true;
    }
    return false;
}

std::string quoted(std::string_view tok) { return "'" + std::string(tok) + "'"; }

void write_relations_and_ties(std::ostream& out, const Netlist& nl,
                              const ImplicationDB& db, const TieSet& ties) {
    for (const Relation& r : db.relations()) {
        out << "rel " << nl.name_of(r.lhs.gate) << ' '
            << (r.lhs.value == Val3::One ? 1 : 0) << ' ' << nl.name_of(r.rhs.gate) << ' '
            << (r.rhs.value == Val3::One ? 1 : 0) << ' ' << r.frame << "\n";
    }
    for (const GateId g : ties.tied_gates()) {
        out << "tie " << nl.name_of(g) << ' ' << (ties.value(g) == Val3::One ? 1 : 0)
            << ' ' << ties.cycle(g) << "\n";
    }
}

[[noreturn]] void throw_first_error(const char* who, const Diagnostics& diags) {
    const netlist::Diagnostic* e = diags.first_error();
    std::string msg = std::string(who) + ": " + e->message;
    if (e->line != 0) msg += " at line " + std::to_string(e->line);
    throw std::runtime_error(msg);
}

}  // namespace

void save_learned(std::ostream& out, const Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties) {
    out << "# seqlearn v1 " << nl.name() << "\n";
    write_relations_and_ties(out, nl, db, ties);
}

void save_learned(std::ostream& out, const Netlist& nl, const LearnedSnapshot& snap) {
    save_learned(out, nl, snap.db(), snap.ties());
}

LoadedSnapshot load_snapshot(std::istream& in, const Netlist& nl) {
    LoadedLearned loaded = load_learned_any(in, nl);
    LearnResult result(nl.size());
    result.db = std::move(loaded.db);
    result.ties = std::move(loaded.ties);
    return {freeze_learned(std::move(result)), loaded.skipped_lines};
}

LoadedLearned load_learned(std::istream& in, const Netlist& nl, Diagnostics& diags) {
    LoadedLearned out(nl.size());
    std::string raw;
    std::uint32_t line_no = 0;
    // Parsed relations are collected and bulk-inserted once at the end:
    // add_batch() sorts each adjacency list a single time instead of doing
    // a sorted insert per line, which matters on large snapshots.
    std::vector<Relation> rels;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty() || line[0] == '#') continue;
        const auto tok = util::split(line, " \t");
        if (tok[0] == "rel") {
            if (tok.size() != 6) {
                diags.error(line_no,
                            "malformed rel record (want: rel <lhs> <0|1> <rhs> <0|1> <frame>)");
                continue;
            }
            Val3 av{};
            Val3 bv{};
            std::uint32_t frame = 0;
            if (!parse_value(tok[2], av) || !parse_value(tok[4], bv)) {
                diags.error(line_no, "bad literal value (want 0 or 1)");
                continue;
            }
            if (!parse_uint(tok[5], frame)) {
                diags.error(line_no, "bad frame number " + quoted(tok[5]));
                continue;
            }
            const GateId a = nl.find(tok[1]);
            const GateId b = nl.find(tok[3]);
            if (a == netlist::kNoGate || b == netlist::kNoGate) {
                diags.warning(line_no,
                              "unknown gate " + quoted(a == netlist::kNoGate ? tok[1] : tok[3]) +
                                  "; entry skipped");
                ++out.skipped_lines;
                continue;
            }
            if (a == b && av != bv) {
                diags.error(line_no, "tie statement in rel record (a => !a); use tie");
                continue;
            }
            rels.push_back({{a, av}, {b, bv}, frame});
        } else if (tok[0] == "tie") {
            if (tok.size() != 4) {
                diags.error(line_no, "malformed tie record (want: tie <gate> <0|1> <cycle>)");
                continue;
            }
            Val3 v{};
            std::uint32_t cycle = 0;
            if (!parse_value(tok[2], v)) {
                diags.error(line_no, "bad tie value (want 0 or 1)");
                continue;
            }
            if (!parse_uint(tok[3], cycle)) {
                diags.error(line_no, "bad tie cycle " + quoted(tok[3]));
                continue;
            }
            const GateId g = nl.find(tok[1]);
            if (g == netlist::kNoGate) {
                diags.warning(line_no, "unknown gate " + quoted(tok[1]) + "; entry skipped");
                ++out.skipped_lines;
                continue;
            }
            try {
                out.ties.set(g, v, cycle);
            } catch (const std::logic_error&) {
                diags.error(line_no,
                            "contradictory tie (gate " + quoted(tok[1]) +
                                " already tied to the opposite value)");
            }
        } else {
            diags.error(line_no, "unknown record type " + quoted(tok[0]));
        }
    }
    out.db.add_batch(rels);
    return out;
}

LoadedLearned load_learned(std::istream& in, const Netlist& nl) {
    Diagnostics diags;
    LoadedLearned out = load_learned(in, nl, diags);
    if (!diags.ok()) throw_first_error("load_learned", diags);
    return out;
}

void save_checkpoint(std::ostream& out, const Netlist& nl, const LearnCheckpoint& ckpt) {
    if (!ckpt.cursor.valid)
        throw std::logic_error("save_checkpoint: checkpoint has no resume cursor");
    out << "# seqlearn-checkpoint v1 "
        << (ckpt.circuit.empty() ? nl.name() : ckpt.circuit) << "\n";
    out << "cursor " << ckpt.cursor.class_index << ' '
        << (ckpt.cursor.in_multi ? "multi" : "single") << ' ' << ckpt.cursor.unit << ' '
        << ckpt.cursor.config_digest << "\n";
    out << "progress " << ckpt.stems_processed << ' ' << ckpt.multi_targets << ' '
        << ckpt.multi_relations << ' ' << ckpt.multi_ties << "\n";
    out << "cap " << ckpt.records.cap() << "\n";
    write_relations_and_ties(out, nl, ckpt.db, ckpt.ties);
    // Stem records in deterministic key order; per-key record order is the
    // insertion order, which the loader reproduces by re-adding in file
    // order — a resumed multi pass sees byte-identical record vectors.
    for (const Literal key : ckpt.records.targets(1)) {
        for (const StemRecord& r : ckpt.records.records_for(key)) {
            out << "rec " << nl.name_of(key.gate) << ' '
                << (key.value == Val3::One ? 1 : 0) << ' ' << nl.name_of(r.stem.gate)
                << ' ' << (r.stem.value == Val3::One ? 1 : 0) << ' ' << r.offset << "\n";
        }
    }
}

LearnCheckpoint load_checkpoint(std::istream& in, const Netlist& nl, Diagnostics& diags) {
    LearnCheckpoint ckpt(nl.size());
    bool have_header = false;
    bool have_cursor = false;
    bool have_cap = false;
    std::string raw;
    std::uint32_t line_no = 0;

    // Checkpoints must round-trip exactly: a gate name the netlist does not
    // know means the file belongs to a different circuit, which is an error
    // here (resuming against it would silently diverge from the goldens).
    auto find_gate = [&](std::string_view name, GateId& g) {
        g = nl.find(name);
        if (g == netlist::kNoGate) {
            diags.error(line_no, "unknown gate " + quoted(name));
            return false;
        }
        return true;
    };

    while (std::getline(in, raw)) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty()) continue;
        if (line[0] == '#') {
            if (!have_header && util::starts_with(line, "# seqlearn-checkpoint")) {
                const auto tok = util::split(line, " \t");
                if (tok.size() < 3 || tok[2] != "v1") {
                    diags.error(line_no, "unsupported checkpoint version");
                    continue;
                }
                if (tok.size() >= 4) ckpt.circuit = std::string(tok[3]);
                have_header = true;
            }
            continue;
        }
        const auto tok = util::split(line, " \t");
        if (tok[0] == "cursor") {
            std::uint64_t ci = 0;
            std::uint64_t unit = 0;
            std::uint64_t digest = 0;
            if (tok.size() != 5 || (tok[2] != "single" && tok[2] != "multi") ||
                !parse_uint(tok[1], ci) || !parse_uint(tok[3], unit) ||
                !parse_uint(tok[4], digest)) {
                diags.error(line_no,
                            "malformed cursor record (want: cursor <class> "
                            "<single|multi> <unit> <digest>)");
                continue;
            }
            ckpt.cursor.valid = true;
            ckpt.cursor.class_index = static_cast<std::size_t>(ci);
            ckpt.cursor.in_multi = tok[2] == "multi";
            ckpt.cursor.unit = static_cast<std::size_t>(unit);
            ckpt.cursor.config_digest = digest;
            have_cursor = true;
        } else if (tok[0] == "progress") {
            std::uint64_t v[4] = {};
            if (tok.size() != 5 || !parse_uint(tok[1], v[0]) || !parse_uint(tok[2], v[1]) ||
                !parse_uint(tok[3], v[2]) || !parse_uint(tok[4], v[3])) {
                diags.error(line_no, "malformed progress record");
                continue;
            }
            ckpt.stems_processed = static_cast<std::size_t>(v[0]);
            ckpt.multi_targets = static_cast<std::size_t>(v[1]);
            ckpt.multi_relations = static_cast<std::size_t>(v[2]);
            ckpt.multi_ties = static_cast<std::size_t>(v[3]);
        } else if (tok[0] == "cap") {
            std::uint64_t cap = 0;
            if (tok.size() != 2 || !parse_uint(tok[1], cap)) {
                diags.error(line_no, "malformed cap record");
                continue;
            }
            ckpt.records = StemRecords(static_cast<std::size_t>(cap));
            have_cap = true;
        } else if (tok[0] == "rel") {
            Val3 av{};
            Val3 bv{};
            std::uint32_t frame = 0;
            GateId a = netlist::kNoGate;
            GateId b = netlist::kNoGate;
            if (tok.size() != 6 || !parse_value(tok[2], av) || !parse_value(tok[4], bv) ||
                !parse_uint(tok[5], frame)) {
                diags.error(line_no, "malformed rel record");
                continue;
            }
            if (!find_gate(tok[1], a) || !find_gate(tok[3], b)) continue;
            ckpt.db.add({a, av}, {b, bv}, frame);
        } else if (tok[0] == "tie") {
            Val3 v{};
            std::uint32_t cycle = 0;
            GateId g = netlist::kNoGate;
            if (tok.size() != 4 || !parse_value(tok[2], v) || !parse_uint(tok[3], cycle)) {
                diags.error(line_no, "malformed tie record");
                continue;
            }
            if (!find_gate(tok[1], g)) continue;
            try {
                ckpt.ties.set(g, v, cycle);
            } catch (const std::logic_error&) {
                diags.error(line_no, "contradictory tie for gate " + quoted(tok[1]));
            }
        } else if (tok[0] == "rec") {
            Val3 nv{};
            Val3 sv{};
            std::uint32_t offset = 0;
            GateId node = netlist::kNoGate;
            GateId stem = netlist::kNoGate;
            if (tok.size() != 6 || !parse_value(tok[2], nv) || !parse_value(tok[4], sv) ||
                !parse_uint(tok[5], offset)) {
                diags.error(line_no,
                            "malformed rec record (want: rec <node> <0|1> <stem> <0|1> "
                            "<offset>)");
                continue;
            }
            if (!have_cap) {
                diags.error(line_no, "rec record before cap record");
                continue;
            }
            if (!find_gate(tok[1], node) || !find_gate(tok[3], stem)) continue;
            ckpt.records.add({node, nv}, {stem, sv}, offset);
        } else {
            diags.error(line_no, "unknown record type " + quoted(tok[0]));
        }
    }
    if (!have_header) diags.error(0, "missing '# seqlearn-checkpoint v1' header");
    if (!have_cursor) diags.error(0, "missing cursor record");
    // An erroneous checkpoint must not look resumable.
    if (!diags.ok()) ckpt.cursor.valid = false;
    return ckpt;
}

LearnCheckpoint load_checkpoint(std::istream& in, const Netlist& nl) {
    Diagnostics diags;
    LearnCheckpoint ckpt = load_checkpoint(in, nl, diags);
    if (!diags.ok()) throw_first_error("load_checkpoint", diags);
    return ckpt;
}

// --- binary snapshot format (v2) -------------------------------------------

namespace {

constexpr char kBinaryMagic[8] = {'S', 'E', 'Q', 'L', 'N', 'D', 'B', '2'};
constexpr std::uint32_t kBinaryVersion = 2;
constexpr std::uint32_t kBinaryHeaderBytes = 32;

// Explicit little-endian encoding, independent of host byte order: a file
// written on one machine loads on any other.
void put_u32(std::string& buf, std::uint32_t v) {
    buf.push_back(static_cast<char>(v & 0xff));
    buf.push_back(static_cast<char>((v >> 8) & 0xff));
    buf.push_back(static_cast<char>((v >> 16) & 0xff));
    buf.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& buf, std::uint64_t v) {
    put_u32(buf, static_cast<std::uint32_t>(v & 0xffffffffULL));
    put_u32(buf, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
    return static_cast<std::uint64_t>(get_u32(p)) |
           (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

[[noreturn]] void binary_error(const std::string& what) {
    throw std::runtime_error("load_learned_binary: " + what);
}

void read_exact(std::istream& in, void* dst, std::size_t n, const char* what) {
    in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
        binary_error(std::string("truncated file (") + what + ")");
}

std::uint32_t checked_lit_key(Literal l) {
    const std::uint64_t key = lit_key(l);
    if (key > 0xffffffffULL)
        throw std::invalid_argument("save_learned_binary: literal key exceeds 32 bits");
    return static_cast<std::uint32_t>(key);
}

}  // namespace

std::uint64_t netlist_digest(const Netlist& nl) {
    // The digest is recomputed on every binary snapshot load, so it has to
    // be cheap on large circuits. Two things make it so: names are mixed a
    // word at a time rather than per byte (length first, so "ab"+"c" and
    // "a"+"bc" stay distinct), and gates feed four independent FNV lanes —
    // a single lane is a serial multiply chain whose latency, not the data
    // volume, bounds the whole computation.
    std::uint64_t lanes[4] = {1469598103934665603ULL, 15601891126605076235ULL,
                              5575097247067471337ULL, 10003595204564453689ULL};
    std::uint64_t* h = lanes;
    const auto mix = [&h](std::uint64_t x) {
        *h ^= x;
        *h *= 1099511628211ULL;
    };
    const auto mix_word = [&](const char* p, std::size_t n) {
        std::uint64_t w = 0;
        if (n == 8) {
            std::memcpy(&w, p, 8);
            if constexpr (std::endian::native == std::endian::big)
                w = __builtin_bswap64(w);
        } else {
            for (std::size_t j = 0; j < n; ++j)
                w |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[j]))
                     << (8 * j);
        }
        mix(w);
    };
    const auto mix_bytes = [&](std::string_view s) {
        mix(s.size());
        std::size_t i = 0;
        for (; i + 8 <= s.size(); i += 8) mix_word(s.data() + i, 8);
        if (i < s.size()) mix_word(s.data() + i, s.size() - i);
    };
    mix(nl.size());
    for (GateId g = 0; g < nl.size(); ++g) {
        h = &lanes[g & 3];
        mix_bytes(nl.name_of(g));
        mix(static_cast<std::uint64_t>(nl.type(g)));
        for (const GateId f : nl.fanins(g)) mix(f);
    }
    std::uint64_t out = lanes[0];
    for (int i = 1; i < 4; ++i) {
        out ^= lanes[i];
        out *= 1099511628211ULL;
    }
    return out;
}

void save_learned_binary(std::ostream& out, const Netlist& nl, const ImplicationDB& db,
                         const TieSet& ties) {
    std::string buf;
    buf.append(kBinaryMagic, sizeof kBinaryMagic);
    put_u32(buf, kBinaryVersion);
    put_u32(buf, kBinaryHeaderBytes);
    put_u64(buf, netlist_digest(nl));
    put_u32(buf, static_cast<std::uint32_t>(nl.size()));
    put_u32(buf, 0);  // reserved

    // The adjacency is written verbatim, both directions of every relation,
    // each list in its in-memory (sorted) order: the loader then installs
    // lists by straight copy instead of re-deriving contrapositives and
    // re-sorting. See the format comment in db_io.hpp.
    std::uint64_t list_count = 0;
    std::uint64_t edge_count = 0;
    const std::uint64_t num_keys = nl.size() * 2;
    for (std::uint64_t key = 0; key < num_keys; ++key) {
        const std::size_t n = db.edges_of(lit_from_key(key)).size();
        if (n > 0) {
            ++list_count;
            edge_count += n;
        }
    }
    buf.reserve(buf.size() + 16 + list_count * 8 + edge_count * 8);
    put_u64(buf, list_count);
    put_u64(buf, edge_count);
    for (std::uint64_t key = 0; key < num_keys; ++key) {
        const Literal lhs = lit_from_key(key);
        const std::span<const ImplicationDB::Edge> edges = db.edges_of(lhs);
        if (edges.empty()) continue;
        put_u32(buf, checked_lit_key(lhs));
        put_u32(buf, static_cast<std::uint32_t>(edges.size()));
        for (const ImplicationDB::Edge& e : edges) {
            put_u32(buf, checked_lit_key(e.to));
            put_u32(buf, e.frame);
        }
    }
    const std::vector<GateId> tied = ties.tied_gates();
    buf.reserve(buf.size() + tied.size() * 12);
    put_u64(buf, tied.size());
    for (const GateId g : tied) {
        put_u32(buf, g);
        put_u32(buf, ties.value(g) == Val3::One ? 1u : 0u);
        put_u32(buf, ties.cycle(g));
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

bool is_binary_db(std::istream& in) {
    const std::istream::pos_type pos = in.tellg();
    char magic[sizeof kBinaryMagic] = {};
    in.read(magic, sizeof magic);
    const bool got_all = in.gcount() == static_cast<std::streamsize>(sizeof magic);
    in.clear();  // a short text file legitimately hits EOF here
    in.seekg(pos);
    return got_all && std::memcmp(magic, kBinaryMagic, sizeof magic) == 0;
}

LoadedLearned load_learned_binary(std::istream& in, const Netlist& nl) {
    unsigned char header[kBinaryHeaderBytes];
    read_exact(in, header, sizeof header, "header");
    if (std::memcmp(header, kBinaryMagic, sizeof kBinaryMagic) != 0)
        binary_error("bad magic (not a seqlearn binary DB)");
    const std::uint32_t version = get_u32(header + 8);
    if (version != kBinaryVersion)
        binary_error("unsupported version " + std::to_string(version));
    const std::uint32_t header_bytes = get_u32(header + 12);
    if (header_bytes < kBinaryHeaderBytes)
        binary_error("header too small");
    if (header_bytes > kBinaryHeaderBytes) {
        // Forward-compatible skip of any future header extension.
        in.ignore(header_bytes - kBinaryHeaderBytes);
        if (!in) binary_error("truncated extended header");
    }
    const std::uint64_t digest = get_u64(header + 16);
    const std::uint32_t gates = get_u32(header + 24);
    if (gates != nl.size())
        binary_error("gate count mismatch (file " + std::to_string(gates) + ", netlist " +
                     std::to_string(nl.size()) + ")");
    const std::uint64_t want_digest = netlist_digest(nl);
    if (digest != want_digest)
        binary_error("netlist digest mismatch (file was saved from a different circuit)");

    LoadedLearned out(nl.size());
    unsigned char count_buf[16];
    read_exact(in, count_buf, 16, "adjacency section header");
    const std::uint64_t list_count = get_u64(count_buf);
    const std::uint64_t edge_count = get_u64(count_buf + 8);
    // Each section is one bulk read; decoding then runs over memory. A
    // per-record istream::read would pay the stream's per-call overhead
    // once per edge — that alone erased most of the binary format's
    // speed advantage over the text parser.
    constexpr std::uint64_t kSaneRecords = 1ULL << 32;
    if (edge_count > kSaneRecords) binary_error("implausible edge count");
    if (list_count > nl.size() * 2 || list_count > edge_count)
        binary_error("implausible adjacency list count");
    std::vector<unsigned char> recs(
        static_cast<std::size_t>(list_count * 8 + edge_count * 8));
    read_exact(in, recs.data(), recs.size(), "adjacency lists");
    // Lists land pre-sorted and pre-deduped; each decodes into an
    // exact-sized vector that set_edges() moves into place. set_edges + the
    // final seal() re-verify every structural invariant, so a corrupt or
    // hand-forged file is rejected, not ingested.
    const unsigned char* p = recs.data();
    std::uint64_t prev_key = 0;
    std::uint64_t edges_seen = 0;
    for (std::uint64_t i = 0; i < list_count; ++i) {
        const std::uint64_t key = get_u32(p);
        const std::uint64_t count = get_u32(p + 4);
        p += 8;
        if (i > 0 && key <= prev_key) binary_error("adjacency keys out of order");
        prev_key = key;
        if (key >= nl.size() * 2) binary_error("adjacency key beyond the netlist");
        if (count == 0) binary_error("empty adjacency list stored");
        if (count > edge_count - edges_seen) binary_error("edge count overflow");
        edges_seen += count;
        std::vector<ImplicationDB::Edge> list;
        list.reserve(static_cast<std::size_t>(count));
        // Target range and ordering are set_edges()'s job — no need to
        // duplicate the per-edge checks here.
        for (std::uint64_t c = 0; c < count; ++c) {
            list.push_back({lit_from_key(get_u32(p)), get_u32(p + 4)});
            p += 8;
        }
        try {
            out.db.set_edges(lit_from_key(key), std::move(list));
        } catch (const std::invalid_argument& e) {
            binary_error(e.what());
        }
    }
    if (edges_seen != edge_count) binary_error("edge count mismatch");
    try {
        out.db.seal();
    } catch (const std::invalid_argument& e) {
        binary_error(e.what());
    }
    read_exact(in, count_buf, 8, "tie count");
    const std::uint64_t tie_count = get_u64(count_buf);
    if (tie_count > kSaneRecords) binary_error("implausible tie count");
    recs.resize(static_cast<std::size_t>(tie_count) * 12);
    read_exact(in, recs.data(), recs.size(), "tie records");
    for (std::uint64_t i = 0; i < tie_count; ++i) {
        const unsigned char* rec = recs.data() + i * 12;
        const std::uint32_t gate = get_u32(rec);
        const std::uint32_t value = get_u32(rec + 4);
        const std::uint32_t cycle = get_u32(rec + 8);
        if (gate >= nl.size()) binary_error("tie names gate beyond the netlist");
        if (value > 1) binary_error("tie value out of range");
        out.ties.set(gate, value == 1 ? Val3::One : Val3::Zero, cycle);
    }
    return out;
}

LoadedLearned load_learned_any(std::istream& in, const Netlist& nl) {
    if (is_binary_db(in)) return load_learned_binary(in, nl);
    return load_learned(in, nl);
}

std::optional<BinaryDbInfo> probe_binary_db(std::string_view bytes) {
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    std::size_t remaining = bytes.size();
    const auto take = [&](std::size_t n) -> const unsigned char* {
        if (remaining < n) return nullptr;
        const unsigned char* at = p;
        p += n;
        remaining -= n;
        return at;
    };

    const unsigned char* header = take(kBinaryHeaderBytes);
    if (header == nullptr) return std::nullopt;
    if (std::memcmp(header, kBinaryMagic, sizeof kBinaryMagic) != 0) return std::nullopt;
    if (get_u32(header + 8) != kBinaryVersion) return std::nullopt;
    const std::uint32_t header_bytes = get_u32(header + 12);
    if (header_bytes < kBinaryHeaderBytes) return std::nullopt;
    if (take(header_bytes - kBinaryHeaderBytes) == nullptr) return std::nullopt;

    BinaryDbInfo info;
    info.netlist_digest = get_u64(header + 16);
    info.gates = get_u32(header + 24);

    // Walk every section and require the counts to tile the byte range
    // exactly: any truncation — at a section boundary or inside one — and
    // any appended garbage fails here, before anything trusts the blob.
    const unsigned char* counts = take(16);
    if (counts == nullptr) return std::nullopt;
    const std::uint64_t list_count = get_u64(counts);
    const std::uint64_t edge_count = get_u64(counts + 8);
    if (edge_count % 2 != 0) return std::nullopt;  // closure stores both directions
    std::uint64_t edges_seen = 0;
    std::uint64_t prev_key = 0;
    for (std::uint64_t i = 0; i < list_count; ++i) {
        const unsigned char* list = take(8);
        if (list == nullptr) return std::nullopt;
        const std::uint64_t key = get_u32(list);
        const std::uint64_t count = get_u32(list + 4);
        if (i > 0 && key <= prev_key) return std::nullopt;
        prev_key = key;
        if (key >= std::uint64_t{info.gates} * 2) return std::nullopt;
        if (count == 0 || count > edge_count - edges_seen) return std::nullopt;
        edges_seen += count;
        if (take(count * 8) == nullptr) return std::nullopt;
    }
    if (edges_seen != edge_count) return std::nullopt;
    const unsigned char* tie_header = take(8);
    if (tie_header == nullptr) return std::nullopt;
    const std::uint64_t tie_count = get_u64(tie_header);
    if (take(tie_count * 12) == nullptr) return std::nullopt;
    if (remaining != 0) return std::nullopt;  // trailing garbage

    info.relations = edge_count / 2;
    info.ties = tie_count;
    return info;
}

}  // namespace seqlearn::core
