#include "core/db_io.hpp"

#include "util/strings.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace seqlearn::core {

using netlist::Diagnostics;
using netlist::GateId;
using netlist::Netlist;

namespace {

// Strict full-token numeric parsing: the whole token must be digits (the
// std::stoul the loaders used before silently accepted trailing garbage,
// turning a corrupt "12x" frame into frame 12).
template <typename T>
bool parse_uint(std::string_view tok, T& out) {
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !tok.empty();
}

bool parse_value(std::string_view tok, Val3& out) {
    if (tok == "0") {
        out = Val3::Zero;
        return true;
    }
    if (tok == "1") {
        out = Val3::One;
        return true;
    }
    return false;
}

std::string quoted(std::string_view tok) { return "'" + std::string(tok) + "'"; }

void write_relations_and_ties(std::ostream& out, const Netlist& nl,
                              const ImplicationDB& db, const TieSet& ties) {
    for (const Relation& r : db.relations()) {
        out << "rel " << nl.name_of(r.lhs.gate) << ' '
            << (r.lhs.value == Val3::One ? 1 : 0) << ' ' << nl.name_of(r.rhs.gate) << ' '
            << (r.rhs.value == Val3::One ? 1 : 0) << ' ' << r.frame << "\n";
    }
    for (const GateId g : ties.tied_gates()) {
        out << "tie " << nl.name_of(g) << ' ' << (ties.value(g) == Val3::One ? 1 : 0)
            << ' ' << ties.cycle(g) << "\n";
    }
}

[[noreturn]] void throw_first_error(const char* who, const Diagnostics& diags) {
    const netlist::Diagnostic* e = diags.first_error();
    std::string msg = std::string(who) + ": " + e->message;
    if (e->line != 0) msg += " at line " + std::to_string(e->line);
    throw std::runtime_error(msg);
}

}  // namespace

void save_learned(std::ostream& out, const Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties) {
    out << "# seqlearn v1 " << nl.name() << "\n";
    write_relations_and_ties(out, nl, db, ties);
}

void save_learned(std::ostream& out, const Netlist& nl, const LearnedSnapshot& snap) {
    save_learned(out, nl, snap.db(), snap.ties());
}

LoadedSnapshot load_snapshot(std::istream& in, const Netlist& nl) {
    LoadedLearned loaded = load_learned(in, nl);
    LearnResult result(nl.size());
    result.db = std::move(loaded.db);
    result.ties = std::move(loaded.ties);
    return {freeze_learned(std::move(result)), loaded.skipped_lines};
}

LoadedLearned load_learned(std::istream& in, const Netlist& nl, Diagnostics& diags) {
    LoadedLearned out(nl.size());
    std::string raw;
    std::uint32_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty() || line[0] == '#') continue;
        const auto tok = util::split(line, " \t");
        if (tok[0] == "rel") {
            if (tok.size() != 6) {
                diags.error(line_no,
                            "malformed rel record (want: rel <lhs> <0|1> <rhs> <0|1> <frame>)");
                continue;
            }
            Val3 av{};
            Val3 bv{};
            std::uint32_t frame = 0;
            if (!parse_value(tok[2], av) || !parse_value(tok[4], bv)) {
                diags.error(line_no, "bad literal value (want 0 or 1)");
                continue;
            }
            if (!parse_uint(tok[5], frame)) {
                diags.error(line_no, "bad frame number " + quoted(tok[5]));
                continue;
            }
            const GateId a = nl.find(tok[1]);
            const GateId b = nl.find(tok[3]);
            if (a == netlist::kNoGate || b == netlist::kNoGate) {
                diags.warning(line_no,
                              "unknown gate " + quoted(a == netlist::kNoGate ? tok[1] : tok[3]) +
                                  "; entry skipped");
                ++out.skipped_lines;
                continue;
            }
            out.db.add({a, av}, {b, bv}, frame);
        } else if (tok[0] == "tie") {
            if (tok.size() != 4) {
                diags.error(line_no, "malformed tie record (want: tie <gate> <0|1> <cycle>)");
                continue;
            }
            Val3 v{};
            std::uint32_t cycle = 0;
            if (!parse_value(tok[2], v)) {
                diags.error(line_no, "bad tie value (want 0 or 1)");
                continue;
            }
            if (!parse_uint(tok[3], cycle)) {
                diags.error(line_no, "bad tie cycle " + quoted(tok[3]));
                continue;
            }
            const GateId g = nl.find(tok[1]);
            if (g == netlist::kNoGate) {
                diags.warning(line_no, "unknown gate " + quoted(tok[1]) + "; entry skipped");
                ++out.skipped_lines;
                continue;
            }
            try {
                out.ties.set(g, v, cycle);
            } catch (const std::logic_error&) {
                diags.error(line_no,
                            "contradictory tie (gate " + quoted(tok[1]) +
                                " already tied to the opposite value)");
            }
        } else {
            diags.error(line_no, "unknown record type " + quoted(tok[0]));
        }
    }
    return out;
}

LoadedLearned load_learned(std::istream& in, const Netlist& nl) {
    Diagnostics diags;
    LoadedLearned out = load_learned(in, nl, diags);
    if (!diags.ok()) throw_first_error("load_learned", diags);
    return out;
}

void save_checkpoint(std::ostream& out, const Netlist& nl, const LearnCheckpoint& ckpt) {
    if (!ckpt.cursor.valid)
        throw std::logic_error("save_checkpoint: checkpoint has no resume cursor");
    out << "# seqlearn-checkpoint v1 "
        << (ckpt.circuit.empty() ? nl.name() : ckpt.circuit) << "\n";
    out << "cursor " << ckpt.cursor.class_index << ' '
        << (ckpt.cursor.in_multi ? "multi" : "single") << ' ' << ckpt.cursor.unit << ' '
        << ckpt.cursor.config_digest << "\n";
    out << "progress " << ckpt.stems_processed << ' ' << ckpt.multi_targets << ' '
        << ckpt.multi_relations << ' ' << ckpt.multi_ties << "\n";
    out << "cap " << ckpt.records.cap() << "\n";
    write_relations_and_ties(out, nl, ckpt.db, ckpt.ties);
    // Stem records in deterministic key order; per-key record order is the
    // insertion order, which the loader reproduces by re-adding in file
    // order — a resumed multi pass sees byte-identical record vectors.
    for (const Literal key : ckpt.records.targets(1)) {
        for (const StemRecord& r : ckpt.records.records_for(key)) {
            out << "rec " << nl.name_of(key.gate) << ' '
                << (key.value == Val3::One ? 1 : 0) << ' ' << nl.name_of(r.stem.gate)
                << ' ' << (r.stem.value == Val3::One ? 1 : 0) << ' ' << r.offset << "\n";
        }
    }
}

LearnCheckpoint load_checkpoint(std::istream& in, const Netlist& nl, Diagnostics& diags) {
    LearnCheckpoint ckpt(nl.size());
    bool have_header = false;
    bool have_cursor = false;
    bool have_cap = false;
    std::string raw;
    std::uint32_t line_no = 0;

    // Checkpoints must round-trip exactly: a gate name the netlist does not
    // know means the file belongs to a different circuit, which is an error
    // here (resuming against it would silently diverge from the goldens).
    auto find_gate = [&](std::string_view name, GateId& g) {
        g = nl.find(name);
        if (g == netlist::kNoGate) {
            diags.error(line_no, "unknown gate " + quoted(name));
            return false;
        }
        return true;
    };

    while (std::getline(in, raw)) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty()) continue;
        if (line[0] == '#') {
            if (!have_header && util::starts_with(line, "# seqlearn-checkpoint")) {
                const auto tok = util::split(line, " \t");
                if (tok.size() < 3 || tok[2] != "v1") {
                    diags.error(line_no, "unsupported checkpoint version");
                    continue;
                }
                if (tok.size() >= 4) ckpt.circuit = std::string(tok[3]);
                have_header = true;
            }
            continue;
        }
        const auto tok = util::split(line, " \t");
        if (tok[0] == "cursor") {
            std::uint64_t ci = 0;
            std::uint64_t unit = 0;
            std::uint64_t digest = 0;
            if (tok.size() != 5 || (tok[2] != "single" && tok[2] != "multi") ||
                !parse_uint(tok[1], ci) || !parse_uint(tok[3], unit) ||
                !parse_uint(tok[4], digest)) {
                diags.error(line_no,
                            "malformed cursor record (want: cursor <class> "
                            "<single|multi> <unit> <digest>)");
                continue;
            }
            ckpt.cursor.valid = true;
            ckpt.cursor.class_index = static_cast<std::size_t>(ci);
            ckpt.cursor.in_multi = tok[2] == "multi";
            ckpt.cursor.unit = static_cast<std::size_t>(unit);
            ckpt.cursor.config_digest = digest;
            have_cursor = true;
        } else if (tok[0] == "progress") {
            std::uint64_t v[4] = {};
            if (tok.size() != 5 || !parse_uint(tok[1], v[0]) || !parse_uint(tok[2], v[1]) ||
                !parse_uint(tok[3], v[2]) || !parse_uint(tok[4], v[3])) {
                diags.error(line_no, "malformed progress record");
                continue;
            }
            ckpt.stems_processed = static_cast<std::size_t>(v[0]);
            ckpt.multi_targets = static_cast<std::size_t>(v[1]);
            ckpt.multi_relations = static_cast<std::size_t>(v[2]);
            ckpt.multi_ties = static_cast<std::size_t>(v[3]);
        } else if (tok[0] == "cap") {
            std::uint64_t cap = 0;
            if (tok.size() != 2 || !parse_uint(tok[1], cap)) {
                diags.error(line_no, "malformed cap record");
                continue;
            }
            ckpt.records = StemRecords(static_cast<std::size_t>(cap));
            have_cap = true;
        } else if (tok[0] == "rel") {
            Val3 av{};
            Val3 bv{};
            std::uint32_t frame = 0;
            GateId a = netlist::kNoGate;
            GateId b = netlist::kNoGate;
            if (tok.size() != 6 || !parse_value(tok[2], av) || !parse_value(tok[4], bv) ||
                !parse_uint(tok[5], frame)) {
                diags.error(line_no, "malformed rel record");
                continue;
            }
            if (!find_gate(tok[1], a) || !find_gate(tok[3], b)) continue;
            ckpt.db.add({a, av}, {b, bv}, frame);
        } else if (tok[0] == "tie") {
            Val3 v{};
            std::uint32_t cycle = 0;
            GateId g = netlist::kNoGate;
            if (tok.size() != 4 || !parse_value(tok[2], v) || !parse_uint(tok[3], cycle)) {
                diags.error(line_no, "malformed tie record");
                continue;
            }
            if (!find_gate(tok[1], g)) continue;
            try {
                ckpt.ties.set(g, v, cycle);
            } catch (const std::logic_error&) {
                diags.error(line_no, "contradictory tie for gate " + quoted(tok[1]));
            }
        } else if (tok[0] == "rec") {
            Val3 nv{};
            Val3 sv{};
            std::uint32_t offset = 0;
            GateId node = netlist::kNoGate;
            GateId stem = netlist::kNoGate;
            if (tok.size() != 6 || !parse_value(tok[2], nv) || !parse_value(tok[4], sv) ||
                !parse_uint(tok[5], offset)) {
                diags.error(line_no,
                            "malformed rec record (want: rec <node> <0|1> <stem> <0|1> "
                            "<offset>)");
                continue;
            }
            if (!have_cap) {
                diags.error(line_no, "rec record before cap record");
                continue;
            }
            if (!find_gate(tok[1], node) || !find_gate(tok[3], stem)) continue;
            ckpt.records.add({node, nv}, {stem, sv}, offset);
        } else {
            diags.error(line_no, "unknown record type " + quoted(tok[0]));
        }
    }
    if (!have_header) diags.error(0, "missing '# seqlearn-checkpoint v1' header");
    if (!have_cursor) diags.error(0, "missing cursor record");
    // An erroneous checkpoint must not look resumable.
    if (!diags.ok()) ckpt.cursor.valid = false;
    return ckpt;
}

LearnCheckpoint load_checkpoint(std::istream& in, const Netlist& nl) {
    Diagnostics diags;
    LearnCheckpoint ckpt = load_checkpoint(in, nl, diags);
    if (!diags.ok()) throw_first_error("load_checkpoint", diags);
    return ckpt;
}

}  // namespace seqlearn::core
