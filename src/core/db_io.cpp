#include "core/db_io.hpp"

#include "util/strings.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace seqlearn::core {

using netlist::GateId;
using netlist::Netlist;

void save_learned(std::ostream& out, const Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties) {
    out << "# seqlearn v1 " << nl.name() << "\n";
    for (const Relation& r : db.relations()) {
        out << "rel " << nl.name_of(r.lhs.gate) << ' '
            << (r.lhs.value == Val3::One ? 1 : 0) << ' ' << nl.name_of(r.rhs.gate) << ' '
            << (r.rhs.value == Val3::One ? 1 : 0) << ' ' << r.frame << "\n";
    }
    for (const GateId g : ties.tied_gates()) {
        out << "tie " << nl.name_of(g) << ' ' << (ties.value(g) == Val3::One ? 1 : 0)
            << ' ' << ties.cycle(g) << "\n";
    }
}

void save_learned(std::ostream& out, const Netlist& nl, const LearnedSnapshot& snap) {
    save_learned(out, nl, snap.db(), snap.ties());
}

LoadedSnapshot load_snapshot(std::istream& in, const Netlist& nl) {
    LoadedLearned loaded = load_learned(in, nl);
    LearnResult result(nl.size());
    result.db = std::move(loaded.db);
    result.ties = std::move(loaded.ties);
    return {freeze_learned(std::move(result)), loaded.skipped_lines};
}

LoadedLearned load_learned(std::istream& in, const Netlist& nl) {
    LoadedLearned out(nl.size());
    std::string raw;
    std::size_t line_no = 0;
    auto parse_value = [&](std::string_view tok) {
        if (tok == "0") return Val3::Zero;
        if (tok == "1") return Val3::One;
        throw std::runtime_error("load_learned: bad value at line " + std::to_string(line_no));
    };
    while (std::getline(in, raw)) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty() || line[0] == '#') continue;
        const auto tok = util::split(line, " \t");
        if (tok[0] == "rel") {
            if (tok.size() != 6)
                throw std::runtime_error("load_learned: malformed rel at line " +
                                         std::to_string(line_no));
            const GateId a = nl.find(tok[1]);
            const GateId b = nl.find(tok[3]);
            if (a == netlist::kNoGate || b == netlist::kNoGate) {
                ++out.skipped_lines;
                continue;
            }
            out.db.add({a, parse_value(tok[2])}, {b, parse_value(tok[4])},
                       static_cast<std::uint32_t>(std::stoul(std::string(tok[5]))));
        } else if (tok[0] == "tie") {
            if (tok.size() != 4)
                throw std::runtime_error("load_learned: malformed tie at line " +
                                         std::to_string(line_no));
            const GateId g = nl.find(tok[1]);
            if (g == netlist::kNoGate) {
                ++out.skipped_lines;
                continue;
            }
            out.ties.set(g, parse_value(tok[2]),
                         static_cast<std::uint32_t>(std::stoul(std::string(tok[3]))));
        } else {
            throw std::runtime_error("load_learned: unknown record at line " +
                                     std::to_string(line_no));
        }
    }
    return out;
}

}  // namespace seqlearn::core
