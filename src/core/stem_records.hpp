#pragma once
// Stem records for multiple-node learning (paper Section 3.1).
//
// During single-node learning, every observation "stem s held value sv at
// frame 0 and node n became v at frame t" is recorded against the key
// (n, v). Multiple-node learning later inverts a key: the assumption n=!v at
// frame T (T = the largest recorded offset) implies the contrapositive of
// every record, i.e. s=!sv at frame T-t, all injectable simultaneously.

#include "core/implication.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace seqlearn::core {

/// One observation: `stem` (with its injected value) implied the keyed node
/// value `offset` frames later.
struct StemRecord {
    Literal stem;
    std::uint32_t offset = 0;

    friend bool operator==(const StemRecord&, const StemRecord&) = default;
};

/// Records grouped by implied (node, value), with a per-key cap to bound
/// memory on large circuits (dropping records is sound: multiple-node
/// learning simply injects fewer simultaneous assignments).
class StemRecords {
public:
    /// `cap` = maximum records kept per (node, value) key; 0 = unlimited.
    explicit StemRecords(std::size_t cap) : cap_(cap) {}

    /// Record stem=sv@0 => node=v@offset. Self-observations of the stem at
    /// offset 0 (the injection itself) are kept too — they are valid records.
    void add(Literal node, Literal stem, std::uint32_t offset);

    /// Records for (node, value); empty when none survive the cap.
    const std::vector<StemRecord>& records_for(Literal node) const;

    /// Keys with at least `min_records` records, in deterministic order.
    std::vector<Literal> targets(std::size_t min_records) const;

    std::size_t total_records() const noexcept { return total_; }

    /// The per-key cap this instance was built with (0 = unlimited).
    std::size_t cap() const noexcept { return cap_; }

private:
    std::size_t cap_;
    std::size_t total_ = 0;
    std::unordered_map<std::uint64_t, std::vector<StemRecord>> by_key_;
    static const std::vector<StemRecord> kEmpty;
};

}  // namespace seqlearn::core
