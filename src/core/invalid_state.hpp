#pragma once
// Invalid-state relations (paper Section 3.1).
//
// An FF-FF relation a=va => b=vb states that no reachable steady state has
// a=va together with b=!vb; the pair denotes the invalid-state cube
// (..., a=va, ..., b=!vb, ...). This module compiles the FF-FF subset of an
// implication database into a fast partial-state checker for the ATPG, and
// counts the invalid states implied (exactly, for small circuits).

#include "core/impl_db.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace seqlearn::core {

/// Compiled checker over a fixed FF ordering (Netlist::seq_elements order).
class InvalidStateChecker {
public:
    /// Compile the FF-FF relations of `db` for `nl`.
    InvalidStateChecker(const netlist::Netlist& nl, const ImplicationDB& db);

    /// Number of compiled FF-FF relations.
    std::size_t size() const noexcept { return rules_.size(); }

    /// True when the partial state (indexed like Netlist::seq_elements, X =
    /// unassigned) violates some relation, i.e. lies inside a known invalid
    /// cube. Only relations with frame tag <= `history` are applied
    /// (`history` = number of predecessor frames the state provably has;
    /// pass UINT32_MAX to apply everything).
    bool violates(std::span<const Val3> state, std::uint32_t history = UINT32_MAX) const;

    /// Exact number of invalid states implied by the relations, by explicit
    /// enumeration over 2^n_ff states. Throws std::invalid_argument when the
    /// circuit has more than `max_ffs` flip-flops.
    std::uint64_t count_invalid_states(std::size_t max_ffs = 24) const;

    std::size_t num_ffs() const noexcept { return num_ffs_; }

private:
    struct Rule {
        std::uint32_t ff_a;
        Val3 va;
        std::uint32_t ff_b;
        Val3 vb_forbidden;  // a=va && b=vb_forbidden is invalid
        std::uint32_t frame;
    };
    std::vector<Rule> rules_;
    std::size_t num_ffs_ = 0;
};

/// Density of encoding (paper Section 2 reference [9]): reachable states /
/// total states, computed by exhaustive BFS from the all-states start set
/// (every state is a legal power-up state, so "reachable" means reachable
/// from *some* state after stabilization — here: states with a predecessor,
/// iterated to a fixpoint, i.e. states lying on some infinite-history
/// trajectory). Only feasible for small circuits; used by tests, examples,
/// and the retiming study.
double density_of_encoding(const netlist::Netlist& nl, std::size_t max_ffs = 20);

}  // namespace seqlearn::core
