#include "core/tie.hpp"

#include <stdexcept>

namespace seqlearn::core {

void TieSet::set(GateId gate, Val3 v, std::uint32_t cycle) {
    if (v == Val3::X) throw std::invalid_argument("TieSet::set: X is not a tie value");
    if (value_[gate] == Val3::X) {
        value_[gate] = v;
        cycle_[gate] = cycle;
        ++count_;
        ++version_;
        return;
    }
    if (value_[gate] != v)
        throw std::logic_error("TieSet::set: gate tied to both values");
    if (cycle < cycle_[gate]) {
        cycle_[gate] = cycle;
        ++version_;
    }
}

std::size_t TieSet::count_combinational() const {
    std::size_t n = 0;
    for (GateId g = 0; g < value_.size(); ++g) {
        if (value_[g] != Val3::X && cycle_[g] == 0) ++n;
    }
    return n;
}

std::size_t TieSet::count_sequential() const { return count_ - count_combinational(); }

std::vector<GateId> TieSet::tied_gates() const {
    std::vector<GateId> out;
    for (GateId g = 0; g < value_.size(); ++g) {
        if (value_[g] != Val3::X) out.push_back(g);
    }
    return out;
}

std::vector<fault::Fault> TieSet::untestable_faults(
    const Netlist& nl, std::span<const fault::Fault> universe) const {
    std::vector<fault::Fault> out;
    for (const fault::Fault& f : universe) {
        // The faulted line is the output of f.gate (stem fault) or the
        // branch driven by fanin `pin`; either way its fault-free value is
        // the driver's value. Stuck at the tied value is unexcitable.
        const GateId line_driver =
            f.pin == fault::kOutputPin ? f.gate : nl.fanins(f.gate)[f.pin];
        if (value_[line_driver] == f.stuck) out.push_back(f);
    }
    return out;
}

}  // namespace seqlearn::core
