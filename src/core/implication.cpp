#include "core/implication.hpp"

#include "util/strings.hpp"

namespace seqlearn::core {

std::string to_string(const netlist::Netlist& nl, const Literal& l) {
    return util::format("%s=%c", nl.name_of(l.gate).c_str(), logic::to_char(l.value));
}

std::string to_string(const netlist::Netlist& nl, const Relation& r) {
    return to_string(nl, r.lhs) + " -> " + to_string(nl, r.rhs);
}

}  // namespace seqlearn::core
