#include "core/single_node.hpp"

#include "exec/speculate.hpp"

#include <algorithm>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

// Frame bucketing without building per-frame vectors: `implied` is sorted by
// frame (frames simulate in order), so one sweep yields flat offsets —
// frame t's literals are implied[starts[t] .. starts[t+1]).
void frame_starts(const sim::FrameSimResult& res, std::uint32_t max_frames,
                  std::vector<std::uint32_t>& starts) {
    const std::uint32_t frames = std::min(res.frames_run, max_frames);
    starts.clear();
    std::size_t i = 0;
    for (std::uint32_t t = 0; t < frames; ++t) {
        starts.push_back(static_cast<std::uint32_t>(i));
        while (i < res.implied.size() && res.implied[i].frame == t) ++i;
    }
    starts.push_back(static_cast<std::uint32_t>(i));
}

// Per-stem scratch; all buffers reused so a stem in steady state costs zero
// heap allocations. `other` holds the "inject 1" run's value per gate at the
// frame being paired (X = absent), reset via touch list.
struct ExtractScratch {
    std::vector<Val3> other;
    std::vector<GateId> other_touched;
    sim::FrameSimResult res[2];
    std::vector<std::uint32_t> starts[2];
    std::vector<Literal> seq1;

    void ensure(std::size_t num_gates) {
        if (other.size() < num_gates) other.assign(num_gates, Val3::X);
    }
};

// Everything a speculatively-processed stem wants to do to the shared
// structures, in emission order per structure; committed later in stem order
// so the final state is exactly the serial schedule's.
struct StemDelta {
    bool processed = false;      ///< passed the tied/constant skip
    bool stem_conflict = false;  ///< stem tied by an injection conflict
    struct Tie {
        GateId gate;
        Val3 value;
        std::uint32_t cycle;
    };
    struct Rec {
        Literal node;
        Literal stem;
        std::uint32_t offset;
    };
    struct Rel {
        Literal lhs;
        Literal rhs;
        std::uint32_t frame;
    };
    std::vector<Tie> ties;
    std::vector<Rec> records;
    std::vector<Rel> relations;

    void clear() {
        processed = stem_conflict = false;
        ties.clear();
        records.clear();
        relations.clear();
    }
};

// The serial/commit-side context: mutates the real structures directly.
struct DirectCtx {
    TieSet& ties;
    ImplicationDB& db;
    StemRecords& records;
    SingleNodeOutcome& out;

    bool tied(GateId g) const { return ties.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        ties.set(g, v, cycle);
        ++out.ties_found;
    }
    void mark_stem_conflict() { ++out.stem_ties; }
    void add_record(Literal node, Literal stem, std::uint32_t offset) {
        records.add(node, stem, offset);
    }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        if (db.add(lhs, rhs, frame)) ++out.relations_added;
    }
};

// The worker-side context: reads the live tie set (frozen during a window's
// compute phase) through a per-stem overlay that replays this stem's own
// discoveries, and writes all mutations into the stem's delta.
struct SpecCtx {
    const TieSet& live;
    std::vector<std::uint8_t>& overlay;        // 1 = tied by this stem
    std::vector<GateId>& overlay_touched;
    StemDelta& delta;

    bool tied(GateId g) const { return overlay[g] != 0 || live.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        overlay[g] = 1;
        overlay_touched.push_back(g);
        delta.ties.push_back({g, v, cycle});
    }
    void mark_stem_conflict() { delta.stem_conflict = true; }
    void add_record(Literal node, Literal stem, std::uint32_t offset) {
        delta.records.push_back({node, stem, offset});
    }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        delta.relations.push_back({lhs, rhs, frame});
    }
};

// One stem, start to finish: skip check, both injections, record collection,
// and same-frame pairing. Shared verbatim by the serial, speculative, and
// recompute paths via the context, so the three cannot drift apart.
// Returns whether the stem was processed (false = skipped tied/constant).
template <typename Ctx>
bool process_stem(const Netlist& nl, sim::FrameSimulator& sim, GateId stem,
                  std::uint32_t max_frames, ExtractScratch& s, Ctx& ctx) {
    if (ctx.tied(stem) || is_constant(nl, stem)) return false;
    s.ensure(nl.size());

    sim::FrameSimOptions opt;
    opt.max_frames = max_frames;
    for (const Val3 v : {Val3::Zero, Val3::One}) {
        const sim::Injection inj{0, stem, v};
        auto& r = s.res[v == Val3::One ? 1 : 0];
        sim.run_into({&inj, 1}, opt, r);
        if (r.conflict) {
            // Injecting v contradicted established facts: the stem can
            // never be v, i.e. it is tied to !v. The refuted premise sat
            // at an arbitrary-state frame, so the tie holds from frame 0.
            ctx.set_tie(stem, logic::v3_not(v), 0);
            ctx.mark_stem_conflict();
            return true;
        }
    }

    // Observations feed the multiple-node pass.
    for (int side = 0; side < 2; ++side) {
        const Literal stem_lit{stem, side == 1 ? Val3::One : Val3::Zero};
        for (const sim::ImpliedValue& iv : s.res[side].implied) {
            if (is_constant(nl, iv.gate) || ctx.tied(iv.gate)) continue;
            ctx.add_record({iv.gate, iv.value}, stem_lit, iv.frame);
        }
    }

    frame_starts(s.res[0], max_frames, s.starts[0]);
    frame_starts(s.res[1], max_frames, s.starts[1]);
    const std::size_t frames = std::min(s.starts[0].size(), s.starts[1].size()) - 1;
    for (std::size_t t = 0; t < frames; ++t) {
        const std::span<const sim::ImpliedValue> f0{
            s.res[0].implied.data() + s.starts[0][t],
            s.res[0].implied.data() + s.starts[0][t + 1]};
        const std::span<const sim::ImpliedValue> f1{
            s.res[1].implied.data() + s.starts[1][t],
            s.res[1].implied.data() + s.starts[1][t + 1]};

        // Index the inject-1 run's frame-t values; collect its FF subset.
        for (const GateId g : s.other_touched) s.other[g] = Val3::X;
        s.other_touched.clear();
        s.seq1.clear();
        for (const sim::ImpliedValue& b : f1) {
            if (is_constant(nl, b.gate) || ctx.tied(b.gate)) continue;
            s.other[b.gate] = b.value;
            s.other_touched.push_back(b.gate);
            if (netlist::is_sequential(nl.type(b.gate))) s.seq1.push_back({b.gate, b.value});
        }

        for (const sim::ImpliedValue& iv : f0) {
            const Literal a{iv.gate, iv.value};
            if (is_constant(nl, a.gate) || ctx.tied(a.gate)) continue;
            // Tie check: both stem values force the same value here.
            if (s.other[a.gate] == a.value) {
                ctx.set_tie(a.gate, a.value, static_cast<std::uint32_t>(t));
                continue;
            }
            const bool a_seq = netlist::is_sequential(nl.type(a.gate));
            // s=0 => a@t and s=1 => b@t give !a => b (same frame).
            // Keep relations touching at least one sequential element.
            for (const Literal& b : s.seq1) {
                if (b.gate == a.gate || ctx.tied(b.gate)) continue;
                ctx.add_relation(negate(a), b, static_cast<std::uint32_t>(t));
            }
            if (a_seq) {
                for (const sim::ImpliedValue& b : f1) {
                    if (b.gate == a.gate) continue;
                    if (netlist::is_sequential(nl.type(b.gate))) continue;  // done above
                    if (is_constant(nl, b.gate) || ctx.tied(b.gate)) continue;
                    ctx.add_relation(negate(a), {b.gate, b.value},
                                     static_cast<std::uint32_t>(t));
                }
            }
        }
    }
    return true;
}

using ProgressFnPtr = const std::function<bool(std::size_t, std::size_t)>*;

SingleNodeOutcome run_serial(const Netlist& nl, sim::FrameSimulator& sim,
                             std::span<const GateId> stems, std::uint32_t max_frames,
                             TieSet& ties, ImplicationDB& db, StemRecords& records,
                             ProgressFnPtr progress, exec::CancelFlag* cancel) {
    SingleNodeOutcome out;
    ExtractScratch scratch;
    DirectCtx ctx{ties, db, records, out};
    std::size_t visited = 0;
    for (const GateId stem : stems) {
        if (cancel != nullptr && cancel->requested()) {
            out.cancelled = true;
            break;
        }
        if (progress != nullptr && *progress && !(*progress)(visited, stems.size())) {
            out.cancelled = true;
            break;
        }
        ++visited;
        if (process_stem(nl, sim, stem, max_frames, scratch, ctx)) ++out.stems_processed;
    }
    return out;
}

}  // namespace

SingleNodeOutcome single_node_learning(const Netlist& nl,
                                       std::span<sim::FrameSimulator> sims,
                                       std::span<const GateId> stems,
                                       std::uint32_t max_frames, TieSet& ties,
                                       ImplicationDB& db, StemRecords& records,
                                       ProgressFnPtr progress, const LearnExecEnv& env) {
    unsigned workers = env.pool != nullptr ? env.pool->size() : 1;
    if (env.max_workers != 0) workers = std::min(workers, env.max_workers);
    workers = std::min<unsigned>(workers, static_cast<unsigned>(sims.size()));
    if (workers <= 1 || stems.size() < 2) {
        return run_serial(nl, sims[0], stems, max_frames, ties, db, records, progress,
                          env.cancel);
    }

    SingleNodeOutcome out;
    const exec::SpeculateOptions sopt;
    struct WorkerScratch {
        ExtractScratch scratch;
        std::vector<std::uint8_t> overlay;
        std::vector<GateId> overlay_touched;
    };
    std::vector<WorkerScratch> ws(workers);
    for (WorkerScratch& w : ws) w.overlay.assign(nl.size(), 0);
    std::vector<StemDelta> slots(exec::resolved_max_window(sopt, workers));

    std::uint64_t dispatch_version = 0;
    std::size_t next_progress = 0;

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        StemDelta& d = slots[slot];
        d.clear();
        WorkerScratch& w = ws[worker];
        SpecCtx ctx{ties, w.overlay, w.overlay_touched, d};
        d.processed = process_stem(nl, sims[worker], stems[item], max_frames, w.scratch, ctx);
        for (const GateId g : w.overlay_touched) w.overlay[g] = 0;
        w.overlay_touched.clear();
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> exec::Commit {
        if (item >= next_progress) {
            // First touch of this stem: the exact serial observation point
            // (once per stem, in order, with all earlier stems committed).
            if (env.cancel != nullptr && env.cancel->requested()) {
                out.cancelled = true;
                return exec::Commit::Stop;
            }
            if (progress != nullptr && *progress && !(*progress)(item, stems.size())) {
                out.cancelled = true;
                return exec::Commit::Stop;
            }
            next_progress = item + 1;
        }
        if (ties.version() != dispatch_version) return exec::Commit::Retry;
        const StemDelta& d = slots[slot];
        if (!d.processed) return exec::Commit::Done;
        ++out.stems_processed;
        for (const StemDelta::Tie& t : d.ties) {
            ties.set(t.gate, t.value, t.cycle);
            ++out.ties_found;
        }
        if (d.stem_conflict) ++out.stem_ties;
        for (const StemDelta::Rec& r : d.records) records.add(r.node, r.stem, r.offset);
        for (const StemDelta::Rel& r : d.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
        return exec::Commit::Done;
    };
    exec::speculate_ordered(env.pool, stems.size(), sopt, prepare, compute, commit,
                            workers);
    return out;
}

}  // namespace seqlearn::core
