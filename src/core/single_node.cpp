#include "core/single_node.hpp"

#include <algorithm>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

// Frame bucketing without building per-frame vectors: `implied` is sorted by
// frame (frames simulate in order), so one sweep yields flat offsets —
// frame t's literals are implied[starts[t] .. starts[t+1]).
void frame_starts(const sim::FrameSimResult& res, std::uint32_t max_frames,
                  std::vector<std::uint32_t>& starts) {
    const std::uint32_t frames = std::min(res.frames_run, max_frames);
    starts.clear();
    std::size_t i = 0;
    for (std::uint32_t t = 0; t < frames; ++t) {
        starts.push_back(static_cast<std::uint32_t>(i));
        while (i < res.implied.size() && res.implied[i].frame == t) ++i;
    }
    starts.push_back(static_cast<std::uint32_t>(i));
}

}  // namespace

SingleNodeOutcome single_node_learning(const Netlist& nl, sim::FrameSimulator& sim,
                                       std::span<const GateId> stems,
                                       std::uint32_t max_frames, TieSet& ties,
                                       ImplicationDB& db, StemRecords& records,
                                       const std::function<bool(std::size_t, std::size_t)>* progress) {
    SingleNodeOutcome out;
    sim::FrameSimOptions opt;
    opt.max_frames = max_frames;
    std::size_t visited = 0;

    // All scratch lives outside the stem loop; in steady state a stem costs
    // zero heap allocations. `other` holds the "inject 1" run's value per
    // gate at the frame being paired (X = absent), reset via touch list.
    std::vector<Val3> other(nl.size(), Val3::X);
    std::vector<GateId> other_touched;
    sim::FrameSimResult res[2];
    std::vector<std::uint32_t> starts[2];
    std::vector<Literal> seq1;

    for (const GateId stem : stems) {
        if (progress != nullptr && *progress && !(*progress)(visited, stems.size())) {
            out.cancelled = true;
            break;
        }
        ++visited;
        if (ties.is_tied(stem) || is_constant(nl, stem)) continue;
        ++out.stems_processed;

        bool conflicted = false;
        for (const Val3 v : {Val3::Zero, Val3::One}) {
            const sim::Injection inj{0, stem, v};
            auto& r = res[v == Val3::One ? 1 : 0];
            sim.run_into({&inj, 1}, opt, r);
            if (r.conflict) {
                // Injecting v contradicted established facts: the stem can
                // never be v, i.e. it is tied to !v. The refuted premise sat
                // at an arbitrary-state frame, so the tie holds from frame 0.
                ties.set(stem, logic::v3_not(v), 0);
                ++out.ties_found;
                ++out.stem_ties;
                conflicted = true;
                break;
            }
        }
        if (conflicted) continue;

        // Observations feed the multiple-node pass.
        for (int side = 0; side < 2; ++side) {
            const Literal stem_lit{stem, side == 1 ? Val3::One : Val3::Zero};
            for (const sim::ImpliedValue& iv : res[side].implied) {
                if (is_constant(nl, iv.gate) || ties.is_tied(iv.gate)) continue;
                records.add({iv.gate, iv.value}, stem_lit, iv.frame);
            }
        }

        frame_starts(res[0], max_frames, starts[0]);
        frame_starts(res[1], max_frames, starts[1]);
        const std::size_t frames = std::min(starts[0].size(), starts[1].size()) - 1;
        for (std::size_t t = 0; t < frames; ++t) {
            const std::span<const sim::ImpliedValue> f0{
                res[0].implied.data() + starts[0][t], res[0].implied.data() + starts[0][t + 1]};
            const std::span<const sim::ImpliedValue> f1{
                res[1].implied.data() + starts[1][t], res[1].implied.data() + starts[1][t + 1]};

            // Index the inject-1 run's frame-t values; collect its FF subset.
            for (const GateId g : other_touched) other[g] = Val3::X;
            other_touched.clear();
            seq1.clear();
            for (const sim::ImpliedValue& b : f1) {
                if (is_constant(nl, b.gate) || ties.is_tied(b.gate)) continue;
                other[b.gate] = b.value;
                other_touched.push_back(b.gate);
                if (netlist::is_sequential(nl.type(b.gate))) seq1.push_back({b.gate, b.value});
            }

            for (const sim::ImpliedValue& iv : f0) {
                const Literal a{iv.gate, iv.value};
                if (is_constant(nl, a.gate) || ties.is_tied(a.gate)) continue;
                // Tie check: both stem values force the same value here.
                if (other[a.gate] == a.value) {
                    ties.set(a.gate, a.value, static_cast<std::uint32_t>(t));
                    ++out.ties_found;
                    continue;
                }
                const bool a_seq = netlist::is_sequential(nl.type(a.gate));
                // s=0 => a@t and s=1 => b@t give !a => b (same frame).
                // Keep relations touching at least one sequential element.
                for (const Literal& b : seq1) {
                    if (b.gate == a.gate || ties.is_tied(b.gate)) continue;
                    if (db.add(negate(a), b, static_cast<std::uint32_t>(t)))
                        ++out.relations_added;
                }
                if (a_seq) {
                    for (const sim::ImpliedValue& b : f1) {
                        if (b.gate == a.gate) continue;
                        if (netlist::is_sequential(nl.type(b.gate))) continue;  // done above
                        if (is_constant(nl, b.gate) || ties.is_tied(b.gate)) continue;
                        if (db.add(negate(a), {b.gate, b.value}, static_cast<std::uint32_t>(t)))
                            ++out.relations_added;
                    }
                }
            }
        }
    }
    return out;
}

}  // namespace seqlearn::core
