#include "core/single_node.hpp"

#include "exec/speculate.hpp"

#include <algorithm>
#include <array>

namespace seqlearn::core {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

/// Stems per 64-lane batch: two injection lanes per stem.
constexpr std::size_t kMaxBatchStems = 32;

bool is_constant(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Const0 || t == GateType::Const1;
}

// Frame bucketing without building per-frame vectors: `implied` is sorted by
// frame (frames simulate in order), so one sweep yields flat offsets —
// frame t's literals are implied[starts[t] .. starts[t+1]).
void frame_starts(const sim::FrameSimResult& res, std::uint32_t max_frames,
                  std::vector<std::uint32_t>& starts) {
    const std::uint32_t frames = std::min(res.frames_run, max_frames);
    starts.clear();
    std::size_t i = 0;
    for (std::uint32_t t = 0; t < frames; ++t) {
        starts.push_back(static_cast<std::uint32_t>(i));
        while (i < res.implied.size() && res.implied[i].frame == t) ++i;
    }
    starts.push_back(static_cast<std::uint32_t>(i));
}

// Per-stem scratch; all buffers reused so a stem in steady state costs zero
// heap allocations. `other` holds the "inject 1" run's value per gate at the
// frame being paired (X = absent), reset via touch list.
struct ExtractScratch {
    std::vector<Val3> other;
    std::vector<GateId> other_touched;
    sim::FrameSimResult res[2];
    std::vector<std::uint32_t> starts[2];
    std::vector<Literal> seq1;
    std::vector<std::uint32_t> cand;  // pass-2 candidate indices into f0

    void ensure(std::size_t num_gates) {
        if (other.size() < num_gates) other.assign(num_gates, Val3::X);
    }
};

// Everything a speculatively-processed stem wants to do to the shared
// structures, in emission order per structure; committed later in stem order
// so the final state is exactly the serial schedule's.
struct StemDelta {
    bool processed = false;      ///< passed the tied/constant skip
    bool stem_conflict = false;  ///< stem tied by an injection conflict
    struct Tie {
        GateId gate;
        Val3 value;
        std::uint32_t cycle;
    };
    struct Rec {
        Literal node;
        Literal stem;
        std::uint32_t offset;
    };
    struct Rel {
        Literal lhs;
        Literal rhs;
        std::uint32_t frame;
    };
    std::vector<Tie> ties;
    std::vector<Rec> records;
    std::vector<Rel> relations;

    void clear() {
        processed = stem_conflict = false;
        ties.clear();
        records.clear();
        relations.clear();
    }
};

// The serial/commit-side context: mutates the real structures directly.
struct DirectCtx {
    TieSet& ties;
    ImplicationDB& db;
    StemRecords& records;
    SingleNodeOutcome& out;

    bool tied(GateId g) const { return ties.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        ties.set(g, v, cycle);
        ++out.ties_found;
    }
    void mark_stem_conflict() { ++out.stem_ties; }
    void add_record(Literal node, Literal stem, std::uint32_t offset) {
        records.add(node, stem, offset);
    }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        if (db.add(lhs, rhs, frame)) ++out.relations_added;
    }
};

// The worker-side context: reads the live tie set (frozen during a window's
// compute phase) through a per-stem overlay that replays this stem's own
// discoveries, and writes all mutations into the stem's delta.
struct SpecCtx {
    const TieSet& live;
    std::vector<std::uint8_t>& overlay;        // 1 = tied by this stem
    std::vector<GateId>& overlay_touched;
    StemDelta& delta;

    bool tied(GateId g) const { return overlay[g] != 0 || live.is_tied(g); }
    void set_tie(GateId g, Val3 v, std::uint32_t cycle) {
        overlay[g] = 1;
        overlay_touched.push_back(g);
        delta.ties.push_back({g, v, cycle});
    }
    void mark_stem_conflict() { delta.stem_conflict = true; }
    void add_record(Literal node, Literal stem, std::uint32_t offset) {
        delta.records.push_back({node, stem, offset});
    }
    void add_relation(Literal lhs, Literal rhs, std::uint32_t frame) {
        delta.relations.push_back({lhs, rhs, frame});
    }
};

// Record collection and same-frame pairing over two completed conflict-free
// runs (inject 0 -> r0, inject 1 -> r1), both with implied lists grouped by
// frame. Shared verbatim by the scalar and batched paths via the context, so
// the two cannot drift apart.
//
// Within a frame the implied values may arrive in any order — a scalar run
// yields its event-schedule order, a batch-extracted lane the interleaved
// batch schedule's — so this extraction is deliberately order-insensitive:
// per frame it first establishes every tie of that frame (a pure set
// condition), then emits relations with the frame's ties fully known. The
// emitted records, relation set, and tie set are functions of the per-frame
// implied *sets* alone, which 3-valued monotone propagation makes
// schedule-independent; that is what lets the batched and scalar paths
// produce bit-identical learning results without canonicalizing sorts on
// the hot path.
template <typename Ctx>
void extract_stem_results(const Netlist& nl, GateId stem, const sim::FrameSimResult& r0,
                          const sim::FrameSimResult& r1, std::uint32_t max_frames,
                          ExtractScratch& s, Ctx& ctx) {
    // Observations feed the multiple-node pass.
    const sim::FrameSimResult* runs[2] = {&r0, &r1};
    for (int side = 0; side < 2; ++side) {
        const Literal stem_lit{stem, side == 1 ? Val3::One : Val3::Zero};
        for (const sim::ImpliedValue& iv : runs[side]->implied) {
            if (is_constant(nl, iv.gate) || ctx.tied(iv.gate)) continue;
            ctx.add_record({iv.gate, iv.value}, stem_lit, iv.frame);
        }
    }

    frame_starts(r0, max_frames, s.starts[0]);
    frame_starts(r1, max_frames, s.starts[1]);
    const std::size_t frames = std::min(s.starts[0].size(), s.starts[1].size()) - 1;
    for (std::size_t t = 0; t < frames; ++t) {
        const std::span<const sim::ImpliedValue> f0{
            r0.implied.data() + s.starts[0][t], r0.implied.data() + s.starts[0][t + 1]};
        const std::span<const sim::ImpliedValue> f1{
            r1.implied.data() + s.starts[1][t], r1.implied.data() + s.starts[1][t + 1]};

        // Index the inject-1 run's frame-t values; collect its FF subset.
        for (const GateId g : s.other_touched) s.other[g] = Val3::X;
        s.other_touched.clear();
        s.seq1.clear();
        for (const sim::ImpliedValue& b : f1) {
            if (is_constant(nl, b.gate) || ctx.tied(b.gate)) continue;
            s.other[b.gate] = b.value;
            s.other_touched.push_back(b.gate);
            if (netlist::is_sequential(nl.type(b.gate))) s.seq1.push_back({b.gate, b.value});
        }

        // Pass 1 — ties of frame t: both stem values force the same value.
        // Survivors (non-constant, not tied, not tying now) are the pass-2
        // sources; a pass-1 tie can only hit its own f0 entry (one entry per
        // gate per frame), so the survivor list needs no re-filtering.
        s.cand.clear();
        for (std::uint32_t idx = 0; idx < f0.size(); ++idx) {
            const sim::ImpliedValue& iv = f0[idx];
            if (is_constant(nl, iv.gate) || ctx.tied(iv.gate)) continue;
            if (s.other[iv.gate] == iv.value) {
                ctx.set_tie(iv.gate, iv.value, static_cast<std::uint32_t>(t));
                continue;
            }
            s.cand.push_back(idx);
        }

        // Pass 2 — relations, with every frame-t tie established (relations
        // touching a tied gate are subsumed by the tie and skipped).
        for (const std::uint32_t idx : s.cand) {
            const sim::ImpliedValue& iv = f0[idx];
            const Literal a{iv.gate, iv.value};
            const bool a_seq = netlist::is_sequential(nl.type(a.gate));
            // s=0 => a@t and s=1 => b@t give !a => b (same frame).
            // Keep relations touching at least one sequential element.
            for (const Literal& b : s.seq1) {
                if (b.gate == a.gate || ctx.tied(b.gate)) continue;
                ctx.add_relation(negate(a), b, static_cast<std::uint32_t>(t));
            }
            if (a_seq) {
                for (const sim::ImpliedValue& b : f1) {
                    if (b.gate == a.gate) continue;
                    if (netlist::is_sequential(nl.type(b.gate))) continue;  // done above
                    if (is_constant(nl, b.gate) || ctx.tied(b.gate)) continue;
                    ctx.add_relation(negate(a), {b.gate, b.value},
                                     static_cast<std::uint32_t>(t));
                }
            }
        }
    }
}

// One stem through the scalar simulator, start to finish: skip check, both
// injections, conflict handling, extraction. Returns whether the stem was
// processed (false = skipped tied/constant).
template <typename Ctx>
bool process_stem(const Netlist& nl, sim::FrameSimulator& sim, GateId stem,
                  std::uint32_t max_frames, ExtractScratch& s, Ctx& ctx) {
    if (ctx.tied(stem) || is_constant(nl, stem)) return false;
    s.ensure(nl.size());

    sim::FrameSimOptions opt;
    opt.max_frames = max_frames;
    for (const Val3 v : {Val3::Zero, Val3::One}) {
        const sim::Injection inj{0, stem, v};
        auto& r = s.res[v == Val3::One ? 1 : 0];
        sim.run_into({&inj, 1}, opt, r);
        if (r.conflict) {
            // Injecting v contradicted established facts: the stem can
            // never be v, i.e. it is tied to !v. The refuted premise sat
            // at an arbitrary-state frame, so the tie holds from frame 0.
            ctx.set_tie(stem, logic::v3_not(v), 0);
            ctx.mark_stem_conflict();
            return true;
        }
    }
    extract_stem_results(nl, stem, s.res[0], s.res[1], max_frames, s, ctx);
    return true;
}

// The batched twin of process_stem's tail: the runs already happened inside
// a 64-lane batch; `r0`/`r1` are the stem's extracted lanes (frame-grouped
// implied lists; conflict flag for contradictory lanes).
template <typename Ctx>
void extract_batched_stem(const Netlist& nl, GateId stem, const sim::FrameSimResult& r0,
                          const sim::FrameSimResult& r1, std::uint32_t max_frames,
                          ExtractScratch& s, Ctx& ctx) {
    s.ensure(nl.size());
    // Scalar order: the inject-0 run happens (and may conflict) first.
    if (r0.conflict) {
        ctx.set_tie(stem, Val3::One, 0);
        ctx.mark_stem_conflict();
        return;
    }
    if (r1.conflict) {
        ctx.set_tie(stem, Val3::Zero, 0);
        ctx.mark_stem_conflict();
        return;
    }
    extract_stem_results(nl, stem, r0, r1, max_frames, s, ctx);
}

using ProgressFnPtr = const std::function<bool(std::size_t, std::size_t)>*;

SingleNodeOutcome run_serial(const Netlist& nl, sim::FrameSimulator& sim,
                             std::span<const GateId> stems, std::uint32_t max_frames,
                             TieSet& ties, ImplicationDB& db, StemRecords& records,
                             ProgressFnPtr progress, const LearnExecEnv& env) {
    SingleNodeOutcome out;
    ExtractScratch scratch;
    DirectCtx ctx{ties, db, records, out};
    for (std::size_t idx = 0; idx < stems.size(); ++idx) {
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            break;
        }
        if (progress != nullptr && *progress && !(*progress)(idx, stems.size())) {
            out.stop = exec::RunStatus::Cancelled;
            break;
        }
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        if (process_stem(nl, sim, stems[idx], max_frames, scratch, ctx))
            ++out.stems_processed;
        if (env.budget != nullptr) env.budget->note_item();
        out.next_index = idx + 1;
    }
    return out;
}

// ------------------------------------------------------------------ batched

// Per-worker scratch for the batched path: the lane schedules of one batch,
// the raw batch result, and the per-lane extracted runs.
struct BatchScratch {
    ExtractScratch scratch;
    std::vector<std::uint8_t> overlay;
    std::vector<GateId> overlay_touched;
    std::array<sim::Injection, 2 * kMaxBatchStems> inj;
    std::vector<sim::BatchLane> lanes;
    sim::BatchFrameResult bres;
    std::array<sim::FrameSimResult, 2 * kMaxBatchStems> lane_res;
};

// Pack the non-skipped stems of [base, base+count) into injection lanes
// (two per stem) against `tied`, run them as one batch, and extract every
// lane. lane_of[p] = the stem's first lane, or -1 when skipped.
template <typename TiedFn>
void simulate_stem_batch(sim::BatchFrameSimulator& bsim, std::span<const GateId> stems,
                         std::size_t base, std::size_t count, std::uint32_t max_frames,
                         const Netlist& nl, TiedFn&& tied, BatchScratch& w,
                         std::array<int, kMaxBatchStems>& lane_of) {
    w.lanes.clear();
    int n_lanes = 0;
    for (std::size_t p = 0; p < count; ++p) {
        const GateId stem = stems[base + p];
        if (tied(stem) || is_constant(nl, stem)) {
            lane_of[p] = -1;
            continue;
        }
        lane_of[p] = n_lanes;
        w.inj[static_cast<std::size_t>(n_lanes)] = {0, stem, Val3::Zero};
        w.inj[static_cast<std::size_t>(n_lanes) + 1] = {0, stem, Val3::One};
        n_lanes += 2;
    }
    for (int i = 0; i < n_lanes; ++i)
        w.lanes.push_back({{&w.inj[static_cast<std::size_t>(i)], 1}});
    if (n_lanes == 0) return;
    sim::FrameSimOptions opt;
    opt.max_frames = max_frames;
    bsim.run_batch(w.lanes, opt, w.bres);
    w.bres.extract_all({w.lane_res.data(), static_cast<std::size_t>(n_lanes)});
}

// NOTE: structural twin of multiple_node.cpp's run_batched — the commit
// skeleton (observe/stale/apply/recompute walk) is shared via
// exec::speculate_batches, but the client scaffolding here (slot sizing,
// version snapshot, the re-batch-after-tie recompute loop with its
// done = p + 1 boundary) must be kept in lockstep with that file.
SingleNodeOutcome run_batched(const Netlist& nl,
                              std::span<sim::BatchFrameSimulator> batch_sims,
                              std::span<const GateId> stems, std::uint32_t max_frames,
                              std::size_t batch_stems, TieSet& ties, ImplicationDB& db,
                              StemRecords& records, ProgressFnPtr progress,
                              const LearnExecEnv& env, unsigned workers) {
    SingleNodeOutcome out;
    const std::size_t n = stems.size();
    const std::size_t bs = std::min(batch_stems, kMaxBatchStems);

    const exec::SpeculateOptions sopt;
    std::vector<BatchScratch> ws(workers);
    for (BatchScratch& w : ws) w.overlay.assign(nl.size(), 0);

    struct BatchDelta {
        std::vector<StemDelta> deltas;
        std::vector<std::uint8_t> processed;
        std::size_t computed = 0;  ///< positions with valid deltas
    };
    std::vector<BatchDelta> slots(exec::resolved_max_window(sopt, workers));

    std::uint64_t dispatch_version = 0;
    std::size_t next_progress = 0;

    // The serial observation point of stem `idx`: cancel/budget/progress
    // polled exactly once per stem, in order, with all earlier stems
    // committed — so a budgeted stop lands at the same stem regardless of
    // worker count or batching.
    auto observe_stem = [&](std::size_t idx) -> bool {
        // Poll before the dedup: stop conditions are sticky, so a window
        // whose compute fast-aborted always Stops here instead of retrying
        // forever against an empty slot.
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            out.next_index = idx;
            return false;
        }
        if (idx < next_progress) return true;
        if (progress != nullptr && *progress && !(*progress)(idx, n)) {
            out.stop = exec::RunStatus::Cancelled;
            out.next_index = idx;
            return false;
        }
        if (env.budget != nullptr) env.budget->note_item();
        next_progress = idx + 1;
        out.next_index = next_progress;
        return true;
    };

    // Re-derive stems [i, end) on the calling thread against the live tie
    // set, re-batching after every stem that lands a tie (its successors'
    // simulations are stale under the serial schedule). Returns false when
    // cancelled.
    auto recompute_rest = [&](std::size_t i, std::size_t end) -> bool {
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::BatchRecompute);
        DirectCtx ctx{ties, db, records, out};
        BatchScratch& w = ws[0];
        std::array<int, kMaxBatchStems> lane_of{};
        while (i < end) {
            const std::size_t count = std::min(bs, end - i);
            simulate_stem_batch(batch_sims[0], stems, i, count, max_frames, nl,
                                [&](GateId g) { return ties.is_tied(g); }, w, lane_of);
            std::size_t done = count;
            for (std::size_t p = 0; p < count; ++p) {
                if (!observe_stem(i + p)) return false;
                if (lane_of[p] < 0) continue;
                const std::uint64_t v0 = ties.version();
                extract_batched_stem(nl, stems[i + p],
                                     w.lane_res[static_cast<std::size_t>(lane_of[p])],
                                     w.lane_res[static_cast<std::size_t>(lane_of[p]) + 1],
                                     max_frames, w.scratch, ctx);
                ++out.stems_processed;
                if (ties.version() != v0) {
                    done = p + 1;  // successors were simulated pre-tie
                    break;
                }
            }
            i += done;
        }
        return true;
    };

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        BatchDelta& d = slots[slot];
        const std::size_t base = item * bs;
        const std::size_t count = std::min(bs, n - base);
        d.deltas.resize(std::max(d.deltas.size(), count));
        d.processed.assign(count, 0);
        d.computed = 0;
        // Fast abort: once a stop is requested the commit walk is about to
        // Stop at its next observe, so computing this batch is wasted work.
        if ((env.cancel != nullptr && env.cancel->requested()) ||
            (env.budget != nullptr && env.budget->deadline_exceeded()))
            return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        BatchScratch& w = ws[worker];
        std::array<int, kMaxBatchStems> lane_of{};
        simulate_stem_batch(batch_sims[worker], stems, base, count, max_frames, nl,
                            [&](GateId g) { return ties.is_tied(g); }, w, lane_of);
        for (std::size_t p = 0; p < count; ++p) {
            StemDelta& delta = d.deltas[p];
            delta.clear();
            d.computed = p + 1;
            if (lane_of[p] < 0) continue;  // skipped; processed stays 0
            SpecCtx ctx{ties, w.overlay, w.overlay_touched, delta};
            extract_batched_stem(nl, stems[base + p],
                                 w.lane_res[static_cast<std::size_t>(lane_of[p])],
                                 w.lane_res[static_cast<std::size_t>(lane_of[p]) + 1],
                                 max_frames, w.scratch, ctx);
            for (const GateId g : w.overlay_touched) w.overlay[g] = 0;
            w.overlay_touched.clear();
            d.processed[p] = 1;
            // A tie makes every later stem's simulation stale; stop here and
            // let the commit side re-derive the remainder.
            if (!delta.ties.empty()) break;
        }
    };
    auto stale = [&](std::size_t pos, std::size_t slot) {
        return ties.version() != dispatch_version || pos >= slots[slot].computed;
    };
    auto apply = [&](std::size_t, std::size_t slot, std::size_t pos) {
        const BatchDelta& d = slots[slot];
        if (!d.processed[pos]) return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::SpecCommit);
        const StemDelta& delta = d.deltas[pos];
        ++out.stems_processed;
        for (const StemDelta::Tie& t : delta.ties) {
            ties.set(t.gate, t.value, t.cycle);
            ++out.ties_found;
        }
        if (delta.stem_conflict) ++out.stem_ties;
        for (const StemDelta::Rec& r : delta.records) records.add(r.node, r.stem, r.offset);
        for (const StemDelta::Rel& r : delta.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
    };
    exec::speculate_batches(workers > 1 ? env.pool : nullptr, n, bs, sopt, prepare,
                            compute, observe_stem, stale, apply, recompute_rest, workers);
    return out;
}

}  // namespace

SingleNodeOutcome single_node_learning(const Netlist& nl,
                                       std::span<sim::FrameSimulator> sims,
                                       std::span<const GateId> stems,
                                       std::uint32_t max_frames, TieSet& ties,
                                       ImplicationDB& db, StemRecords& records,
                                       ProgressFnPtr progress, const LearnExecEnv& env,
                                       std::span<sim::BatchFrameSimulator> batch_sims,
                                       std::size_t batch_stems) {
    unsigned workers = env.pool != nullptr ? env.pool->size() : 1;
    if (env.max_workers != 0) workers = std::min(workers, env.max_workers);
    workers = std::min<unsigned>(workers, static_cast<unsigned>(sims.size()));

    if (batch_stems != 0 && !batch_sims.empty() && !stems.empty()) {
        workers = std::min<unsigned>(workers, static_cast<unsigned>(batch_sims.size()));
        return run_batched(nl, batch_sims, stems, max_frames, batch_stems, ties, db,
                           records, progress, env, std::max(1u, workers));
    }

    if (workers <= 1 || stems.size() < 2) {
        return run_serial(nl, sims[0], stems, max_frames, ties, db, records, progress,
                          env);
    }

    SingleNodeOutcome out;
    const exec::SpeculateOptions sopt;
    struct WorkerScratch {
        ExtractScratch scratch;
        std::vector<std::uint8_t> overlay;
        std::vector<GateId> overlay_touched;
    };
    std::vector<WorkerScratch> ws(workers);
    for (WorkerScratch& w : ws) w.overlay.assign(nl.size(), 0);
    std::vector<StemDelta> slots(exec::resolved_max_window(sopt, workers));

    std::uint64_t dispatch_version = 0;
    std::size_t next_progress = 0;

    auto prepare = [&](std::size_t, std::size_t) { dispatch_version = ties.version(); };
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        StemDelta& d = slots[slot];
        d.clear();
        // Fast abort: a requested stop means the next in-order commit Stops.
        if ((env.cancel != nullptr && env.cancel->requested()) ||
            (env.budget != nullptr && env.budget->deadline_exceeded()))
            return;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::WorkItem);
        WorkerScratch& w = ws[worker];
        SpecCtx ctx{ties, w.overlay, w.overlay_touched, d};
        d.processed = process_stem(nl, sims[worker], stems[item], max_frames, w.scratch, ctx);
        for (const GateId g : w.overlay_touched) w.overlay[g] = 0;
        w.overlay_touched.clear();
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> exec::Commit {
        // Poll before the dedup (see run_batched::observe_stem): sticky stop
        // conditions must Stop a retried item whose compute fast-aborted.
        const exec::RunStatus st = exec::poll_point(env.cancel, env.budget);
        if (st != exec::RunStatus::Completed) {
            out.stop = st;
            out.next_index = item;
            return exec::Commit::Stop;
        }
        if (item >= next_progress) {
            // First touch of this stem: the exact serial observation point
            // (once per stem, in order, with all earlier stems committed).
            if (progress != nullptr && *progress && !(*progress)(item, stems.size())) {
                out.stop = exec::RunStatus::Cancelled;
                out.next_index = item;
                return exec::Commit::Stop;
            }
            if (env.budget != nullptr) env.budget->note_item();
            next_progress = item + 1;
            out.next_index = next_progress;
        }
        if (ties.version() != dispatch_version) return exec::Commit::Retry;
        const StemDelta& d = slots[slot];
        if (!d.processed) return exec::Commit::Done;
        if (env.failpoint != nullptr) env.failpoint->poll(exec::FailSite::SpecCommit);
        ++out.stems_processed;
        for (const StemDelta::Tie& t : d.ties) {
            ties.set(t.gate, t.value, t.cycle);
            ++out.ties_found;
        }
        if (d.stem_conflict) ++out.stem_ties;
        for (const StemDelta::Rec& r : d.records) records.add(r.node, r.stem, r.offset);
        for (const StemDelta::Rel& r : d.relations) {
            if (db.add(r.lhs, r.rhs, r.frame)) ++out.relations_added;
        }
        return exec::Commit::Done;
    };
    exec::speculate_ordered(env.pool, stems.size(), sopt, prepare, compute, commit,
                            workers);
    return out;
}

}  // namespace seqlearn::core
