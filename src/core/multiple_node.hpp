#pragma once
// Multiple-node learning (paper Section 3.1).
//
// For a target (node n, value v) with stem records {(s_i, sv_i, t_i)}, the
// assumption n=!v at frame T (T = max t_i) implies s_i=!sv_i at frame T-t_i
// for every record, plus n=!v itself at frame T. Injecting all of these and
// forward-simulating extracts relations single-node learning misses; a
// conflict during the run proves n is tied to v from frame T on.
//
// Targets are processed in deterministic key order with the same serial
// semantics as the single-node pass (a tie learned at target k seeds the
// simulation of target k+1); the parallel path uses the same ordered
// speculation, recomputing any target whose commit finds the tie set moved.
//
// Batching: with BatchFrameSimulators supplied, up to 64 targets — one lane
// each, every lane carrying its own injection schedule and exact frame
// window T+1 — run as one bit-parallel event sweep; the tie/constant
// seeding shared by all targets is then paid once per batch instead of once
// per target. A committed tie re-derives the remaining targets of its batch
// against the fresh tie state, exactly as the single-node pass does, so
// results are bit-identical to the unbatched schedule.

#include "core/impl_db.hpp"
#include "core/single_node.hpp"
#include "core/stem_records.hpp"
#include "core/tie.hpp"
#include "sim/frame_sim.hpp"

#include <span>

namespace seqlearn::core {

struct MultipleNodeConfig {
    /// Only process targets with at least this many records (2 = the
    /// paper's "two or more stems / occurrences" criterion).
    std::size_t min_records = 2;
    /// Upper bound on the target frame T (records with larger offsets are
    /// dropped from the injection set).
    std::uint32_t max_frames = 50;
    /// Stop after this many targets (0 = unlimited); a safety valve for
    /// enormous circuits.
    std::size_t max_targets = 0;
};

struct MultipleNodeOutcome {
    std::size_t targets_processed = 0;
    std::size_t relations_added = 0;
    std::size_t ties_found = 0;
    /// Ties proven by an outright contradiction among the injections.
    std::size_t contradiction_ties = 0;
    /// Why the pass stopped: Completed after the full target list (or at the
    /// max_targets cap, which is a config bound rather than a budget),
    /// otherwise the cancel/budget status observed at a target boundary.
    exec::RunStatus stop = exec::RunStatus::Completed;
    /// Resume cursor: index into the deterministic target order (including
    /// any `first_target` offset) of the first target not processed.
    std::size_t next_index = 0;
};

/// Run multiple-node learning over every record key using the per-worker
/// simulators `sims` (identically configured over one Topology, tie vectors
/// aliasing `ties`; sims[0] drives the serial path). New relations land in
/// `db`, ties in `ties` (visible to later targets through the simulator).
/// `batch_sims` (same count and configuration discipline as `sims`) enables
/// 64-lane batched simulation with `batch_targets` targets per batch
/// (clamped to 64); empty span or 0 selects the one-run-per-target path.
/// Results are bit-identical either way. `first_target` skips that many
/// leading targets of the deterministic order — the resume entry point for
/// a run whose predecessor stopped mid-pass (its outcome's next_index).
MultipleNodeOutcome multiple_node_learning(const netlist::Netlist& nl,
                                           std::span<sim::FrameSimulator> sims,
                                           const StemRecords& records,
                                           const MultipleNodeConfig& cfg, TieSet& ties,
                                           ImplicationDB& db, const LearnExecEnv& env = {},
                                           std::span<sim::BatchFrameSimulator> batch_sims = {},
                                           std::size_t batch_targets = 0,
                                           std::size_t first_target = 0);

}  // namespace seqlearn::core
