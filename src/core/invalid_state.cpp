#include "core/invalid_state.hpp"

#include "sim/comb_engine.hpp"

#include <stdexcept>

namespace seqlearn::core {

using netlist::GateId;
using netlist::Netlist;

InvalidStateChecker::InvalidStateChecker(const Netlist& nl, const ImplicationDB& db) {
    const auto seq = nl.seq_elements();
    num_ffs_ = seq.size();
    std::vector<std::int32_t> ff_index(nl.size(), -1);
    for (std::size_t i = 0; i < seq.size(); ++i) ff_index[seq[i]] = static_cast<std::int32_t>(i);

    for (const Relation& r : db.relations()) {
        const std::int32_t ia = ff_index[r.lhs.gate];
        const std::int32_t ib = ff_index[r.rhs.gate];
        if (ia < 0 || ib < 0) continue;
        rules_.push_back({static_cast<std::uint32_t>(ia), r.lhs.value,
                          static_cast<std::uint32_t>(ib), logic::v3_not(r.rhs.value), r.frame});
    }
}

bool InvalidStateChecker::violates(std::span<const Val3> state, std::uint32_t history) const {
    for (const Rule& r : rules_) {
        if (r.frame > history) continue;
        if (state[r.ff_a] == r.va && state[r.ff_b] == r.vb_forbidden) return true;
    }
    return false;
}

std::uint64_t InvalidStateChecker::count_invalid_states(std::size_t max_ffs) const {
    if (num_ffs_ > max_ffs)
        throw std::invalid_argument("count_invalid_states: too many flip-flops");
    const std::uint64_t total = 1ULL << num_ffs_;
    std::vector<Val3> state(num_ffs_);
    std::uint64_t invalid = 0;
    for (std::uint64_t s = 0; s < total; ++s) {
        for (std::size_t i = 0; i < num_ffs_; ++i)
            state[i] = (s >> i) & 1 ? Val3::One : Val3::Zero;
        if (violates(state)) ++invalid;
    }
    return invalid;
}

double density_of_encoding(const Netlist& nl, std::size_t max_ffs) {
    const auto seq = nl.seq_elements();
    const auto inputs = nl.inputs();
    const std::size_t k = seq.size();
    if (k == 0) return 1.0;
    if (k > max_ffs) throw std::invalid_argument("density_of_encoding: too many flip-flops");
    if (inputs.size() > 16) throw std::invalid_argument("density_of_encoding: too many inputs");

    const sim::CombEngine engine(nl);
    const std::uint64_t n_states = 1ULL << k;
    const std::uint64_t n_inputs = 1ULL << inputs.size();

    // One-frame transition: state x input -> next state.
    auto step = [&](std::uint64_t s, std::uint64_t u) {
        std::vector<Val3> vals(nl.size(), Val3::X);
        for (std::size_t i = 0; i < k; ++i)
            vals[seq[i]] = (s >> i) & 1 ? Val3::One : Val3::Zero;
        for (std::size_t i = 0; i < inputs.size(); ++i)
            vals[inputs[i]] = (u >> i) & 1 ? Val3::One : Val3::Zero;
        engine.eval(vals);
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < k; ++i) {
            if (vals[nl.fanins(seq[i])[0]] == Val3::One) next |= 1ULL << i;
        }
        return next;
    };

    // Valid states = the greatest fixpoint of the image operator: states
    // that keep appearing arbitrarily many steps after an arbitrary
    // power-up. S_{t+1} = Image(S_t) is monotonically shrinking from
    // S_0 = all states.
    std::vector<bool> current(n_states, true);
    for (;;) {
        std::vector<bool> next(n_states, false);
        for (std::uint64_t s = 0; s < n_states; ++s) {
            if (!current[s]) continue;
            for (std::uint64_t u = 0; u < n_inputs; ++u) next[step(s, u)] = true;
        }
        if (next == current) break;
        // Image is monotone and S_1 is contained in S_0, so the sequence
        // decreases strictly until the fixpoint: termination is guaranteed.
        current = std::move(next);
    }
    std::uint64_t valid = 0;
    for (std::uint64_t s = 0; s < n_states; ++s) valid += current[s];
    return static_cast<double>(valid) / static_cast<double>(n_states);
}

}  // namespace seqlearn::core
