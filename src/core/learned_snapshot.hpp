#pragma once
// A frozen, shareable bundle of learned knowledge.
//
// Learning is a pre-processing step (paper Section 2): its output — the
// implication database and the tie set — is computed once and consumed by
// many later ATPG and validation runs. A LearnedSnapshot freezes a
// LearnResult behind a const interface with a stable address, so it can sit
// inside a shared immutable api::Design (or be passed around on its own via
// shared_ptr) and feed any number of concurrent consumers: every accessor
// is const and the underlying result is never mutated after construction.

#include "core/seq_learn.hpp"

#include <memory>
#include <utility>

namespace seqlearn::core {

class LearnedSnapshot {
public:
    /// Freeze `result` (moved in; copy first to keep the original).
    explicit LearnedSnapshot(LearnResult result) : result_(std::move(result)) {}

    const ImplicationDB& db() const noexcept { return result_.db; }
    const TieSet& ties() const noexcept { return result_.ties; }
    const LearnStats& stats() const noexcept { return result_.stats; }

    /// The frozen result, for consumers wired via `const LearnResult*`
    /// (e.g. atpg::AtpgConfig::learned). Address-stable for the snapshot's
    /// lifetime.
    const LearnResult& result() const noexcept { return result_; }

    /// Heap bytes held by the frozen learned data (implication DB, dense tie
    /// vectors, equivalence links) — the snapshot's share of a serving cache
    /// entry's footprint.
    std::size_t memory_bytes() const noexcept { return result_.memory_bytes(); }

private:
    LearnResult result_;
};

/// Freeze a copy of `r` into a shared snapshot (the promotion path from
/// Session::learn() / load_db() into a reusable Design ingredient).
inline std::shared_ptr<const LearnedSnapshot> freeze_learned(const LearnResult& r) {
    return std::make_shared<const LearnedSnapshot>(LearnedSnapshot(r));
}

/// Freeze `r` by move (no copy) into a shared snapshot.
inline std::shared_ptr<const LearnedSnapshot> freeze_learned(LearnResult&& r) {
    return std::make_shared<const LearnedSnapshot>(LearnedSnapshot(std::move(r)));
}

}  // namespace seqlearn::core
