#pragma once
// The sequential learner — the paper's top-level contribution.
//
// Pipeline (per clock class, Section 3.3.2):
//   1. identify combinational gate equivalences (parallel patterns + proof);
//   2. single-node learning over every fanout stem (inject 0/1, simulate
//      forward up to max_frames, extract same-frame relations by the
//      contrapositive law, detect ties, collect stem records);
//   3. multiple-node learning over the recorded (node, value) targets,
//      exploiting ties and equivalences learned so far.
// Results: an implication database (FF-FF relations double as invalid-state
// relations), a tie-gate set with untestable-fault derivation, equivalence
// links, and the statistics Table 3 reports.

#include "core/equivalence.hpp"
#include "core/impl_db.hpp"
#include "core/multiple_node.hpp"
#include "core/single_node.hpp"
#include "core/tie.hpp"
#include "netlist/topology.hpp"

#include <functional>
#include <memory>
#include <string>

namespace seqlearn::core {

/// Progress observer: (units done, total units). Return false to cancel the
/// running pass; partial results are kept and flagged cancelled.
using ProgressFn = std::function<bool(std::size_t done, std::size_t total)>;

struct LearnConfig {
    /// Worker threads for the pass (0 = hardware_concurrency). N-thread
    /// results are bit-identical to 1-thread results: stems, multiple-node
    /// targets, and equivalence proofs run speculatively in parallel and
    /// commit in canonical order (see src/exec/).
    unsigned threads = 0;
    /// Run on this pool instead of a private one (a Session shares its pool
    /// across stages); the effective worker count is min(pool size, threads).
    exec::Pool* executor = nullptr;
    /// Optional cooperative stop switch, polled at work-item boundaries from
    /// the calling thread; request() is safe from any thread.
    exec::CancelFlag* cancel = nullptr;
    /// Run budget (wall-clock deadline / item limit / memory cap), polled at
    /// the same work-item boundaries as `cancel`. An exceeded budget stops
    /// the pass at a stem/target boundary; the partial result is an exact
    /// prefix of the serial schedule and carries a resume cursor.
    exec::BudgetSpec budget;
    /// Fault-injection harness for the robustness test suite (null in
    /// production). Polled inside work items, speculation commits, and batch
    /// recomputes.
    exec::FailurePoint* failpoint = nullptr;
    /// Lanes per bit-parallel batch in the single-node pass (two lanes — the
    /// inject-0 and inject-1 runs — per stem, so 64 lanes = 32 stems per
    /// batch). 0 and 1 disable batching and simulate one scenario per
    /// event-driven run. Results are bit-identical at every setting; the
    /// batched path is the fast one (see sim::BatchFrameSimulator).
    std::size_t batch_lanes = 64;
    /// Forward-simulation depth (the paper's experiments use 50).
    std::uint32_t max_frames = 50;
    /// Stop a stem simulation when the sequential state repeats.
    bool stop_on_state_repeat = true;
    /// Run the multiple-node pass.
    bool multiple_node = true;
    /// Identify and exploit combinational gate equivalences.
    bool use_equivalences = true;
    /// Partition sequential elements into clock classes and learn per class
    /// (required for multi-domain circuits; a no-op cost-wise for single-
    /// domain ones).
    bool respect_clock_classes = true;
    /// SAT learn mode: after the frame-simulation passes, mine ties and
    /// implications beyond the simulated window with failed-literal probes
    /// over a K-frame CNF unrolling (K = sat_frames; 0 = off). Facts land
    /// at frame tag K-1, so pick K deeper than max_frames reaches to learn
    /// something new. Result-affecting (part of the config digest); a run
    /// stopped inside this phase keeps its facts but is not resumable.
    std::uint32_t sat_frames = 0;
    /// Per-(node,value) cap on stored stem records (0 = unlimited).
    std::size_t record_cap = 64;
    /// Multiple-node pass tuning.
    MultipleNodeConfig multi;
    /// Equivalence-finder tuning.
    EquivOptions equiv;
    /// Per-stem progress observer for the single-node pass (stem
    /// granularity; cancellation supported). Null = no observation.
    ProgressFn on_stem;
};

struct LearnStats {
    std::size_t stems = 0;
    std::size_t stems_processed = 0;
    /// Sequential relations (frame >= 1), the paper's Table 3 metric.
    std::size_t ff_ff_relations = 0;
    std::size_t gate_ff_relations = 0;
    /// Relations learned at frame 0 (combinational by-products).
    std::size_t comb_relations = 0;
    std::size_t ties_combinational = 0;
    std::size_t ties_sequential = 0;
    std::size_t equiv_classes = 0;
    std::size_t multi_targets = 0;
    std::size_t multi_relations = 0;
    std::size_t multi_ties = 0;
    /// SAT learn mode (sat_frames > 0): failed-literal probes run, and the
    /// new ties / implication relations they mined.
    std::size_t sat_probes = 0;
    std::size_t sat_ties = 0;
    std::size_t sat_relations = 0;
    double cpu_seconds = 0.0;
    /// True whenever the run ended before completing the full schedule —
    /// i.e. `LearnResult::outcome.ok()` is false (kept as a plain flag for
    /// report printers).
    bool cancelled = false;
};

/// Where an interrupted learning run stopped, in terms of the deterministic
/// serial schedule: clock class `class_index`, single-node or multiple-node
/// phase, next unprocessed stem/target index. Only meaningful when `valid`
/// (a Completed or Failed run has no cursor). `config_digest` fingerprints
/// the result-affecting LearnConfig fields so a resume under a different
/// configuration is rejected instead of silently diverging.
struct LearnCursor {
    bool valid = false;
    std::size_t class_index = 0;
    bool in_multi = false;
    std::size_t unit = 0;
    std::uint64_t config_digest = 0;
};

struct LearnResult {
    ImplicationDB db;
    TieSet ties;
    EquivResult equivalences;
    LearnStats stats;
    /// How the run ended. Partial results (non-ok, valid cursor) are exact
    /// prefixes of the serial schedule and valid ATPG input.
    exec::RunOutcome outcome;
    /// Resume cursor for interrupted runs (see resume_learn).
    LearnCursor cursor;
    /// The interrupted class's stem records, carried out so a checkpoint can
    /// resume mid-class. Empty for completed or failed runs.
    StemRecords records{0};

    LearnResult(std::size_t num_gates) : db(num_gates), ties(num_gates) {}

    /// Approximate heap bytes of the learned data (implication DB, dense tie
    /// vectors, equivalence links) — the result's share of a serving cache
    /// entry or a Session's memory accounting.
    std::size_t memory_bytes() const noexcept {
        return db.memory_bytes() + ties.memory_bytes() +
               equivalences.rep.capacity() * sizeof(netlist::GateId) +
               equivalences.inverted.capacity() / 8;
    }
};

/// Everything needed to continue an interrupted run: the cursor plus the
/// partial learned state at that point. Serializable via core::db_io
/// (save_checkpoint / load_checkpoint). `circuit` guards against resuming
/// on a different netlist.
struct LearnCheckpoint {
    LearnCursor cursor;
    ImplicationDB db;
    TieSet ties;
    StemRecords records{0};
    std::size_t stems_processed = 0;
    std::size_t multi_targets = 0;
    std::size_t multi_relations = 0;
    std::size_t multi_ties = 0;
    std::string circuit;

    explicit LearnCheckpoint(std::size_t num_gates) : db(num_gates), ties(num_gates) {}
};

/// Digest of the LearnConfig fields that affect learning *results* (depth,
/// passes, caps, equivalence tuning). Execution-only fields — threads,
/// executor, batch_lanes, budget, callbacks — are excluded: results are
/// bit-identical across them, so a checkpoint taken under one is resumable
/// under another.
std::uint64_t learn_config_digest(const LearnConfig& cfg);

/// Package an interrupted result for resumption. Throws std::logic_error
/// when `result` has no valid cursor (completed or failed runs).
LearnCheckpoint make_checkpoint(const netlist::Netlist& nl, const LearnResult& result);

/// Run the full learning pipeline on `nl` over a caller-provided CSR
/// snapshot — the primary entry point. A Session passes its shared Topology
/// so the circuit is levelized exactly once across learn/ATPG/fault-sim.
/// Never throws past this boundary: exceptions (including injected faults)
/// are captured into a Failed outcome with the committed prefix intact.
LearnResult learn(const netlist::Netlist& nl, const netlist::Topology& topo,
                  const LearnConfig& cfg = {});

/// Continue an interrupted run from `ckpt`. The combined run (original up
/// to the cursor, then this) produces bit-identical results to a single
/// uninterrupted learn() with the same config — at any thread count or
/// batch width. Throws std::invalid_argument when the checkpoint does not
/// match the netlist or the config digest.
LearnResult resume_learn(const netlist::Netlist& nl, const netlist::Topology& topo,
                         const LearnConfig& cfg, const LearnCheckpoint& ckpt);

}  // namespace seqlearn::core
