#pragma once
// The sequential learner — the paper's top-level contribution.
//
// Pipeline (per clock class, Section 3.3.2):
//   1. identify combinational gate equivalences (parallel patterns + proof);
//   2. single-node learning over every fanout stem (inject 0/1, simulate
//      forward up to max_frames, extract same-frame relations by the
//      contrapositive law, detect ties, collect stem records);
//   3. multiple-node learning over the recorded (node, value) targets,
//      exploiting ties and equivalences learned so far.
// Results: an implication database (FF-FF relations double as invalid-state
// relations), a tie-gate set with untestable-fault derivation, equivalence
// links, and the statistics Table 3 reports.

#include "core/equivalence.hpp"
#include "core/impl_db.hpp"
#include "core/multiple_node.hpp"
#include "core/single_node.hpp"
#include "core/tie.hpp"
#include "netlist/topology.hpp"

#include <functional>
#include <memory>

namespace seqlearn::core {

/// Progress observer: (units done, total units). Return false to cancel the
/// running pass; partial results are kept and flagged cancelled.
using ProgressFn = std::function<bool(std::size_t done, std::size_t total)>;

struct LearnConfig {
    /// Worker threads for the pass (0 = hardware_concurrency). N-thread
    /// results are bit-identical to 1-thread results: stems, multiple-node
    /// targets, and equivalence proofs run speculatively in parallel and
    /// commit in canonical order (see src/exec/).
    unsigned threads = 0;
    /// Run on this pool instead of a private one (a Session shares its pool
    /// across stages); the effective worker count is min(pool size, threads).
    exec::Pool* executor = nullptr;
    /// Optional cooperative stop switch, polled at work-item boundaries from
    /// the calling thread; request() is safe from any thread.
    exec::CancelFlag* cancel = nullptr;
    /// Lanes per bit-parallel batch in the single-node pass (two lanes — the
    /// inject-0 and inject-1 runs — per stem, so 64 lanes = 32 stems per
    /// batch). 0 and 1 disable batching and simulate one scenario per
    /// event-driven run. Results are bit-identical at every setting; the
    /// batched path is the fast one (see sim::BatchFrameSimulator).
    std::size_t batch_lanes = 64;
    /// Forward-simulation depth (the paper's experiments use 50).
    std::uint32_t max_frames = 50;
    /// Stop a stem simulation when the sequential state repeats.
    bool stop_on_state_repeat = true;
    /// Run the multiple-node pass.
    bool multiple_node = true;
    /// Identify and exploit combinational gate equivalences.
    bool use_equivalences = true;
    /// Partition sequential elements into clock classes and learn per class
    /// (required for multi-domain circuits; a no-op cost-wise for single-
    /// domain ones).
    bool respect_clock_classes = true;
    /// Per-(node,value) cap on stored stem records (0 = unlimited).
    std::size_t record_cap = 64;
    /// Multiple-node pass tuning.
    MultipleNodeConfig multi;
    /// Equivalence-finder tuning.
    EquivOptions equiv;
    /// Per-stem progress observer for the single-node pass (stem
    /// granularity; cancellation supported). Null = no observation.
    ProgressFn on_stem;
};

struct LearnStats {
    std::size_t stems = 0;
    std::size_t stems_processed = 0;
    /// Sequential relations (frame >= 1), the paper's Table 3 metric.
    std::size_t ff_ff_relations = 0;
    std::size_t gate_ff_relations = 0;
    /// Relations learned at frame 0 (combinational by-products).
    std::size_t comb_relations = 0;
    std::size_t ties_combinational = 0;
    std::size_t ties_sequential = 0;
    std::size_t equiv_classes = 0;
    std::size_t multi_targets = 0;
    std::size_t multi_relations = 0;
    std::size_t multi_ties = 0;
    double cpu_seconds = 0.0;
    /// True when cfg.on_stem requested cancellation mid-pass.
    bool cancelled = false;
};

struct LearnResult {
    ImplicationDB db;
    TieSet ties;
    EquivResult equivalences;
    LearnStats stats;

    LearnResult(std::size_t num_gates) : db(num_gates), ties(num_gates) {}
};

/// Run the full learning pipeline on `nl` over a caller-provided CSR
/// snapshot — the primary entry point. A Session passes its shared Topology
/// so the circuit is levelized exactly once across learn/ATPG/fault-sim.
LearnResult learn(const netlist::Netlist& nl, const netlist::Topology& topo,
                  const LearnConfig& cfg = {});

}  // namespace seqlearn::core
