#include "core/equivalence.hpp"

#include "logic/pattern.hpp"
#include "netlist/levelize.hpp"
#include "netlist/structure.hpp"
#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace seqlearn::core {

namespace {

using logic::Pattern;
using logic::Val3;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_source(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Input || netlist::is_sequential(t);
}

// Exhaustively prove g1 == g2 (or g1 == !g2 when `inverted`) over all binary
// assignments of the union combinational support. Returns false when the
// support exceeds `cap` or a counterexample exists.
bool prove_equivalence(const Netlist& nl, const netlist::Levelization& lv, GateId g1, GateId g2,
                       bool inverted, std::size_t cap) {
    // Union support and union cone.
    std::vector<GateId> support;
    std::unordered_set<GateId> cone_set;
    for (const GateId g : {g1, g2}) {
        cone_set.insert(g);
        for (const GateId c : netlist::fanin_cone(nl, g, /*through_seq=*/false)) {
            if (is_source(nl, c) || nl.type(c) == GateType::Const0 ||
                nl.type(c) == GateType::Const1) {
                support.push_back(c);
            }
            cone_set.insert(c);
        }
        if (is_source(nl, g)) support.push_back(g);
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());
    // Constants are not free variables.
    std::erase_if(support, [&](GateId g) {
        return nl.type(g) == GateType::Const0 || nl.type(g) == GateType::Const1;
    });
    if (support.size() > cap) return false;

    // Cone gates in topological order.
    std::vector<GateId> cone;
    for (const GateId g : lv.topo_order) {
        if (cone_set.contains(g)) cone.push_back(g);
    }

    const std::size_t k = support.size();
    const std::uint64_t total = 1ULL << k;
    std::vector<Pattern> pats(nl.size(), logic::kPatAllX);
    std::vector<Pattern> ins;
    for (std::uint64_t base = 0; base < total; base += 64) {
        const int lanes = static_cast<int>(std::min<std::uint64_t>(64, total - base));
        for (std::size_t b = 0; b < k; ++b) {
            Pattern p = logic::kPatAllX;
            for (int lane = 0; lane < lanes; ++lane) {
                const std::uint64_t assignment = base + static_cast<std::uint64_t>(lane);
                logic::pat_set(p, lane, (assignment >> b) & 1 ? Val3::One : Val3::Zero);
            }
            pats[support[b]] = p;
        }
        for (const GateId g : cone) {
            const GateType t = nl.type(g);
            if (t == GateType::Input || netlist::is_sequential(t)) continue;
            ins.clear();
            for (const GateId f : nl.fanins(g)) ins.push_back(pats[f]);
            pats[g] = logic::eval_op(netlist::to_op(t), ins.data(), static_cast<int>(ins.size()));
        }
        const Pattern a = pats[g1];
        const Pattern b = inverted ? logic::pat_not(pats[g2]) : pats[g2];
        const std::uint64_t lane_mask = lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
        if ((logic::pat_diff(a, b) & lane_mask) != 0) return false;
        // All lanes must be binary (they are, with binary support values).
        if (((logic::pat_known(a) & logic::pat_known(b)) & lane_mask) != lane_mask) return false;
    }
    return true;
}

}  // namespace

EquivResult find_equivalences(const Netlist& nl, const EquivOptions& opt, exec::Pool* pool,
                              unsigned max_workers) {
    EquivResult out;
    out.map.assign(nl.size(), {});
    out.rep.assign(nl.size(), netlist::kNoGate);
    out.inverted.assign(nl.size(), false);

    const sim::SignatureSet sigs = sim::collect_signatures(nl, opt.sig_rounds, opt.seed);
    const netlist::Levelization lv = netlist::levelize(nl);

    // Canonical polarity: flip the whole signature when its first bit is 1,
    // so a gate and its complement land in the same bucket.
    struct Entry {
        GateId gate;
        bool flipped;
    };
    std::map<std::vector<std::uint64_t>, std::vector<Entry>> buckets;
    for (GateId g = 0; g < nl.size(); ++g) {
        const auto words = sigs.of(g);
        std::vector<std::uint64_t> key(words.begin(), words.end());
        const bool flip = !key.empty() && (key[0] & 1);
        if (flip) {
            for (auto& w : key) w = ~w;
        }
        buckets[std::move(key)].push_back({g, flip});
    }

    // Flatten the candidate proofs (each independent, read-only over nl/lv)
    // so they can fan out over the pool; verdicts are merged in bucket order
    // below, making the result identical at any thread count.
    struct Proof {
        GateId rep;
        GateId member;
        bool inverted;
    };
    std::vector<Proof> proofs;
    for (const auto& [key, entries] : buckets) {
        if (entries.size() < 2 || entries.size() > opt.max_bucket) continue;
        const Entry rep = entries[0];
        for (std::size_t i = 1; i < entries.size(); ++i) {
            proofs.push_back({rep.gate, entries[i].gate, entries[i].flipped != rep.flipped});
        }
    }
    std::vector<std::uint8_t> proven_flags(proofs.size(), 0);
    auto prove_one = [&](unsigned, std::size_t i) {
        const Proof& p = proofs[i];
        proven_flags[i] =
            prove_equivalence(nl, lv, p.rep, p.member, p.inverted, opt.support_cap) ? 1 : 0;
    };
    if (pool != nullptr && !proofs.empty()) {
        pool->run(proofs.size(), exec::TaskView(prove_one), max_workers);
    } else {
        for (std::size_t i = 0; i < proofs.size(); ++i) prove_one(0, i);
    }

    std::size_t next_proof = 0;
    for (const auto& [key, entries] : buckets) {
        if (entries.size() < 2) continue;
        if (entries.size() > opt.max_bucket) {
            out.dropped += entries.size() - 1;
            continue;
        }
        const Entry rep = entries[0];
        std::vector<Entry> proven{rep};
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (proven_flags[next_proof++]) {
                proven.push_back(entries[i]);
            } else {
                ++out.dropped;
            }
        }
        if (proven.size() < 2) continue;
        ++out.num_classes;
        out.gates_in_classes += proven.size();
        for (const Entry& m : proven) {
            out.rep[m.gate] = rep.gate;
            out.inverted[m.gate] = m.flipped != rep.flipped;
            if (m.gate == rep.gate) continue;
            out.map[m.gate].push_back({rep.gate, m.flipped != rep.flipped});
            out.map[rep.gate].push_back({m.gate, m.flipped != rep.flipped});
        }
    }
    return out;
}

}  // namespace seqlearn::core
