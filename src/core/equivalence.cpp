#include "core/equivalence.hpp"

#include "logic/pattern.hpp"
#include "netlist/levelize.hpp"
#include "netlist/structure.hpp"
#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <span>

namespace seqlearn::core {

namespace {

using logic::Pattern;
using logic::Val3;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

bool is_source(const Netlist& nl, GateId g) {
    const GateType t = nl.type(g);
    return t == GateType::Input || netlist::is_sequential(t);
}

// A candidate proof: member == rep (or == !rep when `inverted`) over the
// union combinational support, plus the union cone it must evaluate.
// `lanes` = 1 << support.size() when the whole assignment space fits one
// 64-lane pass (support <= 6); larger proofs iterate 64-lane chunks alone.
struct ProofJob {
    GateId rep = netlist::kNoGate;
    GateId member = netlist::kNoGate;
    bool inverted = false;
    bool oversized = false;  ///< support > cap: dropped without simulation
    std::vector<GateId> support;
    std::vector<GateId> cone;  ///< topological order, sources included
};

// Per-gate structural cache: a proof pair unions two gates' cones, and a
// bucket's representative participates in every pair of its bucket, so the
// cone walk is done once per gate instead of once per pair. The walk uses a
// reusable flag array (no hashing) and aborts as soon as the gate's own
// support exceeds the proof cap — every pair containing such a gate is
// oversized regardless of its partner, and the abort keeps the whole-logic
// cones of deep gates (the common signature-collision victims) from being
// materialized at all.
struct ConeCache {
    const Netlist& nl;
    const std::vector<std::uint32_t>& pos;  // gate -> topological position
    std::size_t cap;
    std::vector<std::uint8_t> ready;
    std::vector<std::uint8_t> overflow;  // own support > cap: pairs oversized
    std::vector<std::vector<GateId>> cone;     // sorted by pos, includes gate
    std::vector<std::vector<GateId>> support;  // sorted by id, sources only
    std::vector<std::uint8_t> visited;         // traversal scratch
    std::vector<GateId> stack;

    ConeCache(const Netlist& n, const std::vector<std::uint32_t>& p, std::size_t support_cap)
        : nl(n),
          pos(p),
          cap(support_cap),
          ready(n.size(), 0),
          overflow(n.size(), 0),
          cone(n.size()),
          support(n.size()),
          visited(n.size(), 0) {}

    void build(GateId g) {
        if (ready[g]) return;
        ready[g] = 1;
        std::vector<GateId>& c = cone[g];
        std::vector<GateId>& s = support[g];
        stack.clear();
        stack.push_back(g);
        visited[g] = 1;
        while (!stack.empty()) {
            const GateId x = stack.back();
            stack.pop_back();
            c.push_back(x);
            if (is_source(nl, x)) {
                s.push_back(x);  // constants are not free variables
                if (s.size() > cap) {
                    overflow[g] = 1;
                    break;
                }
            }
            // Matches netlist::fanin_cone(through_seq = false): sequential
            // elements stop the walk — except the start gate itself, whose
            // data cone is deliberately expanded.
            if (x != g && netlist::is_sequential(nl.type(x))) continue;
            for (const GateId f : nl.fanins(x)) {
                if (!visited[f]) {
                    visited[f] = 1;
                    stack.push_back(f);
                }
            }
        }
        for (const GateId x : c) visited[x] = 0;
        for (const GateId x : stack) visited[x] = 0;
        if (overflow[g]) {
            c.clear();
            s.clear();
            return;
        }
        std::sort(c.begin(), c.end(), [&](GateId a, GateId b) { return pos[a] < pos[b]; });
        std::sort(s.begin(), s.end());
    }
};

// Evaluate the union cone of the jobs sharing `pats` and check each job's
// lane range. `pats`/`touched` are reusable worker scratch (all-X between
// batches). Jobs must already have their support patterns staged.
void eval_cone_and_touch(const Netlist& nl, std::span<const GateId> cone,
                         std::vector<Pattern>& pats, std::vector<GateId>& touched,
                         std::vector<Pattern>& ins) {
    for (const GateId g : cone) {
        const GateType t = nl.type(g);
        if (t == GateType::Input || netlist::is_sequential(t)) continue;
        ins.clear();
        for (const GateId f : nl.fanins(g)) ins.push_back(pats[f]);
        pats[g] = logic::eval_op(netlist::to_op(t), ins.data(), static_cast<int>(ins.size()));
        touched.push_back(g);
    }
}

// Stage one job's support assignments into lanes [base, base + count) for
// the chunk of assignments starting at `first`.
void stage_support(const ProofJob& job, std::vector<Pattern>& pats,
                   std::vector<GateId>& touched, int base, std::uint64_t first, int count) {
    for (std::size_t b = 0; b < job.support.size(); ++b) {
        Pattern& p = pats[job.support[b]];
        for (int lane = 0; lane < count; ++lane) {
            const std::uint64_t assignment = first + static_cast<std::uint64_t>(lane);
            logic::pat_set(p, base + lane, (assignment >> b) & 1 ? Val3::One : Val3::Zero);
        }
        touched.push_back(job.support[b]);
    }
}

bool job_verdict_lanes(const ProofJob& job, const std::vector<Pattern>& pats, int base,
                       int count) {
    const Pattern a = pats[job.rep];
    const Pattern b = job.inverted ? logic::pat_not(pats[job.member]) : pats[job.member];
    const std::uint64_t lane_mask =
        (count == 64 ? ~0ULL : ((1ULL << count) - 1)) << base;
    if ((logic::pat_diff(a, b) & lane_mask) != 0) return false;
    // All lanes must be binary (they are, with binary support values).
    return ((logic::pat_known(a) & logic::pat_known(b)) & lane_mask) == lane_mask;
}

// Reusable per-worker evaluation scratch. `pats` is all-X outside a batch;
// the touch list undoes exactly the gates a batch wrote.
struct ProofScratch {
    std::vector<Pattern> pats;
    std::vector<GateId> touched;
    std::vector<Pattern> ins;
    std::vector<GateId> cone;  // union cone of a packed batch

    void reset() {
        for (const GateId g : touched) pats[g] = logic::kPatAllX;
        touched.clear();
    }
};

// Prove a single oversized-assignment-space job (support 7..cap) by
// iterating 64-lane chunks, as the pre-batched implementation did.
bool prove_solo(const Netlist& nl, const ProofJob& job, ProofScratch& s) {
    const std::size_t k = job.support.size();
    const std::uint64_t total = 1ULL << k;
    bool ok = true;
    for (std::uint64_t first = 0; ok && first < total; first += 64) {
        const int count = static_cast<int>(std::min<std::uint64_t>(64, total - first));
        stage_support(job, s.pats, s.touched, 0, first, count);
        eval_cone_and_touch(nl, job.cone, s.pats, s.touched, s.ins);
        ok = job_verdict_lanes(job, s.pats, 0, count);
        s.reset();
    }
    return ok;
}

// Prove a packed batch: every job's full assignment space staged side by
// side in one 64-lane pass over the union of their cones. A cone gate
// shared by several jobs is evaluated once for all of them, and evaluation
// is lane-wise, so each job reads exactly its own assignments.
void prove_packed(const Netlist& nl, std::span<const ProofJob* const> jobs,
                  const std::vector<std::uint32_t>& pos, std::span<std::uint8_t> verdicts,
                  ProofScratch& s) {
    int base = 0;
    for (const ProofJob* job : jobs) {
        stage_support(*job, s.pats, s.touched, base, 0,
                      1 << static_cast<int>(job->support.size()));
        base += 1 << static_cast<int>(job->support.size());
    }
    s.cone.clear();
    for (const ProofJob* job : jobs) s.cone.insert(s.cone.end(), job->cone.begin(),
                                                   job->cone.end());
    std::sort(s.cone.begin(), s.cone.end(),
              [&](GateId a, GateId b) { return pos[a] < pos[b]; });
    s.cone.erase(std::unique(s.cone.begin(), s.cone.end()), s.cone.end());
    eval_cone_and_touch(nl, s.cone, s.pats, s.touched, s.ins);
    base = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const int count = 1 << static_cast<int>(jobs[j]->support.size());
        verdicts[j] = job_verdict_lanes(*jobs[j], s.pats, base, count) ? 1 : 0;
        base += count;
    }
    s.reset();
}

}  // namespace

EquivResult find_equivalences(const Netlist& nl, const EquivOptions& opt, exec::Pool* pool,
                              unsigned max_workers) {
    EquivResult out;
    out.map.assign(nl.size(), {});
    out.rep.assign(nl.size(), netlist::kNoGate);
    out.inverted.assign(nl.size(), false);

    const sim::SignatureSet sigs = sim::collect_signatures(nl, opt.sig_rounds, opt.seed);
    const netlist::Levelization lv = netlist::levelize(nl);
    std::vector<std::uint32_t> pos(nl.size(), 0);
    for (std::uint32_t i = 0; i < lv.topo_order.size(); ++i) pos[lv.topo_order[i]] = i;

    // Canonical polarity: flip the whole signature when its first bit is 1,
    // so a gate and its complement land in the same bucket.
    struct Entry {
        GateId gate;
        bool flipped;
    };
    std::map<std::vector<std::uint64_t>, std::vector<Entry>> buckets;
    for (GateId g = 0; g < nl.size(); ++g) {
        const auto words = sigs.of(g);
        std::vector<std::uint64_t> key(words.begin(), words.end());
        const bool flip = !key.empty() && (key[0] & 1);
        if (flip) {
            for (auto& w : key) w = ~w;
        }
        buckets[std::move(key)].push_back({g, flip});
    }

    // Flatten the candidate proofs (each independent, read-only over nl/lv)
    // and precompute every proof's union support and cone — once per gate
    // via the cone cache, not once per pair. Verdicts are merged in bucket
    // order below, making the result identical at any thread count and any
    // batch packing.
    ConeCache cache(nl, pos, opt.support_cap);
    std::vector<ProofJob> proofs;
    for (const auto& [key, entries] : buckets) {
        if (entries.size() < 2 || entries.size() > opt.max_bucket) continue;
        const Entry rep = entries[0];
        for (std::size_t i = 1; i < entries.size(); ++i) {
            ProofJob job;
            job.rep = rep.gate;
            job.member = entries[i].gate;
            job.inverted = entries[i].flipped != rep.flipped;
            cache.build(job.rep);
            cache.build(job.member);
            if (cache.overflow[job.rep] || cache.overflow[job.member]) {
                job.oversized = true;
                proofs.push_back(std::move(job));
                continue;
            }
            const auto& s1 = cache.support[job.rep];
            const auto& s2 = cache.support[job.member];
            job.support.resize(s1.size() + s2.size());
            job.support.erase(std::set_union(s1.begin(), s1.end(), s2.begin(), s2.end(),
                                             job.support.begin()),
                              job.support.end());
            if (job.support.size() > opt.support_cap) {
                job.oversized = true;
            } else {
                const auto& c1 = cache.cone[job.rep];
                const auto& c2 = cache.cone[job.member];
                job.cone.resize(c1.size() + c2.size());
                const auto by_pos = [&](GateId a, GateId b) { return pos[a] < pos[b]; };
                job.cone.erase(std::set_union(c1.begin(), c1.end(), c2.begin(), c2.end(),
                                              job.cone.begin(), by_pos),
                               job.cone.end());
            }
            proofs.push_back(std::move(job));
        }
    }

    // Pack consecutive small jobs (assignment space <= 64 lanes) into shared
    // 64-lane passes; oversized-space jobs run alone over lane chunks.
    // Packing is a pure evaluation-scheduling choice: verdicts are exhaustive
    // either way.
    struct Batch {
        std::uint32_t first = 0;  // index into `proofs`
        std::uint32_t count = 0;  // 1 for solo jobs
        bool packed = false;
    };
    std::vector<Batch> batches;
    {
        std::uint32_t i = 0;
        while (i < proofs.size()) {
            if (proofs[i].oversized) {  // verdict 0 without simulation
                ++i;
                continue;
            }
            if (proofs[i].support.size() > 6) {
                batches.push_back({i, 1, false});
                ++i;
                continue;
            }
            Batch b{i, 0, true};
            int lanes = 0;
            while (i < proofs.size() && !proofs[i].oversized &&
                   proofs[i].support.size() <= 6 &&
                   lanes + (1 << proofs[i].support.size()) <= 64) {
                lanes += 1 << proofs[i].support.size();
                ++b.count;
                ++i;
            }
            batches.push_back(b);
        }
    }

    std::vector<std::uint8_t> proven_flags(proofs.size(), 0);
    unsigned workers = pool != nullptr ? pool->size() : 1;
    if (max_workers != 0) workers = std::min(workers, max_workers);
    std::vector<ProofScratch> scratch(std::max(1u, workers));
    for (ProofScratch& s : scratch) s.pats.assign(nl.size(), logic::kPatAllX);

    auto prove_batch = [&](unsigned worker, std::size_t bi) {
        const Batch& b = batches[bi];
        ProofScratch& s = scratch[worker];
        if (!b.packed) {
            proven_flags[b.first] = prove_solo(nl, proofs[b.first], s) ? 1 : 0;
            return;
        }
        std::array<const ProofJob*, 64> jobs{};
        for (std::uint32_t j = 0; j < b.count; ++j) jobs[j] = &proofs[b.first + j];
        prove_packed(nl, {jobs.data(), b.count}, pos,
                     {proven_flags.data() + b.first, b.count}, s);
    };
    if (pool != nullptr && workers > 1 && batches.size() > 1) {
        pool->run(batches.size(), exec::TaskView(prove_batch), workers);
    } else {
        for (std::size_t i = 0; i < batches.size(); ++i) prove_batch(0, i);
    }

    std::size_t next_proof = 0;
    for (const auto& [key, entries] : buckets) {
        if (entries.size() < 2) continue;
        if (entries.size() > opt.max_bucket) {
            out.dropped += entries.size() - 1;
            continue;
        }
        const Entry rep = entries[0];
        std::vector<Entry> proven{rep};
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (proven_flags[next_proof++]) {
                proven.push_back(entries[i]);
            } else {
                ++out.dropped;
            }
        }
        if (proven.size() < 2) continue;
        ++out.num_classes;
        out.gates_in_classes += proven.size();
        for (const Entry& m : proven) {
            out.rep[m.gate] = rep.gate;
            out.inverted[m.gate] = m.flipped != rep.flipped;
            if (m.gate == rep.gate) continue;
            out.map[m.gate].push_back({rep.gate, m.flipped != rep.flipped});
            out.map[rep.gate].push_back({m.gate, m.flipped != rep.flipped});
        }
    }
    return out;
}

}  // namespace seqlearn::core
