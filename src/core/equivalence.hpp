#pragma once
// Combinational gate-equivalence identification (paper Section 3.1).
//
// Candidates come from 64-wide random-pattern signatures (equal signatures
// -> possibly equivalent; complementary -> possibly inverse-equivalent).
// Every candidate pair is then *proven* by exhaustive evaluation over the
// union of the two combinational supports (primary inputs and sequential
// outputs are free variables), batched 64 assignments per pass. Unproven
// candidates are dropped, so the resulting links are always sound to force
// during 3-valued simulation: if the gates agree on every binary assignment
// they agree on every completion of a partial assignment.

#include "exec/pool.hpp"
#include "netlist/netlist.hpp"
#include "sim/frame_sim.hpp"

#include <cstdint>
#include <vector>

namespace seqlearn::core {

struct EquivOptions {
    /// Random 64-lane rounds for signatures (total patterns = 64 * rounds).
    std::size_t sig_rounds = 8;
    /// Maximum union-support size for the exhaustive proof; larger
    /// candidates are dropped (soundness is never at risk, only yield).
    std::size_t support_cap = 14;
    /// Buckets larger than this are skipped entirely (pathological hashes).
    std::size_t max_bucket = 64;
    std::uint64_t seed = 0x5eed5eed;
};

struct EquivResult {
    /// Forcing links in star topology (member <-> class representative),
    /// consumable by sim::FrameSimulator::set_equivalences.
    sim::EquivMap map;
    /// Classes with at least two members.
    std::size_t num_classes = 0;
    /// Gates participating in some class.
    std::size_t gates_in_classes = 0;
    /// Candidate pairs dropped (support too large, bucket too large, or
    /// refuted by the exhaustive check).
    std::size_t dropped = 0;
    /// Class representative per gate (kNoGate when unclassified) and
    /// polarity relative to the representative.
    std::vector<netlist::GateId> rep;
    std::vector<bool> inverted;
};

/// Find proven combinational equivalences in `nl`. The candidate proofs are
/// independent of each other, so with a pool they run in parallel (capped at
/// `max_workers` slots; 0 = all); class construction merges the verdicts in
/// canonical bucket order, so the result is identical at any thread count.
EquivResult find_equivalences(const netlist::Netlist& nl, const EquivOptions& opt = {},
                              exec::Pool* pool = nullptr, unsigned max_workers = 0);

}  // namespace seqlearn::core
