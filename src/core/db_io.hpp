#pragma once
// Persistence for learned data.
//
// Learning is a pre-processing step (paper Section 2); in a real flow its
// output is computed once and consumed by many later ATPG / verification /
// optimization runs. This module serializes an implication database and a
// tie set to a line-oriented text format keyed by *gate names*, so a saved
// file survives netlist re-parsing as long as names are stable:
//
//     # seqlearn v1 <circuit-name>
//     rel <lhs-gate> <0|1> <rhs-gate> <0|1> <frame>
//     tie <gate> <0|1> <cycle>
//
// A learning *checkpoint* — the partial database of a budget-interrupted
// run plus the cursor needed to resume it — extends the same format:
//
//     # seqlearn-checkpoint v1 <circuit-name>
//     cursor <class-index> <single|multi> <unit> <config-digest>
//     progress <stems> <multi-targets> <multi-relations> <multi-ties>
//     cap <record-cap>
//     rel ... / tie ...                       (as above)
//     rec <node-gate> <0|1> <stem-gate> <0|1> <offset>
//
// Both loaders come in two flavors: a Diagnostics-collecting one that
// reports every problem with its line number in a single pass (the way the
// .bench reader does) and a legacy throwing wrapper that raises
// std::runtime_error on the first error.

#include "core/impl_db.hpp"
#include "core/learned_snapshot.hpp"
#include "core/seq_learn.hpp"
#include "core/tie.hpp"
#include "netlist/diagnostics.hpp"

#include <iosfwd>
#include <memory>

namespace seqlearn::core {

/// Write relations and ties for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties);

/// Write a frozen snapshot for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl,
                  const LearnedSnapshot& snap);

struct LoadedLearned {
    ImplicationDB db;
    TieSet ties;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates

    explicit LoadedLearned(std::size_t num_gates) : db(num_gates), ties(num_gates) {}
};

/// Read a file produced by save_learned back against `nl`, collecting
/// line-numbered diagnostics instead of throwing: malformed records are
/// errors (the line is skipped and the scan continues, so one pass surfaces
/// every problem); entries naming gates absent from `nl` are warnings and
/// counted in `skipped_lines` (a database stays reusable across mild
/// netlist edits). The returned data reflects exactly the well-formed,
/// known-gate entries — usable when diags.ok(), partial otherwise.
LoadedLearned load_learned(std::istream& in, const netlist::Netlist& nl,
                           netlist::Diagnostics& diags);

/// Legacy wrapper: throws std::runtime_error carrying the first error's
/// message and line number. Unknown-gate entries stay non-fatal skips.
LoadedLearned load_learned(std::istream& in, const netlist::Netlist& nl);

/// Result of loading a saved database directly into a shareable snapshot.
struct LoadedSnapshot {
    std::shared_ptr<const LearnedSnapshot> snapshot;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates
};

/// load_learned straight into a frozen shareable snapshot — the path a
/// DesignBuilder uses to attach pre-learned data many Sessions then share.
LoadedSnapshot load_snapshot(std::istream& in, const netlist::Netlist& nl);

/// Serialize a resumable learning checkpoint (see make_checkpoint). Throws
/// std::logic_error when `ckpt` carries no valid cursor.
void save_checkpoint(std::ostream& out, const netlist::Netlist& nl,
                     const LearnCheckpoint& ckpt);

/// Read a checkpoint back against `nl`, collecting diagnostics. Checkpoints
/// must round-trip exactly, so here unknown gate names are *errors*, not
/// skips (resuming against a different circuit would silently diverge). On
/// any error the returned checkpoint's cursor is invalid (not resumable).
LearnCheckpoint load_checkpoint(std::istream& in, const netlist::Netlist& nl,
                                netlist::Diagnostics& diags);

/// Throwing wrapper: std::runtime_error on the first error.
LearnCheckpoint load_checkpoint(std::istream& in, const netlist::Netlist& nl);

}  // namespace seqlearn::core
