#pragma once
// Persistence for learned data.
//
// Learning is a pre-processing step (paper Section 2); in a real flow its
// output is computed once and consumed by many later ATPG / verification /
// optimization runs. This module serializes an implication database and a
// tie set to a line-oriented text format keyed by *gate names*, so a saved
// file survives netlist re-parsing as long as names are stable:
//
//     # seqlearn v1 <circuit-name>
//     rel <lhs-gate> <0|1> <rhs-gate> <0|1> <frame>
//     tie <gate> <0|1> <cycle>
//
// A learning *checkpoint* — the partial database of a budget-interrupted
// run plus the cursor needed to resume it — extends the same format:
//
//     # seqlearn-checkpoint v1 <circuit-name>
//     cursor <class-index> <single|multi> <unit> <config-digest>
//     progress <stems> <multi-targets> <multi-relations> <multi-ties>
//     cap <record-cap>
//     rel ... / tie ...                       (as above)
//     rec <node-gate> <0|1> <stem-gate> <0|1> <offset>
//
// Both loaders come in two flavors: a Diagnostics-collecting one that
// reports every problem with its line number in a single pass (the way the
// .bench reader does) and a legacy throwing wrapper that raises
// std::runtime_error on the first error.

#include "core/impl_db.hpp"
#include "core/learned_snapshot.hpp"
#include "core/seq_learn.hpp"
#include "core/tie.hpp"
#include "netlist/diagnostics.hpp"

#include <iosfwd>
#include <memory>
#include <optional>
#include <string_view>

namespace seqlearn::core {

/// Write relations and ties for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties);

/// Write a frozen snapshot for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl,
                  const LearnedSnapshot& snap);

struct LoadedLearned {
    ImplicationDB db;
    TieSet ties;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates

    explicit LoadedLearned(std::size_t num_gates) : db(num_gates), ties(num_gates) {}
};

/// Read a file produced by save_learned back against `nl`, collecting
/// line-numbered diagnostics instead of throwing: malformed records are
/// errors (the line is skipped and the scan continues, so one pass surfaces
/// every problem); entries naming gates absent from `nl` are warnings and
/// counted in `skipped_lines` (a database stays reusable across mild
/// netlist edits). The returned data reflects exactly the well-formed,
/// known-gate entries — usable when diags.ok(), partial otherwise.
LoadedLearned load_learned(std::istream& in, const netlist::Netlist& nl,
                           netlist::Diagnostics& diags);

/// Legacy wrapper: throws std::runtime_error carrying the first error's
/// message and line number. Unknown-gate entries stay non-fatal skips.
LoadedLearned load_learned(std::istream& in, const netlist::Netlist& nl);

/// Result of loading a saved database directly into a shareable snapshot.
struct LoadedSnapshot {
    std::shared_ptr<const LearnedSnapshot> snapshot;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates
};

/// load_learned straight into a frozen shareable snapshot — the path a
/// DesignBuilder uses to attach pre-learned data many Sessions then share.
/// Accepts both the text format and the binary v2 format (sniffed by magic).
LoadedSnapshot load_snapshot(std::istream& in, const netlist::Netlist& nl);

/// Serialize a resumable learning checkpoint (see make_checkpoint). Throws
/// std::logic_error when `ckpt` carries no valid cursor.
void save_checkpoint(std::ostream& out, const netlist::Netlist& nl,
                     const LearnCheckpoint& ckpt);

/// Read a checkpoint back against `nl`, collecting diagnostics. Checkpoints
/// must round-trip exactly, so here unknown gate names are *errors*, not
/// skips (resuming against a different circuit would silently diverge). On
/// any error the returned checkpoint's cursor is invalid (not resumable).
LearnCheckpoint load_checkpoint(std::istream& in, const netlist::Netlist& nl,
                                netlist::Diagnostics& diags);

/// Throwing wrapper: std::runtime_error on the first error.
LearnCheckpoint load_checkpoint(std::istream& in, const netlist::Netlist& nl);

// --- binary snapshot format (v2) -------------------------------------------
//
// The text format above is the archival one: name-keyed, diffable, robust
// across mild netlist edits. The binary format trades that robustness for
// load speed — it stores the ImplicationDB's adjacency lists directly, in
// their in-memory sorted order, so loading is one exact-sized copy per list
// plus a linear closure check: no name lookups, no sorting, no dedup. All
// fields are little-endian, guarded by a netlist digest so a file can never
// be applied to a different circuit:
//
//     offset  size  field
//          0     8  magic "SEQLNDB2"
//          8     4  version (2), little-endian u32
//         12     4  header bytes (32), little-endian u32
//         16     8  netlist_digest(nl), little-endian u64
//         24     4  gate count, little-endian u32
//         28     4  reserved (0)
//         32     8  non-empty adjacency list count L, u64
//         40     8  total edge count E (always 2x the relation count), u64
//         48     .  L lists, in increasing lhs-key order:
//                     (lhs lit key, edge count) u32 pair, then per edge a
//                     (target lit key, frame) u32 pair in increasing
//                     target-key order — exactly ImplicationDB::edges_of()
//          +     8  tie count T, little-endian u64
//          +  12*T  ties: (gate, value, proof cycle) u32 triples, in
//                   TieSet::tied_gates() id order
//
// Storing both directions of every relation (forward + contrapositive)
// costs ~30% more bytes than a canonical-relation list, but it is what
// makes the loader copy-bound: the lists land pre-sorted and pre-deduped,
// and ImplicationDB::seal() re-verifies the contraposition-closure
// invariant instead of trusting the file. Deterministic list order makes
// save -> load -> save byte-identical.

/// FNV-1a fingerprint of a netlist's identity: gate count, then per gate its
/// name, type, and fanin ids. Two netlists share a digest exactly when the
/// gate-id keying of a binary snapshot means the same thing in both.
std::uint64_t netlist_digest(const netlist::Netlist& nl);

/// Write relations and ties in the binary v2 format. The stream must be
/// opened in binary mode. Throws std::invalid_argument when a literal key
/// does not fit the 32-bit record (gate ids beyond 2^31 — far past any
/// supported circuit).
void save_learned_binary(std::ostream& out, const netlist::Netlist& nl,
                         const ImplicationDB& db, const TieSet& ties);

/// True when `in` starts with the binary v2 magic. Peeks via seek: the read
/// position is restored, so the matching loader sees the whole file. The
/// stream must be seekable (files and string streams are).
bool is_binary_db(std::istream& in);

/// Load a binary v2 file against `nl`. Unlike the text loader there is no
/// skip-and-continue: ids are only meaningful for the exact circuit the file
/// was saved from, so a digest or gate-count mismatch, bad magic/version, or
/// truncation throws std::runtime_error.
LoadedLearned load_learned_binary(std::istream& in, const netlist::Netlist& nl);

/// Sniff the format (binary magic vs text header) and dispatch to
/// load_learned_binary or the throwing text load_learned.
LoadedLearned load_learned_any(std::istream& in, const netlist::Netlist& nl);

/// What probe_binary_db() can tell about a binary v2 blob without the
/// netlist it was saved from.
struct BinaryDbInfo {
    std::uint64_t netlist_digest = 0;  ///< which circuit the blob binds to
    std::uint32_t gates = 0;
    std::uint64_t relations = 0;  ///< edge count / 2
    std::uint64_t ties = 0;
};

/// Structurally validate an in-memory binary v2 blob without a netlist:
/// magic, version, and that the header's section counts walk the byte
/// range *exactly* — a blob truncated at (or inside) any section, or with
/// trailing garbage, returns nullopt. This is the cheap integrity check a
/// snapshot store's recovery scan runs per entry; the expensive
/// digest-vs-netlist and contraposition-closure checks still run in
/// load_learned_binary when the blob is actually attached.
std::optional<BinaryDbInfo> probe_binary_db(std::string_view bytes);

}  // namespace seqlearn::core
