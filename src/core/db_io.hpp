#pragma once
// Persistence for learned data.
//
// Learning is a pre-processing step (paper Section 2); in a real flow its
// output is computed once and consumed by many later ATPG / verification /
// optimization runs. This module serializes an implication database and a
// tie set to a line-oriented text format keyed by *gate names*, so a saved
// file survives netlist re-parsing as long as names are stable:
//
//     # seqlearn v1 <circuit-name>
//     rel <lhs-gate> <0|1> <rhs-gate> <0|1> <frame>
//     tie <gate> <0|1> <cycle>

#include "core/impl_db.hpp"
#include "core/learned_snapshot.hpp"
#include "core/tie.hpp"

#include <iosfwd>
#include <memory>

namespace seqlearn::core {

/// Write relations and ties for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl, const ImplicationDB& db,
                  const TieSet& ties);

/// Write a frozen snapshot for `nl`.
void save_learned(std::ostream& out, const netlist::Netlist& nl,
                  const LearnedSnapshot& snap);

struct LoadedLearned {
    ImplicationDB db;
    TieSet ties;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates

    explicit LoadedLearned(std::size_t num_gates) : db(num_gates), ties(num_gates) {}
};

/// Read a file produced by save_learned back against `nl`. Entries that
/// reference gates absent from `nl` are counted in `skipped_lines` rather
/// than failing, so a database can be reused across mild netlist edits.
/// Throws std::runtime_error on malformed syntax.
LoadedLearned load_learned(std::istream& in, const netlist::Netlist& nl);

/// Result of loading a saved database directly into a shareable snapshot.
struct LoadedSnapshot {
    std::shared_ptr<const LearnedSnapshot> snapshot;
    std::size_t skipped_lines = 0;  ///< entries naming unknown gates
};

/// load_learned straight into a frozen shareable snapshot — the path a
/// DesignBuilder uses to attach pre-learned data many Sessions then share.
LoadedSnapshot load_snapshot(std::istream& in, const netlist::Netlist& nl);

}  // namespace seqlearn::core
