#pragma once
// Per-worker engine clones.
//
// Parallel stages need one stage engine per pool worker — a FrameSimulator,
// a FaultSimulator, an atpg::Engine, or a bundle of them — each built over
// the one shared read-only Topology so the expensive structure is never
// duplicated, only the cheap mutable scratch. A WorkerSet owns those clones
// and hands worker w its instance; because every clone is constructed by the
// same factory, workers are interchangeable and the pool's arbitrary
// worker-to-item assignment cannot affect results.

#include <utility>
#include <vector>

namespace seqlearn::exec {

template <typename T>
class WorkerSet {
public:
    /// Build `workers` clones via make(worker_index). T must be movable.
    template <typename Make>
    WorkerSet(unsigned workers, Make&& make) {
        items_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) items_.push_back(make(w));
    }

    unsigned size() const noexcept { return static_cast<unsigned>(items_.size()); }
    T& operator[](unsigned worker) noexcept { return items_[worker]; }
    const T& operator[](unsigned worker) const noexcept { return items_[worker]; }

    auto begin() noexcept { return items_.begin(); }
    auto end() noexcept { return items_.end(); }

private:
    std::vector<T> items_;
};

}  // namespace seqlearn::exec
