#pragma once
// Run budgets: wall-clock deadline, work-item limit, optional memory cap.
//
// A BudgetSpec travels inside stage configs; a Budget is materialised when a
// run starts (so the deadline clock begins at run entry, not config build)
// and is polled at the same work-item boundaries as exec::CancelFlag.
// Polling is cheap by design: note_item() is a relaxed counter bump and
// check() is one steady_clock read plus two compares — the bench suite pins
// the total at <2% of a learning pass (`budget_overhead` row).
//
// Deadline state is sticky and shared: once check() observes the deadline it
// publishes the fact with release semantics so parallel workers can
// fast-abort their window via deadline_exceeded() without re-reading the
// clock, mirroring CancelFlag's request()/requested() pattern.

#include "exec/cancel.hpp"
#include "exec/outcome.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>

namespace seqlearn::exec {

/// Declarative budget carried by stage configs. Zero fields mean "no limit";
/// a default BudgetSpec imposes no governance at all.
struct BudgetSpec {
    /// Wall-clock deadline measured from run start. 0 = unlimited.
    std::chrono::milliseconds deadline{0};
    /// Maximum number of work items (stems / targets / faults). 0 = unlimited.
    std::size_t max_items = 0;
    /// Process RSS cap in bytes, polled at a stride. 0 = unlimited.
    std::size_t max_memory_bytes = 0;

    bool any() const noexcept {
        return deadline.count() > 0 || max_items > 0 || max_memory_bytes > 0;
    }
};

/// Live budget for one run. Constructed at run entry; not copyable (shared
/// by reference between the scheduler and its workers).
class Budget {
public:
    explicit Budget(const BudgetSpec& spec) noexcept;

    Budget(const Budget&) = delete;
    Budget& operator=(const Budget&) = delete;

    /// Count one completed work item (relaxed; called once per item by the
    /// thread that owns the serial commit order).
    void note_item() noexcept { items_.fetch_add(1, std::memory_order_relaxed); }

    /// Poll the budget. Returns Completed while within budget, otherwise the
    /// status of the first limit tripped. Sticky: after a non-Completed
    /// return every later call returns the same status.
    RunStatus check() noexcept;

    /// Sticky cross-thread view of the deadline/memory trip, safe to read
    /// from worker threads without touching the clock (acquire).
    bool deadline_exceeded() const noexcept {
        return tripped_.load(std::memory_order_acquire) != RunStatus::Completed;
    }

    /// Which limit tripped ("wall-clock deadline", "item limit", "memory
    /// cap") or nullptr while within budget. For RunOutcome diagnostics.
    const char* detail() const noexcept;

    std::size_t items() const noexcept { return items_.load(std::memory_order_relaxed); }

private:
    bool over_memory_cap() noexcept;

    std::chrono::steady_clock::time_point deadline_at_{};
    std::size_t max_items_ = 0;
    std::size_t max_memory_bytes_ = 0;
    bool has_deadline_ = false;
    std::atomic<RunStatus> tripped_{RunStatus::Completed};
    std::atomic<std::size_t> items_{0};
    unsigned memory_stride_ = 0;
};

/// Combined cancellation + budget poll used at every work-item boundary.
/// Cancellation wins ties so an explicit user request is always reported as
/// Cancelled. Either pointer may be null.
inline RunStatus poll_point(const CancelFlag* cancel, Budget* budget) noexcept {
    if (cancel && cancel->requested()) return RunStatus::Cancelled;
    if (budget) return budget->check();
    return RunStatus::Completed;
}

}  // namespace seqlearn::exec
