#include "exec/budget.hpp"

#include <cstdio>

namespace seqlearn::exec {
namespace {

// Current process resident set size in bytes, or 0 when unavailable
// (non-Linux or /proc unreadable) — a budget must never fail a run by
// itself, so "unknown" reads as "within cap".
std::size_t current_rss_bytes() noexcept {
#if defined(__linux__)
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (!f) return 0;
    unsigned long long total = 0, resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &total, &resident);
    std::fclose(f);
    if (got != 2) return 0;
    return static_cast<std::size_t>(resident) * 4096u;
#else
    return 0;
#endif
}

}  // namespace

Budget::Budget(const BudgetSpec& spec) noexcept
    : max_items_(spec.max_items), max_memory_bytes_(spec.max_memory_bytes) {
    if (spec.deadline.count() > 0) {
        has_deadline_ = true;
        deadline_at_ = std::chrono::steady_clock::now() + spec.deadline;
    }
}

RunStatus Budget::check() noexcept {
    const RunStatus sticky = tripped_.load(std::memory_order_acquire);
    if (sticky != RunStatus::Completed) return sticky;

    RunStatus hit = RunStatus::Completed;
    if (max_items_ && items_.load(std::memory_order_relaxed) >= max_items_) {
        hit = RunStatus::LimitReached;
    } else if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_) {
        hit = RunStatus::DeadlineExceeded;
    } else if (max_memory_bytes_ && over_memory_cap()) {
        hit = RunStatus::LimitReached;
    }
    if (hit != RunStatus::Completed) {
        // First trip wins; concurrent pollers may race but can only publish
        // equally valid statuses, and stickiness keeps later reads stable.
        RunStatus expected = RunStatus::Completed;
        tripped_.compare_exchange_strong(expected, hit, std::memory_order_release,
                                         std::memory_order_acquire);
        return tripped_.load(std::memory_order_acquire);
    }
    return RunStatus::Completed;
}

bool Budget::over_memory_cap() noexcept {
    // Reading /proc is ~microseconds, far above the rest of the poll, so
    // only sample every 32nd check.
    if (memory_stride_++ % 32 != 0) return false;
    const std::size_t rss = current_rss_bytes();
    return rss != 0 && rss > max_memory_bytes_;
}

const char* Budget::detail() const noexcept {
    switch (tripped_.load(std::memory_order_acquire)) {
        case RunStatus::DeadlineExceeded: return "wall-clock deadline";
        case RunStatus::LimitReached:
            return (max_items_ && items_.load(std::memory_order_relaxed) >= max_items_)
                       ? "item limit"
                       : "memory cap";
        default: return nullptr;
    }
}

}  // namespace seqlearn::exec
