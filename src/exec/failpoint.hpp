#pragma once
// Deterministic fault-injection harness for the governance test suite.
//
// A FailurePoint is armed with (site, nth arrival, kind) and threaded
// through stage configs next to CancelFlag/Budget. Instrumented code calls
// poll(site) at the named sites; the Nth arrival at the armed site throws —
// either an InjectedFault or std::bad_alloc — from inside the work item /
// commit, exercising the same unwind paths a real failure would take.
// Arrival counting is a single atomic fetch_add per poll, so exactly one
// thread observes the armed arrival even when the site runs on a parallel
// worker, and repeated runs with the same seed fail at the same arrival.
//
// Disarmed FailurePoints (and null pointers, the production default) cost
// one relaxed atomic load per poll.

#include <array>
#include <atomic>
#include <cstddef>
#include <new>
#include <stdexcept>
#include <string>

namespace seqlearn::exec {

/// Instrumented sites. Kept deliberately coarse: a site names a class of
/// code location ("inside a work item's compute"), the arrival index picks
/// the concrete occurrence.
enum class FailSite : unsigned char {
    WorkItem = 0,     ///< inside a work item (stem/target/fault-pass compute)
    SpecCommit,       ///< inside an ordered/batched speculation commit
    BatchRecompute,   ///< inside a batch remainder recompute
    kCount,
};

inline const char* fail_site_name(FailSite s) noexcept {
    switch (s) {
        case FailSite::WorkItem: return "work_item";
        case FailSite::SpecCommit: return "spec_commit";
        case FailSite::BatchRecompute: return "batch_recompute";
        default: return "unknown";
    }
}

/// What the armed poll throws.
enum class FailKind : unsigned char {
    Error = 0,  ///< InjectedFault (runtime_error)
    BadAlloc,   ///< std::bad_alloc, simulating an allocation failure
};

/// Exception thrown by an armed FailurePoint (FailKind::Error).
struct InjectedFault : std::runtime_error {
    explicit InjectedFault(FailSite site)
        : std::runtime_error(std::string("injected fault at ") + fail_site_name(site)),
          site(site) {}
    FailSite site;
};

class FailurePoint {
public:
    FailurePoint() = default;
    FailurePoint(const FailurePoint&) = delete;
    FailurePoint& operator=(const FailurePoint&) = delete;

    /// Arm: the `nth` arrival (1-based) at `site` throws `kind`. Re-arming
    /// resets all arrival counters. Not thread-safe against concurrent
    /// poll() — arm between runs, not during one.
    void arm(FailSite site, std::size_t nth, FailKind kind = FailKind::Error) noexcept {
        for (auto& c : arrivals_) c.store(0, std::memory_order_relaxed);
        site_ = site;
        nth_ = nth;
        kind_ = kind;
        armed_.store(true, std::memory_order_release);
    }

    void disarm() noexcept { armed_.store(false, std::memory_order_release); }

    /// Instrumentation hook. Throws when this arrival is the armed one.
    void poll(FailSite site) {
        if (!armed_.load(std::memory_order_acquire)) return;
        const std::size_t arrival =
            1 + arrivals_[static_cast<std::size_t>(site)].fetch_add(
                    1, std::memory_order_relaxed);
        if (site == site_ && arrival == nth_) {
            if (kind_ == FailKind::BadAlloc) throw std::bad_alloc();
            throw InjectedFault(site);
        }
    }

    /// Arrivals recorded at `site` since the last arm() (test introspection).
    std::size_t hits(FailSite site) const noexcept {
        return arrivals_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::size_t>, static_cast<std::size_t>(FailSite::kCount)>
        arrivals_{};
    FailSite site_ = FailSite::WorkItem;
    std::size_t nth_ = 0;
    FailKind kind_ = FailKind::Error;
    std::atomic<bool> armed_{false};
};

}  // namespace seqlearn::exec
