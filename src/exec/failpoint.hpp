#pragma once
// Deterministic fault-injection harness for the governance and I/O chaos
// test suites.
//
// A FailurePoint is armed with (site, nth arrival, kind) and threaded
// through stage configs next to CancelFlag/Budget. Instrumented code calls
// poll(site) at the named sites; the Nth arrival at the armed site throws —
// either an InjectedFault or std::bad_alloc — from inside the work item /
// commit, exercising the same unwind paths a real failure would take.
// Arrival counting is a single atomic fetch_add per poll, so exactly one
// thread observes the armed arrival even when the site runs on a parallel
// worker, and repeated runs with the same seed fail at the same arrival.
//
// I/O sites (filesystem writes, fsyncs, renames, socket sends) use the
// non-throwing twin fire(): the instrumented call site asks "does this
// arrival fail?" and on true simulates the OS-level failure itself — a
// short write, an EIO from fsync, a failed rename — so the degradation
// path under test is the real errno-handling code, not an unwind. The same
// arming (site, nth) drives both flavors.
//
// Disarmed FailurePoints (and null pointers, the production default) cost
// one relaxed atomic load per poll/fire.

#include <array>
#include <atomic>
#include <cstddef>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>

namespace seqlearn::exec {

/// Instrumented sites. Kept deliberately coarse: a site names a class of
/// code location ("inside a work item's compute"), the arrival index picks
/// the concrete occurrence.
enum class FailSite : unsigned char {
    WorkItem = 0,     ///< inside a work item (stem/target/fault-pass compute)
    SpecCommit,       ///< inside an ordered/batched speculation commit
    BatchRecompute,   ///< inside a batch remainder recompute
    FsWrite,          ///< a filesystem write() — armed arrival = short write
    FsFsync,          ///< an fsync()/fdatasync() — armed arrival = EIO
    FsRename,         ///< a rename() into place — armed arrival = EIO
    SockSend,         ///< a socket send() — armed arrival = short send
    kCount,
};

inline const char* fail_site_name(FailSite s) noexcept {
    switch (s) {
        case FailSite::WorkItem: return "work_item";
        case FailSite::SpecCommit: return "spec_commit";
        case FailSite::BatchRecompute: return "batch_recompute";
        case FailSite::FsWrite: return "fs_write";
        case FailSite::FsFsync: return "fs_fsync";
        case FailSite::FsRename: return "fs_rename";
        case FailSite::SockSend: return "sock_send";
        default: return "unknown";
    }
}

/// What the armed poll throws.
enum class FailKind : unsigned char {
    Error = 0,  ///< InjectedFault (runtime_error)
    BadAlloc,   ///< std::bad_alloc, simulating an allocation failure
};

/// Exception thrown by an armed FailurePoint (FailKind::Error).
struct InjectedFault : std::runtime_error {
    explicit InjectedFault(FailSite site)
        : std::runtime_error(std::string("injected fault at ") + fail_site_name(site)),
          site(site) {}
    FailSite site;
};

class FailurePoint {
public:
    FailurePoint() = default;
    FailurePoint(const FailurePoint&) = delete;
    FailurePoint& operator=(const FailurePoint&) = delete;

    /// Arm: the `nth` arrival (1-based) at `site` throws `kind`. Re-arming
    /// resets all arrival counters. Not thread-safe against concurrent
    /// poll() — arm between runs, not during one.
    void arm(FailSite site, std::size_t nth, FailKind kind = FailKind::Error) noexcept {
        for (auto& c : arrivals_) c.store(0, std::memory_order_relaxed);
        site_ = site;
        nth_ = nth;
        kind_ = kind;
        armed_.store(true, std::memory_order_release);
    }

    void disarm() noexcept { armed_.store(false, std::memory_order_release); }

    /// Instrumentation hook. Throws when this arrival is the armed one.
    void poll(FailSite site) {
        if (!armed_.load(std::memory_order_acquire)) return;
        const std::size_t arrival =
            1 + arrivals_[static_cast<std::size_t>(site)].fetch_add(
                    1, std::memory_order_relaxed);
        if (site == site_ && arrival == nth_) {
            if (kind_ == FailKind::BadAlloc) throw std::bad_alloc();
            throw InjectedFault(site);
        }
    }

    /// Non-throwing instrumentation hook for I/O sites: true exactly when
    /// this arrival is the armed one. The caller simulates the OS failure
    /// (short write, EIO, failed rename) so the production errno path runs.
    bool fire(FailSite site) noexcept {
        if (!armed_.load(std::memory_order_acquire)) return false;
        const std::size_t arrival =
            1 + arrivals_[static_cast<std::size_t>(site)].fetch_add(
                    1, std::memory_order_relaxed);
        return site == site_ && arrival == nth_;
    }

    /// Arrivals recorded at `site` since the last arm() (test introspection).
    std::size_t hits(FailSite site) const noexcept {
        return arrivals_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::size_t>, static_cast<std::size_t>(FailSite::kCount)>
        arrivals_{};
    FailSite site_ = FailSite::WorkItem;
    std::size_t nth_ = 0;
    FailKind kind_ = FailKind::Error;
    std::atomic<bool> armed_{false};
};

/// Arm `fp` from a "<site>:<nth>" spec ("fs_rename:1", "sock_send:3") — the
/// deterministic-chaos knob the CLI's `serve --chaos` flag and the CI crash
/// smoke use. Returns false (fp untouched) on an unknown site name or a
/// non-positive arrival count.
inline bool arm_from_spec(FailurePoint& fp, std::string_view spec) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string_view::npos) return false;
    const std::string_view site_s = spec.substr(0, colon);
    const std::string_view nth_s = spec.substr(colon + 1);
    FailSite site = FailSite::kCount;
    for (unsigned char i = 0; i < static_cast<unsigned char>(FailSite::kCount); ++i) {
        if (site_s == fail_site_name(static_cast<FailSite>(i))) {
            site = static_cast<FailSite>(i);
            break;
        }
    }
    if (site == FailSite::kCount || nth_s.empty()) return false;
    std::size_t nth = 0;
    for (const char c : nth_s) {
        if (c < '0' || c > '9') return false;
        nth = nth * 10 + static_cast<std::size_t>(c - '0');
    }
    if (nth == 0) return false;
    fp.arm(site, nth);
    return true;
}

}  // namespace seqlearn::exec
