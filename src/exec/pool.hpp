#pragma once
// A small fixed-size thread pool with a chunked dynamic work queue — the
// execution engine underneath the parallel learning, fault-simulation, and
// ATPG paths.
//
// Design rules that keep N-thread results bit-identical to 1-thread runs:
//  - work items are indexed; workers claim indices from one atomic counter,
//    so *which* worker runs an item is arbitrary but the item set is exact;
//  - workers must be interchangeable (per-worker engine clones over shared
//    read-only structure) and write only into per-item result slots;
//  - callers merge result slots in canonical index order afterwards.
//
// The calling thread participates as worker 0, so Pool(1) (or a single-item
// run) degenerates to a plain inline loop with no synchronization at all —
// the sequential hot paths pay nothing for the pool's existence. run() is
// blocking and pools are not reentrant: a task must not call run() on the
// pool executing it (drivers that need nested parallelism run their inner
// stage between outer dispatches instead).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace seqlearn::exec {

/// Non-owning view of a callable `void(unsigned worker, std::size_t item)`.
/// The callable must outlive the call it is passed to (Pool::run blocks, so
/// passing a local lambda is safe).
class TaskView {
public:
    template <typename F>
    TaskView(F& fn)  // NOLINT(google-explicit-constructor): adapter by design
        : ctx_(&fn), call_([](void* ctx, unsigned worker, std::size_t item) {
              (*static_cast<F*>(ctx))(worker, item);
          }) {}

    void operator()(unsigned worker, std::size_t item) const { call_(ctx_, worker, item); }

private:
    void* ctx_;
    void (*call_)(void*, unsigned, std::size_t);
};

class Pool {
public:
    /// std::thread::hardware_concurrency(), never less than 1.
    static unsigned hardware_threads();

    /// A pool with `threads` worker slots including the calling thread
    /// (0 = hardware_threads()); `threads - 1` helper threads are spawned.
    explicit Pool(unsigned threads = 0);
    ~Pool();

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    /// Worker slots (helpers + the calling thread); at least 1.
    unsigned size() const noexcept { return static_cast<unsigned>(threads_.size()) + 1; }

    /// Run task(worker, item) for every item in [0, items), distributing
    /// items dynamically over at most `max_workers` slots (0 = all). Blocks
    /// until every item completed; the calling thread participates as worker
    /// 0. The first exception thrown by any item is rethrown here (remaining
    /// items are abandoned). Not reentrant.
    void run(std::size_t items, TaskView task, unsigned max_workers = 0);

private:
    void worker_main(unsigned id);
    void drain(unsigned worker, const TaskView& task);

    std::vector<std::thread> threads_;

    std::mutex mx_;
    std::condition_variable wake_cv_;   // helpers wait here for a job
    std::condition_variable done_cv_;   // run() waits here for helpers
    std::uint64_t generation_ = 0;      // bumped per published job
    bool job_open_ = false;             // late helpers skip closed jobs
    bool shutdown_ = false;
    unsigned active_ = 0;               // helpers inside the current job
    std::exception_ptr error_;

    // Current job (valid only while job_open_ or helpers are active).
    std::atomic<std::size_t> next_{0};
    std::size_t total_ = 0;
    const TaskView* task_ = nullptr;
    unsigned job_workers_ = 0;
};

/// A stage's resolved execution environment: the pool to run on (null =
/// serial) and the worker count to cap jobs at. `owned` backs `pool` when
/// the stage had to build a private pool; keep the StageExec alive for the
/// duration of the stage.
struct StageExec {
    Pool* pool = nullptr;
    unsigned workers = 1;
    std::unique_ptr<Pool> owned;
};

/// The one resolution rule every stage shares: run on `shared` when the
/// caller provides one (workers = min(pool size, threads)), otherwise build
/// a private pool when more than one thread is requested, otherwise serial.
/// `threads` = 0 means one worker per hardware thread.
StageExec resolve_stage_exec(Pool* shared, unsigned threads);

}  // namespace seqlearn::exec
