#pragma once
// Structured run outcomes for governed stages (learn / atpg / fault_sim).
//
// Every long-running entry point reports how it ended instead of throwing
// across the API boundary: Completed means the full work list was processed,
// the three "graceful stop" states (DeadlineExceeded / Cancelled /
// LimitReached) mean the run ended early at a work-item boundary and the
// partial result is a valid prefix of the serial schedule, and Failed means
// an exception was captured — the diagnostic carries its message and the
// shared state is unchanged by the failed window.

#include <string>
#include <utility>

namespace seqlearn::exec {

enum class RunStatus : unsigned char {
    Completed = 0,
    DeadlineExceeded,
    Cancelled,
    LimitReached,
    Failed,
};

/// Short stable name for logs / JSON ("completed", "deadline", ...).
inline const char* run_status_name(RunStatus s) noexcept {
    switch (s) {
        case RunStatus::Completed: return "completed";
        case RunStatus::DeadlineExceeded: return "deadline";
        case RunStatus::Cancelled: return "cancelled";
        case RunStatus::LimitReached: return "limit";
        case RunStatus::Failed: return "failed";
    }
    return "unknown";
}

/// How a governed run ended. `diagnostic` is empty unless the run stopped
/// for a reason worth explaining (always set for Failed, optionally set for
/// LimitReached to say which limit tripped).
struct RunOutcome {
    RunStatus status = RunStatus::Completed;
    std::string diagnostic;

    /// True only for a full, uninterrupted run.
    bool ok() const noexcept { return status == RunStatus::Completed; }

    const char* name() const noexcept { return run_status_name(status); }

    static RunOutcome completed() { return {}; }
    static RunOutcome failed(std::string why) {
        return {RunStatus::Failed, std::move(why)};
    }
};

}  // namespace seqlearn::exec
