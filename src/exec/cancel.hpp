#pragma once
// Cooperative cancellation for parallel stages.
//
// A CancelFlag is a single atomic bit shared between the thread driving a
// stage and anything that wants to stop it — a progress observer returning
// false, another thread calling request(), a signal handler. Stage drivers
// poll it at work-item boundaries (chunk dispatch and ordered commit), so a
// request takes effect within one chunk; workers themselves never block on
// it. Reads and writes are release/acquire so a requester's preceding
// writes are visible to the stage that observes the request.

#include <atomic>

namespace seqlearn::exec {

class CancelFlag {
public:
    CancelFlag() = default;
    CancelFlag(const CancelFlag&) = delete;
    CancelFlag& operator=(const CancelFlag&) = delete;

    /// Ask the running stage to stop at its next cancellation point. Safe to
    /// call from any thread, any number of times.
    void request() noexcept { requested_.store(true, std::memory_order_release); }

    /// Has a cancellation been requested (and not reset)?
    bool requested() const noexcept { return requested_.load(std::memory_order_acquire); }

    /// Re-arm the flag before starting a new stage.
    void reset() noexcept { requested_.store(false, std::memory_order_release); }

private:
    std::atomic<bool> requested_{false};
};

}  // namespace seqlearn::exec
