#pragma once
// Ordered speculative execution over a sequence of dependent work items.
//
// The learning passes have a serial semantics: item k's computation may read
// state (the tie set) mutated by items < k, and bit-identical parallel runs
// must reproduce exactly the serial schedule. The saving grace is that the
// mutations are *rare* (few stems discover new ties), so most items compute
// the same answer whether or not their predecessors committed first.
//
// speculate_ordered exploits that: it dispatches a window of items to the
// pool, computing each against the current shared state (frozen during the
// window — commits happen only between dispatches, on the calling thread),
// then commits results strictly in item order. A commit that finds the
// shared state changed since the window was dispatched returns Retry: the
// window is abandoned from that item on and re-dispatched against the fresh
// state. Every dispatch commits at least its first item (nothing mutates
// between a dispatch and its first commit), so progress is guaranteed; the
// window grows after clean dispatches and shrinks after retries, adapting
// the speculation depth to the observed mutation rate.
//
// The caller provides result slots indexed by position-in-window (so their
// buffers are reused across windows); slot s of the current window holds
// item `window_base + s`.

#include "exec/pool.hpp"

#include <algorithm>
#include <cstddef>

namespace seqlearn::exec {

/// Verdict of an ordered commit.
enum class Commit : std::uint8_t {
    Done,   ///< applied; move to the next item
    Retry,  ///< shared state changed under the speculation; recompute from here
    Stop,   ///< stage cancelled or complete; abandon the rest
};

struct SpeculateOptions {
    /// Window bounds in items (0 = derived from the worker count: min =
    /// workers, max = 4 * workers — deep enough to amortize dispatch,
    /// shallow enough that a retry abandons little work). Slot arrays must
    /// hold max_window slots.
    std::size_t min_window = 0;
    std::size_t max_window = 0;
};

/// Resolved maximum window for slot sizing. Keep in sync with the defaults
/// applied inside speculate_ordered.
inline std::size_t resolved_max_window(const SpeculateOptions& opt, unsigned workers) {
    return opt.max_window != 0 ? opt.max_window
                               : static_cast<std::size_t>(workers) * 4;
}

/// Run items [0, n) through compute/commit as described above.
///  - prepare(begin, end): called on the calling thread immediately before
///    each dispatch (snapshot versions here);
///  - compute(worker, item, slot): called concurrently, must only read the
///    shared state and write into its slot;
///  - commit(item, slot) -> Commit: called on the calling thread in strict
///    item order; applies the slot to the shared state.
/// With a null pool (or one worker) the loop degenerates to the serial
/// schedule: prepare/compute/commit per item, retries impossible.
template <typename Prepare, typename ComputeFn, typename CommitFn>
void speculate_ordered(Pool* pool, std::size_t n, const SpeculateOptions& opt,
                       Prepare&& prepare, ComputeFn&& compute, CommitFn&& commit,
                       unsigned max_workers = 0) {
    unsigned workers = pool != nullptr ? pool->size() : 1;
    if (max_workers != 0) workers = std::min(workers, max_workers);

    if (pool == nullptr || workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            for (;;) {
                prepare(i, i + 1);
                compute(0u, i, std::size_t{0});
                const Commit verdict = commit(i, std::size_t{0});
                if (verdict == Commit::Stop) return;
                if (verdict == Commit::Done) break;
                // Retry directly after prepare means the commit can never
                // observe fresher state; loop anyway — prepare re-snapshots
                // and the next commit sees its own dispatch as clean.
            }
        }
        return;
    }

    const std::size_t min_window =
        std::max<std::size_t>(1, opt.min_window != 0 ? opt.min_window : workers);
    const std::size_t max_window =
        std::max(min_window, resolved_max_window(opt, workers));

    std::size_t pos = 0;
    std::size_t window = min_window;
    while (pos < n) {
        const std::size_t end = std::min(n, pos + window);
        const std::size_t base = pos;
        prepare(base, end);
        auto task = [&](unsigned worker, std::size_t k) { compute(worker, base + k, k); };
        pool->run(end - base, TaskView(task), workers);

        bool retried = false;
        for (std::size_t i = base; i < end; ++i) {
            const Commit verdict = commit(i, i - base);
            if (verdict == Commit::Stop) return;
            if (verdict == Commit::Retry) {
                pos = i;
                window = std::max(min_window, window / 2);
                retried = true;
                break;
            }
        }
        if (!retried) {
            pos = end;
            window = std::min(max_window, window * 2);
        }
    }
}

/// Ordered speculation over fixed-size *batches* of serially-dependent
/// units (the 64-lane learning passes: one batch of stems/targets = one
/// speculation item = one bit-parallel simulation). The batch commit walks
/// its units in order with one shared skeleton:
///  - observe(unit) is the serial observation point (cancel/progress/cap
///    polling); returning false stops the whole pass;
///  - stale(pos, slot) reports that the shared state moved under the
///    speculation (version mismatch, or the worker stopped computing at a
///    mutation). A stale unit at position 0 retries the window — nothing of
///    the batch was applied; a later one hands the batch remainder to
///    recompute(unit, end), which re-derives it against the fresh state on
///    the calling thread (returning false = cancelled);
///  - apply(unit, slot, pos) commits one computed unit.
/// Keeping this loop in one place is what guarantees the single-node and
/// multiple-node passes share one staleness rule.
template <typename PrepareFn, typename ComputeFn, typename ObserveFn, typename StaleFn,
          typename ApplyFn, typename RecomputeFn>
void speculate_batches(Pool* pool, std::size_t n_units, std::size_t batch,
                       const SpeculateOptions& sopt, PrepareFn&& prepare,
                       ComputeFn&& compute, ObserveFn&& observe, StaleFn&& stale,
                       ApplyFn&& apply, RecomputeFn&& recompute, unsigned workers) {
    const std::size_t n_items = (n_units + batch - 1) / batch;
    auto commit = [&](std::size_t item, std::size_t slot) -> Commit {
        const std::size_t base = item * batch;
        const std::size_t count = std::min(batch, n_units - base);
        for (std::size_t p = 0; p < count; ++p) {
            if (!observe(base + p)) return Commit::Stop;
            if (stale(p, slot)) {
                if (p == 0) return Commit::Retry;
                return recompute(base + p, base + count) ? Commit::Done : Commit::Stop;
            }
            apply(base + p, slot, p);
        }
        return Commit::Done;
    };
    speculate_ordered(pool, n_items, sopt, prepare, compute, commit, workers);
}

}  // namespace seqlearn::exec
