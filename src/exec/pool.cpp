#include "exec/pool.hpp"

#include <algorithm>

namespace seqlearn::exec {

unsigned Pool::hardware_threads() {
    return std::max(1u, std::thread::hardware_concurrency());
}

StageExec resolve_stage_exec(Pool* shared, unsigned threads) {
    const unsigned requested = threads != 0 ? threads : Pool::hardware_threads();
    StageExec out;
    if (shared != nullptr) {
        out.pool = shared;
        out.workers = std::min(shared->size(), requested);
    } else if (requested > 1) {
        out.owned = std::make_unique<Pool>(requested);
        out.pool = out.owned.get();
        out.workers = requested;
    }
    if (out.workers <= 1) out.pool = nullptr;
    return out;
}

Pool::Pool(unsigned threads) {
    const unsigned n = threads == 0 ? hardware_threads() : threads;
    threads_.reserve(n > 0 ? n - 1 : 0);
    for (unsigned id = 1; id < n; ++id) {
        threads_.emplace_back([this, id] { worker_main(id); });
    }
}

Pool::~Pool() {
    {
        const std::lock_guard<std::mutex> lock(mx_);
        shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void Pool::drain(unsigned worker, const TaskView& task) {
    for (;;) {
        const std::size_t item = next_.fetch_add(1, std::memory_order_relaxed);
        if (item >= total_) return;
        try {
            task(worker, item);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mx_);
            if (!error_) error_ = std::current_exception();
            // Abandon the remaining items; in-flight ones finish on their own.
            next_.store(total_, std::memory_order_relaxed);
            return;
        }
    }
}

void Pool::worker_main(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mx_);
        wake_cv_.wait(lock, [&] { return shutdown_ || (generation_ != seen && job_open_); });
        if (shutdown_) return;
        seen = generation_;
        if (id >= job_workers_) continue;  // capped out of this job
        ++active_;
        const TaskView* task = task_;
        lock.unlock();

        drain(id, *task);

        lock.lock();
        if (--active_ == 0) done_cv_.notify_one();
    }
}

void Pool::run(std::size_t items, TaskView task, unsigned max_workers) {
    if (items == 0) return;
    unsigned workers = size();
    if (max_workers != 0) workers = std::min(workers, max_workers);
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, items));
    if (workers <= 1 || threads_.empty()) {
        // Inline path: no helpers, no locking; exceptions propagate directly.
        for (std::size_t i = 0; i < items; ++i) task(0, i);
        return;
    }

    {
        const std::lock_guard<std::mutex> lock(mx_);
        next_.store(0, std::memory_order_relaxed);
        total_ = items;
        task_ = &task;
        job_workers_ = workers;
        error_ = nullptr;
        job_open_ = true;
        ++generation_;
    }
    wake_cv_.notify_all();

    drain(0, task);  // the calling thread is worker 0

    std::unique_lock<std::mutex> lock(mx_);
    // All items are claimed once worker 0's drain returns, so helpers that
    // wake from now on would find nothing; close the job so they skip it
    // (and never touch the dying TaskView), then wait out the ones inside.
    job_open_ = false;
    done_cv_.wait(lock, [&] { return active_ == 0; });
    task_ = nullptr;
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

}  // namespace seqlearn::exec
