#pragma once
// Sound untestability proofs.
//
// A fault that has no test even in a single frame with a *free* state (all
// sequential outputs controllable) and pseudo-primary-output observation
// (sequential data inputs observable) can never be activated-and-propagated
// in any frame of any sequence — it is sequentially untestable. The proof
// is an exhaustive search, so only an Exhausted engine verdict counts;
// hitting the effort limit proves nothing.

#include "atpg/engine.hpp"

namespace seqlearn::atpg {

enum class RedundancyVerdict : std::uint8_t {
    Untestable,            ///< proven: no test exists
    CombinationallyTestable,  ///< a single-frame free-state test exists
    Unknown,               ///< effort exhausted before a proof
};

/// Run the combinational redundancy proof for `f`. `cfg` supplies the
/// learning mode and data (ties make more proofs succeed); the window,
/// observation, and free-state flags are overridden internally.
RedundancyVerdict prove_redundancy(Engine& engine, const fault::Fault& f,
                                   EngineConfig cfg, std::uint32_t effort_backtracks);

}  // namespace seqlearn::atpg
