#pragma once
// Sound untestability proofs.
//
// A fault that has no test even in a single frame with a *free* state (all
// sequential outputs controllable) and pseudo-primary-output observation
// (sequential data inputs observable) can never be activated-and-propagated
// in any frame of any sequence — it is sequentially untestable. The proof
// is an exhaustive search, so only an Exhausted engine verdict counts;
// hitting the effort limit proves nothing.
//
// Verdicts report into fault::UntestableProof — the same taxonomy the
// tie-gate marking and the CNF timeframe-expansion backend use, so a fault
// carries exactly one kind of untestability proof however it was obtained.

#include "atpg/engine.hpp"
#include "fault/fault_list.hpp"

namespace seqlearn::atpg {

struct RedundancyResult {
    /// Combinational when proven untestable, None otherwise.
    fault::UntestableProof proof = fault::UntestableProof::None;
    /// With proof == None: true when a single-frame free-state test was
    /// found (the fault is combinationally testable — sequential ATPG still
    /// has to justify the state), false when the effort limit hit first.
    bool combinationally_testable = false;
};

/// Run the combinational redundancy proof for `f`. `cfg` supplies the
/// learning mode and data (ties make more proofs succeed); the window,
/// observation, and free-state flags are overridden internally.
RedundancyResult prove_redundancy(Engine& engine, const fault::Fault& f,
                                  EngineConfig cfg, std::uint32_t effort_backtracks);

}  // namespace seqlearn::atpg
