#include "atpg/engine.hpp"

#include <algorithm>

namespace seqlearn::atpg {

namespace {

using logic::GateOp;
using logic::Val3;
using netlist::GateType;
using netlist::Topology;

constexpr int kGood = 0;
constexpr int kFaulty = 1;

}  // namespace

// All per-solve state lives here; the Engine object only caches the shared
// CSR topology across solves.
struct Engine::Search {
    const Topology& topo;
    Ila ila;
    fault::Fault fault;
    EngineConfig cfg;

    // The faulted line's driver (== fault.gate for output faults).
    GateId fault_line;
    std::vector<bool> cone;  // gate -> may differ between planes

    // Per plane, per cell values. Values only move X -> binary on a branch.
    std::vector<Val3> plane[2];
    // Facts pre-asserted before search (ties, stuck plane): never need
    // justification and survive rollbacks (trail starts after them).
    std::vector<bool> exempt[2];
    // Forbidden values on the good plane: bit0 = cannot be 0, bit1 = 1.
    std::vector<std::uint8_t> forbid;

    struct TrailEntry {
        Cell cell;
        std::uint8_t plane;  // 0/1, or 2 for a forbid-bit entry
        std::uint8_t forbid_bit;
    };
    std::vector<TrailEntry> trail;

    // Worklist of (cell, plane) whose value changed; justification queue.
    std::vector<std::pair<Cell, std::uint8_t>> work;
    std::vector<std::pair<Cell, std::uint8_t>> justify;
    std::vector<std::pair<Cell, std::uint8_t>> forbid_work;

    bool conflict = false;
    std::uint32_t backtracks = 0;
    std::uint32_t decisions = 0;

    // True when the faulty plane of fault.gate is pinned by the fault
    // itself: an output fault anywhere, or a data-pin fault on a sequential
    // element (whose captures are all stuck from frame 1 on).
    bool site_output_pinned = false;
    bool site_seq_data_pinned = false;

    Search(const Topology& topology, const fault::Fault& f, std::uint32_t frames,
           const EngineConfig& config)
        : topo(topology), ila(topology, frames), fault(f), cfg(config) {
        fault_line = f.pin == fault::kOutputPin ? f.gate : topo.fanins(f.gate)[f.pin];
        cone = fault_cone_mask(topo, f);
        site_output_pinned = f.pin == fault::kOutputPin;
        site_seq_data_pinned = f.pin == 0 && topo.is_seq(f.gate);
        const std::size_t cells = ila.num_cells();
        plane[0].assign(cells, Val3::X);
        plane[1].assign(cells, Val3::X);
        exempt[0].assign(cells, false);
        exempt[1].assign(cells, false);
        forbid.assign(cells, 0);
    }

    // ----- basic accessors ------------------------------------------------

    Val3 value(Cell c, int p) const { return plane[p][c]; }

    bool is_const(GateId g) const { return topo.is_const(g); }

    // The value gate `g` sees on input pin `pin` in plane `p` at `frame`:
    // pin faults override the faulty plane.
    Val3 input_value(std::uint32_t frame, GateId g, std::size_t pin, int p) const {
        if (p == kFaulty && fault.pin != fault::kOutputPin && g == fault.gate &&
            pin == static_cast<std::size_t>(fault.pin)) {
            return fault.stuck;
        }
        return plane[p][ila.cell(frame, topo.fanins(g)[pin])];
    }

    Val3 eval_plane(std::uint32_t frame, GateId g, int p) const {
        const GateType t = topo.type(g);
        if (t == GateType::Const0) return Val3::Zero;
        if (t == GateType::Const1) return Val3::One;
        if (topo.is_input(g) || topo.is_seq(g)) return Val3::X;
        std::array<Val3, 2> small;
        const std::size_t n = topo.fanins(g).size();
        if (n <= 2) {
            for (std::size_t i = 0; i < n; ++i) small[i] = input_value(frame, g, i, p);
            return logic::eval_op(topo.op(g), std::span<const Val3>(small.data(), n));
        }
        std::vector<Val3> ins(n);
        for (std::size_t i = 0; i < n; ++i) ins[i] = input_value(frame, g, i, p);
        return logic::eval_op(topo.op(g), ins);
    }

    // ----- assignment with trail -------------------------------------------

    // Set plane `p` of `c` to binary `v`. Returns false on conflict.
    bool set_plane(Cell c, int p, Val3 v) {
        if (conflict) return false;
        const Val3 cur = plane[p][c];
        if (cur == v) return true;
        if (cur != Val3::X) {
            conflict = true;
            return false;
        }
        const GateId g = ila.gate_of(c);
        const std::uint32_t frame = ila.frame_of(c);
        // Unknown initial state: frame-0 sequential outputs stay X.
        const bool is_ppi = frame == 0 && topo.is_seq(g);
        if (is_ppi && !cfg.ppi_free) {
            conflict = true;
            return false;
        }
        if (p == kGood && (forbid[c] & (v == Val3::One ? 2 : 1))) {
            conflict = true;
            return false;
        }
        plane[p][c] = v;
        trail.push_back({c, static_cast<std::uint8_t>(p), 0});
        work.push_back({c, static_cast<std::uint8_t>(p)});
        justify.push_back({c, static_cast<std::uint8_t>(p)});
        // Outside the fault cone the two machines agree line-for-line. Free
        // PPIs are shared power-up state, equal in both machines even inside
        // the cone — except a fault-pinned site output, which stays pinned.
        const bool share_ppi =
            is_ppi && cfg.ppi_free && !(g == fault.gate && site_output_pinned);
        if (!cone[g] || share_ppi) {
            const int q = 1 - p;
            if (plane[q][c] == Val3::X) {
                plane[q][c] = v;
                trail.push_back({c, static_cast<std::uint8_t>(q), 0});
                work.push_back({c, static_cast<std::uint8_t>(q)});
            } else if (plane[q][c] != v) {
                conflict = true;
                return false;
            }
        }
        if (p == kGood) apply_learned(c, v);
        return !conflict;
    }

    void add_forbid(Cell c, Val3 v) {
        if (conflict) return;
        const std::uint8_t bit = v == Val3::One ? 2 : 1;
        if (forbid[c] & bit) return;
        if (plane[kGood][c] == v) {  // already assigned the forbidden value
            conflict = true;
            return;
        }
        forbid[c] |= bit;
        trail.push_back({c, 2, bit});
        forbid_work.push_back({c, bit});
    }

    // Effective good-plane value for forbid propagation: a real binary value,
    // or the value implied by a single-sided forbid, else X.
    Val3 effective(Cell c) const {
        const Val3 v = plane[kGood][c];
        if (v != Val3::X) return v;
        const std::uint8_t f = forbid[c];
        if (f == 1) return Val3::One;   // cannot be 0
        if (f == 2) return Val3::Zero;  // cannot be 1
        return Val3::X;
    }

    void apply_learned(Cell c, Val3 v) {
        if (cfg.mode == LearnMode::None || cfg.db == nullptr) return;
        const GateId g = ila.gate_of(c);
        const std::uint32_t frame = ila.frame_of(c);
        for (const core::ImplicationDB::Edge& e : cfg.db->edges_of({g, v})) {
            // A relation proven at frame t needs t predecessor frames.
            if (e.frame > frame) continue;
            const Cell mc = ila.cell(frame, e.to.gate);
            if (cfg.mode == LearnMode::KnownValue) {
                if (!set_plane(mc, kGood, e.to.value)) return;
            } else {
                add_forbid(mc, logic::v3_not(e.to.value));
                if (conflict) return;
            }
        }
    }

    // ----- implication fixpoint --------------------------------------------

    // Backward implication on gate `g`'s own inputs in plane `p`, given its
    // binary output value.
    void backward(std::uint32_t frame, GateId g, int p) {
        const Cell c = ila.cell(frame, g);
        const Val3 out = plane[p][c];
        if (out == Val3::X) return;
        // A pinned faulty plane (stuck output, or an FF fed through a stuck
        // data pin) places no requirement on the gate's inputs.
        if (p == kFaulty && g == fault.gate &&
            (site_output_pinned || site_seq_data_pinned)) {
            return;
        }
        if (topo.is_seq(g)) {
            if (frame == 0) return;  // guarded at set_plane already
            // FF output at k equals its (first-port) data value at k-1.
            set_plane(ila.cell(frame - 1, topo.fanins(g)[0]), p, out);
            return;
        }
        if (topo.is_input(g) || is_const(g)) return;

        const GateOp op = topo.op(g);
        const std::size_t n = topo.fanins(g).size();
        auto skip_pin = [&](std::size_t pin) {
            return p == kFaulty && fault.pin != fault::kOutputPin && g == fault.gate &&
                   pin == static_cast<std::size_t>(fault.pin);
        };
        if (op == GateOp::Buf || op == GateOp::Not) {
            if (!skip_pin(0)) {
                set_plane(ila.cell(frame, topo.fanins(g)[0]), p,
                          op == GateOp::Not ? logic::v3_not(out) : out);
            }
            return;
        }
        const Val3 ctrl = logic::controlling_value(op);
        if (ctrl != Val3::X) {
            const Val3 nco = logic::noncontrolled_output(op);
            if (out == nco) {
                // Every input must carry the noncontrolling value.
                for (std::size_t i = 0; i < n; ++i) {
                    if (skip_pin(i)) continue;
                    if (!set_plane(ila.cell(frame, topo.fanins(g)[i]), p, logic::v3_not(ctrl)))
                        return;
                }
            } else {
                // Controlled output: if exactly one input is still X it must
                // carry the controlling value.
                std::size_t unknown = n;
                for (std::size_t i = 0; i < n; ++i) {
                    const Val3 iv = input_value(frame, g, i, p);
                    if (iv == ctrl) return;  // already justified
                    if (iv == Val3::X) {
                        if (unknown != n) return;  // two unknowns: no implication
                        unknown = i;
                    }
                }
                if (unknown != n && !skip_pin(unknown)) {
                    set_plane(ila.cell(frame, topo.fanins(g)[unknown]), p, ctrl);
                }
            }
            return;
        }
        // XOR/XNOR: with all inputs but one known, the last is determined.
        std::size_t unknown = n;
        Val3 acc = Val3::Zero;
        for (std::size_t i = 0; i < n; ++i) {
            const Val3 iv = input_value(frame, g, i, p);
            if (iv == Val3::X) {
                if (unknown != n) return;
                unknown = i;
            } else {
                acc = logic::v3_xor(acc, iv);
            }
        }
        if (unknown == n) return;
        if (skip_pin(unknown)) return;
        Val3 need = logic::v3_xor(out, acc);
        if (op == GateOp::Xnor) need = logic::v3_not(need);
        set_plane(ila.cell(frame, topo.fanins(g)[unknown]), p, need);
    }

    // Re-evaluate gate `g` at `frame` in plane `p` and merge the result.
    void forward_eval(std::uint32_t frame, GateId g, int p) {
        // The faulty plane of an output-fault site is pinned to the stuck
        // value; evaluation never overrides it.
        if (p == kFaulty && fault.pin == fault::kOutputPin && g == fault.gate) return;
        const Val3 v = eval_plane(frame, g, p);
        if (v != Val3::X) set_plane(ila.cell(frame, g), p, v);
    }

    bool imply() {
        while (!conflict && (!work.empty() || !forbid_work.empty())) {
            while (!work.empty() && !conflict) {
                const auto [c, p] = work.back();
                work.pop_back();
                const GateId g = ila.gate_of(c);
                const std::uint32_t frame = ila.frame_of(c);
                // Forward into same-frame consumers, and their backward
                // rules (a new input value can complete a unique choice).
                for (const GateId h : topo.fanouts(g)) {
                    if (topo.is_seq(h)) {
                        // A fault-pinned sequential output ignores its data.
                        const bool pinned_site =
                            p == kFaulty && h == fault.gate &&
                            (site_output_pinned || site_seq_data_pinned);
                        if (!pinned_site && topo.fanins(h)[0] == g && frame + 1 < ila.frames) {
                            set_plane(ila.cell(frame + 1, h), p, plane[p][c]);
                        }
                        continue;
                    }
                    forward_eval(frame, h, p);
                    backward(frame, h, p);
                    if (conflict) return false;
                }
                // This gate's own backward rule.
                backward(frame, g, p);
                if (conflict) return false;
                // Forbidden values cross frames and gates too.
                if (cfg.mode == LearnMode::ForbiddenValue && p == kGood)
                    forbid_work.push_back({c, 0});
            }
            while (!forbid_work.empty() && !conflict) {
                const auto [c, bit] = forbid_work.back();
                forbid_work.pop_back();
                propagate_forbid(c);
            }
        }
        return !conflict;
    }

    // Derive further forbidden values around cell `c` using effective values
    // (real assignments or single-sided forbids). Sound by Kleene
    // monotonicity: substituting forbidden-v as !v, a binary evaluation
    // result b means the real value can never be !b.
    void propagate_forbid(Cell c) {
        const GateId g = ila.gate_of(c);
        const std::uint32_t frame = ila.frame_of(c);
        // Forward: consumers of g (and the FF link).
        for (const GateId h : topo.fanouts(g)) {
            if (topo.is_seq(h)) {
                if (topo.fanins(h)[0] == g && frame + 1 < ila.frames) {
                    mirror_forbid(c, ila.cell(frame + 1, h));
                }
                continue;
            }
            forbid_eval(frame, h);
            forbid_backward(frame, h);
            if (conflict) return;
        }
        // Cross-frame backward: an FF's forbids push onto its D input.
        if (topo.is_seq(g) && frame > 0) {
            mirror_forbid(c, ila.cell(frame - 1, topo.fanins(g)[0]));
        }
        forbid_backward(frame, g);
    }

    void mirror_forbid(Cell from, Cell to) {
        const std::uint8_t f = forbid[from];
        if (f & 1) add_forbid(to, Val3::Zero);
        if (f & 2) add_forbid(to, Val3::One);
    }

    void forbid_eval(std::uint32_t frame, GateId h) {
        if (!topo.is_comb(h)) return;
        const Cell hc = ila.cell(frame, h);
        if (plane[kGood][hc] != Val3::X) return;
        const std::size_t n = topo.fanins(h).size();
        std::vector<Val3> ins(n);
        bool any_forbid_based = false;
        for (std::size_t i = 0; i < n; ++i) {
            const Cell ic = ila.cell(frame, topo.fanins(h)[i]);
            ins[i] = effective(ic);
            if (plane[kGood][ic] == Val3::X && ins[i] != Val3::X) any_forbid_based = true;
        }
        if (!any_forbid_based) return;  // plain values are handled by imply()
        const Val3 v = logic::eval_op(topo.op(h), ins);
        if (v != Val3::X) add_forbid(hc, logic::v3_not(v));
    }

    void forbid_backward(std::uint32_t frame, GateId h) {
        if (!topo.is_comb(h)) return;
        const Cell hc = ila.cell(frame, h);
        const Val3 out = effective(hc);
        if (out == Val3::X) return;
        const GateOp op = topo.op(h);
        if (op == GateOp::Buf || op == GateOp::Not) {
            const Val3 need = op == GateOp::Not ? logic::v3_not(out) : out;
            add_forbid(ila.cell(frame, topo.fanins(h)[0]), logic::v3_not(need));
            return;
        }
        const Val3 ctrl = logic::controlling_value(op);
        if (ctrl == Val3::X) return;
        const Val3 controlled_out =
            logic::output_inverted(op) ? logic::v3_not(ctrl) : ctrl;
        if (out != controlled_out) {
            // Output holds (or must hold) the noncontrolled value: no input
            // may take the controlling value.
            for (const GateId f : topo.fanins(h)) add_forbid(ila.cell(frame, f), ctrl);
        }
    }

    // ----- facts: ties and the pinned faulty plane -------------------------

    bool assert_facts() {
        if (site_output_pinned) {
            for (std::uint32_t k = 0; k < ila.frames; ++k) {
                const Cell c = ila.cell(k, fault.gate);
                plane[kFaulty][c] = fault.stuck;
                exempt[kFaulty][c] = true;
                work.push_back({c, kFaulty});
            }
        } else if (site_seq_data_pinned) {
            // The element captures the stuck value at every boundary; only
            // its frame-0 (power-up) value stays unknown.
            for (std::uint32_t k = 1; k < ila.frames; ++k) {
                const Cell c = ila.cell(k, fault.gate);
                plane[kFaulty][c] = fault.stuck;
                exempt[kFaulty][c] = true;
                work.push_back({c, kFaulty});
            }
        }
        if (cfg.ties != nullptr) {
            for (const GateId g : cfg.ties->tied_gates()) {
                const Val3 v = cfg.ties->value(g);
                for (std::uint32_t k = cfg.ties->cycle(g); k < ila.frames; ++k) {
                    const Cell c = ila.cell(k, g);
                    if (plane[kGood][c] == Val3::X) {
                        plane[kGood][c] = v;
                        exempt[kGood][c] = true;
                        work.push_back({c, kGood});
                    }
                    // Outside the cone the faulty machine shares the tie.
                    if (!cone[g] && plane[kFaulty][c] == Val3::X) {
                        plane[kFaulty][c] = v;
                        exempt[kFaulty][c] = true;
                        work.push_back({c, kFaulty});
                    }
                }
            }
        }
        return imply();
    }

    // ----- observation and frontiers ---------------------------------------

    bool effect_at(Cell c) const {
        const Val3 g = plane[kGood][c];
        const Val3 f = plane[kFaulty][c];
        return g != Val3::X && f != Val3::X && g != f;
    }

    bool observed() const {
        for (std::uint32_t k = 0; k < ila.frames; ++k) {
            for (const GateId o : topo.outputs()) {
                if (effect_at(ila.cell(k, o))) return true;
            }
        }
        if (cfg.observe_ppo) {
            const std::uint32_t k = ila.frames - 1;
            for (const GateId ff : topo.seq_elements()) {
                if (effect_at(ila.cell(k, topo.fanins(ff)[0]))) return true;
            }
            // A data-pin fault on a sequential element creates its effect at
            // the capture itself: the faulty machine latches the stuck value
            // while the good machine latches the driver's value.
            if (site_seq_data_pinned) {
                const Val3 good = plane[kGood][ila.cell(k, fault_line)];
                if (good != Val3::X && good != fault.stuck) return true;
            }
        }
        return false;
    }

    bool is_justified(Cell c, int p) const {
        if (exempt[p][c]) return true;
        const GateId g = ila.gate_of(c);
        const std::uint32_t frame = ila.frame_of(c);
        if (topo.is_input(g) || is_const(g)) return true;
        if (topo.is_seq(g)) {
            if (frame == 0) return true;  // ppi_free or unreachable
            return plane[p][ila.cell(frame - 1, topo.fanins(g)[0])] == plane[p][c];
        }
        return eval_plane(frame, g, p) == plane[p][c];
    }

    // Gates on the D-frontier: output not a full fault effect, at least one
    // input carrying one. Scanned over cone gates only.
    void d_frontier(std::vector<Cell>& out) const {
        out.clear();
        for (std::uint32_t k = 0; k < ila.frames; ++k) {
            for (GateId g = 0; g < topo.size(); ++g) {
                if (!cone[g]) continue;
                if (!topo.is_comb(g)) {
                    // A sequential element forwards effects by itself.
                    continue;
                }
                const Cell c = ila.cell(k, g);
                if (plane[kFaulty][c] != Val3::X && plane[kGood][c] != Val3::X) continue;
                bool has_effect_input = false;
                bool blocked = false;
                const GateOp op = topo.op(g);
                const Val3 ctrl = logic::controlling_value(op);
                for (std::size_t i = 0; i < topo.fanins(g).size(); ++i) {
                    const Val3 gv = input_value(k, g, i, kGood);
                    const Val3 fv = input_value(k, g, i, kFaulty);
                    if (gv != Val3::X && fv != Val3::X && gv != fv) {
                        has_effect_input = true;
                    } else if (ctrl != Val3::X && gv == ctrl && fv == ctrl) {
                        blocked = true;  // controlled in both machines
                    }
                }
                if (has_effect_input && !blocked) out.push_back(c);
            }
        }
    }

    // ----- search ----------------------------------------------------------

    struct Alternative {
        enum class Kind : std::uint8_t { Activate, Assign, Propagate } kind;
        Cell cell = 0;       // Assign: the input cell; Propagate: the gate cell
        std::uint8_t p = 0;  // Assign: plane
        Val3 v = Val3::X;    // Activate/Assign value
        std::uint32_t frame = 0;  // Activate
    };

    struct Decision {
        std::size_t trail_mark;
        std::vector<Alternative> alts;
        std::size_t next = 0;
        // Obligation to re-check after applying an alternative.
        Cell recheck_cell = 0;
        std::uint8_t recheck_plane = 0;
        bool has_recheck = false;
    };
    std::vector<Decision> stack;

    void rollback(std::size_t mark) {
        while (trail.size() > mark) {
            const TrailEntry e = trail.back();
            trail.pop_back();
            if (e.plane == 2) forbid[e.cell] &= static_cast<std::uint8_t>(~e.forbid_bit);
            else plane[e.plane][e.cell] = Val3::X;
        }
        work.clear();
        forbid_work.clear();
        conflict = false;
    }

    bool apply(const Alternative& a) {
        switch (a.kind) {
            case Alternative::Kind::Activate:
                return set_plane(ila.cell(a.frame, fault_line), kGood,
                                 logic::v3_not(fault.stuck)) &&
                       imply();
            case Alternative::Kind::Assign:
                return set_plane(a.cell, a.p, a.v) && imply();
            case Alternative::Kind::Propagate: {
                const GateId g = ila.gate_of(a.cell);
                const std::uint32_t k = ila.frame_of(a.cell);
                const GateOp op = topo.op(g);
                const Val3 ctrl = logic::controlling_value(op);
                const Val3 side = ctrl != Val3::X ? logic::v3_not(ctrl) : Val3::Zero;
                bool assigned_any = false;
                for (std::size_t i = 0; i < topo.fanins(g).size(); ++i) {
                    const Val3 gv = input_value(k, g, i, kGood);
                    const Val3 fv = input_value(k, g, i, kFaulty);
                    if (gv != Val3::X && fv != Val3::X && gv != fv) continue;  // the effect
                    const Cell ic = ila.cell(k, topo.fanins(g)[i]);
                    if (gv == Val3::X) {
                        if (!set_plane(ic, kGood, side)) return false;
                        assigned_any = true;
                    }
                    if (fv == Val3::X && cone[topo.fanins(g)[i]]) {
                        if (!set_plane(ic, kFaulty, side)) return false;
                        assigned_any = true;
                    }
                }
                // A no-op propagation makes no progress; treating it as
                // success would recreate the same D-frontier decision
                // forever.
                if (!assigned_any) return false;
                return imply();
            }
        }
        return false;
    }

    // Collect justification alternatives for an unjustified (cell, plane).
    // Returns false when the obligation is impossible (conflict).
    bool justification_alts(Cell c, int p, std::vector<Alternative>& alts) {
        alts.clear();
        const GateId g = ila.gate_of(c);
        const std::uint32_t frame = ila.frame_of(c);
        const GateOp op = netlist::to_op(topo.type(g));
        const Val3 out = plane[p][c];
        const Val3 ctrl = logic::controlling_value(op);
        auto pin_cell = [&](std::size_t i) { return ila.cell(frame, topo.fanins(g)[i]); };
        auto pin_skipped = [&](std::size_t i) {
            return p == kFaulty && fault.pin != fault::kOutputPin && g == fault.gate &&
                   i == static_cast<std::size_t>(fault.pin);
        };
        if (ctrl != Val3::X) {
            const Val3 nco = logic::noncontrolled_output(op);
            if (out == nco) return true;  // backward imply handles it fully
            // Controlled output: some input must take the controlling value.
            std::vector<Alternative> preferred;
            for (std::size_t i = 0; i < topo.fanins(g).size(); ++i) {
                if (pin_skipped(i)) continue;
                if (input_value(frame, g, i, p) != Val3::X) continue;
                Alternative a{Alternative::Kind::Assign, pin_cell(i),
                              static_cast<std::uint8_t>(p), ctrl, 0};
                // Forbidden-value guidance (paper Section 4): prefer the
                // input whose noncontrolling value is forbidden; skip inputs
                // whose controlling value is forbidden.
                const std::uint8_t fb = forbid[pin_cell(i)];
                const std::uint8_t ctrl_bit = ctrl == Val3::One ? 2 : 1;
                if (p == kGood && (fb & ctrl_bit)) continue;
                const std::uint8_t nc_bit = ctrl == Val3::One ? 1 : 2;
                if (p == kGood && (fb & nc_bit)) preferred.push_back(a);
                else alts.push_back(a);
            }
            if (cfg.guide != nullptr) {
                // SCOAP backtrace: cheapest-to-control fanin first. The
                // forbidden-value preference partition is preserved — the
                // sort only reorders within each tier (stable, so unguided
                // ties keep the structural scan order).
                auto by_cc = [&](const Alternative& x, const Alternative& y) {
                    return cfg.guide->controllability(ila.gate_of(x.cell), ctrl) <
                           cfg.guide->controllability(ila.gate_of(y.cell), ctrl);
                };
                std::stable_sort(preferred.begin(), preferred.end(), by_cc);
                std::stable_sort(alts.begin(), alts.end(), by_cc);
            }
            alts.insert(alts.begin(), preferred.begin(), preferred.end());
            return !alts.empty();
        }
        // XOR-like: branch on the first unknown input's polarity (cheapest
        // controllability first when guided).
        for (std::size_t i = 0; i < topo.fanins(g).size(); ++i) {
            if (pin_skipped(i)) continue;
            if (input_value(frame, g, i, p) != Val3::X) continue;
            Val3 first = Val3::Zero;
            if (cfg.guide != nullptr) {
                const GateId drv = topo.fanins(g)[i];
                if (cfg.guide->cc1(drv) < cfg.guide->cc0(drv)) first = Val3::One;
            }
            alts.push_back({Alternative::Kind::Assign, pin_cell(i),
                            static_cast<std::uint8_t>(p), first, 0});
            alts.push_back({Alternative::Kind::Assign, pin_cell(i),
                            static_cast<std::uint8_t>(p), logic::v3_opposite(first), 0});
            return true;
        }
        return false;
    }

    EngineResult run() {
        EngineResult result;
        if (!assert_facts()) {
            result.status = EngineResult::Status::Exhausted;
            return result;
        }

        // Root decision: the activation frame, earliest first.
        {
            Decision d;
            d.trail_mark = trail.size();
            for (std::uint32_t k = 0; k < ila.frames; ++k) {
                // Activating on a frame-0 sequential output is impossible.
                if (k == 0 && topo.is_seq(fault_line) && !cfg.ppi_free)
                    continue;
                d.alts.push_back({Alternative::Kind::Activate, 0, 0, Val3::X, k});
            }
            stack.push_back(std::move(d));
        }

        std::vector<Cell> frontier;
        bool need_apply = true;

        while (true) {
            if (decisions > cfg.max_decisions) {
                result.status = EngineResult::Status::Aborted;
                result.backtracks = backtracks;
                result.decisions = decisions;
                return result;
            }
            if (need_apply) {
                // Apply the next alternative of the top decision.
                Decision& d = stack.back();
                if (d.next >= d.alts.size()) {
                    if (!backtrack(result)) return result;
                    continue;
                }
                rollback(d.trail_mark);
                const Alternative& a = d.alts[d.next++];
                const bool ok = apply(a);
                if (d.has_recheck) justify.push_back({d.recheck_cell, d.recheck_plane});
                if (!ok) {
                    if (!backtrack(result)) return result;
                    continue;
                }
                need_apply = false;
            }

            // Pick the next obligation.
            bool found_obligation = false;
            while (!justify.empty()) {
                const auto [c, p] = justify.back();
                justify.pop_back();
                if (plane[p][c] == Val3::X) continue;  // rolled back
                if (is_justified(c, p)) continue;
                Decision d;
                d.trail_mark = trail.size();
                d.recheck_cell = c;
                d.recheck_plane = p;
                d.has_recheck = true;
                if (!justification_alts(c, p, d.alts)) {
                    // No way to justify: treat as conflict.
                    if (!backtrack(result)) return result;
                    need_apply = true;
                    found_obligation = true;
                    break;
                }
                if (d.alts.empty()) continue;  // fully handled by implication
                stack.push_back(std::move(d));
                ++decisions;
                need_apply = true;
                found_obligation = true;
                break;
            }
            if (found_obligation) continue;

            if (observed()) {
                // Rollbacks can strip the inputs that once justified an
                // older assignment, so re-verify everything still on the
                // trail before declaring success.
                bool all_justified = true;
                for (const TrailEntry& e : trail) {
                    if (e.plane == 2) continue;
                    if (!is_justified(e.cell, e.plane)) {
                        justify.push_back({e.cell, e.plane});
                        all_justified = false;
                    }
                }
                if (!all_justified) continue;
                result.status = EngineResult::Status::TestFound;
                result.test.assign(ila.frames,
                                   sim::InputFrame(topo.inputs().size(), Val3::X));
                for (std::uint32_t k = 0; k < ila.frames; ++k) {
                    for (std::size_t i = 0; i < topo.inputs().size(); ++i) {
                        result.test[k][i] = plane[kGood][ila.cell(k, topo.inputs()[i])];
                    }
                }
                result.backtracks = backtracks;
                result.decisions = decisions;
                return result;
            }

            if (cfg.complete_search) {
                // Exhaustive fallback: branch on the first unassigned free
                // input (PI anywhere; PPI when ppi_free). With all of them
                // assigned and nothing observed, this branch is dead.
                Cell pick = 0;
                bool found = false;
                for (std::uint32_t k = 0; k < ila.frames && !found; ++k) {
                    for (const GateId pi : topo.inputs()) {
                        const Cell c = ila.cell(k, pi);
                        if (plane[kGood][c] == Val3::X) {
                            pick = c;
                            found = true;
                            break;
                        }
                    }
                    if (found || !cfg.ppi_free || k != 0) continue;
                    for (const GateId ff : topo.seq_elements()) {
                        const Cell c = ila.cell(0, ff);
                        if (plane[kGood][c] == Val3::X) {
                            pick = c;
                            found = true;
                            break;
                        }
                    }
                }
                if (!found) {
                    if (!backtrack(result)) return result;
                    need_apply = true;
                    continue;
                }
                Decision d;
                d.trail_mark = trail.size();
                d.alts.push_back({Alternative::Kind::Assign, pick, kGood, Val3::Zero, 0});
                d.alts.push_back({Alternative::Kind::Assign, pick, kGood, Val3::One, 0});
                stack.push_back(std::move(d));
                ++decisions;
                need_apply = true;
                continue;
            }

            // Propagate: branch over the D-frontier.
            d_frontier(frontier);
            if (frontier.empty()) {
                if (!backtrack(result)) return result;
                need_apply = true;
                continue;
            }
            if (cfg.guide != nullptr) {
                // SCOAP propagation: best-observable frontier gate first
                // (stable, so unguided ties keep the structural scan order).
                std::stable_sort(frontier.begin(), frontier.end(), [&](Cell x, Cell y) {
                    return cfg.guide->co(ila.gate_of(x)) < cfg.guide->co(ila.gate_of(y));
                });
            }
            Decision d;
            d.trail_mark = trail.size();
            for (const Cell c : frontier)
                d.alts.push_back({Alternative::Kind::Propagate, c, 0, Val3::X, 0});
            stack.push_back(std::move(d));
            ++decisions;
            need_apply = true;
        }
    }

    bool backtrack(EngineResult& result) {
        ++backtracks;
        if (backtracks > cfg.backtrack_limit) {
            result.status = EngineResult::Status::Aborted;
            result.backtracks = backtracks;
            result.decisions = decisions;
            return false;
        }
        while (!stack.empty() && stack.back().next >= stack.back().alts.size()) {
            rollback(stack.back().trail_mark);
            stack.pop_back();
        }
        if (stack.empty()) {
            result.status = EngineResult::Status::Exhausted;
            result.backtracks = backtracks;
            result.decisions = decisions;
            return false;
        }
        return true;
    }
};

Engine::Engine(const netlist::Topology& topo) : topo_(&topo) {}

EngineResult Engine::solve(const fault::Fault& f, std::uint32_t frames,
                           const EngineConfig& cfg) {
    Search search(*topo_, f, frames, cfg);
    EngineResult result = search.run();
    // Count decisions also when a test was found.
    result.decisions = search.decisions;
    result.backtracks = search.backtracks;
    return result;
}

}  // namespace seqlearn::atpg
