#include "atpg/atpg_loop.hpp"

#include "atpg/redundancy.hpp"
#include "netlist/structure.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include <algorithm>

namespace seqlearn::atpg {

using fault::FaultStatus;

namespace {

std::vector<std::uint32_t> default_windows(const netlist::Topology& topo) {
    const std::size_t depth = netlist::sequential_depth(topo, 16);
    const std::uint32_t max_w =
        std::clamp<std::uint32_t>(static_cast<std::uint32_t>(2 * depth + 2), 4, 20);
    std::vector<std::uint32_t> out;
    for (std::uint32_t w = 1; w < max_w; w = w < 4 ? w + 1 : w + (w / 2)) out.push_back(w);
    out.push_back(max_w);
    return out;
}

}  // namespace

AtpgOutcome run_atpg(Engine& engine, fault::FaultSimulator& fsim, fault::FaultList& list,
                     const AtpgConfig& cfg) {
    const util::Timer timer;
    AtpgOutcome out;
    const netlist::Topology& topo = engine.topology();

    if (cfg.learned != nullptr) {
        // Tie-augmented good simulation: keeps validation in step with the
        // tie facts the engine asserts (Section 4 / reference [15] gap).
        fsim.set_good_ties(&cfg.learned->ties.dense(), &cfg.learned->ties.dense_cycles());
    } else {
        fsim.set_good_ties(nullptr, nullptr);
    }

    EngineConfig ecfg;
    ecfg.mode = cfg.mode;
    ecfg.backtrack_limit = cfg.backtrack_limit;
    ecfg.max_decisions = cfg.max_decisions;
    if (cfg.learned != nullptr) {
        ecfg.db = &cfg.learned->db;
        ecfg.ties = &cfg.learned->ties;
    }

    // Tie-derived untestable faults: a fault stuck at the tied value of its
    // line can never be excited. Fault equivalence makes this valid for the
    // whole class of each marked representative.
    if (cfg.identify_untestable && cfg.learned != nullptr) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list.status(i) != FaultStatus::Undetected) continue;
            const fault::Fault& f = list.fault(i);
            const GateId line =
                f.pin == fault::kOutputPin ? f.gate : topo.fanins(f.gate)[f.pin];
            if (cfg.learned->ties.value(line) != f.stuck) continue;
            if (cfg.learned->ties.cycle(line) > 0 && !cfg.count_c_cycle_redundant) continue;
            list.set_status(i, FaultStatus::Untestable);
            ++out.untestable_by_tie;
        }
    }

    // Optional random-simulation bootstrap: cheap coverage of the easy
    // faults so the deterministic engine only sees the hard remainder.
    if (cfg.random_sequences > 0) {
        util::Rng rng(cfg.random_seed);
        for (std::size_t s = 0; s < cfg.random_sequences; ++s) {
            sim::InputSequence seq(cfg.random_sequence_length,
                                   sim::InputFrame(topo.inputs().size(), logic::Val3::X));
            for (auto& frame : seq) {
                for (auto& v : frame)
                    v = rng.chance(0.5) ? logic::Val3::One : logic::Val3::Zero;
            }
            const std::size_t dropped = fsim.drop_detected(seq, list);
            out.detected_by_bootstrap += dropped;
            if (dropped > 0) out.tests.push_back(std::move(seq));
        }
    }

    const std::vector<std::uint32_t> windows =
        cfg.windows.empty() ? default_windows(topo) : cfg.windows;
    const std::size_t total_targets = list.undetected().size();

    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list.status(i) != FaultStatus::Undetected) continue;
        if (cfg.on_fault && !cfg.on_fault(out.targeted_faults, total_targets)) {
            out.cancelled = true;
            break;
        }
        const fault::Fault& f = list.fault(i);
        ++out.targeted_faults;

        if (cfg.identify_untestable) {
            const RedundancyVerdict verdict =
                prove_redundancy(engine, f, ecfg, cfg.redundancy_effort);
            if (verdict == RedundancyVerdict::Untestable) {
                list.set_status(i, FaultStatus::Untestable);
                ++out.untestable_by_proof;
                continue;
            }
        }

        bool aborted = false;
        for (const std::uint32_t w : windows) {
            ++out.gen_calls;
            const EngineResult r = engine.solve(f, w, ecfg);
            out.total_backtracks += r.backtracks;
            if (r.status == EngineResult::Status::Aborted) {
                aborted = true;
                break;  // larger windows only search more
            }
            if (r.status != EngineResult::Status::TestFound) continue;
            if (!fsim.detects(r.test, f)) {
                ++out.invalid_tests;
                continue;
            }
            fsim.drop_detected(r.test, list);
            out.tests.push_back(r.test);
            break;
        }
        if (list.status(i) == FaultStatus::Undetected && aborted) {
            list.set_status(i, FaultStatus::Aborted);
        }
    }

    out.cpu_seconds = timer.seconds();
    return out;
}

AtpgOutcome run_atpg(const netlist::Topology& topo, fault::FaultList& list,
                     const AtpgConfig& cfg) {
    Engine engine(topo);
    fault::FaultSimulator fsim(topo);
    return run_atpg(engine, fsim, list, cfg);
}

AtpgOutcome run_atpg(const Netlist& nl, fault::FaultList& list, const AtpgConfig& cfg) {
    const netlist::Topology topo(nl);
    return run_atpg(topo, list, cfg);
}

}  // namespace seqlearn::atpg
