#include "atpg/atpg_loop.hpp"

#include "atpg/redundancy.hpp"
#include "exec/speculate.hpp"
#include "exec/worker_set.hpp"
#include "netlist/structure.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <memory>

namespace seqlearn::atpg {

using fault::FaultStatus;

namespace {

// Seed of the warmup (and random-fill) stream: an FNV-1a digest of every
// result-affecting knob, so the same campaign configuration always replays
// the same random patterns — on any machine, at any thread count — while
// distinct configurations draw distinct streams.
std::uint64_t config_seed(const AtpgConfig& cfg) {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(cfg.rand_warmup));
    mix(static_cast<std::uint64_t>(cfg.rand_warmup_length));
    mix(static_cast<std::uint64_t>(cfg.backtrack_limit));
    mix(static_cast<std::uint64_t>(cfg.max_decisions));
    mix(static_cast<std::uint64_t>(cfg.sat_frames));
    mix(static_cast<std::uint64_t>(cfg.backend));
    mix(static_cast<std::uint64_t>(cfg.mode));
    mix(static_cast<std::uint64_t>(cfg.order));
    mix(cfg.order_seed);
    mix(static_cast<std::uint64_t>(cfg.guidance));
    mix(static_cast<std::uint64_t>(cfg.fill));
    return h;
}

std::vector<std::uint32_t> default_windows(const netlist::Topology& topo) {
    const std::size_t depth = netlist::sequential_depth(topo, 16);
    const std::uint32_t max_w =
        std::clamp<std::uint32_t>(static_cast<std::uint32_t>(2 * depth + 2), 4, 20);
    std::vector<std::uint32_t> out;
    for (std::uint32_t w = 1; w < max_w; w = w < 4 ? w + 1 : w + (w / 2)) out.push_back(w);
    out.push_back(max_w);
    return out;
}

// Outcome of one deterministic target: everything the solve attempt decided
// plus the counters it accumulated. Computing this touches only the engine,
// the validating simulator, and the fault itself — never the fault list —
// which is what makes targets safe to solve speculatively in parallel.
struct TargetVerdict {
    enum class Kind : std::uint8_t { Skipped, Untestable, Test, Aborted, Exhausted };
    Kind kind = Kind::Skipped;
    sim::InputSequence test;
    std::uint64_t backtracks = 0;
    std::size_t gen_calls = 0;
    std::size_t invalid_tests = 0;
};

TargetVerdict solve_target(Engine& engine, fault::FaultSimulator& fsim,
                           const fault::Fault& f, const EngineConfig& ecfg,
                           const AtpgConfig& cfg,
                           std::span<const std::uint32_t> windows) {
    TargetVerdict v;
    if (cfg.identify_untestable) {
        const RedundancyResult verdict =
            prove_redundancy(engine, f, ecfg, cfg.redundancy_effort);
        if (verdict.proof != fault::UntestableProof::None) {
            v.kind = TargetVerdict::Kind::Untestable;
            return v;
        }
    }
    for (const std::uint32_t w : windows) {
        ++v.gen_calls;
        const EngineResult r = engine.solve(f, w, ecfg);
        v.backtracks += r.backtracks;
        if (r.status == EngineResult::Status::Aborted) {
            v.kind = TargetVerdict::Kind::Aborted;
            return v;  // larger windows only search more
        }
        if (r.status != EngineResult::Status::TestFound) continue;
        if (!fsim.detects(r.test, f)) {
            ++v.invalid_tests;
            continue;
        }
        v.kind = TargetVerdict::Kind::Test;
        v.test = r.test;
        return v;
    }
    v.kind = TargetVerdict::Kind::Exhausted;
    return v;
}

// Apply a verdict to the shared campaign state — always on the calling
// thread, always in fault-index order. `fsim` is the campaign's primary
// simulator (its drop_detected may itself fan out over the pool).
void apply_verdict(TargetVerdict&& v, std::size_t fault_index, fault::FaultList& list,
                   fault::FaultSimulator& fsim, AtpgOutcome& out) {
    out.gen_calls += v.gen_calls;
    out.total_backtracks += v.backtracks;
    out.invalid_tests += v.invalid_tests;
    switch (v.kind) {
        case TargetVerdict::Kind::Untestable:
            list.set_status(fault_index, FaultStatus::Untestable);
            ++out.untestable_by_proof;
            out.untestable_records.push_back(
                {fault_index, fault::UntestableProof::Combinational, 0});
            break;
        case TargetVerdict::Kind::Test:
            // First-detection credit: the test drops every fault it detects
            // (this one included) before any later target commits.
            fsim.drop_detected(v.test, list);
            out.tests.push_back(std::move(v.test));
            break;
        case TargetVerdict::Kind::Aborted:
            if (list.status(fault_index) == FaultStatus::Undetected)
                list.set_status(fault_index, FaultStatus::Aborted);
            break;
        case TargetVerdict::Kind::Exhausted:
        case TargetVerdict::Kind::Skipped:
            break;
    }
}

exec::RunOutcome outcome_from(exec::RunStatus st, const exec::Budget* budget) {
    exec::RunOutcome o;
    o.status = st;
    if (budget != nullptr && budget->detail() != nullptr &&
        (st == exec::RunStatus::DeadlineExceeded || st == exec::RunStatus::LimitReached)) {
        o.diagnostic = budget->detail();
    }
    return o;
}

// The campaign body; every early stop records out.run and returns. Exceptions
// escape to run_atpg's catch (commit walks run on the calling thread with no
// window in flight, so unwinding cannot deadlock or tear shared state).
void run_campaign(Engine& engine, fault::FaultSimulator& fsim, fault::FaultList& list,
                  const AtpgConfig& cfg, exec::Budget* budget, AtpgOutcome& out) {
    const netlist::Topology& topo = engine.topology();

    if (cfg.learned != nullptr) {
        // Tie-augmented good simulation: keeps validation in step with the
        // tie facts the engine asserts (Section 4 / reference [15] gap).
        fsim.set_good_ties(&cfg.learned->ties.dense(), &cfg.learned->ties.dense_cycles());
    } else {
        fsim.set_good_ties(nullptr, nullptr);
    }

    EngineConfig ecfg;
    ecfg.mode = cfg.mode;
    ecfg.backtrack_limit = cfg.backtrack_limit;
    ecfg.max_decisions = cfg.max_decisions;
    if (cfg.learned != nullptr) {
        ecfg.db = &cfg.learned->db;
        ecfg.ties = &cfg.learned->ties;
    }

    // Testability: use the Design-cached analysis when the caller provided
    // one, otherwise compute locally iff a SCOAP consumer needs it. The
    // object is immutable after construction, so the parallel campaign's
    // per-worker engines share it read-only.
    const bool needs_scoap = cfg.guidance == guide::Guidance::Scoap ||
                             cfg.order == guide::OrderStrategy::ScoapHardFirst;
    std::unique_ptr<guide::Testability> owned_tst;
    const guide::Testability* tst = cfg.testability;
    if (needs_scoap && tst == nullptr) {
        owned_tst = std::make_unique<guide::Testability>(topo);
        tst = owned_tst.get();
    }
    if (cfg.guidance == guide::Guidance::Scoap) ecfg.guide = tst;

    // Tie-derived untestable faults: a fault stuck at the tied value of its
    // line can never be excited. Fault equivalence makes this valid for the
    // whole class of each marked representative.
    if (cfg.identify_untestable && cfg.learned != nullptr) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list.status(i) != FaultStatus::Undetected) continue;
            const fault::Fault& f = list.fault(i);
            const GateId line =
                f.pin == fault::kOutputPin ? f.gate : topo.fanins(f.gate)[f.pin];
            if (cfg.learned->ties.value(line) != f.stuck) continue;
            if (cfg.learned->ties.cycle(line) > 0 && !cfg.count_c_cycle_redundant) continue;
            list.set_status(i, FaultStatus::Untestable);
            ++out.untestable_by_tie;
            out.untestable_records.push_back({i, fault::UntestableProof::TieGate, 0});
        }
    }

    // Optional random-simulation bootstrap: cheap coverage of the easy
    // faults so the deterministic engine only sees the hard remainder.
    if (cfg.random_sequences > 0) {
        util::Rng rng(cfg.random_seed);
        for (std::size_t s = 0; s < cfg.random_sequences; ++s) {
            const exec::RunStatus st = exec::poll_point(cfg.cancel, budget);
            if (st != exec::RunStatus::Completed) {
                out.run = outcome_from(st, budget);
                return;
            }
            sim::InputSequence seq(cfg.random_sequence_length,
                                   sim::InputFrame(topo.inputs().size(), logic::Val3::X));
            for (auto& frame : seq) {
                for (auto& v : frame)
                    v = rng.chance(0.5) ? logic::Val3::One : logic::Val3::Zero;
            }
            const std::size_t dropped = fsim.drop_detected(seq, list);
            out.detected_by_bootstrap += dropped;
            if (dropped > 0) out.tests.push_back(std::move(seq));
        }
    }

    // Config-seeded random warmup: same contract as the bootstrap above but
    // the stream is a pure function of the campaign configuration, so a
    // scenario row is reproducible without the caller picking a seed.
    if (cfg.rand_warmup > 0) {
        const exec::RunStatus st = exec::poll_point(cfg.cancel, budget);
        if (st != exec::RunStatus::Completed) {
            out.run = outcome_from(st, budget);
            return;
        }
        const guide::WarmupStats ws =
            guide::random_warmup(fsim, list, topo.inputs().size(), cfg.rand_warmup,
                                 cfg.rand_warmup_length, config_seed(cfg), out.tests);
        out.detected_by_warmup = ws.dropped;
        out.warmup_sequences = ws.sequences_kept;
    }

    const std::vector<std::uint32_t> windows =
        cfg.windows.empty() ? default_windows(topo) : cfg.windows;
    // CNF frame bound: explicit, or the deepest window of the schedule.
    const std::uint32_t sat_k = cfg.sat_frames != 0 ? cfg.sat_frames : windows.back();
    const core::TieSet* ties = cfg.learned != nullptr ? &cfg.learned->ties : nullptr;

    // Backend routing: Sat sends everything to the CNF phase; Auto asks the
    // deterministic cost model per fault (a pure function of the topology,
    // the ties, and the fault — identical across runs and thread counts).
    std::vector<std::size_t> targets;
    std::vector<std::size_t> sat_queue;
    for (const std::size_t i : list.undetected()) {
        bool to_sat = false;
        if (cfg.backend == cnf::Backend::Sat) {
            to_sat = true;
        } else if (cfg.backend == cnf::Backend::Auto) {
            to_sat = cnf::route_to_sat(topo, list.fault(i), sat_k, ties,
                                       cfg.guidance == guide::Guidance::Scoap ? tst
                                                                              : nullptr);
        }
        (to_sat ? sat_queue : targets).push_back(i);
    }
    // Fault ordering permutes the canonical schedule; the SAT queue keeps
    // index order (its solves are serial and order-insensitive).
    guide::order_targets(targets, cfg.order, topo, list, tst, cfg.order_seed);
    const std::size_t total_targets = targets.size();

    // The CNF re-dispatch phase: pre-routed faults plus (Auto) every fault
    // the frame-sim engine aborted, in fault-index order. Runs serially —
    // each solve is internally deterministic and budget-polled, so verdicts
    // are identical at any thread count. Witnesses are validated by the
    // independent fault simulator before any credit, exactly like engine
    // tests; UNSAT classifies the fault untestable within sat_k frames.
    auto run_sat_phase = [&]() {
        if (cfg.backend == cnf::Backend::FrameSim || !out.run.ok()) return;
        std::vector<std::size_t> sat_targets = std::move(sat_queue);
        if (cfg.backend == cnf::Backend::Auto) {
            const std::vector<std::size_t> aborted = list.aborted();
            sat_targets.insert(sat_targets.end(), aborted.begin(), aborted.end());
            std::sort(sat_targets.begin(), sat_targets.end());
        }
        for (const std::size_t i : sat_targets) {
            const FaultStatus before = list.status(i);
            if (before != FaultStatus::Undetected && before != FaultStatus::Aborted)
                continue;
            const exec::RunStatus st = exec::poll_point(cfg.cancel, budget);
            if (st != exec::RunStatus::Completed) {
                out.run = outcome_from(st, budget);
                return;
            }
            if (cfg.failpoint != nullptr) cfg.failpoint->poll(exec::FailSite::WorkItem);
            ++out.sat_targeted;
            cnf::CnfVerdict v =
                cnf::prove_fault(topo, list.fault(i), sat_k, ties, cfg.cancel, budget);
            switch (v.kind) {
                case cnf::CnfVerdict::Kind::Untestable:
                    list.set_status(i, v.proof == fault::UntestableProof::Structural
                                           ? FaultStatus::Untestable
                                           : FaultStatus::UntestableBounded);
                    ++out.untestable_by_cnf;
                    out.untestable_records.push_back(
                        {i, v.proof,
                         v.proof == fault::UntestableProof::BoundedCnf ? sat_k : 0});
                    break;
                case cnf::CnfVerdict::Kind::Test:
                    if (!fsim.detects(v.test, list.fault(i))) {
                        ++out.invalid_tests;
                        break;
                    }
                    ++out.sat_witnesses;
                    // drop_detected only scans Undetected faults, so credit
                    // the (possibly Aborted) target explicitly first.
                    list.set_status(i, FaultStatus::Detected);
                    fsim.drop_detected(v.test, list);
                    out.tests.push_back(std::move(v.test));
                    break;
                case cnf::CnfVerdict::Kind::Unknown:
                    out.run = v.run;
                    return;
            }
            if (budget != nullptr) budget->note_item();
        }
    };

    // Resolve the execution environment (shared executor, private pool, or
    // serial) with the rule every stage shares.
    const exec::StageExec ex = exec::resolve_stage_exec(cfg.executor, cfg.threads);
    const unsigned workers = ex.workers;
    if (workers <= 1 || targets.size() < 2) {
        // Serial campaign: target, apply, move on.
        for (const std::size_t i : targets) {
            if (list.status(i) != FaultStatus::Undetected) continue;
            const exec::RunStatus st = exec::poll_point(cfg.cancel, budget);
            if (st != exec::RunStatus::Completed) {
                out.run = outcome_from(st, budget);
                return;
            }
            if (cfg.on_fault && !cfg.on_fault(out.targeted_faults, total_targets)) {
                out.run.status = exec::RunStatus::Cancelled;
                return;
            }
            if (cfg.failpoint != nullptr) cfg.failpoint->poll(exec::FailSite::WorkItem);
            ++out.targeted_faults;
            apply_verdict(solve_target(engine, fsim, list.fault(i), ecfg, cfg, windows), i,
                          list, fsim, out);
            if (budget != nullptr) budget->note_item();
        }
        run_sat_phase();
        return;
    }

    // Parallel campaign: speculative target solves on per-worker clones,
    // committed in fault-index order. A solve depends only on the fault —
    // never on the list — so speculation is never stale; the only wasted
    // work is solving a target that a test committed just before it drops.
    struct WorkerCtx {
        Engine engine;
        fault::FaultSimulator fsim;
    };
    exec::WorkerSet<WorkerCtx> ctxs(workers - 1, [&](unsigned) {
        WorkerCtx ctx{Engine(topo), fault::FaultSimulator(topo)};
        if (cfg.learned != nullptr) {
            ctx.fsim.set_good_ties(&cfg.learned->ties.dense(),
                                   &cfg.learned->ties.dense_cycles());
        }
        return ctx;
    });

    const exec::SpeculateOptions sopt{/*min_window=*/workers,
                                      /*max_window=*/2 * static_cast<std::size_t>(workers)};
    std::vector<TargetVerdict> slots(exec::resolved_max_window(sopt, workers));

    auto prepare = [](std::size_t, std::size_t) {};
    auto compute = [&](unsigned worker, std::size_t item, std::size_t slot) {
        TargetVerdict& v = slots[slot];
        const std::size_t i = targets[item];
        if (list.status(i) != FaultStatus::Undetected) {
            // Dropped by a test committed before this window was dispatched;
            // statuses never return to Undetected, so the commit will skip
            // it too.
            v = TargetVerdict{};
            return;
        }
        // Fast abort: a pending sticky stop means the next in-order commit
        // Stops, so this solve is wasted work.
        if ((cfg.cancel != nullptr && cfg.cancel->requested()) ||
            (budget != nullptr && budget->deadline_exceeded())) {
            v = TargetVerdict{};
            return;
        }
        if (cfg.failpoint != nullptr) cfg.failpoint->poll(exec::FailSite::WorkItem);
        Engine& eng = worker == 0 ? engine : ctxs[worker - 1].engine;
        fault::FaultSimulator& fs = worker == 0 ? fsim : ctxs[worker - 1].fsim;
        v = solve_target(eng, fs, list.fault(i), ecfg, cfg, windows);
    };
    auto commit = [&](std::size_t item, std::size_t slot) -> exec::Commit {
        const std::size_t i = targets[item];
        const exec::RunStatus st = exec::poll_point(cfg.cancel, budget);
        if (st != exec::RunStatus::Completed) {
            out.run = outcome_from(st, budget);
            return exec::Commit::Stop;
        }
        if (list.status(i) != FaultStatus::Undetected) return exec::Commit::Done;
        if (cfg.on_fault && !cfg.on_fault(out.targeted_faults, total_targets)) {
            out.run.status = exec::RunStatus::Cancelled;
            return exec::Commit::Stop;
        }
        if (cfg.failpoint != nullptr) cfg.failpoint->poll(exec::FailSite::SpecCommit);
        ++out.targeted_faults;
        apply_verdict(std::move(slots[slot]), i, list, fsim, out);
        if (budget != nullptr) budget->note_item();
        return exec::Commit::Done;
    };
    exec::speculate_ordered(ex.pool, targets.size(), sopt, prepare, compute, commit, workers);
    run_sat_phase();
}

}  // namespace

AtpgOutcome run_atpg(Engine& engine, fault::FaultSimulator& fsim, fault::FaultList& list,
                     const AtpgConfig& cfg) {
    const util::Timer timer;
    AtpgOutcome out;

    // The budget clock starts here, at campaign entry; the fault simulator
    // shares the governance hooks for its pass boundaries and drops them
    // again before returning (the Budget is stack-local).
    exec::Budget budget(cfg.budget);
    exec::Budget* budget_ptr = cfg.budget.any() ? &budget : nullptr;
    fsim.set_governance(cfg.cancel, budget_ptr, cfg.failpoint);
    try {
        run_campaign(engine, fsim, list, cfg, budget_ptr, out);
        // Static compaction runs only over a complete campaign: a stopped
        // run keeps its raw tests so partial results stay exactly what was
        // committed. Compaction reads the list but never writes it — final
        // fault statuses are unaffected.
        if (cfg.compact && out.run.ok() && !out.tests.empty()) {
            const guide::CompactionStats cs = guide::compact_tests(
                fsim, list.faults(), out.tests, cfg.fill, config_seed(cfg));
            out.compaction_before = cs.before;
            out.compaction_after = cs.after;
        }
    } catch (const std::exception& e) {
        // Never throw across the campaign boundary: tests and fault statuses
        // committed before the failure are intact (speculation windows apply
        // nothing after a throw).
        out.run = exec::RunOutcome::failed(e.what());
    }
    fsim.set_governance(nullptr, nullptr, nullptr);
    out.cancelled = !out.run.ok();
    out.cpu_seconds = timer.seconds();
    for (const sim::InputSequence& t : out.tests) out.pattern_frames += t.size();
    return out;
}

AtpgOutcome run_atpg(const netlist::Topology& topo, fault::FaultList& list,
                     const AtpgConfig& cfg) {
    Engine engine(topo);
    fault::FaultSimulator fsim(topo);
    return run_atpg(engine, fsim, list, cfg);
}

}  // namespace seqlearn::atpg
