#pragma once
// Deterministic test generation over the unrolled model: a plane-wise
// D-algorithm with J-frontier justification, D-frontier propagation,
// chronological backtracking with a backtrack limit, and unknown initial
// state (frame-0 sequential outputs may never take a binary value, which
// forces self-initializing test sequences).
//
// Learned knowledge plugs in three ways, matching Section 4 of the paper:
//  - LearnMode::KnownValue: a learned implication fires as a real assignment
//    on the good plane, creating a justification obligation (the paper's
//    "unnecessary requirements" behaviour included);
//  - LearnMode::ForbiddenValue: the implied literal's complement is only
//    *forbidden*; forbidden values propagate forward/backward/cross-frame,
//    conflict with real assignments, and steer J-frontier input selection,
//    but never create obligations;
//  - tie gates are pre-asserted facts on the good plane (cycle-aware).
// FF-FF relations act as invalid-state pruning through the same hooks.
// Every relation/tie is applied only at frames with enough history for its
// proof (frame index >= learned frame tag).

#include "atpg/ila.hpp"
#include "core/impl_db.hpp"
#include "core/tie.hpp"
#include "fault/fault.hpp"
#include "guide/testability.hpp"
#include "netlist/topology.hpp"
#include "sim/comb_engine.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace seqlearn::atpg {

enum class LearnMode : std::uint8_t {
    None,            ///< ignore learned data entirely
    KnownValue,      ///< implied literals become assignments to justify
    ForbiddenValue,  ///< implied literals' complements become forbidden
};

struct EngineConfig {
    LearnMode mode = LearnMode::None;
    /// Learned relations (may be null; required for modes != None).
    const core::ImplicationDB* db = nullptr;
    /// Learned tie gates (may be null).
    const core::TieSet* ties = nullptr;
    /// Backtracks allowed before giving up on this (fault, window).
    std::uint32_t backtrack_limit = 30;
    /// Decision-node hard cap (safety valve).
    std::uint32_t max_decisions = 200000;
    /// Frame-0 sequential outputs are free variables (used by the
    /// combinational redundancy prover, never for real test generation).
    bool ppi_free = false;
    /// Fault effects reaching a sequential data input in the last frame
    /// count as observed (pseudo primary outputs; redundancy prover only).
    bool observe_ppo = false;
    /// Complete search: instead of heuristic D-frontier branching, fall back
    /// to full enumeration of unassigned primary inputs (and free PPIs),
    /// so an Exhausted verdict is a proof of untestability. Used by the
    /// redundancy prover; too slow for routine generation.
    bool complete_search = false;
    /// SCOAP guidance (may be null = unguided, bit-identical to the
    /// historical search order). When set, justification tries the
    /// cheapest-to-control fanin first and propagation tries the
    /// best-observable D-frontier gate first. Guidance only reorders
    /// alternatives within a decision — the search space, verdicts'
    /// soundness, and the Exhausted/Aborted semantics are unchanged.
    const guide::Testability* guide = nullptr;
};

struct EngineResult {
    enum class Status : std::uint8_t {
        TestFound,  ///< `test` detects the fault (still validate externally)
        Exhausted,  ///< search space exhausted: no test within this window
        Aborted,    ///< backtrack or decision limit hit
    };
    Status status = Status::Exhausted;
    sim::InputSequence test;
    std::uint32_t backtracks = 0;
    std::uint32_t decisions = 0;
};

/// One engine instance per circuit; solve() may be called repeatedly and
/// carries no state between calls — a given (fault, window, config) solves
/// identically on any instance over the same Topology, which is what lets
/// the parallel ATPG campaign fan targets out over per-worker clones.
/// All structural walks (frontier expansion, cone tracing, implication
/// hooks) read the flat CSR Topology.
class Engine {
public:
    /// Share an existing CSR snapshot (must outlive the engine) — a Session
    /// hands every engine the same Topology so the circuit is levelized
    /// exactly once. To solve straight from a Netlist, build a Topology
    /// first (or go through api::Session).
    explicit Engine(const netlist::Topology& topo);

    /// Try to generate a test for `f` within a `frames`-frame window.
    EngineResult solve(const fault::Fault& f, std::uint32_t frames, const EngineConfig& cfg);

    const netlist::Topology& topology() const noexcept { return *topo_; }

private:
    struct Search;  // defined in engine.cpp
    const netlist::Topology* topo_;
};

}  // namespace seqlearn::atpg
