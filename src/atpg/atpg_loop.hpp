#pragma once
// The fault-oriented sequential ATPG campaign (paper Section 5.2 setup).
//
// For every undetected fault: optionally prove untestability (tie gates,
// then the combinational-redundancy prover), then attempt generation over an
// iteratively deepened frame window under the configured backtrack limit.
// Every generated sequence is validated by the independent fault simulator
// and then fault-simulated against the whole list so detected faults drop
// (which is why ATPG can "detect" faults it never targeted, exactly as the
// paper describes).

#include "atpg/engine.hpp"
#include "cnf/dispatch.hpp"
#include "core/seq_learn.hpp"
#include "exec/budget.hpp"
#include "exec/cancel.hpp"
#include "exec/failpoint.hpp"
#include "exec/outcome.hpp"
#include "exec/pool.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "guide/fault_order.hpp"
#include "guide/random_tpg.hpp"
#include "guide/testability.hpp"

#include <functional>
#include <vector>

namespace seqlearn::atpg {

struct AtpgConfig {
    /// Worker threads for the campaign (0 = hardware_concurrency). Targets
    /// fan out over per-worker Engine/FaultSimulator clones; solves are
    /// stateless per (fault, window), and results commit in fault-index
    /// order with first-detection credit, so N-thread campaigns are
    /// bit-identical to 1-thread ones.
    unsigned threads = 0;
    /// Run on this pool instead of a private one (a Session shares its pool
    /// across stages); effective workers = min(pool size, threads).
    exec::Pool* executor = nullptr;
    /// Optional cooperative stop switch, polled at target boundaries on the
    /// calling thread; request() is safe from any thread.
    exec::CancelFlag* cancel = nullptr;
    /// Run budget (deadline / item limit / memory cap), polled at the same
    /// target boundaries as `cancel` and at fault-sim pass boundaries. An
    /// exhausted budget stops the campaign; generated tests and fault
    /// statuses committed so far are kept.
    exec::BudgetSpec budget;
    /// Fault-injection harness for the robustness suite (null in
    /// production); polled inside solves, commits, and fault-sim passes.
    exec::FailurePoint* failpoint = nullptr;
    /// Which engine targets faults. FrameSim is the paper's flow. Sat sends
    /// every target to the CNF timeframe-expansion backend. Auto routes per
    /// fault with the deterministic cost model (cnf::route_to_sat) and
    /// additionally re-dispatches every frame-sim abort to the CNF backend,
    /// so no fault is left merely Aborted while the budget lasts.
    cnf::Backend backend = cnf::Backend::FrameSim;
    /// CNF frame bound K (Sat/Auto backends): a fault with no detecting
    /// sequence of <= K frames is classified untestable-within-K
    /// (FaultStatus::UntestableBounded). 0 = automatic, the deepest frame
    /// window of the campaign schedule.
    std::uint32_t sat_frames = 0;
    /// How learned data is used (paper Table 5's three columns).
    LearnMode mode = LearnMode::None;
    /// Learned data; must be non-null for modes other than None, and is
    /// also consulted (ties) for untestability marking when present.
    const core::LearnResult* learned = nullptr;
    /// Backtrack limit per (fault, window) — the paper uses 30 and 1000.
    std::uint32_t backtrack_limit = 30;
    /// Frame windows tried in order; empty = automatic schedule derived
    /// from the circuit's sequential depth.
    std::vector<std::uint32_t> windows;
    /// Prove untestability (ties + redundancy prover).
    bool identify_untestable = true;
    /// Count c-cycle-redundant faults (stuck at the value of a
    /// *sequentially* tied gate, paper reference [13]) as untestable, as the
    /// paper does. Off by default: such a fault is still detectable within
    /// the first c frames after power-up, so the claim is not strictly
    /// sound under the tester model; combinational (cycle-0) ties are
    /// always counted.
    bool count_c_cycle_redundant = false;
    /// Backtrack budget of the redundancy prover.
    std::uint32_t redundancy_effort = 2000;
    /// Engine decision cap per solve (safety valve).
    std::uint32_t max_decisions = 200000;
    /// Random-simulation bootstrap: fault-simulate this many random input
    /// sequences before deterministic generation and drop what they detect
    /// (0 = off). Real ATPG flows run with this on; the paper-table benches
    /// keep it off so the deterministic-engine deltas stay visible.
    std::size_t random_sequences = 0;
    /// Frames per bootstrap sequence.
    std::size_t random_sequence_length = 24;
    std::uint64_t random_seed = 1;
    /// Fault-ordering strategy applied to the canonical serial target
    /// schedule (the deterministic fault-index queue). Parallel runs commit
    /// in schedule order, so every strategy is bit-identical at any thread
    /// count; Index reproduces the historical order exactly.
    guide::OrderStrategy order = guide::OrderStrategy::Index;
    /// Seed for OrderStrategy::Random (ignored otherwise).
    std::uint64_t order_seed = 1;
    /// Engine search guidance. None is bit-identical to the historical
    /// goldens; Scoap turns on testability-guided backtrace and D-frontier
    /// selection and feeds SCOAP features to the Auto backend router.
    guide::Guidance guidance = guide::Guidance::None;
    /// Random-pattern warmup: this many deterministic random sequences
    /// (xoshiro seeded from a digest of the result-affecting config) are
    /// fault-simulated before deterministic ATPG, bulk-dropping easy faults
    /// (0 = off). Unlike `random_sequences` (whose seed is caller-chosen),
    /// the warmup stream is a pure function of the campaign configuration.
    std::size_t rand_warmup = 0;
    /// Frames per warmup sequence.
    std::size_t rand_warmup_length = 24;
    /// Static compaction: greedily merge X-compatible test sequences,
    /// re-verify every merge by fault simulation, drop tests that detect
    /// nothing first, then fill remaining X positions per `fill`.
    bool compact = false;
    guide::FillMode fill = guide::FillMode::X;
    /// Precomputed testability (api::Design caches one per circuit). May be
    /// null: the campaign computes its own when a SCOAP consumer
    /// (guidance/ordering) needs it.
    const guide::Testability* testability = nullptr;
    /// Per-fault progress observer: called before each deterministic target
    /// with (faults fully processed so far, targets when the loop entered).
    /// Return false to cancel the campaign; partial results are kept and the
    /// outcome is flagged cancelled. Null = no observation.
    std::function<bool(std::size_t done, std::size_t total)> on_fault;
};

struct AtpgOutcome {
    std::vector<sim::InputSequence> tests;
    double cpu_seconds = 0.0;
    std::uint64_t total_backtracks = 0;
    std::size_t gen_calls = 0;
    std::size_t targeted_faults = 0;
    /// Engine results rejected by the validating fault simulator (expected
    /// to stay 0; counted for honesty).
    std::size_t invalid_tests = 0;
    std::size_t untestable_by_tie = 0;
    std::size_t untestable_by_proof = 0;
    std::size_t detected_by_bootstrap = 0;
    /// Faults dropped by the config-seeded random warmup (rand_warmup > 0)
    /// and the warmup sequences that earned credit.
    std::size_t detected_by_warmup = 0;
    std::size_t warmup_sequences = 0;
    /// Static compaction bookkeeping: pattern count before/after the pass
    /// (both 0 when compaction was off or never ran).
    std::size_t compaction_before = 0;
    std::size_t compaction_after = 0;
    /// Total test frames across `tests` (after compaction when enabled) —
    /// the tester-time proxy the stats/bench rows report.
    std::size_t pattern_frames = 0;
    /// CNF backend counters (Sat/Auto): faults sent to the SAT phase,
    /// untestability verdicts, and witness sequences it produced (each
    /// validated by the fault simulator before credit).
    std::size_t sat_targeted = 0;
    std::size_t untestable_by_cnf = 0;
    std::size_t sat_witnesses = 0;
    /// One record per untestability proof, in fault-index order — the
    /// provenance the CLI's `untestable` JSON section reports.
    struct UntestableRecord {
        std::size_t fault_index = 0;
        fault::UntestableProof proof = fault::UntestableProof::None;
        /// Frame bound for BoundedCnf proofs; 0 for unbounded proofs.
        std::uint32_t frames = 0;
    };
    std::vector<UntestableRecord> untestable_records;
    /// How the campaign ended. Partial results (tests + statuses committed
    /// before the stop) are valid; Failed means an exception was captured
    /// with the committed state intact. Never throws past run_atpg.
    exec::RunOutcome run;
    /// Convenience flag: true whenever the campaign ended early, i.e.
    /// !run.ok() (kept for report printers).
    bool cancelled = false;
};

/// Run a campaign over `list` (statuses updated in place) reusing the
/// caller's engine and fault simulator — the zero-rebuild path a Session
/// uses. Both must be built over the same Topology. The simulator's
/// good-machine ties are (re)configured from cfg.learned.
AtpgOutcome run_atpg(Engine& engine, fault::FaultSimulator& fsim, fault::FaultList& list,
                     const AtpgConfig& cfg);

/// Convenience: build the engine and fault simulator over `topo` and run.
AtpgOutcome run_atpg(const netlist::Topology& topo, fault::FaultList& list,
                     const AtpgConfig& cfg);

}  // namespace seqlearn::atpg
