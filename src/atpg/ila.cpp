#include "atpg/ila.hpp"

#include "netlist/structure.hpp"

namespace seqlearn::atpg {

std::vector<bool> fault_cone_mask(const Netlist& nl, const fault::Fault& f) {
    std::vector<bool> mask(nl.size(), false);
    // For an output fault the affected line starts at the gate itself; for a
    // pin fault the divergence starts at the consuming gate.
    const GateId root = f.gate;
    mask[root] = true;
    for (const GateId g : netlist::fanout_cone(nl, root, /*through_seq=*/true)) mask[g] = true;
    return mask;
}

}  // namespace seqlearn::atpg
