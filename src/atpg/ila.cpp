#include "atpg/ila.hpp"

namespace seqlearn::atpg {

std::vector<bool> fault_cone_mask(const netlist::Topology& topo, const fault::Fault& f) {
    std::vector<bool> mask(topo.size(), false);
    // For an output fault the affected line starts at the gate itself; for a
    // pin fault the divergence starts at the consuming gate. Reachability
    // runs over the full CSR fanout spans (combinational and sequential).
    const GateId root = f.gate;
    mask[root] = true;
    std::vector<GateId> stack{root};
    while (!stack.empty()) {
        const GateId g = stack.back();
        stack.pop_back();
        for (const GateId h : topo.fanouts(g)) {
            if (!mask[h]) {
                mask[h] = true;
                stack.push_back(h);
            }
        }
    }
    return mask;
}

}  // namespace seqlearn::atpg
