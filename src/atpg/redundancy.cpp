#include "atpg/redundancy.hpp"

namespace seqlearn::atpg {

RedundancyResult prove_redundancy(Engine& engine, const fault::Fault& f, EngineConfig cfg,
                                  std::uint32_t effort_backtracks) {
    cfg.ppi_free = true;
    cfg.observe_ppo = true;
    cfg.complete_search = true;
    cfg.backtrack_limit = effort_backtracks;
    const EngineResult r = engine.solve(f, /*frames=*/1, cfg);
    RedundancyResult out;
    switch (r.status) {
        case EngineResult::Status::TestFound: out.combinationally_testable = true; break;
        case EngineResult::Status::Exhausted:
            out.proof = fault::UntestableProof::Combinational;
            break;
        case EngineResult::Status::Aborted: break;
    }
    return out;
}

}  // namespace seqlearn::atpg
