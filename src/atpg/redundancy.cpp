#include "atpg/redundancy.hpp"

namespace seqlearn::atpg {

RedundancyVerdict prove_redundancy(Engine& engine, const fault::Fault& f, EngineConfig cfg,
                                   std::uint32_t effort_backtracks) {
    cfg.ppi_free = true;
    cfg.observe_ppo = true;
    cfg.complete_search = true;
    cfg.backtrack_limit = effort_backtracks;
    const EngineResult r = engine.solve(f, /*frames=*/1, cfg);
    switch (r.status) {
        case EngineResult::Status::TestFound:
            return RedundancyVerdict::CombinationallyTestable;
        case EngineResult::Status::Exhausted: return RedundancyVerdict::Untestable;
        case EngineResult::Status::Aborted: return RedundancyVerdict::Unknown;
    }
    return RedundancyVerdict::Unknown;
}

}  // namespace seqlearn::atpg
