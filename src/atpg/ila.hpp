#pragma once
// Iterative-logic-array addressing and fault-cone precomputation.
//
// The sequential ATPG engine works on a W-frame unrolling of the circuit.
// Nothing is materialized: a cell is (frame, gate) packed into one index,
// combinational edges stay within a frame, and each sequential element's
// output cell at frame k+1 links to its data-input cell at frame k.
// Frame-0 sequential outputs are the unknown initial state and may never
// take a binary value.

#include "fault/fault.hpp"
#include "netlist/topology.hpp"

#include <cstdint>
#include <vector>

namespace seqlearn::atpg {

using netlist::GateId;
using netlist::Netlist;

/// Index of a (frame, gate) pair in the unrolled model.
using Cell = std::uint32_t;

struct Ila {
    std::size_t num_gates;
    std::uint32_t frames;

    Ila(const netlist::Topology& topo, std::uint32_t w)
        : num_gates(topo.size()), frames(w) {}

    std::size_t num_cells() const noexcept { return num_gates * frames; }
    Cell cell(std::uint32_t frame, GateId gate) const noexcept {
        return static_cast<Cell>(frame * num_gates + gate);
    }
    std::uint32_t frame_of(Cell c) const noexcept {
        return static_cast<std::uint32_t>(c / num_gates);
    }
    GateId gate_of(Cell c) const noexcept { return static_cast<GateId>(c % num_gates); }
};

/// Gates whose value can differ between the good and faulty machines: the
/// forward cone of the fault site, traversed *through* sequential elements
/// (a latched fault effect persists across frames). Gates outside this set
/// always have equal planes, which the engine exploits by mirroring writes.
std::vector<bool> fault_cone_mask(const netlist::Topology& topo, const fault::Fault& f);

}  // namespace seqlearn::atpg
